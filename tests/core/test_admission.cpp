#include "core/admission.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/partitioner.hpp"

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

AdmissionController sdps_controller(std::uint32_t nodes) {
  return AdmissionController(nodes,
                             std::make_unique<SymmetricPartitioner>());
}

TEST(Admission, AcceptsFirstChannel) {
  auto controller = sdps_controller(4);
  const auto result = controller.request(spec(0, 1, 100, 3, 40));
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->id, ChannelId(0));
  EXPECT_EQ(result->partition, (DeadlinePartition{20, 20}));
  EXPECT_EQ(controller.state().channel_count(), 1u);
}

TEST(Admission, AssignsDistinctIds) {
  auto controller = sdps_controller(4);
  const auto a = controller.request(spec(0, 1, 100, 3, 40));
  const auto b = controller.request(spec(1, 2, 100, 3, 40));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->id, b->id);
}

TEST(Admission, RejectsInvalidSpec) {
  auto controller = sdps_controller(4);
  const auto result = controller.request(spec(0, 1, 100, 3, 5));  // d < 2C
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().reason, RejectReason::kInvalidSpec);
  EXPECT_NE(result.error().detail.find("store-and-forward"),
            std::string::npos);
  EXPECT_EQ(controller.state().channel_count(), 0u);
}

TEST(Admission, RejectsUnknownNode) {
  auto controller = sdps_controller(4);
  const auto result = controller.request(spec(0, 9, 100, 3, 40));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().reason, RejectReason::kUnknownNode);
}

TEST(Admission, SdpsUplinkSaturatesAtAnalyticLimit) {
  // Paper operating point: {P=100, C=3, d=40} under SDPS → d_iu = 20 →
  // exactly ⌊20/3⌋ = 6 channels fit on one uplink.
  auto controller = sdps_controller(10);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(controller.request(
        spec(0, static_cast<std::uint32_t>(1 + i), 100, 3, 40)))
        << "channel " << i;
  }
  const auto seventh = controller.request(spec(0, 7, 100, 3, 40));
  ASSERT_FALSE(seventh.has_value());
  EXPECT_EQ(seventh.error().reason, RejectReason::kUplinkInfeasible);
  EXPECT_EQ(controller.state().channel_count(), 6u);
}

TEST(Admission, SdpsDownlinkSaturatesAtAnalyticLimit) {
  auto controller = sdps_controller(10);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(controller.request(
        spec(static_cast<std::uint32_t>(1 + i), 0, 100, 3, 40)));
  }
  const auto seventh = controller.request(spec(7, 0, 100, 3, 40));
  ASSERT_FALSE(seventh.has_value());
  EXPECT_EQ(seventh.error().reason, RejectReason::kDownlinkInfeasible);
}

TEST(Admission, AdpsBeatsSdpsOnBottleneckedUplink) {
  // Same stream of requests from one master to many slaves: ADPS shifts
  // deadline budget to the master's uplink and admits more channels.
  auto sdps = sdps_controller(40);
  AdmissionController adps(40, std::make_unique<AsymmetricPartitioner>());
  std::size_t sdps_accepted = 0;
  std::size_t adps_accepted = 0;
  for (std::uint32_t i = 0; i < 30; ++i) {
    const auto s = spec(0, 1 + i, 100, 3, 40);
    if (sdps.request(s)) ++sdps_accepted;
    if (adps.request(s)) ++adps_accepted;
  }
  EXPECT_EQ(sdps_accepted, 6u);
  EXPECT_GT(adps_accepted, sdps_accepted);
}

TEST(Admission, RejectionLeavesNoResidue) {
  auto controller = sdps_controller(4);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(controller.request(spec(0, 1, 100, 3, 40)));
  }
  const auto& uplink_before =
      controller.state().link(NodeId{0}, LinkDirection::kUplink);
  const auto utilization_before = uplink_before.utilization();
  const auto size_before = uplink_before.size();

  ASSERT_FALSE(controller.request(spec(0, 1, 100, 3, 40)));

  const auto& uplink_after =
      controller.state().link(NodeId{0}, LinkDirection::kUplink);
  EXPECT_EQ(uplink_after.size(), size_before);
  EXPECT_NEAR(uplink_after.utilization(), utilization_before, 1e-12);
  EXPECT_EQ(controller.state().link_load(NodeId{1},
                                         LinkDirection::kDownlink),
            6u);
}

TEST(Admission, RejectedIdIsReused) {
  auto controller = sdps_controller(4);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(controller.request(spec(0, 1, 100, 3, 40)));
  }
  ASSERT_FALSE(controller.request(spec(0, 1, 100, 3, 40)));
  // The failed request must not leak its tentatively allocated ID.
  const auto ok = controller.request(spec(2, 3, 100, 3, 40));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->id, ChannelId(7));
}

TEST(Admission, ReleaseFreesCapacity) {
  auto controller = sdps_controller(4);
  std::vector<ChannelId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(controller.request(spec(0, 1, 100, 3, 40))->id);
  }
  ASSERT_FALSE(controller.request(spec(0, 1, 100, 3, 40)));
  EXPECT_TRUE(controller.release(ids.front()));
  EXPECT_TRUE(controller.request(spec(0, 1, 100, 3, 40)).has_value());
}

TEST(Admission, ReleaseUnknownFails) {
  auto controller = sdps_controller(4);
  EXPECT_FALSE(controller.release(ChannelId(5)));
}

TEST(Admission, StatsAreAccurate) {
  auto controller = sdps_controller(4);
  for (int i = 0; i < 8; ++i) {
    (void)controller.request(spec(0, 1, 100, 3, 40));
  }
  const auto& stats = controller.stats();
  EXPECT_EQ(stats.requested, 8u);
  EXPECT_EQ(stats.accepted, 6u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_GT(stats.feasibility_tests, 0u);
  const auto id = controller.state().channels().front().id;
  EXPECT_TRUE(controller.release(id));
  EXPECT_EQ(controller.stats().released, 1u);
}

TEST(Admission, UtilizationBoundRespectedWithImplicitDeadlines) {
  // d == P channels ride the Liu & Layland fast path; 100% fits, more not.
  auto controller = sdps_controller(4);
  // d = 100, SDPS splits 50/50; with d_iu = 50 < P the fast path does NOT
  // apply per-link — use a spec whose halves equal the period instead.
  // {P=50, C=25, d=100} → d_iu = d_id = 50 = P on both links.
  EXPECT_TRUE(controller.request(spec(0, 1, 50, 25, 100)));
  EXPECT_TRUE(controller.request(spec(0, 1, 50, 25, 100)));
  // Third would push utilization to 1.5.
  const auto third = controller.request(spec(0, 1, 50, 25, 100));
  ASSERT_FALSE(third.has_value());
  EXPECT_NE(third.error().detail.find("utilization"), std::string::npos);
}

TEST(Admission, SearchPartitionerAdmitsWhereSingleSplitFails) {
  // Construct a state where ADPS's single load-proportional guess lands on
  // an infeasible split even though an admissible one exists; the search
  // partitioner (paper's "more flexible feasibility test" ambition) finds
  // it. Analysis in comments.
  AdmissionController adps(8, std::make_unique<AsymmetricPartitioner>());
  AdmissionController search(8, std::make_unique<SearchPartitioner>());

  auto feed_both = [&](const ChannelSpec& s) {
    ASSERT_TRUE(adps.request(s).has_value());
    ASSERT_TRUE(search.request(s).has_value());
  };
  // Inflate node 0's uplink load with three long-deadline channels (their
  // own splits stay harmless: h on the uplink remains ≪ deadlines).
  feed_both(spec(0, 2, 100, 3, 60));
  feed_both(spec(0, 3, 100, 3, 60));
  feed_both(spec(0, 4, 100, 3, 60));
  // One short-deadline channel into node 1's downlink: 5→1 with d = 8
  // splits 4/4 on idle links → downlink task with d_id = 4.
  feed_both(spec(5, 1, 100, 3, 8));

  // Request 0→1 with d = 10: ADPS sees LL(up)=4 vs LL(down)=2 → d_iu = 7,
  // d_id = 3. Downlink tasks {4, 3}: h(4) = 6 > 4 → rejected. Yet the
  // split {4, 6} is feasible on both links; only Search reaches it.
  const auto tight = spec(0, 1, 100, 3, 10);
  const auto adps_result = adps.request(tight);
  const auto search_result = search.request(tight);
  ASSERT_FALSE(adps_result.has_value());
  EXPECT_EQ(adps_result.error().reason, RejectReason::kDownlinkInfeasible);
  ASSERT_TRUE(search_result.has_value());
  EXPECT_TRUE(search_result->partition.satisfies(tight));
}

TEST(Admission, NullPartitionerAsserts) {
  EXPECT_DEATH(AdmissionController(4, nullptr), "requires a DPS");
}

TEST(RejectReason, Names) {
  EXPECT_STREQ(to_string(RejectReason::kInvalidSpec), "invalid spec");
  EXPECT_STREQ(to_string(RejectReason::kUnknownNode), "unknown node");
  EXPECT_STREQ(to_string(RejectReason::kUplinkInfeasible),
               "uplink infeasible");
  EXPECT_STREQ(to_string(RejectReason::kDownlinkInfeasible),
               "downlink infeasible");
  EXPECT_STREQ(to_string(RejectReason::kChannelIdsExhausted),
               "channel IDs exhausted");
}

}  // namespace
}  // namespace rtether::core
