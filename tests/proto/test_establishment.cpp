#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/partitioner.hpp"
#include "proto/stack.hpp"

namespace rtether::proto {
namespace {

sim::SimConfig test_config() {
  return sim::SimConfig{.ticks_per_slot = 100,
                        .propagation_ticks = 1,
                        .switch_processing_ticks = 1};
}

TEST(Establishment, AcceptedChannelOverTheWire) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto result = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->id, ChannelId(0));
  EXPECT_EQ(result->uplink_deadline, 20u);  // SDPS half

  // Both ends materialized their channel tables.
  EXPECT_EQ(stack.layer(NodeId{0}).tx_channels().count(result->id), 1u);
  EXPECT_EQ(stack.layer(NodeId{1}).rx_channels().count(result->id), 1u);
  // The switch committed the channel.
  EXPECT_TRUE(stack.management()
                  .admission()
                  .state()
                  .find_channel(result->id)
                  .has_value());
  EXPECT_EQ(stack.management().stats().requests_admitted, 1u);
}

TEST(Establishment, AdpsUplinkDeadlineConveyedToSource) {
  Stack stack(test_config(), 10,
              std::make_unique<core::AsymmetricPartitioner>());
  // Load node 0's uplink first so the ADPS split is asymmetric.
  for (std::uint32_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        stack.establish(NodeId{0}, NodeId{i}, 100, 3, 40).has_value());
  }
  const auto result = stack.establish(NodeId{0}, NodeId{5}, 100, 3, 40);
  ASSERT_TRUE(result.has_value());
  // LL(up) = 5, LL(down) = 1 → d_iu = round(40·5/6) = 33 (cf. unit test).
  EXPECT_EQ(result->uplink_deadline, 33u);
  const auto* tx = stack.layer(NodeId{0}).find_tx(result->id);
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->uplink_deadline, 33u);
}

TEST(Establishment, SwitchRejectsInfeasibleWithoutForwarding) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  // Fill node 0's uplink to the SDPS limit of 6.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40));
  }
  const auto rejected = stack.establish(NodeId{0}, NodeId{2}, 100, 3, 40);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(stack.management().stats().requests_rejected_infeasible, 1u);
  // The rejected request never reached node 2's RT layer.
  EXPECT_TRUE(stack.layer(NodeId{2}).rx_channels().empty());
  EXPECT_EQ(stack.management().admission().state().channel_count(), 6u);
}

TEST(Establishment, DestinationCanDecline) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  stack.layer(NodeId{1}).set_accept_policy(
      [](const net::RequestFrame&) { return false; });
  const auto rejected = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_FALSE(rejected.has_value());
  // The switch must roll the tentative admission back (no residue).
  EXPECT_EQ(stack.management().admission().state().channel_count(), 0u);
  EXPECT_EQ(stack.management().stats().requests_rejected_by_destination, 1u);
  EXPECT_TRUE(stack.layer(NodeId{0}).tx_channels().empty());

  // Capacity freed: a willing destination still gets the full quota.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(stack.establish(NodeId{0}, NodeId{2}, 100, 3, 40))
        << "channel " << i;
  }
}

TEST(Establishment, DestinationPolicyCanFilterBySpec) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  // Node 1 only accepts channels with period ≥ 100 (a slow device).
  stack.layer(NodeId{1}).set_accept_policy(
      [](const net::RequestFrame& request) { return request.period >= 100; });
  EXPECT_FALSE(stack.establish(NodeId{0}, NodeId{1}, 50, 3, 40).has_value());
  EXPECT_TRUE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40).has_value());
}

TEST(Establishment, ManyConcurrentRequestsAllResolve) {
  Stack stack(test_config(), 8, std::make_unique<core::AsymmetricPartitioner>());
  int resolved = 0;
  int accepted = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    stack.layer(NodeId{i % 4}).request_channel(
        NodeId{4 + i % 4}, 100, 3, 40, [&](const SetupOutcome& outcome) {
          ++resolved;
          if (outcome.accepted) ++accepted;
        });
  }
  EXPECT_TRUE(stack.network().simulator().run_until(
      stack.network().config().slots_to_ticks(50'000)));
  EXPECT_EQ(resolved, 20);
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(static_cast<std::size_t>(accepted),
            stack.management().admission().state().channel_count());
}

TEST(Establishment, DistinctChannelIdsAcrossSources) {
  Stack stack(test_config(), 6, std::make_unique<core::SymmetricPartitioner>());
  std::set<std::uint16_t> ids;
  for (std::uint32_t src = 0; src < 3; ++src) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const auto result =
          stack.establish(NodeId{src}, NodeId{3 + i}, 100, 3, 40);
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(ids.insert(result->id.value()).second)
          << "duplicate channel ID " << result->id.value();
    }
  }
}

TEST(Establishment, InvalidSpecRejectedBySwitch) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  // d < 2C: the switch's admission control refuses (kInvalidSpec path).
  const auto result = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 5);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(stack.management().admission().state().channel_count(), 0u);
}

}  // namespace
}  // namespace rtether::proto
