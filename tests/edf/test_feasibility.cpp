#include "edf/feasibility.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/random.hpp"

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

/// All three scan strategies must agree — run every case through each.
class FeasibilityAllScans : public ::testing::TestWithParam<DemandScan> {};

INSTANTIATE_TEST_SUITE_P(Scans, FeasibilityAllScans,
                         ::testing::Values(DemandScan::kEverySlot,
                                           DemandScan::kCheckpoints,
                                           DemandScan::kExhaustive),
                         [](const ::testing::TestParamInfo<DemandScan>& scan_info) {
                           switch (scan_info.param) {
                             case DemandScan::kEverySlot:
                               return "EverySlot";
                             case DemandScan::kCheckpoints:
                               return "Checkpoints";
                             case DemandScan::kExhaustive:
                               return "Exhaustive";
                           }
                           return "?";
                         });

TEST_P(FeasibilityAllScans, EmptySetIsFeasible) {
  const TaskSet set;
  EXPECT_TRUE(is_feasible(set, GetParam()));
}

TEST_P(FeasibilityAllScans, SingleLightTask) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  EXPECT_TRUE(is_feasible(set, GetParam()));
}

TEST_P(FeasibilityAllScans, DeadlineShorterThanCapacityInfeasible) {
  TaskSet set;
  set.add(task(1, 100, 5, 4));  // C > d: h(4) = 5 > 4
  const auto report = check_feasibility(set, GetParam());
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.reason, InfeasibleReason::kDemandExceeded);
  EXPECT_EQ(report.violation_time, 4u);
  EXPECT_EQ(report.violation_demand, 5u);
}

TEST_P(FeasibilityAllScans, UtilizationOverloadCaughtFirst) {
  TaskSet set;
  set.add(task(1, 10, 6, 10));
  set.add(task(2, 10, 6, 10));  // U = 1.2
  const auto report = check_feasibility(set, GetParam());
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.reason, InfeasibleReason::kUtilizationExceeded);
  EXPECT_GT(report.utilization, 1.0);
  EXPECT_EQ(report.demand_evaluations, 0u);
}

TEST_P(FeasibilityAllScans, PaperSdpsUplinkBoundary) {
  // Fig 18.5 analytics: 6 × {P=100,C=3,d=20} feasible; 7 × infeasible.
  TaskSet six;
  for (std::uint16_t i = 1; i <= 6; ++i) six.add(task(i, 100, 3, 20));
  EXPECT_TRUE(is_feasible(six, GetParam()));

  TaskSet seven;
  for (std::uint16_t i = 1; i <= 7; ++i) seven.add(task(i, 100, 3, 20));
  const auto report = check_feasibility(seven, GetParam());
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.reason, InfeasibleReason::kDemandExceeded);
  EXPECT_EQ(report.violation_time, 20u);  // h(20) = 21 > 20
  EXPECT_EQ(report.violation_demand, 21u);
}

TEST_P(FeasibilityAllScans, PaperAdpsUplinkBoundary) {
  // ADPS gives the master uplink d_iu = 33: 11 channels fit (33 = 11·3).
  TaskSet eleven;
  for (std::uint16_t i = 1; i <= 11; ++i) eleven.add(task(i, 100, 3, 33));
  EXPECT_TRUE(is_feasible(eleven, GetParam()));
  TaskSet twelve;
  for (std::uint16_t i = 1; i <= 12; ++i) twelve.add(task(i, 100, 3, 33));
  EXPECT_FALSE(is_feasible(twelve, GetParam()));
}

TEST_P(FeasibilityAllScans, MixedPeriodsClassicExample) {
  // {P=4,C=1,d=2}, {P=6,C=2,d=5}, {P=12,C=3,d=10}: U = 1/4+1/3+1/4 = 5/6.
  // Demand: h(2)=1, h(5)=1+2=3? deadlines: 2,6,10,14.. / 5,11,17.. / 10,22..
  // h(5)=1(t=2)+2(t=5)=3 ≤ 5; h(10)=2+2+3=7≤10; h(11)=2+4+3=9≤11 — feasible.
  TaskSet set;
  set.add(task(1, 4, 1, 2));
  set.add(task(2, 6, 2, 5));
  set.add(task(3, 12, 3, 10));
  EXPECT_TRUE(is_feasible(set, GetParam()));
}

TEST_P(FeasibilityAllScans, TightDeadlinesInfeasibleDespiteLowUtilization) {
  // U = 0.3 but both want the same 3 slots before t=3.
  TaskSet set;
  set.add(task(1, 20, 3, 3));
  set.add(task(2, 20, 3, 3));
  const auto report = check_feasibility(set, GetParam());
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.reason, InfeasibleReason::kDemandExceeded);
  EXPECT_EQ(report.violation_time, 3u);
}

TEST(Feasibility, LiuLaylandFastPath) {
  // All deadlines == periods: the utilization test alone decides
  // (paper §18.3.2 citing Liu & Layland).
  TaskSet set;
  set.add(task(1, 10, 5, 10));
  set.add(task(2, 20, 10, 20));  // U = 1 exactly
  const auto report = check_feasibility(set);
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.used_utilization_fast_path);
  EXPECT_EQ(report.demand_evaluations, 0u);
}

TEST(Feasibility, FastPathNotUsedWithConstrainedDeadlines) {
  TaskSet set;
  set.add(task(1, 10, 5, 5));  // deadline == busy period → one checkpoint
  const auto report = check_feasibility(set);
  EXPECT_TRUE(report.feasible);
  EXPECT_FALSE(report.used_utilization_fast_path);
  EXPECT_GT(report.demand_evaluations, 0u);
}

TEST(Feasibility, CheckpointScanDoesFewerEvaluations) {
  TaskSet set;
  for (std::uint16_t i = 1; i <= 6; ++i) {
    set.add(task(i, 100, 3, 50 + i));
  }
  const auto naive = check_feasibility(set, DemandScan::kEverySlot);
  const auto smart = check_feasibility(set, DemandScan::kCheckpoints);
  EXPECT_TRUE(naive.feasible);
  EXPECT_TRUE(smart.feasible);
  EXPECT_LT(smart.demand_evaluations, naive.demand_evaluations);
}

TEST(Feasibility, ExactlyFullUtilizationWithImplicitDeadlines) {
  TaskSet set;
  set.add(task(1, 2, 1, 2));
  set.add(task(2, 4, 2, 4));  // U = 1
  EXPECT_TRUE(is_feasible(set));
}

TEST(Feasibility, SummaryStrings) {
  TaskSet ok;
  ok.add(task(1, 100, 3, 40));
  EXPECT_NE(check_feasibility(ok).summary().find("feasible"),
            std::string::npos);

  TaskSet over;
  over.add(task(1, 2, 2, 2));
  over.add(task(2, 2, 1, 2));
  EXPECT_NE(check_feasibility(over).summary().find("utilization"),
            std::string::npos);

  TaskSet tight;
  tight.add(task(1, 100, 5, 4));
  EXPECT_NE(check_feasibility(tight).summary().find("demand"),
            std::string::npos);
}

TEST(Feasibility, ScannedBoundIsBusyPeriod) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  set.add(task(2, 100, 5, 60));
  const auto report = check_feasibility(set, DemandScan::kEverySlot);
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.scanned_bound, 8u);  // busy period = C1 + C2
}


/// Drives a LinkScanCache through a random add sequence, checking after
/// every step that its trial verdicts (and diagnostics) are bit-identical
/// to the from-scratch checkpoint scan on the would-be task set.
TEST(LinkScanCache, TrialsMatchFreshCheckpointScan) {
  rtether::Rng rng(29);
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150};
  for (int trial = 0; trial < 30; ++trial) {
    TaskSet set;
    LinkScanCache cache;
    std::uint16_t next_id = 1;
    for (int step = 0; step < 25; ++step) {
      const Slot p = kPeriods[rng.index(std::size(kPeriods))];
      const Slot c = 1 + rng.index(4);
      // Mostly constrained deadlines; occasionally implicit (d == P) so the
      // Liu & Layland fast path is exercised too.
      const Slot d =
          rng.index(5) == 0 ? p : std::min(p, c + rng.index(2 * p));
      const PseudoTask candidate{ChannelId(next_id), p, c, d};

      auto incremental = cache.check_with(set, candidate);

      TaskSet grown = set;
      grown.add(candidate);
      const auto fresh = check_feasibility(grown, DemandScan::kCheckpoints);

      ASSERT_EQ(incremental.feasible, fresh.feasible)
          << "trial " << trial << " step " << step;
      EXPECT_EQ(incremental.reason, fresh.reason);
      EXPECT_EQ(incremental.utilization, fresh.utilization);
      EXPECT_EQ(incremental.violation_time, fresh.violation_time);
      EXPECT_EQ(incremental.violation_demand, fresh.violation_demand);
      EXPECT_EQ(incremental.scanned_bound, fresh.scanned_bound);
      EXPECT_EQ(incremental.demand_evaluations, fresh.demand_evaluations);
      EXPECT_EQ(incremental.used_utilization_fast_path,
                fresh.used_utilization_fast_path);
      EXPECT_EQ(incremental.summary(), fresh.summary());

      if (incremental.feasible) {
        set.add(candidate);
        cache.commit(candidate,
                     incremental.used_utilization_fast_path
                         ? std::nullopt
                         : std::optional<Slot>(incremental.scanned_bound));
        ++next_id;
      }
    }
  }
}

TEST(LinkScanCache, ResetAdoptsExistingSet) {
  TaskSet set;
  set.add(PseudoTask{ChannelId(1), 100, 3, 40});
  set.add(PseudoTask{ChannelId(2), 60, 2, 30});
  LinkScanCache cache;
  cache.reset(set);
  const PseudoTask probe{ChannelId(3), 80, 4, 20};
  const auto incremental = cache.check_with(set, probe);
  TaskSet grown = set;
  grown.add(probe);
  const auto fresh = check_feasibility(grown, DemandScan::kCheckpoints);
  EXPECT_EQ(incremental.feasible, fresh.feasible);
  EXPECT_EQ(incremental.summary(), fresh.summary());
}

TEST(LinkScanCache, ReserveHorizonDoesNotChangeVerdicts) {
  TaskSet set;
  LinkScanCache cache;
  cache.reserve_horizon(set, 5'000);
  EXPECT_EQ(cache.horizon(), 5'000u);
  const PseudoTask probe{ChannelId(1), 100, 3, 40};
  const auto report = cache.check_with(set, probe);
  TaskSet grown;
  grown.add(probe);
  const auto fresh = check_feasibility(grown, DemandScan::kCheckpoints);
  EXPECT_EQ(report.feasible, fresh.feasible);
  EXPECT_EQ(report.violation_time, fresh.violation_time);
}

TEST(LinkScanCache, CachedHyperperiodIsRunningLcm) {
  TaskSet set;
  LinkScanCache cache;
  ASSERT_TRUE(cache.cached_hyperperiod().has_value());
  EXPECT_EQ(*cache.cached_hyperperiod(), 1u);
  const PseudoTask a{ChannelId(1), 40, 2, 20};
  const PseudoTask b{ChannelId(2), 60, 2, 30};
  set.add(a);
  cache.commit(a);
  set.add(b);
  cache.commit(b);
  EXPECT_EQ(*cache.cached_hyperperiod(), 120u);
}

/// Compares every observable of a trial report between two caches.
void expect_identical_reports(const FeasibilityReport& a,
                              const FeasibilityReport& b,
                              const std::string& where) {
  ASSERT_EQ(a.feasible, b.feasible) << where;
  EXPECT_EQ(a.reason, b.reason) << where;
  EXPECT_EQ(a.utilization, b.utilization) << where;
  EXPECT_EQ(a.violation_time, b.violation_time) << where;
  EXPECT_EQ(a.violation_demand, b.violation_demand) << where;
  EXPECT_EQ(a.scanned_bound, b.scanned_bound) << where;
  EXPECT_EQ(a.demand_evaluations, b.demand_evaluations) << where;
  EXPECT_EQ(a.used_utilization_fast_path, b.used_utilization_fast_path)
      << where;
  EXPECT_EQ(a.summary(), b.summary()) << where;
}

/// The tentpole property of the release fast path: a cache maintained by an
/// arbitrary interleaving of commits and downdates must answer every trial
/// with exactly what a cold reset cache — and the from-scratch reference
/// scan — would answer, including the diagnostic counters (any stale grid
/// instant the downdate failed to drop would inflate demand_evaluations).
TEST(LinkScanCache, DowndateMatchesResetAndReferenceUnderChurn) {
  rtether::Rng rng(137);
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200};
  for (int trial = 0; trial < 20; ++trial) {
    TaskSet set;
    LinkScanCache cache;
    std::vector<PseudoTask> live;
    std::uint16_t next_id = 1;
    for (int step = 0; step < 60; ++step) {
      const bool remove = !live.empty() && rng.bernoulli(0.4);
      if (remove) {
        const std::size_t victim = rng.index(live.size());
        const PseudoTask removed = live[victim];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        ASSERT_TRUE(set.remove(removed.channel));
        cache.downdate(set, removed);
      } else {
        const Slot p = kPeriods[rng.index(std::size(kPeriods))];
        const Slot c = 1 + rng.index(4);
        const Slot d =
            rng.index(6) == 0 ? p : std::min(p, 2 * c + rng.index(p));
        const PseudoTask candidate{ChannelId(next_id++), p, c, d};
        const auto report = cache.check_with(set, candidate);
        if (report.scanned_bound > cache.horizon()) {
          cache.reserve_horizon(set, report.scanned_bound);
        }
        if (!report.feasible) {
          continue;
        }
        set.add(candidate);
        cache.commit(candidate,
                     report.used_utilization_fast_path
                         ? std::nullopt
                         : std::optional<Slot>(report.scanned_bound));
        live.push_back(candidate);
      }

      // Probe the churned cache against a cold rebuild and the reference.
      LinkScanCache cold;
      cold.reset(set);
      const Slot p = kPeriods[rng.index(std::size(kPeriods))];
      const Slot c = 1 + rng.index(4);
      const Slot d = std::min(p, 2 * c + rng.index(p));
      const PseudoTask probe{ChannelId(9999), p, c, d};
      const auto churned = cache.check_with(set, probe);
      const auto fresh = cold.check_with(set, probe);
      TaskSet grown = set;
      grown.add(probe);
      const auto reference = check_feasibility(grown, DemandScan::kCheckpoints);
      const std::string where = "trial " + std::to_string(trial) + " step " +
                                std::to_string(step);
      expect_identical_reports(churned, fresh, where + " (vs cold reset)");
      expect_identical_reports(churned, reference, where + " (vs reference)");
      EXPECT_EQ(cache.task_count(), set.size()) << where;
      EXPECT_EQ(cache.cached_hyperperiod().has_value(),
                cold.cached_hyperperiod().has_value())
          << where;
      if (cache.cached_hyperperiod().has_value()) {
        EXPECT_EQ(*cache.cached_hyperperiod(), *cold.cached_hyperperiod())
            << where;
      }
    }
  }
}

TEST(LinkScanCache, DowndateToEmptyRestoresPristineState) {
  TaskSet set;
  LinkScanCache cache;
  const PseudoTask a{ChannelId(1), 100, 3, 40};
  const PseudoTask b{ChannelId(2), 60, 2, 30};
  for (const auto& t : {a, b}) {
    const auto report = cache.check_with(set, t);
    ASSERT_TRUE(report.feasible);
    set.add(t);
    cache.commit(t, report.scanned_bound);
  }
  ASSERT_TRUE(set.remove(b.channel));
  cache.downdate(set, b);
  ASSERT_TRUE(set.remove(a.channel));
  cache.downdate(set, a);
  EXPECT_EQ(cache.task_count(), 0u);
  ASSERT_TRUE(cache.cached_hyperperiod().has_value());
  EXPECT_EQ(*cache.cached_hyperperiod(), 1u);
  const PseudoTask probe{ChannelId(3), 80, 4, 20};
  const auto report = cache.check_with(set, probe);
  TaskSet grown;
  grown.add(probe);
  expect_identical_reports(report,
                           check_feasibility(grown, DemandScan::kCheckpoints),
                           "empty after full churn");
}

TEST(LinkScanCache, ReleaseThenIdenticalReadmitKeepsGridWarm) {
  // The downdate must retain the memoized horizon: releasing a channel and
  // re-admitting the identical contract has to stay a pure merge-walk
  // (accepted, and with the same report the original admit produced).
  TaskSet set;
  LinkScanCache cache;
  const PseudoTask a{ChannelId(1), 100, 4, 60};
  const PseudoTask b{ChannelId(2), 80, 3, 35};
  for (const auto& t : {a, b}) {
    const auto report = cache.check_with(set, t);
    ASSERT_TRUE(report.feasible);
    if (report.scanned_bound > cache.horizon()) {
      cache.reserve_horizon(set, report.scanned_bound);
    }
    set.add(t);
    cache.commit(t, report.scanned_bound);
  }
  const auto original = cache.check_with(set, PseudoTask{ChannelId(3),
                                                         100, 4, 60});
  const Slot horizon_before = cache.horizon();
  ASSERT_TRUE(set.remove(a.channel));
  cache.downdate(set, a);
  EXPECT_EQ(cache.horizon(), horizon_before);  // memoization survives
  const auto readmit = cache.check_with(set, a);
  ASSERT_TRUE(readmit.feasible);
  set.add(a);
  cache.commit(a, readmit.scanned_bound);
  const auto repeat = cache.check_with(set, PseudoTask{ChannelId(3),
                                                       100, 4, 60});
  expect_identical_reports(original, repeat, "probe after churn round-trip");
}

TEST(Feasibility, ExhaustiveOracleSurvivesNear64BitHyperperiod) {
  // Two coprime near-2³¹/2³² periods: the hyperperiod is ≈ 9.2·10¹⁸ —
  // fits in 64 bits, but materializing one slot per instant would be an
  // out-of-memory abort. The oracle must fall back to the (exact)
  // busy-period bound and agree with the other scans.
  TaskSet set;
  set.add(task(1, 2'147'483'647, 1, 10));   // M31 prime
  set.add(task(2, 4'294'967'291, 1, 15));   // largest prime < 2³²
  const auto exhaustive = check_feasibility(set, DemandScan::kExhaustive);
  const auto checkpoints = check_feasibility(set, DemandScan::kCheckpoints);
  const auto every_slot = check_feasibility(set, DemandScan::kEverySlot);
  EXPECT_TRUE(exhaustive.feasible);
  EXPECT_EQ(exhaustive.feasible, checkpoints.feasible);
  EXPECT_EQ(exhaustive.feasible, every_slot.feasible);
  EXPECT_LE(exhaustive.scanned_bound, kExhaustiveOracleCap);
}

TEST(Feasibility, ExhaustiveOracleStillExtendsSmallHyperperiods) {
  TaskSet set;
  set.add(task(1, 10, 2, 6));
  set.add(task(2, 15, 3, 9));
  const auto exhaustive = check_feasibility(set, DemandScan::kExhaustive);
  const auto checkpoints = check_feasibility(set, DemandScan::kCheckpoints);
  EXPECT_EQ(exhaustive.feasible, checkpoints.feasible);
  // hyperperiod (30) + max deadline (9) is within the cap: the oracle
  // really scanned past the busy-period bound.
  EXPECT_EQ(exhaustive.scanned_bound, 39u);
}

TEST(LinkScanCache, DowndateWithOverflowedHyperperiodRecovers) {
  // Running lcm overflows with both huge periods live; after releasing one
  // the re-derived hyperperiod must match a fresh rebuild (value, not just
  // presence).
  TaskSet set;
  LinkScanCache cache;
  const PseudoTask a{ChannelId(1), 2'147'483'647, 1, 10};
  const PseudoTask b{ChannelId(2), 4'294'967'291, 1, 15};
  const PseudoTask c{ChannelId(3), 3'037'000'493, 1, 20};
  for (const auto& t : {a, b, c}) {
    const auto report = cache.check_with(set, t);
    ASSERT_TRUE(report.feasible);
    set.add(t);
    cache.commit(t, report.used_utilization_fast_path
                        ? std::nullopt
                        : std::optional<Slot>(report.scanned_bound));
  }
  EXPECT_FALSE(cache.cached_hyperperiod().has_value());  // overflowed
  ASSERT_TRUE(set.remove(c.channel));
  cache.downdate(set, c);
  LinkScanCache cold;
  cold.reset(set);
  EXPECT_EQ(cache.cached_hyperperiod().has_value(),
            cold.cached_hyperperiod().has_value());
  ASSERT_TRUE(set.remove(b.channel));
  cache.downdate(set, b);
  ASSERT_TRUE(cache.cached_hyperperiod().has_value());
  EXPECT_EQ(*cache.cached_hyperperiod(), 2'147'483'647u);
}

}  // namespace
}  // namespace rtether::edf
