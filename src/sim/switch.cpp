#include "sim/switch.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "sim/addressing.hpp"
#include "sim/network.hpp"

namespace rtether::sim {

SimSwitch::SimSwitch(Simulator& simulator, const SimConfig& config,
                     std::uint32_t node_count, SimNetwork& network,
                     std::size_t best_effort_depth)
    : simulator_(simulator), config_(config), network_(network) {
  ports_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const NodeId node{n};
    ports_.push_back(std::make_unique<Transmitter>(
        simulator_, config_, "switch-port-" + std::to_string(n),
        Transmitter::Sink::port(network, node), best_effort_depth));
  }
}

Transmitter& SimSwitch::port(NodeId node) {
  RTETHER_ASSERT(node.value() < ports_.size());
  return *ports_[node.value()];
}

const Transmitter& SimSwitch::port(NodeId node) const {
  RTETHER_ASSERT(node.value() < ports_.size());
  return *ports_[node.value()];
}

void SimSwitch::ingress(FrameIndex frame, NodeId from) {
  if (simulator_.arena().get(frame).corrupted) {
    // CRC check on reception: discarded before MAC learning (a real
    // switch never learns from a CRC-bad frame).
    network_.record_fault_drop(simulator_.arena().get(frame));
    simulator_.arena().release(frame);
    return;
  }
  // Source-address learning happens on reception, before processing.
  table_.learn(simulator_.arena().get(frame).info.source_mac, from);
  simulator_.schedule_event(simulator_.now() + config_.switch_processing_ticks,
                            EventType::kSwitchForward, this, frame,
                            from.value());
}

void SimSwitch::forward(FrameIndex frame, NodeId from) {
  FrameArena& arena = simulator_.arena();
  // The reference stays valid across this function: queueing moves indices,
  // never frames, and nothing below acquires before the flood path's
  // explicit clones.
  const FrameInfo& info = arena.get(frame).info;
  switch (info.cls) {
    case FrameClass::kManagement: {
      if (info.destination_mac == switch_mac()) {
        ++stats_.management_received;
        if (mgmt_handler_ != nullptr) {
          mgmt_handler_(mgmt_context_, arena.get(frame), from,
                        simulator_.now());
        }
        arena.release(frame);
        return;
      }
      // Management frame relayed between nodes: treat as best-effort below.
      [[fallthrough]];
    }
    case FrameClass::kBestEffort: {
      const auto dst = table_.lookup(info.destination_mac);
      if (dst && !info.destination_mac.is_broadcast()) {
        ++stats_.best_effort_forwarded;
        port(*dst).enqueue_best_effort(frame);
        return;
      }
      // Unknown unicast or broadcast: flood to all ports except ingress.
      ++stats_.flooded;
      for (std::uint32_t n = 0; n < ports_.size(); ++n) {
        if (NodeId{n} == from) continue;
        port(NodeId{n}).enqueue_best_effort(arena.clone(frame));
      }
      arena.release(frame);
      return;
    }
    case FrameClass::kRealTime: {
      RTETHER_ASSERT_MSG(info.rt_tag.has_value(),
                         "RT classification without a decoded tag");
      const auto dst = table_.lookup(info.destination_mac);
      if (!dst) {
        // Cannot flood RT traffic without violating other ports'
        // guarantees. Fault-free, establishment always precedes data, so
        // this signals a misbehaving sender; after a reboot table flush it
        // is the expected fate of frames already past ingress, and the
        // per-channel loss is booked so the survival contract's exact
        // accounting holds.
        ++stats_.rt_dropped_unknown_destination;
        network_.record_fault_drop(arena.get(frame));
        RTETHER_LOG(kWarn, "switch",
                    "dropping RT frame to unlearned MAC "
                        << info.destination_mac.to_string());
        arena.release(frame);
        return;
      }
      ++stats_.rt_forwarded;
      if (!config_.edf_enabled) {
        // Baseline mode: plain switched Ethernet, FCFS everywhere.
        port(*dst).enqueue_best_effort(frame);
        return;
      }
      // EDF key: the absolute end-to-end deadline carried in the IP header
      // (release + d_i) — see DESIGN.md "Per-hop EDF keys".
      const Tick key = info.rt_tag->absolute_deadline;
      port(*dst).enqueue_rt(key, frame);
      return;
    }
  }
}

void SimSwitch::send_from_switch(NodeId to, SimFrame frame) {
  port(to).enqueue_best_effort(std::move(frame));
}

void SimSwitch::prime_forwarding(std::uint32_t node_count) {
  for (std::uint32_t n = 0; n < node_count; ++n) {
    table_.learn(node_mac(NodeId{n}), NodeId{n});
  }
}

}  // namespace rtether::sim
