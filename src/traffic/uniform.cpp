#include "traffic/uniform.hpp"

#include "common/assert.hpp"

namespace rtether::traffic {

UniformWorkload::UniformWorkload(UniformConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  RTETHER_ASSERT(config_.nodes >= 2);
}

core::ChannelSpec UniformWorkload::next() {
  const auto source =
      static_cast<std::uint32_t>(rng_.index(config_.nodes));
  auto destination =
      static_cast<std::uint32_t>(rng_.index(config_.nodes - 1));
  if (destination >= source) ++destination;

  core::ChannelSpec spec;
  spec.source = NodeId{source};
  spec.destination = NodeId{destination};
  spec.period = config_.period.sample(rng_);
  spec.capacity = config_.capacity.sample(rng_);
  spec.deadline = config_.deadline.sample(rng_);
  return spec;
}

std::vector<core::ChannelSpec> UniformWorkload::generate(std::size_t count) {
  std::vector<core::ChannelSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back(next());
  }
  return specs;
}

}  // namespace rtether::traffic
