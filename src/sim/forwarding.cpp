#include "sim/forwarding.hpp"

namespace rtether::sim {

void ForwardingTable::learn(const net::MacAddress& mac, NodeId node) {
  table_[mac] = node;
}

std::optional<NodeId> ForwardingTable::lookup(
    const net::MacAddress& mac) const {
  const auto it = table_.find(mac);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rtether::sim
