#include "sim/stats.hpp"

#include <algorithm>

namespace rtether::sim {

void SimStats::record_rt_delivered(ChannelId channel, Tick created,
                                   Tick absolute_deadline, Tick delivered,
                                   Tick allowance) {
  auto& stats = channels_[channel];
  ++stats.frames_delivered;
  stats.delay_ticks.add(static_cast<double>(delivered - created));
  const auto lateness = static_cast<std::int64_t>(delivered) -
                        static_cast<std::int64_t>(absolute_deadline);
  stats.worst_lateness_ticks =
      std::max(stats.worst_lateness_ticks, lateness);
  if (delivered > absolute_deadline + allowance) {
    ++stats.deadline_misses;
  }
}

void SimStats::record_best_effort_delivered(Tick created, Tick delivered) {
  ++best_effort_delivered_;
  best_effort_delay_.add(static_cast<double>(delivered - created));
}

std::optional<ChannelDeliveryStats> SimStats::channel(ChannelId id) const {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t SimStats::total_rt_delivered() const {
  std::uint64_t total = 0;
  for (const auto& [id, stats] : channels_) {
    total += stats.frames_delivered;
  }
  return total;
}

std::uint64_t SimStats::total_deadline_misses() const {
  std::uint64_t total = 0;
  for (const auto& [id, stats] : channels_) {
    total += stats.deadline_misses;
  }
  return total;
}

}  // namespace rtether::sim
