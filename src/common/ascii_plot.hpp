#pragma once

/// @file ascii_plot.hpp
/// Terminal line plots. Benches render the reproduced paper figures as
/// ASCII charts so the curve shapes (plateaus, crossovers) are visible
/// directly in `bench_output.txt`.

#include <string>
#include <vector>

namespace rtether {

/// One named series of (x, y) points; rendered with its own glyph.
struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Multi-series scatter/line plot on a character grid with axes and legend.
class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string x_label, std::string y_label);

  /// Adds a series; x and y must have equal length.
  void add_series(PlotSeries series);

  /// Renders the chart (trailing newline included).
  [[nodiscard]] std::string render(std::size_t width = 70,
                                   std::size_t height = 22) const;

  /// Renders and writes to stdout.
  void print(std::size_t width = 70, std::size_t height = 22) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<PlotSeries> series_;
};

}  // namespace rtether
