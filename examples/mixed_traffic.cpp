/// RT and TCP-like best-effort coexistence (Fig 18.2's two queues).
///
/// A small work cell where two controllers exchange hard-real-time data
/// while every node also runs bulk best-effort transfers (file transfers,
/// diagnostics — the "ordinary TCP/IP" of the paper). Shows that the RT
/// channel's delays stay bounded while best-effort soaks up the remaining
/// bandwidth.

#include <cstdio>
#include <memory>

#include "core/partitioner.hpp"
#include "example_seed.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"
#include "sim/best_effort.hpp"

using namespace rtether;

int main(int argc, char** argv) {
  const std::uint64_t seed = examples::seed_from_argv(argc, argv, 5);
  proto::Stack stack(sim::SimConfig{}, /*node_count=*/6,
                     std::make_unique<core::AsymmetricPartitioner>());
  auto& network = stack.network();

  // Two RT channels between the controllers (nodes 0 and 1).
  const auto control = stack.establish(NodeId{0}, NodeId{1}, 50, 1, 10);
  const auto feedback = stack.establish(NodeId{1}, NodeId{0}, 50, 1, 10);
  if (!control || !feedback) {
    std::puts("RT channel establishment failed");
    return 1;
  }

  proto::PeriodicRtSender control_sender(stack.layer(NodeId{0}),
                                         control->id);
  proto::PeriodicRtSender feedback_sender(stack.layer(NodeId{1}),
                                          feedback->id, /*phase_slots=*/25);
  control_sender.start();
  feedback_sender.start();

  // Heavy best-effort everywhere: 80% offered load per node, bursty.
  sim::BestEffortProfile profile;
  profile.offered_load = 0.8;
  profile.arrivals = sim::BestEffortArrivals::kOnOff;
  auto background =
      sim::attach_best_effort_everywhere(network, profile, seed);

  if (!network.simulator().run_until(
          network.now() + network.config().slots_to_ticks(5'000))) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return 1;
  }
  control_sender.stop();
  feedback_sender.stop();
  for (auto& source : background) source->stop();
  if (!network.simulator().run_all()) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return 1;
  }

  const double tps = static_cast<double>(network.config().ticks_per_slot);
  for (const auto& [name, channel] :
       {std::pair{"control ", *control}, std::pair{"feedback", *feedback}}) {
    const auto stats = network.stats().channel(channel.id);
    std::printf(
        "%s channel: %4llu frames | mean delay %5.2f slots | worst %5.2f "
        "slots | bound %llu+T_lat | misses %llu\n",
        name, static_cast<unsigned long long>(stats->frames_delivered),
        stats->delay_ticks.mean() / tps, stats->delay_ticks.max() / tps,
        static_cast<unsigned long long>(channel.deadline),
        static_cast<unsigned long long>(stats->deadline_misses));
  }
  std::printf(
      "best-effort: %llu frames delivered, mean delay %.1f slots "
      "(unbounded by design)\n",
      static_cast<unsigned long long>(
          network.stats().best_effort_delivered()),
      network.stats().best_effort_delay_ticks().mean() / tps);
  std::puts("\nRT delays stay within d_i + T_latency even at 80% background");
  std::puts("load; best-effort rides the leftover capacity (FCFS).");
  return 0;
}
