#pragma once

/// @file math.hpp
/// Overflow-aware integer helpers for schedulability arithmetic.
///
/// Hyperperiods are least common multiples of user-supplied periods and can
/// overflow 64 bits for pathological inputs; every operation that can
/// overflow is available in a checked form so callers can degrade gracefully
/// (e.g. fall back to the busy-period bound, which never needs the lcm).

#include <cstdint>
#include <numeric>
#include <optional>

#include "common/assert.hpp"

namespace rtether {

/// `a * b`, or nullopt on unsigned 64-bit overflow.
[[nodiscard]] constexpr std::optional<std::uint64_t> checked_mul(
    std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::nullopt;
  }
  return a * b;
}

/// `a + b`, or nullopt on unsigned 64-bit overflow.
[[nodiscard]] constexpr std::optional<std::uint64_t> checked_add(
    std::uint64_t a, std::uint64_t b) {
  if (b > std::numeric_limits<std::uint64_t>::max() - a) {
    return std::nullopt;
  }
  return a + b;
}

/// Least common multiple, or nullopt on overflow. lcm(0, x) == 0.
[[nodiscard]] constexpr std::optional<std::uint64_t> checked_lcm(
    std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const std::uint64_t g = std::gcd(a, b);
  return checked_mul(a / g, b);
}

/// ⌈a / b⌉ for b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  RTETHER_ASSERT(b != 0);
  return a / b + (a % b != 0 ? 1 : 0);
}

/// ⌊a / b⌋ for b > 0 (named for symmetry with ceil_div).
[[nodiscard]] constexpr std::uint64_t floor_div(std::uint64_t a,
                                                std::uint64_t b) {
  RTETHER_ASSERT(b != 0);
  return a / b;
}

/// Saturating subtraction: max(a - b, 0) without wrap-around.
[[nodiscard]] constexpr std::uint64_t sat_sub(std::uint64_t a,
                                              std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace rtether
