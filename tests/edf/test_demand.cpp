#include "edf/demand.hpp"

#include <gtest/gtest.h>

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

// Paper Eq 18.3: h(n,t) = Σ_{d_i ≤ t} (1 + ⌊(t − d_i)/P_i⌋)·C_i.

TEST(TaskDemand, ZeroBeforeDeadline) {
  const auto t = task(1, 100, 3, 40);
  EXPECT_EQ(task_demand(t, 0), 0u);
  EXPECT_EQ(task_demand(t, 39), 0u);
}

TEST(TaskDemand, StepsAtDeadline) {
  const auto t = task(1, 100, 3, 40);
  EXPECT_EQ(task_demand(t, 40), 3u);
  EXPECT_EQ(task_demand(t, 41), 3u);
  EXPECT_EQ(task_demand(t, 139), 3u);
  // Second job's deadline at 100 + 40.
  EXPECT_EQ(task_demand(t, 140), 6u);
  EXPECT_EQ(task_demand(t, 240), 9u);
}

TEST(TaskDemand, ImplicitDeadlineTask) {
  const auto t = task(1, 10, 2, 10);
  EXPECT_EQ(task_demand(t, 9), 0u);
  EXPECT_EQ(task_demand(t, 10), 2u);
  EXPECT_EQ(task_demand(t, 19), 2u);
  EXPECT_EQ(task_demand(t, 20), 4u);
  EXPECT_EQ(task_demand(t, 100), 20u);
}

TEST(Demand, SumsOverTasks) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  set.add(task(2, 50, 5, 20));
  // t=20: only task 2 → 5. t=40: 5 + 3 = 8. t=70: task2 twice (20, 70) → 10+3.
  EXPECT_EQ(demand(set, 19), 0u);
  EXPECT_EQ(demand(set, 20), 5u);
  EXPECT_EQ(demand(set, 40), 8u);
  EXPECT_EQ(demand(set, 70), 13u);
  EXPECT_EQ(demand(set, 140), 3u * 2 + 5u * 3);  // deadlines 40,140 / 20,70,120
}

TEST(Demand, EmptySetIsZero) {
  const TaskSet set;
  EXPECT_EQ(demand(set, 1'000'000), 0u);
}

TEST(Demand, MonotoneNonDecreasing) {
  TaskSet set;
  set.add(task(1, 7, 2, 5));
  set.add(task(2, 11, 3, 9));
  set.add(task(3, 13, 1, 4));
  Slot previous = 0;
  for (Slot t = 0; t <= 1001; ++t) {
    const Slot h = demand(set, t);
    EXPECT_GE(h, previous);
    previous = h;
  }
}

TEST(Demand, LongHorizonMatchesRate) {
  // Over k full hyperperiods the demand approaches U·t.
  TaskSet set;
  set.add(task(1, 10, 2, 10));
  set.add(task(2, 20, 4, 20));
  // U = 0.4; at t = 200: task1 contributes 20 jobs·2 = 40, task2 10·4 = 40.
  EXPECT_EQ(demand(set, 200), 80u);
}

TEST(Demand, FigureOperatingPointUplink) {
  // Fig 18.5 SDPS uplink: k channels {P=100, C=3, d_iu=20} on one master
  // uplink. h(20) = 3k — feasible iff 3k ≤ 20, i.e. k ≤ 6. This is why the
  // SDPS curve plateaus at 60 accepted channels for 10 masters.
  for (std::uint16_t k = 1; k <= 8; ++k) {
    TaskSet set;
    for (std::uint16_t i = 1; i <= k; ++i) {
      set.add(task(i, 100, 3, 20));
    }
    EXPECT_EQ(demand(set, 20), static_cast<Slot>(3 * k));
    EXPECT_EQ(demand(set, 20) <= 20, k <= 6);
  }
}

}  // namespace
}  // namespace rtether::edf
