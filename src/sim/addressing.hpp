#pragma once

/// @file addressing.hpp
/// Deterministic MAC/IP assignment for the simulated star network. Node k
/// gets a locally administered MAC and a 10.0.0.0/16 address derived from
/// its ID; the switch has fixed well-known addresses. The inverse mapping
/// exists so tests and traffic generators can address nodes directly.

#include <optional>

#include "common/types.hpp"
#include "net/address.hpp"

namespace rtether::sim {

/// MAC of end-node `node`: 02:00:00:00:hh:ll with hh:ll = node ID + 1.
[[nodiscard]] net::MacAddress node_mac(NodeId node);

/// IP of end-node `node`: 10.0.hh.ll with hh:ll = node ID + 1.
[[nodiscard]] net::Ipv4Address node_ip(NodeId node);

/// The switch's MAC (02:00:00:ff:ff:fe) — destination of RequestFrames
/// (Fig 18.3) and source of switch-originated ResponseFrames (Fig 18.4).
[[nodiscard]] net::MacAddress switch_mac();

/// The switch management software's IP (10.1.255.254 — outside the node
/// range 10.0.0.1…10.0.255.255).
[[nodiscard]] net::Ipv4Address switch_ip();

/// Inverse of node_mac; nullopt for the switch MAC or foreign addresses.
[[nodiscard]] std::optional<NodeId> mac_to_node(const net::MacAddress& mac);

/// Inverse of node_ip; nullopt for non-node addresses.
[[nodiscard]] std::optional<NodeId> ip_to_node(const net::Ipv4Address& ip);

}  // namespace rtether::sim
