/// Scaling S4 — resident admission service throughput: the always-on
/// sharded `AdmissionService` vs the single-threaded batched engine on
/// identical mixed admit/release streams.
///
/// Where S2 (bench_admission_parallel) measures one big fork/join batch,
/// this bench measures the *service* shape the paper's switch actually
/// runs: channels are requested and torn down continuously, and the
/// dispatcher/worker pipeline must sustain throughput without batch
/// boundaries. The workload is the same industrial one — machine cells
/// whose traffic stays inside the cell — so the link-conflict graph shards
/// one component per cell; releases target channels admitted well in the
/// past, the steady-state churn of a running plant.
///
/// Gates, both enforced only on full-size runs:
///   * resident ≥ 3× the batched engine at 8 workers (enforced when the
///     host has ≥ 8 hardware threads — a smaller box only reports);
///   * inline mode (workers = 0) ≥ 0.95× batched — the unified front door
///     may not tax callers who don't want threads.
/// Every outcome — accepts, rejects, IDs, releases — is checked against
/// the sequential controller oracle; any divergence exits non-zero.
///
/// Every run also writes `BENCH_service.json` (path overridable) so CI can
/// archive the perf trajectory as a machine-readable artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/admission.hpp"
#include "core/admission_service.hpp"
#include "core/partitioner.hpp"

using namespace rtether;
using namespace rtether::core;

namespace {

constexpr const char* kScheme = "ADPS";

/// Releases only target channels admitted at least this many ops earlier,
/// so steady-state churn does not degenerate into release-hazard stalls
/// (releasing an ID the dispatcher has not yet retired).
constexpr std::size_t kReleaseAge = 2048;

struct ChurnStream {
  std::vector<ChannelOp> ops;
  /// Oracle outcomes, per-kind submission order (the bit-identity target).
  ChurnResult expected;
};

/// Cell-local constrained-deadline churn: ~one release per four ops once
/// enough aged channels exist. Release IDs come from a sequential oracle
/// replay, so the same concrete ops drive every implementation.
ChurnStream make_celled_churn(std::uint64_t seed, std::size_t count,
                              std::uint32_t nodes, std::uint32_t cell_size) {
  Rng rng(seed);
  const std::uint32_t cells = nodes / cell_size;
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  AdmissionController oracle(nodes, make_partitioner(kScheme));
  struct LiveRec {
    ChannelId id;
    std::size_t admitted_at;
  };
  std::vector<LiveRec> live;
  ChurnStream stream;
  stream.ops.reserve(count);
  while (stream.ops.size() < count) {
    // Aged channels sit at the front of `live` (admission order).
    std::size_t aged = 0;
    while (aged < live.size() &&
           live[aged].admitted_at + kReleaseAge < stream.ops.size()) {
      ++aged;
    }
    if (aged > 0 && rng.index(4) == 0) {
      const auto victim = rng.index(aged);
      const ChannelId id = live[victim].id;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      stream.ops.push_back(ChannelOp::release(id));
      stream.expected.releases.push_back(oracle.release(id));
      continue;
    }
    const auto cell = static_cast<std::uint32_t>(rng.index(cells));
    const std::uint32_t base = cell * cell_size;
    const auto src = base + static_cast<std::uint32_t>(rng.index(cell_size));
    auto dst = base + static_cast<std::uint32_t>(rng.index(cell_size));
    if (dst == src) {
      dst = base + (dst - base + 1) % cell_size;
    }
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(4);
    const Slot deadline =
        2 * capacity + rng.index(period / 2 - 2 * capacity + 1);
    const ChannelSpec spec{NodeId{src}, NodeId{dst}, period, capacity,
                           deadline};
    stream.ops.push_back(ChannelOp::admit(spec));
    auto outcome = oracle.request(spec);
    if (outcome.has_value()) {
      live.push_back(LiveRec{outcome->id, stream.ops.size() - 1});
    }
    stream.expected.admissions.push_back(std::move(outcome));
  }
  return stream;
}

bool outcomes_match(const ChurnResult& got, const ChurnResult& want) {
  if (got.admissions.size() != want.admissions.size() ||
      got.releases.size() != want.releases.size()) {
    return false;
  }
  for (std::size_t i = 0; i < want.admissions.size(); ++i) {
    const auto& a = got.admissions[i];
    const auto& b = want.admissions[i];
    if (a.has_value() != b.has_value()) return false;
    if (a.has_value() ? !(*a == *b) : !(a.error() == b.error())) return false;
  }
  for (std::size_t i = 0; i < want.releases.size(); ++i) {
    const auto& a = got.releases[i];
    const auto& b = want.releases[i];
    if (a.has_value() != b.has_value()) return false;
    if (a.has_value() ? !(*a == *b) : !(a.error() == b.error())) return false;
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-N wall time, the benchmarking standard for scheduler noise.
constexpr int kRepetitions = 3;

struct RunResult {
  double seconds{1e300};
  bool identical{true};
};

/// The batched baseline drives the raw `AdmissionEngine`: runs of admits
/// flushed through `admit_batch`, releases one at a time — the fastest
/// single-threaded path the library has, with no service front door.
double time_batched_once(const ChurnStream& stream, std::uint32_t nodes,
                         bool& identical) {
  AdmissionEngine engine(nodes, make_partitioner(kScheme));
  ChurnResult churn;
  churn.admissions.reserve(stream.expected.admissions.size());
  churn.releases.reserve(stream.expected.releases.size());
  std::vector<ChannelRequest> run;
  const auto start = std::chrono::steady_clock::now();
  const auto flush = [&] {
    if (run.empty()) return;
    auto batch = engine.admit_batch(run);
    for (auto& outcome : batch.outcomes) {
      churn.admissions.push_back(std::move(outcome));
    }
    run.clear();
  };
  for (const ChannelOp& op : stream.ops) {
    if (op.kind == ChannelOp::Kind::kAdmit) {
      run.push_back(ChannelRequest{op.spec});
    } else {
      flush();
      churn.releases.push_back(engine.release(op.id));
    }
  }
  flush();
  const double seconds = seconds_since(start);
  identical = identical && outcomes_match(churn, stream.expected);
  return seconds;
}

double time_service_once(const ChurnStream& stream, std::uint32_t nodes,
                         unsigned workers, bool& identical) {
  AdmissionServiceConfig config;
  config.workers = workers;
  AdmissionService service(nodes, make_partitioner(kScheme), config);
  const auto start = std::chrono::steady_clock::now();
  const ChurnResult churn = service.submit(stream.ops);
  const double seconds = seconds_since(start);
  identical = identical && outcomes_match(churn, stream.expected);
  return seconds;
}

RunResult run_service(const ChurnStream& stream, std::uint32_t nodes,
                      unsigned workers) {
  RunResult result;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    result.seconds = std::min(
        result.seconds,
        time_service_once(stream, nodes, workers, result.identical));
  }
  return result;
}

/// Inline mode is the batched algorithm plus the service front door, so its
/// 0.95x gate measures pure call overhead — a few percent of signal against
/// tens of percent of scheduler noise on a busy host. Interleave the
/// timings (baseline, then inline, back to back per repetition) and gate on
/// the best *paired* ratio: a host-wide slowdown hits both sides of a pair,
/// while a genuine front-door regression drags every pair down.
struct PairedInline {
  RunResult batched;
  RunResult service;
  double best_ratio{0.0};
};

constexpr int kPairedRepetitions = 5;

PairedInline run_paired_inline(const ChurnStream& stream,
                               std::uint32_t nodes) {
  PairedInline paired;
  for (int rep = 0; rep < kPairedRepetitions; ++rep) {
    const double batched_seconds =
        time_batched_once(stream, nodes, paired.batched.identical);
    const double service_seconds =
        time_service_once(stream, nodes, 0, paired.service.identical);
    paired.batched.seconds = std::min(paired.batched.seconds, batched_seconds);
    paired.service.seconds = std::min(paired.service.seconds, service_seconds);
    paired.best_ratio =
        std::max(paired.best_ratio, batched_seconds / service_seconds);
  }
  return paired;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t op_count = 24'000;
  unsigned workers = 8;
  std::string json_path = "BENCH_service.json";
  if (argc > 1) {
    op_count = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    workers = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) {
    json_path = argv[3];
  }
  const unsigned hardware = std::thread::hardware_concurrency();

  std::puts("================================================================");
  std::puts("Scaling S4 — resident admission service: dispatcher + shard");
  std::puts("workers vs the single-threaded batched engine, mixed churn");
  std::puts("================================================================");
  std::printf("workers: %u (hardware: %u)\n\n", workers, hardware);

  ConsoleTable table("S4: ops/sec on a " + std::to_string(op_count) +
                     "-op cell-local churn stream");
  table.set_header({"nodes", "cells", "workers", "batched ops/s",
                    "service ops/s", "svc/batch", "identical", "gated"});

  struct Scenario {
    std::uint32_t nodes;
    std::uint32_t cell_size;
    bool gated;
  };
  // Same saturated multi-cell regimes as S2: enough independent components
  // to feed 8 shard workers.
  const Scenario scenarios[] = {
      Scenario{64, 4, true},
      Scenario{256, 8, true},
  };
  // 0 workers = inline mode (the 0.95x front-door gate); the rest shows the
  // scaling curve up to the gated worker count.
  std::vector<unsigned> worker_sweep{0, 2, 4};
  if (workers > 4) worker_sweep.push_back(workers);

  bool all_identical = true;
  double min_gated_speedup = 1e300;
  double min_inline_ratio = 1e300;

  JsonWriter json;
  json.begin_object();
  json.member("bench", "admission_service");
  json.member("op_count", static_cast<std::uint64_t>(op_count));
  json.member("workers", static_cast<std::uint64_t>(workers));
  json.member("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  json.member("repetitions", kRepetitions);
  json.member("paired_repetitions", kPairedRepetitions);
  json.key("scenarios").begin_array();

  for (const Scenario& scenario : scenarios) {
    const auto stream =
        make_celled_churn(7, op_count, scenario.nodes, scenario.cell_size);
    // One paired block measures the batched baseline and inline mode in
    // interleaved repetitions; the resident worker configs reuse the
    // baseline's best-of time for their speedup denominators.
    const PairedInline paired = run_paired_inline(stream, scenario.nodes);
    const RunResult& batched = paired.batched;
    all_identical = all_identical && batched.identical;

    const double n = static_cast<double>(stream.ops.size());
    const double batch_rate = n / batched.seconds;

    json.begin_object();
    json.member("nodes", static_cast<std::uint64_t>(scenario.nodes));
    json.member("cell_size", static_cast<std::uint64_t>(scenario.cell_size));
    json.member("scheme", kScheme);
    json.member("ops", static_cast<std::uint64_t>(stream.ops.size()));
    json.member("admits",
                static_cast<std::uint64_t>(stream.expected.admissions.size()));
    json.member("releases",
                static_cast<std::uint64_t>(stream.expected.releases.size()));
    json.member("batched_ops_per_sec", batch_rate);
    json.member("batched_outcomes_identical", batched.identical);
    json.key("service").begin_array();

    for (const unsigned w : worker_sweep) {
      const RunResult service =
          w == 0 ? paired.service : run_service(stream, scenario.nodes, w);
      all_identical = all_identical && service.identical;
      const double rate = n / service.seconds;
      // Inline rows report the best paired ratio (what the 0.95x gate
      // checks); resident rows compare best-of times.
      const double speedup =
          w == 0 ? paired.best_ratio : batched.seconds / service.seconds;
      const bool gated = scenario.gated && w == workers && w >= 8;
      if (gated) {
        min_gated_speedup = std::min(min_gated_speedup, speedup);
      }
      if (w == 0) {
        min_inline_ratio = std::min(min_inline_ratio, speedup);
      }
      table.add(scenario.nodes, scenario.nodes / scenario.cell_size, w,
                batch_rate, rate, speedup, service.identical ? "yes" : "NO",
                gated ? "yes" : w == 0 ? "inline" : "no");

      json.begin_object();
      json.member("workers", static_cast<std::uint64_t>(w));
      json.member("ops_per_sec", rate);
      json.member("speedup_vs_batched", speedup);
      json.member("outcomes_identical", service.identical);
      json.member("gated", gated);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  table.print();

  const bool full_run = op_count >= 24'000;
  const bool gated_ran = min_gated_speedup < 1e299;
  const bool gate_enforced =
      full_run && hardware >= 8 && workers >= 8 && gated_ran;
  const bool inline_gate_enforced = full_run;
  json.member("min_gated_service_speedup", gated_ran ? min_gated_speedup : 0.0);
  json.member("gate_threshold", 3.0);
  json.member("gate_enforced", gate_enforced);
  json.member("min_inline_ratio", min_inline_ratio);
  json.member("inline_gate_threshold", 0.95);
  json.member("inline_gate_enforced", inline_gate_enforced);
  json.member("all_outcomes_identical", all_identical);
  json.end_object();

  std::printf("outcomes identical across all paths and scenarios: %s\n",
              all_identical ? "yes" : "NO");
  if (gated_ran) {
    std::printf("min gated service speedup vs batched: %.2fx (target >= 3x,"
                " %s)\n",
                min_gated_speedup,
                gate_enforced ? "enforced"
                              : "reported only: needs a full-size run, >= 8"
                                " workers and >= 8 hardware threads");
  } else {
    std::puts("min gated service speedup vs batched: n/a (no gated worker"
              " configuration ran)");
  }
  std::printf("min inline-mode paired ratio vs batched: %.2fx (target >="
              " 0.95x, %s)\n",
              min_inline_ratio,
              inline_gate_enforced ? "enforced"
                                   : "reported only on reduced runs");
  std::puts("reading: the resident pipeline decides feasibility on shard");
  std::puts("workers against component-local state and retires decisions in");
  std::puts("dispatch order, so continuous churn scales like S2's batches");
  std::puts("while keeping outcomes bit-identical to the sequential");
  std::puts("controller.\n");

  if (!json.write_file(json_path)) {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // Non-zero exit on outcome divergence or a missed throughput target so CI
  // can gate on this bench directly.
  if (!all_identical) return 1;
  if (gate_enforced && min_gated_speedup < 3.0) return 2;
  if (inline_gate_enforced && min_inline_ratio < 0.95) return 2;
  return 0;
}
