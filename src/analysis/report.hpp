#pragma once

/// @file report.hpp
/// Shared rendering for experiment results: every bench prints the same
/// table + ASCII figure + optional CSV, so bench_output.txt reads like the
/// paper's evaluation section.

#include <ostream>
#include <string>
#include <vector>

#include "analysis/acceptance.hpp"
#include "analysis/validation.hpp"

namespace rtether::analysis {

/// Prints a side-by-side table of acceptance curves (one column per scheme)
/// followed by an ASCII rendition of the figure.
void print_acceptance_report(const std::string& title,
                             const std::vector<AcceptanceCurve>& curves);

/// Writes the curves as CSV: requested,<scheme1>,<scheme2>,...
void write_acceptance_csv(std::ostream& out,
                          const std::vector<AcceptanceCurve>& curves);

/// Prints the per-channel guarantee-validation table and a verdict line.
void print_validation_report(const std::string& title,
                             const ValidationResult& result,
                             std::size_t max_channel_rows = 12);

}  // namespace rtether::analysis
