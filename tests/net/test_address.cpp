#include "net/address.hpp"

#include <gtest/gtest.h>

namespace rtether::net {
namespace {

TEST(MacAddress, RoundTripU48) {
  const auto mac = MacAddress::from_u48(0x0200'1234'5678ULL);
  EXPECT_EQ(mac.to_u48(), 0x0200'1234'5678ULL);
}

TEST(MacAddress, Formatting) {
  const auto mac = MacAddress::from_u48(0x0200'00ab'cdefULL);
  EXPECT_EQ(mac.to_string(), "02:00:00:ab:cd:ef");
}

TEST(MacAddress, ParseValid) {
  const auto mac = MacAddress::parse("02:00:00:AB:cd:Ef");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_u48(), 0x0200'00ab'cdefULL);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:ab:cd").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:ab:cd:e").has_value());
  EXPECT_FALSE(MacAddress::parse("02-00-00-ab-cd-ef").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:ab:cd:gg").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:ab:cd:ef:00").has_value());
}

TEST(MacAddress, ParseFormatsBackIdentically) {
  const char* text = "aa:bb:cc:dd:ee:ff";
  EXPECT_EQ(MacAddress::parse(text)->to_string(), text);
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(broadcast_mac().is_broadcast());
  EXPECT_FALSE(MacAddress::from_u48(1).is_broadcast());
  EXPECT_EQ(broadcast_mac().to_string(), "ff:ff:ff:ff:ff:ff");
}

TEST(MacAddress, Ordering) {
  EXPECT_LT(MacAddress::from_u48(1), MacAddress::from_u48(2));
  EXPECT_EQ(MacAddress::from_u48(7), MacAddress::from_u48(7));
}

TEST(MacAddress, HashUsableInMaps) {
  std::hash<MacAddress> h;
  EXPECT_EQ(h(MacAddress::from_u48(42)), h(MacAddress::from_u48(42)));
}

TEST(Ipv4Address, OctetConstructorAndValue) {
  const Ipv4Address ip(10, 0, 1, 2);
  EXPECT_EQ(ip.value(), 0x0a000102u);
  EXPECT_EQ(ip.to_string(), "10.0.1.2");
}

TEST(Ipv4Address, ParseValid) {
  const auto ip = Ipv4Address::parse("192.168.0.254");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, Ipv4Address(192, 168, 0, 254));
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_TRUE(Ipv4Address::parse("0.0.0.0").has_value());
  EXPECT_TRUE(Ipv4Address::parse("255.255.255.255").has_value());
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1234.0.0.1").has_value());
}

TEST(Ipv4Address, RoundTrip) {
  const Ipv4Address ip(172, 16, 254, 1);
  EXPECT_EQ(Ipv4Address::parse(ip.to_string()), ip);
}

}  // namespace
}  // namespace rtether::net
