/// Decision-identity proof for `ParallelAdmissionEngine`: on randomized
/// request streams — cell-local (many shards), uniform (one component →
/// sequential fallback), and churn streams with interleaved release and
/// re-admission — the sharded engine must produce *exactly* what the
/// reference `AdmissionController` and the batched `AdmissionEngine`
/// produce: the same accepts and rejects, the same channel IDs, the same
/// deadline partitions, the same rejection reasons and diagnostic strings,
/// and the same aggregate stats. The suite runs under ThreadSanitizer in CI,
/// so it doubles as the data-race regression net for the thread pool and
/// the shard workers.

#include "core/parallel_admission.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

ChannelSpec random_spec(Rng& rng, std::uint32_t src, std::uint32_t dst) {
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  const Slot period = kPeriods[rng.index(std::size(kPeriods))];
  const Slot capacity = 1 + rng.index(4);
  // Mostly valid constrained deadlines; ~1/16 structurally invalid.
  Slot deadline;
  if (rng.index(16) == 0) {
    deadline = rng.index(2 * capacity);  // violates d ≥ 2C
  } else {
    deadline = 2 * capacity + rng.index(period - 2 * capacity + 1);
  }
  return spec(src, dst, period, capacity, deadline);
}

/// Uniform all-to-all traffic: the link-conflict graph almost surely
/// collapses into one component, exercising the sequential fallback.
std::vector<ChannelRequest> uniform_stream(std::uint64_t seed,
                                           std::size_t count,
                                           std::uint32_t nodes) {
  Rng rng(seed);
  std::vector<ChannelRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.index(nodes));
    auto dst = static_cast<std::uint32_t>(rng.index(nodes));
    if (dst == src) {
      dst = (dst + 1) % nodes;
    }
    requests.push_back(ChannelRequest{random_spec(rng, src, dst)});
  }
  return requests;
}

/// Cell-local traffic (the industrial topology: machine cells talk within
/// themselves): source and destination share a cell of `cell_size` nodes,
/// so the conflict graph has one component per cell and the batch shards.
std::vector<ChannelRequest> celled_stream(std::uint64_t seed,
                                          std::size_t count,
                                          std::uint32_t nodes,
                                          std::uint32_t cell_size) {
  Rng rng(seed);
  const std::uint32_t cells = nodes / cell_size;
  std::vector<ChannelRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cell = static_cast<std::uint32_t>(rng.index(cells));
    const std::uint32_t base = cell * cell_size;
    const auto src = base + static_cast<std::uint32_t>(rng.index(cell_size));
    auto dst = base + static_cast<std::uint32_t>(rng.index(cell_size));
    if (dst == src) {
      dst = base + (dst - base + 1) % cell_size;
    }
    requests.push_back(ChannelRequest{random_spec(rng, src, dst)});
  }
  return requests;
}

ParallelAdmissionEngine make_parallel(std::uint32_t nodes,
                                      const std::string& scheme,
                                      unsigned threads,
                                      std::size_t min_parallel_batch = 1) {
  ParallelAdmissionConfig config;
  config.threads = threads;
  config.min_parallel_batch = min_parallel_batch;
  return ParallelAdmissionEngine(nodes, make_partitioner(scheme), config);
}

/// Drives the same stream through all three paths and requires identical
/// outcomes everywhere. Returns the parallel engine's shard count so tests
/// can additionally assert the path taken.
std::size_t expect_triple_identity(const std::vector<ChannelRequest>& requests,
                                   std::uint32_t nodes,
                                   const std::string& scheme,
                                   unsigned threads) {
  AdmissionController controller(nodes, make_partitioner(scheme));
  AdmissionEngine engine(nodes, make_partitioner(scheme));
  ParallelAdmissionEngine parallel = make_parallel(nodes, scheme, threads);

  const auto batched = engine.admit_batch(requests);
  const auto sharded = parallel.admit_batch(requests);
  EXPECT_EQ(batched.outcomes.size(), requests.size());
  EXPECT_EQ(sharded.outcomes.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto expected = controller.request(requests[i].spec);
    const auto& from_engine = batched.outcomes[i];
    const auto& from_parallel = sharded.outcomes[i];
    EXPECT_EQ(expected.has_value(), from_parallel.has_value())
        << "request " << i << " (" << requests[i].spec.to_string()
        << "): sequential and parallel disagree";
    EXPECT_EQ(from_engine.has_value(), from_parallel.has_value())
        << "request " << i << ": batched and parallel disagree";
    if (!expected.has_value() || !from_parallel.has_value()) {
      if (!expected.has_value() && !from_parallel.has_value()) {
        EXPECT_EQ(expected.error().reason, from_parallel.error().reason)
            << "request " << i;
        EXPECT_EQ(expected.error().detail, from_parallel.error().detail)
            << "request " << i;
      }
      continue;
    }
    EXPECT_EQ(expected->id, from_parallel->id) << "request " << i;
    EXPECT_EQ(expected->partition, from_parallel->partition)
        << "request " << i;
    EXPECT_EQ(from_engine->id, from_parallel->id) << "request " << i;
  }

  EXPECT_EQ(parallel.state().channel_count(),
            controller.state().channel_count());
  EXPECT_EQ(parallel.stats().requested, controller.stats().requested);
  EXPECT_EQ(parallel.stats().accepted, controller.stats().accepted);
  EXPECT_EQ(parallel.stats().rejected, controller.stats().rejected);
  // The two cached pipelines must also agree on the amount of analysis
  // work — the shard workers run the identical trials.
  EXPECT_EQ(parallel.stats().feasibility_tests,
            engine.stats().feasibility_tests);
  EXPECT_EQ(parallel.stats().demand_evaluations,
            engine.stats().demand_evaluations);
  return parallel.last_shard_count();
}

TEST(AdmissionParallel, CellLocalTrafficShardsAndMatches) {
  const auto requests = celled_stream(11, 600, 16, 4);
  const std::size_t shards = expect_triple_identity(requests, 16, "ADPS", 4);
  EXPECT_GT(shards, 1u) << "cell-local traffic should produce many shards";
}

TEST(AdmissionParallel, SaturatedCellsMatch) {
  // Few nodes per cell + many requests → links saturate; most of the
  // stream exercises the rejection paths and their diagnostic strings.
  const auto requests = celled_stream(12, 900, 12, 3);
  const std::size_t shards = expect_triple_identity(requests, 12, "ADPS", 4);
  EXPECT_GT(shards, 1u);
}

TEST(AdmissionParallel, SdpsMatches) {
  const auto requests = celled_stream(13, 500, 16, 4);
  expect_triple_identity(requests, 16, "SDPS", 3);
}

TEST(AdmissionParallel, SearchPartitionerMatches) {
  // Search proposes many candidates per request — stresses repeated const
  // trials and the placeholder reuse across candidates.
  const auto requests = celled_stream(14, 160, 8, 4);
  expect_triple_identity(requests, 8, "Search", 2);
}

TEST(AdmissionParallel, UniformTrafficFallsBackAndMatches) {
  const auto requests = uniform_stream(15, 400, 8);
  const std::size_t shards = expect_triple_identity(requests, 8, "ADPS", 4);
  EXPECT_EQ(shards, 1u)
      << "all-to-all traffic should collapse to one component";
}

TEST(AdmissionParallel, ManyThreadsFewShards) {
  const auto requests = celled_stream(16, 300, 8, 4);
  expect_triple_identity(requests, 8, "ADPS", 8);
}

TEST(AdmissionParallel, SingleWorkerThreadMatches) {
  const auto requests = celled_stream(17, 300, 16, 4);
  expect_triple_identity(requests, 16, "ADPS", 1);
}

TEST(AdmissionParallel, MatchesAcrossSeeds) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    expect_triple_identity(celled_stream(seed, 250, 20, 5), 20, "ADPS", 4);
  }
}

TEST(AdmissionParallel, UdpsMatchesBatchedEngine) {
  // UDPS weighs by floating-point utilization; the controller's tentative
  // add/remove churn makes controller-vs-cached comparisons inexact by
  // design (see AdmissionEngine's caveat), so compare the two cached
  // pipelines, which must agree bit-for-bit.
  const auto requests = celled_stream(18, 400, 16, 4);
  AdmissionEngine engine(16, make_partitioner("UDPS"));
  ParallelAdmissionEngine parallel = make_parallel(16, "UDPS", 4);
  const auto batched = engine.admit_batch(requests);
  const auto sharded = parallel.admit_batch(requests);
  ASSERT_EQ(batched.outcomes.size(), sharded.outcomes.size());
  for (std::size_t i = 0; i < batched.outcomes.size(); ++i) {
    ASSERT_EQ(batched.outcomes[i].has_value(),
              sharded.outcomes[i].has_value())
        << "request " << i;
    if (batched.outcomes[i].has_value()) {
      EXPECT_EQ(batched.outcomes[i]->id, sharded.outcomes[i]->id);
      EXPECT_EQ(batched.outcomes[i]->partition,
                sharded.outcomes[i]->partition);
    } else {
      EXPECT_EQ(batched.outcomes[i].error().detail,
                sharded.outcomes[i].error().detail);
    }
  }
}

TEST(AdmissionParallel, ReleaseThenReadmitStaysIdentical) {
  const auto first = celled_stream(21, 400, 16, 4);
  const auto second = celled_stream(22, 400, 16, 4);

  AdmissionController controller(16, make_partitioner("ADPS"));
  ParallelAdmissionEngine parallel = make_parallel(16, "ADPS", 4);

  std::vector<ChannelId> admitted;
  const auto batch1 = parallel.admit_batch(first);
  for (std::size_t i = 0; i < first.size(); ++i) {
    const auto expected = controller.request(first[i].spec);
    ASSERT_EQ(expected.has_value(), batch1.outcomes[i].has_value());
    if (expected.has_value()) {
      admitted.push_back(expected->id);
    }
  }

  // Tear down every other admitted channel on both sides; freed IDs must be
  // re-assigned identically by the parallel merge phase.
  for (std::size_t i = 0; i < admitted.size(); i += 2) {
    EXPECT_TRUE(controller.release(admitted[i]));
    EXPECT_TRUE(parallel.release(admitted[i]));
  }
  EXPECT_EQ(parallel.stats().released, controller.stats().released);

  const auto batch2 = parallel.admit_batch(second);
  for (std::size_t i = 0; i < second.size(); ++i) {
    const auto expected = controller.request(second[i].spec);
    ASSERT_EQ(expected.has_value(), batch2.outcomes[i].has_value())
        << "post-release request " << i;
    if (expected.has_value()) {
      EXPECT_EQ(expected->id, batch2.outcomes[i]->id) << "request " << i;
      EXPECT_EQ(expected->partition, batch2.outcomes[i]->partition);
    } else {
      EXPECT_EQ(expected.error().detail, batch2.outcomes[i].error().detail);
    }
  }
}

TEST(AdmissionParallel, ChurnStreamMatchesSequentialReplay) {
  // Build a mixed admit/release op stream. Release targets must be known up
  // front, so a scout run learns which IDs the deterministic stream admits;
  // identity between paths guarantees those IDs are valid for both replays.
  const std::uint32_t nodes = 16;
  const auto warmup = celled_stream(31, 300, nodes, 4);
  std::vector<ChannelId> ids;
  {
    AdmissionController scout(nodes, make_partitioner("ADPS"));
    for (const auto& request : warmup) {
      if (const auto outcome = scout.request(request.spec)) {
        ids.push_back(outcome->id);
      }
    }
  }
  ASSERT_GT(ids.size(), 20u);

  Rng rng(32);
  std::vector<ChannelOp> ops;
  for (const auto& request : warmup) {
    ops.push_back(ChannelOp::admit(request.spec));
  }
  const auto readmit = celled_stream(33, 300, nodes, 4);
  std::size_t next_release = 0;
  for (const auto& request : readmit) {
    // ~1 release per 6 admissions, interleaved mid-stream.
    if (next_release < ids.size() && rng.index(6) == 0) {
      ops.push_back(ChannelOp::release(ids[next_release++]));
    }
    ops.push_back(ChannelOp::admit(request.spec));
  }
  ASSERT_GT(next_release, 5u);

  AdmissionController controller(nodes, make_partitioner("ADPS"));
  ParallelAdmissionEngine parallel = make_parallel(nodes, "ADPS", 4);
  const ChurnResult churn = parallel.process(ops);

  std::size_t admit_index = 0;
  std::size_t release_index = 0;
  for (const auto& op : ops) {
    if (op.kind == ChannelOp::Kind::kAdmit) {
      const auto expected = controller.request(op.spec);
      ASSERT_LT(admit_index, churn.admissions.size());
      const auto& actual = churn.admissions[admit_index++];
      ASSERT_EQ(expected.has_value(), actual.has_value())
          << "admit op " << admit_index - 1;
      if (expected.has_value()) {
        EXPECT_EQ(expected->id, actual->id);
        EXPECT_EQ(expected->partition, actual->partition);
      } else {
        EXPECT_EQ(expected.error().reason, actual.error().reason);
        EXPECT_EQ(expected.error().detail, actual.error().detail);
      }
    } else {
      const ReleaseOutcome expected = controller.release(op.id);
      ASSERT_LT(release_index, churn.releases.size());
      const ReleaseOutcome& actual = churn.releases[release_index++];
      ASSERT_EQ(expected.has_value(), actual.has_value());
      if (expected.has_value()) {
        EXPECT_EQ(*expected, *actual);
      } else {
        EXPECT_EQ(expected.error().reason, actual.error().reason);
        EXPECT_EQ(expected.error().detail, actual.error().detail);
      }
    }
  }
  EXPECT_EQ(admit_index, churn.admissions.size());
  EXPECT_EQ(release_index, churn.releases.size());
  EXPECT_EQ(churn.accepted() + churn.rejected(), churn.admissions.size());

  EXPECT_EQ(parallel.state().channel_count(),
            controller.state().channel_count());
  EXPECT_EQ(parallel.stats().accepted, controller.stats().accepted);
  EXPECT_EQ(parallel.stats().rejected, controller.stats().rejected);
  EXPECT_EQ(parallel.stats().released, controller.stats().released);
}

TEST(AdmissionParallel, SmallBatchTakesSequentialPath) {
  ParallelAdmissionEngine parallel = make_parallel(8, "ADPS", 4,
                                                   /*min_parallel_batch=*/64);
  const auto requests = celled_stream(51, 20, 8, 4);
  const auto batch = parallel.admit_batch(requests);
  EXPECT_EQ(batch.outcomes.size(), requests.size());
  EXPECT_EQ(parallel.last_shard_count(), 1u);
}

TEST(AdmissionParallel, NonCheckpointScanFallsBackAndMatches) {
  ParallelAdmissionConfig config;
  config.threads = 4;
  config.min_parallel_batch = 1;
  config.admission.scan = edf::DemandScan::kEverySlot;
  AdmissionConfig seq_config;
  seq_config.scan = edf::DemandScan::kEverySlot;
  AdmissionController controller(8, make_partitioner("SDPS"), seq_config);
  ParallelAdmissionEngine parallel(8, make_partitioner("SDPS"), config);
  const auto requests = celled_stream(52, 80, 8, 4);
  const auto batch = parallel.admit_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto expected = controller.request(requests[i].spec);
    ASSERT_EQ(expected.has_value(), batch.outcomes[i].has_value());
  }
  EXPECT_EQ(parallel.last_shard_count(), 1u);
}

TEST(AdmissionParallel, EmptyBatch) {
  ParallelAdmissionEngine parallel = make_parallel(4, "SDPS", 2);
  const auto result = parallel.admit_batch({});
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_EQ(parallel.last_shard_count(), 0u);
}

TEST(AdmissionParallel, SingleAdmitSharesState) {
  ParallelAdmissionEngine parallel = make_parallel(4, "SDPS", 2);
  AdmissionController controller(4, make_partitioner("SDPS"));
  const auto requests = celled_stream(53, 120, 4, 2);
  for (const auto& request : requests) {
    const auto expected = controller.request(request.spec);
    const auto actual = parallel.admit(request.spec);
    ASSERT_EQ(expected.has_value(), actual.has_value());
    if (expected.has_value()) {
      EXPECT_EQ(expected->id, actual->id);
    }
  }
}

TEST(AdmissionParallel, InvalidAndUnknownRequestsRejectIdentically) {
  ParallelAdmissionEngine parallel = make_parallel(4, "SDPS", 2);
  AdmissionController controller(4, make_partitioner("SDPS"));
  std::vector<ChannelRequest> requests;
  // A parallel-eligible core plus deliberately bad specs mixed in.
  for (std::uint32_t i = 0; i < 40; ++i) {
    requests.push_back(ChannelRequest{spec(i % 2, (i % 2) ^ 1, 100, 2, 30)});
    requests.push_back(ChannelRequest{spec(2 + i % 2, 3 - i % 2, 80, 2, 25)});
  }
  requests.push_back(ChannelRequest{spec(0, 1, 100, 3, 5)});    // d < 2C
  requests.push_back(ChannelRequest{spec(0, 9, 100, 3, 40)});   // bad node
  requests.push_back(ChannelRequest{spec(7, 1, 100, 3, 40)});   // bad node
  requests.push_back(ChannelRequest{spec(0, 1, 0, 0, 0)});      // degenerate
  const auto batch = parallel.admit_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto expected = controller.request(requests[i].spec);
    ASSERT_EQ(expected.has_value(), batch.outcomes[i].has_value())
        << "request " << i;
    if (!expected.has_value()) {
      EXPECT_EQ(expected.error().reason, batch.outcomes[i].error().reason);
      EXPECT_EQ(expected.error().detail, batch.outcomes[i].error().detail);
    }
  }
}

TEST(AdmissionParallel, ExhaustionAfterChurnLeaksNoIds) {
  // Placeholder channel IDs are drawn from the allocator's free pool for
  // every sharded batch; they must be returned on every exit path (rejected
  // shards, sequential fallback, merge) or the allocator would drift from
  // the channel registry and exhaust early under churn. Implicit deadlines
  // (d == P) with tiny utilization keep every admit on the Liu & Layland
  // fast path, so driving the full 16-bit ID space stays cheap.
  const std::uint32_t nodes = 64;
  ParallelAdmissionEngine parallel = make_parallel(nodes, "SDPS", 2, 2);
  auto cheap_spec = [&](std::uint32_t i) {
    const std::uint32_t cell = i % (nodes / 2);
    return spec(cell * 2, cell * 2 + 1, 1'000'000'000, 1, 1'000'000'000);
  };

  // Churn rounds: sharded batches interleaved with releases; after every
  // round the allocator's live count must equal the registry exactly.
  std::vector<ChannelId> live;
  std::uint32_t salt = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<ChannelRequest> batch;
    for (std::uint32_t i = 0; i < 200; ++i) {
      batch.push_back(ChannelRequest{cheap_spec(salt++)});
    }
    const auto result = parallel.admit_batch(batch);
    for (const auto& outcome : result.outcomes) {
      ASSERT_TRUE(outcome.has_value());
      live.push_back(outcome->id);
    }
    for (int k = 0; k < 100 && !live.empty(); ++k) {
      ASSERT_TRUE(parallel.release(live.back()));
      live.pop_back();
    }
    ASSERT_EQ(parallel.state().channel_count(), live.size());
  }

  // Drive the allocator to genuine exhaustion: every remaining ID must
  // still be allocatable (none leaked by the churn above) and the overflow
  // request must reject with kChannelIdsExhausted, matching the registry.
  while (live.size() < ChannelIdAllocator::kCapacity) {
    const std::size_t want = std::min<std::size_t>(
        4096, ChannelIdAllocator::kCapacity - live.size());
    std::vector<ChannelRequest> batch;
    for (std::size_t i = 0; i < want; ++i) {
      batch.push_back(ChannelRequest{cheap_spec(salt++)});
    }
    const auto result = parallel.admit_batch(batch);
    for (const auto& outcome : result.outcomes) {
      ASSERT_TRUE(outcome.has_value()) << "ID leaked: allocator exhausted at "
                                       << live.size() << " live channels";
      live.push_back(outcome->id);
    }
  }
  ASSERT_EQ(live.size(), ChannelIdAllocator::kCapacity);
  const auto overflow = parallel.admit(cheap_spec(salt++));
  ASSERT_FALSE(overflow.has_value());
  EXPECT_EQ(overflow.error().reason, RejectReason::kChannelIdsExhausted);

  // Full drain: every ID comes back.
  for (const ChannelId id : live) {
    ASSERT_TRUE(parallel.release(id));
  }
  EXPECT_EQ(parallel.state().channel_count(), 0u);
  const auto after_drain = parallel.admit(cheap_spec(salt++));
  ASSERT_TRUE(after_drain.has_value());
  EXPECT_EQ(after_drain->id, ChannelId{1});  // smallest-free allocation again
}

}  // namespace
}  // namespace rtether::core
