#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace rtether {

void ConsoleTable::set_header(std::vector<std::string> header) {
  RTETHER_ASSERT_MSG(rows_.empty(), "header must precede rows");
  header_ = std::move(header);
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  RTETHER_ASSERT_MSG(header_.empty() || row.size() == header_.size(),
                     "row arity differs from header");
  rows_.push_back(std::move(row));
}

std::string ConsoleTable::format_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    widths.resize(std::max(widths.size(), row.size()), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (const auto w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    out << "\n";
  };

  out << "== " << title_ << " ==\n";
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_rule();
  return out.str();
}

void ConsoleTable::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace rtether
