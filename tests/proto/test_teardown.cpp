#include <gtest/gtest.h>

#include <memory>

#include "core/partitioner.hpp"
#include "net/ethernet.hpp"
#include "net/mgmt_frames.hpp"
#include "proto/stack.hpp"
#include "sim/addressing.hpp"

namespace rtether::proto {
namespace {

sim::SimConfig test_config() {
  return sim::SimConfig{.ticks_per_slot = 100,
                        .propagation_ticks = 1,
                        .switch_processing_ticks = 1};
}

/// Injects a raw management payload into the network as if `from` sent it
/// to the switch (the transport duplicated/delayed frames take).
void inject_mgmt(sim::SimNetwork& network, NodeId from,
                 std::vector<std::uint8_t> payload) {
  net::EthernetHeader ethernet;
  ethernet.destination = sim::switch_mac();
  ethernet.source = sim::node_mac(from);
  ethernet.ether_type = net::EtherType::kRtManagement;
  ByteWriter writer;
  ethernet.serialize(writer);
  writer.write_bytes(payload);
  auto frame =
      sim::SimFrame::make(network.next_frame_id(), std::move(writer).take(),
                          0, network.now(), from);
  network.node(from).send_best_effort(std::move(frame));
}

void inject_teardown(sim::SimNetwork& network, NodeId from, ChannelId id) {
  net::TeardownFrame teardown;
  teardown.rt_channel = id;
  teardown.is_ack = false;
  inject_mgmt(network, from, teardown.serialize());
}

TEST(Teardown, ReleasesSwitchState) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  ASSERT_EQ(stack.management().admission().state().channel_count(), 1u);

  stack.teardown(*channel);
  EXPECT_EQ(stack.management().admission().state().channel_count(), 0u);
  EXPECT_EQ(stack.management().stats().teardowns, 1u);
  EXPECT_TRUE(stack.layer(NodeId{0}).tx_channels().empty());
}

TEST(Teardown, DestinationIsNotified) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  ASSERT_EQ(stack.layer(NodeId{1}).rx_channels().size(), 1u);
  stack.teardown(*channel);
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_TRUE(stack.layer(NodeId{1}).rx_channels().empty());
}

TEST(Teardown, FreedCapacityIsReusable) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  // Saturate the uplink (SDPS limit 6 at the paper's operating point).
  std::vector<EstablishedChannel> channels;
  for (int i = 0; i < 6; ++i) {
    channels.push_back(*stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40));
  }
  ASSERT_FALSE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40).has_value());

  stack.teardown(channels.front());
  EXPECT_TRUE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40).has_value());
}

TEST(Teardown, DuplicateTeardownIsHarmless) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  stack.teardown(*channel);
  // Second teardown frame for a dead channel: ignored by the switch.
  net::TeardownFrame dup;
  dup.rt_channel = channel->id;
  // Re-establishing works and may legitimately reuse the freed ID.
  const auto fresh = stack.establish(NodeId{2}, NodeId{3}, 100, 3, 40);
  EXPECT_TRUE(fresh.has_value());
  EXPECT_EQ(stack.management().stats().teardowns, 1u);
}

TEST(Teardown, RedeliveredTeardownIsIdempotentAndReAcked) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  stack.teardown(*channel);
  ASSERT_EQ(stack.management().stats().teardowns, 1u);

  // The transport re-delivers the same TeardownFrame (its first ack may
  // have been lost). The switch must not double-release, must not notify
  // the destination again, and must re-ack so the initiator converges.
  inject_teardown(stack.network(), NodeId{0}, channel->id);
  inject_teardown(stack.network(), NodeId{0}, channel->id);
  EXPECT_TRUE(stack.network().simulator().run_all());

  EXPECT_EQ(stack.management().stats().teardowns, 1u);
  EXPECT_EQ(stack.management().stats().duplicate_teardowns_ignored, 2u);
  EXPECT_EQ(stack.management().admission().state().channel_count(), 0u);
  EXPECT_EQ(stack.management().admission().stats().released, 1u);
}

TEST(Teardown, StrayTeardownFromNonSourceIsIgnored) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());

  // A teardown for a live channel arriving from a node that is not its
  // source — a corrupted ID, or a late duplicate whose ID was recycled to
  // another pair's channel — must not release it.
  inject_teardown(stack.network(), NodeId{2}, channel->id);
  inject_teardown(stack.network(), NodeId{1}, channel->id);  // destination
  EXPECT_TRUE(stack.network().simulator().run_all());

  EXPECT_EQ(stack.management().stats().teardowns, 0u);
  EXPECT_EQ(stack.management().stats().stray_teardowns_ignored, 2u);
  EXPECT_EQ(stack.management().admission().state().channel_count(), 1u);
  EXPECT_EQ(stack.layer(NodeId{1}).rx_channels().size(), 1u);
}

TEST(Teardown, TeardownWhileAwaitingDestinationVerdict) {
  // Node 1 has no RT layer: the forwarded request falls into the void, so
  // the admitted channel stays in the switch's awaiting-destination state.
  sim::SimNetwork network(test_config(), 4);
  SwitchMgmt management(network,
                        std::make_unique<core::SymmetricPartitioner>());
  RtLayerConfig layer_config;
  layer_config.request_timeout_slots = 50;
  layer_config.request_attempts = 1;
  NodeRtLayer source(network, NodeId{0}, layer_config);

  bool done = false;
  source.request_channel(NodeId{1}, 100, 3, 40,
                         [&](const SetupOutcome& outcome) {
                           done = true;
                           EXPECT_FALSE(outcome.accepted);
                         });
  EXPECT_TRUE(network.simulator().run_all());
  ASSERT_EQ(management.admission().state().channel_count(), 1u);
  const ChannelId assigned{1};  // smallest free ID

  // Teardown for the half-established channel (the application gave up).
  inject_teardown(network, NodeId{0}, assigned);
  EXPECT_TRUE(network.simulator().run_all());
  EXPECT_EQ(management.stats().teardowns, 1u);
  EXPECT_EQ(management.admission().state().channel_count(), 0u);

  // A late destination verdict for the torn-down channel must be ignored —
  // it must neither resurrect the channel nor trip the switch's "approved
  // channel missing from admission state" invariant.
  net::ResponseFrame response;
  response.connection_request = ConnectionRequestId(1);
  response.rt_channel = assigned;
  response.accepted = true;
  inject_mgmt(network, NodeId{1}, response.serialize());
  EXPECT_TRUE(network.simulator().run_all());
  EXPECT_EQ(management.admission().state().channel_count(), 0u);
  EXPECT_TRUE(done);
}

TEST(Teardown, RequestIdReuseAfterDestinationDeclineRunsAdmissionAgain) {
  // Same dedup-staleness hazard as the teardown path, on the rollback
  // path: a destination-declined channel leaves the admission state, so a
  // recycled 8-bit connection-request ID must be a fresh request, not a
  // silently-ignored "duplicate".
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  stack.layer(NodeId{1}).set_accept_policy(
      [](const net::RequestFrame&) { return false; });

  net::RequestFrame request;
  request.connection_request = ConnectionRequestId(9);
  request.rt_channel = ChannelId(0);
  request.source_mac = sim::node_mac(NodeId{0});
  request.destination_mac = sim::node_mac(NodeId{1});
  request.source_ip = sim::node_ip(NodeId{0});
  request.destination_ip = sim::node_ip(NodeId{1});
  request.period = 100;
  request.capacity = 3;
  request.deadline = 40;

  inject_mgmt(stack.network(), NodeId{0}, request.serialize());
  EXPECT_TRUE(stack.network().simulator().run_all());
  ASSERT_EQ(stack.management().stats().requests_rejected_by_destination, 1u);
  ASSERT_EQ(stack.management().admission().state().channel_count(), 0u);

  stack.layer(NodeId{1}).set_accept_policy(nullptr);
  inject_mgmt(stack.network(), NodeId{0}, request.serialize());
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_EQ(stack.management().stats().duplicate_requests_ignored, 0u);
  EXPECT_EQ(stack.management().stats().requests_admitted, 2u);
  EXPECT_EQ(stack.management().admission().state().channel_count(), 1u);
}

TEST(Teardown, RequestIdReuseAfterTeardownRunsAdmissionAgain) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());

  net::RequestFrame request;
  request.connection_request = ConnectionRequestId(9);
  request.rt_channel = ChannelId(0);
  request.source_mac = sim::node_mac(NodeId{0});
  request.destination_mac = sim::node_mac(NodeId{1});
  request.source_ip = sim::node_ip(NodeId{0});
  request.destination_ip = sim::node_ip(NodeId{1});
  request.period = 100;
  request.capacity = 3;
  request.deadline = 40;

  inject_mgmt(stack.network(), NodeId{0}, request.serialize());
  EXPECT_TRUE(stack.network().simulator().run_all());
  ASSERT_EQ(stack.management().stats().requests_admitted, 1u);
  ASSERT_EQ(stack.management().admission().state().channel_count(), 1u);

  // Tear the channel down, then reuse the same 8-bit connection-request ID
  // for a genuinely new request (the ID space wraps after 255 setups — a
  // steady churn workload recycles IDs constantly). The dedup table must
  // not treat the new request as a retransmission of the old one.
  inject_teardown(stack.network(), NodeId{0}, ChannelId{1});
  EXPECT_TRUE(stack.network().simulator().run_all());
  ASSERT_EQ(stack.management().admission().state().channel_count(), 0u);

  inject_mgmt(stack.network(), NodeId{0}, request.serialize());
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_EQ(stack.management().stats().requests_admitted, 2u);
  EXPECT_EQ(stack.management().stats().duplicate_requests_ignored, 0u);
  EXPECT_EQ(stack.management().admission().state().channel_count(), 1u);
}

}  // namespace
}  // namespace rtether::proto
