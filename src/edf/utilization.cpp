#include "edf/utilization.hpp"

#include <numeric>

namespace rtether::edf {

namespace {

__extension__ typedef unsigned __int128 UInt128;

constexpr UInt128 kU128Max = ~UInt128{0};

}  // namespace

void UtilizationAccumulator::advance(ExactState& state,
                                     const PseudoTask& task) {
  state.whole += task.capacity / task.period;
  const std::uint64_t cf = task.capacity % task.period;
  if (cf == 0) return;
  const std::uint64_t period = task.period;

  // den' = lcm(den, period); degrade to the fixed-point bound on overflow.
  const std::uint64_t g =
      std::gcd(static_cast<std::uint64_t>(state.den % period), period);
  const std::uint64_t scale = period / g;
  if (scale != 0 && state.den > kU128Max / scale) {
    state.valid = false;
    return;
  }
  const UInt128 new_den = state.den * scale;
  const UInt128 num_scale = new_den / state.den;
  const UInt128 term_scale = new_den / period;
  if (state.num != 0 && num_scale != 0 && state.num > kU128Max / num_scale) {
    state.valid = false;
    return;
  }
  const UInt128 scaled_num = state.num * num_scale;
  if (term_scale != 0 && UInt128{cf} > (kU128Max - scaled_num) / term_scale) {
    state.valid = false;
    return;
  }
  state.num = scaled_num + UInt128{cf} * term_scale;
  state.den = new_den;

  // Peel off whole units to keep num small.
  if (state.num >= state.den) {
    const UInt128 units = state.num / state.den;
    if (units > 0xffffffffULL) {
      state.exceeded = true;  // utilization is absurdly large; decide now
      return;
    }
    state.whole += static_cast<std::uint64_t>(units);
    state.num %= state.den;
  }
  if (state.whole > 1 || (state.whole == 1 && state.num > 0)) {
    state.exceeded = true;
  }
}

UtilizationAccumulator::UInt128 UtilizationAccumulator::upper_bound_term(
    const PseudoTask& task) {
  // ⌈C·2³²/P⌉ ≥ (C/P)·2³², so the sum can only over-report "exceeds".
  const UInt128 scaled = (UInt128{task.capacity} << 32) + task.period - 1;
  return scaled / task.period;
}

bool UtilizationAccumulator::verdict(const ExactState& state, UInt128 upper) {
  if (!state.valid) {
    return upper > (UInt128{1} << 32);
  }
  if (state.exceeded) {
    return true;
  }
  return state.whole > 1 || (state.whole == 1 && state.num > 0);
}

void UtilizationAccumulator::reset(const TaskSet& set) {
  exact_ = ExactState{};
  upper_sum_ = 0;
  for (const auto& task : set.tasks()) {
    add(task);
  }
}

void UtilizationAccumulator::add(const PseudoTask& task) {
  // The fallback sum covers every task; the exact state freezes once it has
  // either overflowed or already decided "exceeds" — exactly where the
  // reference one-shot accumulation would have stopped reading the set.
  upper_sum_ += upper_bound_term(task);
  if (exact_.valid && !exact_.exceeded) {
    advance(exact_, task);
  }
}

bool UtilizationAccumulator::exceeds_one() const {
  return verdict(exact_, upper_sum_);
}

bool UtilizationAccumulator::exceeds_one_with(const PseudoTask& extra) const {
  if (exact_.valid && !exact_.exceeded) {
    ExactState trial = exact_;
    advance(trial, extra);
    return verdict(trial, upper_sum_ + upper_bound_term(extra));
  }
  return verdict(exact_, upper_sum_ + upper_bound_term(extra));
}

bool utilization_exceeds_one(const TaskSet& set) {
  UtilizationAccumulator acc;
  acc.reset(set);
  return acc.exceeds_one();
}

bool utilization_exceeds_one_with(const TaskSet& set,
                                  const PseudoTask& extra) {
  UtilizationAccumulator acc;
  acc.reset(set);
  return acc.exceeds_one_with(extra);
}

}  // namespace rtether::edf
