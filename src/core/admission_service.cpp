#include "core/admission_service.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/mpsc_queue.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "core/admission_internal.hpp"
#include "core/id_allocator.hpp"
#include "edf/feasibility.hpp"

namespace rtether::core {

namespace service_detail {

/// Two-party callback handoff phases: the installer (`on_complete`) and the
/// completer (the retiring thread) each `exchange` the phase, and exactly
/// one of them observes the other's value — that side runs the callback.
inline constexpr std::uint8_t kCallbackNone = 0;
inline constexpr std::uint8_t kCallbackInstalled = 1;
inline constexpr std::uint8_t kCallbackCompleted = 2;

/// Shared completion state behind a `Ticket`. The retiring dispatcher (or
/// the inline path) fills the outcome, then release-stores `done`; readers
/// acquire-load `done` before touching anything else. `callback` is written
/// by the installer before its phase exchange (release) and read only after
/// an acquire exchange observes `kCallbackInstalled`.
struct TicketState {
  std::atomic<bool> done{false};
  std::atomic<std::uint8_t> callback_phase{kCallbackNone};
  std::function<void()> callback;
  std::uint64_t sequence{0};
  ChannelOp::Kind kind{ChannelOp::Kind::kAdmit};
  // Expected has no default constructor, hence optional.
  std::optional<AdmitOutcome> admit;
  std::optional<ReleaseOutcome> release;
};

}  // namespace service_detail

using service_detail::TicketState;
using admission_internal::key_direction;
using admission_internal::key_node;
using admission_internal::link_key;

namespace {

void complete(TicketState& ticket) {
  ticket.done.store(true, std::memory_order_release);
  ticket.done.notify_all();
  // Completer side of the callback handoff (see TicketState).
  const std::uint8_t prev = ticket.callback_phase.exchange(
      service_detail::kCallbackCompleted, std::memory_order_acq_rel);
  if (prev == service_detail::kCallbackInstalled) {
    ticket.callback();
  }
}

std::shared_ptr<TicketState> completed_state(ChannelOp::Kind kind) {
  auto state = std::make_shared<TicketState>();
  state->kind = kind;
  state->done.store(true, std::memory_order_relaxed);
  state->callback_phase.store(service_detail::kCallbackCompleted,
                              std::memory_order_relaxed);
  return state;
}

}  // namespace

bool Ticket::done() const {
  RTETHER_ASSERT(state_ != nullptr);
  return state_->done.load(std::memory_order_acquire);
}

void Ticket::wait() const {
  RTETHER_ASSERT(state_ != nullptr);
  while (!state_->done.load(std::memory_order_acquire)) {
    state_->done.wait(false, std::memory_order_acquire);
  }
}

void Ticket::on_complete(std::function<void()> fn) const {
  RTETHER_ASSERT(state_ != nullptr);
  RTETHER_ASSERT_MSG(fn != nullptr, "null completion callback");
  state_->callback = std::move(fn);
  // Installer side of the callback handoff (see TicketState).
  const std::uint8_t prev = state_->callback_phase.exchange(
      service_detail::kCallbackInstalled, std::memory_order_acq_rel);
  RTETHER_ASSERT_MSG(prev != service_detail::kCallbackInstalled,
                     "one completion callback per op");
  if (prev == service_detail::kCallbackCompleted) {
    state_->callback();
  }
}

std::uint64_t Ticket::sequence() const {
  RTETHER_ASSERT(done());
  return state_->sequence;
}

ChannelOp::Kind Ticket::kind() const {
  RTETHER_ASSERT(state_ != nullptr);
  return state_->kind;
}

const AdmitOutcome& Ticket::admit_outcome() const {
  RTETHER_ASSERT(done());
  RTETHER_ASSERT_MSG(state_->admit.has_value(),
                     "admit_outcome() on a release ticket");
  return *state_->admit;
}

const ReleaseOutcome& Ticket::release_outcome() const {
  RTETHER_ASSERT(done());
  RTETHER_ASSERT_MSG(state_->release.has_value(),
                     "release_outcome() on an admit ticket");
  return *state_->release;
}

Ticket Ticket::completed(AdmitOutcome outcome) {
  auto state = completed_state(ChannelOp::Kind::kAdmit);
  state->admit.emplace(std::move(outcome));
  return Ticket(std::move(state));
}

Ticket Ticket::completed(ReleaseOutcome outcome) {
  auto state = completed_state(ChannelOp::Kind::kRelease);
  state->release.emplace(std::move(outcome));
  return Ticket(std::move(state));
}

// ---------------------------------------------------------------------------

struct AdmissionService::Impl {
  /// One op travelling through the ingest ring.
  struct IngestOp {
    ChannelOp op{};
    std::shared_ptr<TicketState> ticket;
  };

  /// One component changing owners: the exporting worker fills the state
  /// vectors (indexed 1:1 with `keys`), publishes `ready`, and the
  /// importing worker installs them. Both sides reach the migration in
  /// dispatch order, and a worker only ever waits for an *export* that was
  /// enqueued before its own import — the waits-for graph is acyclic.
  struct Migration {
    std::vector<std::size_t> keys;
    std::vector<edf::TaskSet> link_sets;
    std::vector<edf::LinkScanCache> caches;
    std::vector<RtChannel> channels;
    std::atomic<bool> ready{false};
    Eventcount ready_event;
  };

  struct WorkerMsg {
    enum class Kind : std::uint8_t { kAdmit, kRelease, kExport, kImport, kStop };
    Kind kind{Kind::kStop};
    std::size_t slot{0};  // ROB index for kAdmit/kRelease
    std::shared_ptr<Migration> migration;
  };

  /// One reorder-buffer entry. The dispatcher fills the op fields before
  /// routing, a worker fills the verdict fields before release-storing
  /// `decided`, and the dispatcher retires entries strictly in dispatch
  /// order — out-of-order execute, in-order retire.
  struct RobSlot {
    enum class Kind : std::uint8_t { kImmediate, kShardAdmit, kShardRelease };

    std::atomic<bool> decided{false};
    Kind kind{Kind::kImmediate};
    std::shared_ptr<TicketState> ticket;
    // Dispatcher-written op payload.
    ChannelSpec spec{};
    ChannelId placeholder{};
    ChannelId release_id{};
    // Worker-written verdict.
    bool accepted{false};
    DeadlinePartition partition{};
    RejectReason reason{RejectReason::kUplinkInfeasible};
    std::string detail;
    std::uint64_t feasibility_tests{0};
    std::uint64_t demand_evaluations{0};
    // Dispatcher-decided verdicts (validation, exhaustion, unknown release).
    std::optional<AdmitOutcome> immediate_admit;
    std::optional<ReleaseOutcome> immediate_release;
  };

  struct Worker {
    explicit Worker(std::size_t queue_capacity) : queue(queue_capacity) {}
    MpscQueue<WorkerMsg> queue;
    std::thread thread;
  };

  struct LiveRec {
    ChannelId placeholder{};
    ChannelSpec spec{};
  };

  // -- construction-time configuration ------------------------------------
  AdmissionServiceConfig config;
  std::uint32_t node_count;
  Mode mode;
  std::unique_ptr<DeadlinePartitioner> partitioner;  // resident mode
  std::optional<AdmissionEngine> inline_engine;      // inline mode
  std::uint64_t inline_seq{0};

  // -- cross-thread signalling ---------------------------------------------
  /// The dispatcher's single park point: notified by ingest pushes (via the
  /// queue's consumer-wake hook) and by workers publishing verdicts.
  Eventcount progress;
  std::optional<MpscQueue<IngestOp>> ingest;
  std::vector<std::unique_ptr<Worker>> workers;
  std::thread dispatcher;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> retired_published{0};
  Eventcount retired_event;
  std::atomic<std::uint64_t> migration_count{0};

  // -- dispatcher-owned state (no locks: one thread) -----------------------
  // `dispatcher_role` is a zero-cost capability (common/sync.hpp): the
  // dispatcher thread holds it for its lifetime, every function touching
  // the fields below is REQUIRES(dispatcher_role), and Clang
  // `-Wthread-safety` statically proves no worker or producer code path can
  // reach them. `rob` itself is deliberately *not* guarded — slot payloads
  // are handed to workers under the per-slot `decided` release/acquire
  // protocol documented on RobSlot.
  ThreadRole dispatcher_role;
  std::vector<RobSlot> rob;
  std::uint64_t next_seq GUARDED_BY(dispatcher_role){0};
  std::uint64_t retired GUARDED_BY(dispatcher_role){0};
  std::uint64_t inflight_admits GUARDED_BY(dispatcher_role){0};
  /// Authoritative mirror, updated in retire order.
  NetworkState state GUARDED_BY(dispatcher_role);
  AdmissionStats stats GUARDED_BY(dispatcher_role);
  /// Real IDs, assigned in retire order.
  ChannelIdAllocator ids GUARDED_BY(dispatcher_role);
  /// Worker-visible provisional IDs.
  ChannelIdAllocator placeholder_ids GUARDED_BY(dispatcher_role);
  admission_internal::LinkUnionFind components GUARDED_BY(dispatcher_role);
  std::vector<std::int32_t> owner_of_root GUARDED_BY(dispatcher_role);
  std::vector<std::vector<std::uint32_t>> keys_of_root
      GUARDED_BY(dispatcher_role);
  std::vector<char> key_seen GUARDED_BY(dispatcher_role);
  unsigned next_owner_rr GUARDED_BY(dispatcher_role){0};
  std::unordered_map<ChannelId, LiveRec> live GUARDED_BY(dispatcher_role);

  Impl(std::uint32_t nodes, std::unique_ptr<DeadlinePartitioner> part,
       AdmissionServiceConfig cfg, Mode service_mode)
      : config(cfg),
        node_count(nodes),
        mode(service_mode),
        state(nodes),
        components(std::size_t{nodes} * 2),
        owner_of_root(std::size_t{nodes} * 2, -1),
        keys_of_root(std::size_t{nodes} * 2),
        key_seen(std::size_t{nodes} * 2, 0) {
    if (mode == Mode::kInline) {
      inline_engine.emplace(nodes, std::move(part), cfg.admission);
      return;
    }
    partitioner = std::move(part);
    RTETHER_ASSERT_MSG(cfg.rob_capacity >= 1, "reorder buffer needs a slot");
    rob = std::vector<RobSlot>(cfg.rob_capacity);
    ingest.emplace(cfg.queue_capacity, &progress);
    workers.reserve(cfg.workers);
    for (unsigned w = 0; w < cfg.workers; ++w) {
      workers.push_back(std::make_unique<Worker>(cfg.worker_queue_capacity));
    }
    for (unsigned w = 0; w < cfg.workers; ++w) {
      workers[w]->thread =
          std::thread([this, w] { worker_loop(*workers[w]); });
    }
    dispatcher = std::thread([this] { dispatcher_loop(); });
  }

  ~Impl() {
    if (mode == Mode::kInline) {
      return;
    }
    stop.store(true, std::memory_order_release);
    progress.notify();
    dispatcher.join();
    for (auto& worker : workers) {
      worker->thread.join();
    }
  }

  // ------------------------------------------------------------------ ROB

  [[nodiscard]] std::uint64_t in_flight() const REQUIRES(dispatcher_role) {
    return next_seq - retired;
  }

  [[nodiscard]] bool head_decided() REQUIRES(dispatcher_role) {
    return in_flight() > 0 &&
           rob[retired % rob.size()].decided.load(std::memory_order_acquire);
  }

  RobSlot& claim_slot(std::shared_ptr<TicketState> ticket,
                      RobSlot::Kind kind) REQUIRES(dispatcher_role) {
    RTETHER_ASSERT(in_flight() < rob.size());
    const std::uint64_t seq = next_seq++;
    RobSlot& slot = rob[seq % rob.size()];
    slot.kind = kind;
    slot.ticket = std::move(ticket);
    slot.ticket->sequence = seq;
    return slot;
  }

  void retire_slot(RobSlot& slot) REQUIRES(dispatcher_role) {
    TicketState& ticket = *slot.ticket;
    switch (slot.kind) {
      case RobSlot::Kind::kImmediate:
        if (ticket.kind == ChannelOp::Kind::kAdmit) {
          ++stats.requested;
          ++stats.rejected;
          ticket.admit = std::move(slot.immediate_admit);
        } else {
          // An unknown-channel release: the sequential controller counts
          // nothing for it, and neither do we.
          ticket.release = std::move(slot.immediate_release);
        }
        break;
      case RobSlot::Kind::kShardAdmit: {
        RTETHER_ASSERT(inflight_admits > 0);
        --inflight_admits;
        ++stats.requested;
        stats.feasibility_tests += slot.feasibility_tests;
        stats.demand_evaluations += slot.demand_evaluations;
        if (slot.accepted) {
          // The real ID is assigned here, in retire order. The allocator's
          // observable behaviour is a pure function of the live ID set, so
          // this matches the sequential controller ID-for-ID.
          const auto id = ids.allocate();
          RTETHER_ASSERT_MSG(id.has_value(),
                             "exhaustion hazard let an admit through");
          ++stats.accepted;
          const RtChannel channel{*id, slot.spec, slot.partition};
          state.add_channel(channel);
          live.emplace(*id, LiveRec{slot.placeholder, slot.spec});
          ticket.admit.emplace(channel);
        } else {
          placeholder_ids.release(slot.placeholder);
          ++stats.rejected;
          ticket.admit.emplace(Unexpected(
              Rejection{slot.reason, std::move(slot.detail)}));
        }
        break;
      }
      case RobSlot::Kind::kShardRelease: {
        const bool removed = state.remove_channel(slot.release_id);
        RTETHER_ASSERT_MSG(removed, "retired release of unknown channel");
        ids.release(slot.release_id);
        ++stats.released;
        ticket.release.emplace(slot.release_id);
        break;
      }
    }
    complete(ticket);
    slot.ticket.reset();
    slot.detail.clear();
    slot.immediate_admit.reset();
    slot.immediate_release.reset();
    slot.decided.store(false, std::memory_order_relaxed);
  }

  bool retire_ready() REQUIRES(dispatcher_role) {
    bool any = false;
    while (head_decided()) {
      retire_slot(rob[retired % rob.size()]);
      ++retired;
      any = true;
    }
    if (any) {
      retired_published.store(retired, std::memory_order_release);
      retired_event.notify();
    }
    return any;
  }

  /// Dispatcher-side stall: retire whatever is ready, park otherwise, until
  /// `cond` holds. Used for ROB-full backpressure and the two hazards
  /// (release of a maybe-in-flight ID, ID-space headroom).
  template <typename Cond>
  void stall_until(Cond&& cond) REQUIRES(dispatcher_role) {
    while (!cond()) {
      if (retire_ready()) {
        continue;
      }
      const auto ticket = progress.prepare_wait();
      if (cond() || head_decided()) {
        progress.cancel_wait();
        continue;
      }
      progress.wait(ticket);
    }
  }

  // ------------------------------------------------------------- routing

  [[nodiscard]] unsigned owner_of(std::uint32_t root) REQUIRES(dispatcher_role) {
    std::int32_t owner = owner_of_root[root];
    if (owner < 0) {
      owner = static_cast<std::int32_t>(next_owner_rr++ % workers.size());
      owner_of_root[root] = owner;
    }
    return static_cast<unsigned>(owner);
  }

  void touch_key(std::size_t key) REQUIRES(dispatcher_role) {
    if (key_seen[key] == 0) {
      key_seen[key] = 1;
      // A never-touched key is still its own singleton root.
      keys_of_root[components.find(key)].push_back(
          static_cast<std::uint32_t>(key));
    }
  }

  /// Routes an admit to the worker owning its conflict component, uniting
  /// the two link keys' components first. When the two components are
  /// owned by *different* workers, the absorbed (smaller) side's state
  /// migrates to the surviving side's owner: an export is enqueued to the
  /// old owner and an import to the new one, in dispatch order, before the
  /// admit itself.
  [[nodiscard]] unsigned route_admit(const ChannelSpec& spec)
      REQUIRES(dispatcher_role) {
    const std::size_t up_key = link_key(spec.source, LinkDirection::kUplink);
    const std::size_t down_key =
        link_key(spec.destination, LinkDirection::kDownlink);
    touch_key(up_key);
    touch_key(down_key);
    const std::uint32_t up_root = components.find(up_key);
    const std::uint32_t down_root = components.find(down_key);
    if (up_root == down_root) {
      return owner_of(up_root);
    }
    const std::int32_t up_owner = owner_of_root[up_root];
    const std::int32_t down_owner = owner_of_root[down_root];
    const std::uint32_t surviving = components.unite(up_key, down_key);
    const std::uint32_t absorbed = surviving == up_root ? down_root : up_root;
    if (up_owner >= 0 && down_owner >= 0 && up_owner != down_owner) {
      const std::int32_t dest =
          surviving == up_root ? up_owner : down_owner;
      const std::int32_t source =
          surviving == up_root ? down_owner : up_owner;
      auto migration = std::make_shared<Migration>();
      migration->keys.assign(keys_of_root[absorbed].begin(),
                             keys_of_root[absorbed].end());
      workers[static_cast<unsigned>(source)]->queue.push(
          WorkerMsg{WorkerMsg::Kind::kExport, 0, migration});
      workers[static_cast<unsigned>(dest)]->queue.push(
          WorkerMsg{WorkerMsg::Kind::kImport, 0, std::move(migration)});
      migration_count.fetch_add(1, std::memory_order_relaxed);
      owner_of_root[surviving] = dest;
    } else {
      owner_of_root[surviving] =
          up_owner >= 0 ? up_owner : down_owner;  // may stay -1
    }
    auto& into = keys_of_root[surviving];
    auto& from = keys_of_root[absorbed];
    into.insert(into.end(), from.begin(), from.end());
    from.clear();
    return owner_of(surviving);
  }

  // ------------------------------------------------------------ dispatch

  void dispatch_admit(const ChannelSpec& spec,
                      std::shared_ptr<TicketState> ticket)
      REQUIRES(dispatcher_role) {
    // Validation order mirrors admission_flow: spec, nodes, ID headroom.
    if (!spec.valid()) {
      RobSlot& slot = claim_slot(std::move(ticket), RobSlot::Kind::kImmediate);
      slot.immediate_admit.emplace(
          Unexpected(Rejection{RejectReason::kInvalidSpec,
                               admission_internal::invalid_spec_detail(spec)}));
      slot.decided.store(true, std::memory_order_release);
      return;
    }
    if (!state.node_exists(spec.source) ||
        !state.node_exists(spec.destination)) {
      RobSlot& slot = claim_slot(std::move(ticket), RobSlot::Kind::kImmediate);
      slot.immediate_admit.emplace(Unexpected(
          Rejection{RejectReason::kUnknownNode, spec.to_string()}));
      slot.decided.store(true, std::memory_order_release);
      return;
    }
    if (live.size() + inflight_admits >= ChannelIdAllocator::kCapacity) {
      // Headroom hazard: whether this op sees an exhausted allocator
      // depends on in-flight verdicts, so drain them before deciding.
      stall_until([this] { return inflight_admits == 0; });
      if (live.size() >= ChannelIdAllocator::kCapacity) {
        RobSlot& slot =
            claim_slot(std::move(ticket), RobSlot::Kind::kImmediate);
        slot.immediate_admit.emplace(Unexpected(Rejection{
            RejectReason::kChannelIdsExhausted, spec.to_string()}));
        slot.decided.store(true, std::memory_order_release);
        return;
      }
    }
    const auto placeholder = placeholder_ids.allocate();
    RTETHER_ASSERT_MSG(placeholder.has_value(),
                       "placeholder space exceeds the headroom guard");
    const unsigned worker = route_admit(spec);
    RobSlot& slot = claim_slot(std::move(ticket), RobSlot::Kind::kShardAdmit);
    slot.spec = spec;
    slot.placeholder = *placeholder;
    const std::size_t slot_index = (next_seq - 1) % rob.size();
    ++inflight_admits;
    workers[worker]->queue.push(
        WorkerMsg{WorkerMsg::Kind::kAdmit, slot_index, nullptr});
  }

  void dispatch_release(ChannelId id, std::shared_ptr<TicketState> ticket)
      REQUIRES(dispatcher_role) {
    auto it = live.find(id);
    if (it == live.end() && inflight_admits > 0) {
      // The ID may belong to an admit still executing; in the sequential
      // order that admit precedes us, so its verdict must land first.
      stall_until(
          [&] { return live.contains(id) || inflight_admits == 0; });
      it = live.find(id);
    }
    if (it == live.end()) {
      RobSlot& slot = claim_slot(std::move(ticket), RobSlot::Kind::kImmediate);
      slot.immediate_release.emplace(
          admission_internal::make_release_outcome(false, id));
      slot.decided.store(true, std::memory_order_release);
      return;
    }
    const LiveRec rec = it->second;
    live.erase(it);
    // Safe to recycle now: any admit reusing this placeholder is enqueued
    // after this release on every worker queue that can see it.
    placeholder_ids.release(rec.placeholder);
    const unsigned worker = owner_of(
        components.find(link_key(rec.spec.source, LinkDirection::kUplink)));
    RobSlot& slot = claim_slot(std::move(ticket), RobSlot::Kind::kShardRelease);
    slot.spec = rec.spec;
    slot.placeholder = rec.placeholder;
    slot.release_id = id;
    const std::size_t slot_index = (next_seq - 1) % rob.size();
    workers[worker]->queue.push(
        WorkerMsg{WorkerMsg::Kind::kRelease, slot_index, nullptr});
  }

  void dispatcher_loop() {
    // The dispatcher thread owns the retire-order state for its lifetime.
    ThreadRoleGuard role(dispatcher_role);
    for (;;) {
      bool progressed = retire_ready();
      IngestOp in;
      // Batch-aware dispatch: route the whole ingest burst first, then let
      // one retire pass below complete every decided op — shard verdicts
      // that land while later ops are being routed retire together on this
      // wakeup instead of op-at-a-time (stalls inside dispatch_* still
      // retire opportunistically while they wait).
      while (in_flight() < rob.size() && ingest->try_pop(in)) {
        // This dequeue is the op's linearization point.
        if (in.op.kind == ChannelOp::Kind::kAdmit) {
          dispatch_admit(in.op.spec, std::move(in.ticket));
        } else {
          dispatch_release(in.op.id, std::move(in.ticket));
        }
        progressed = true;
      }
      progressed |= retire_ready();
      if (in_flight() >= rob.size()) {
        stall_until([this] { return in_flight() < rob.size(); });
        continue;
      }
      if (progressed) {
        continue;
      }
      if (stop.load(std::memory_order_acquire) && ingest->empty() &&
          in_flight() == 0) {
        break;
      }
      const auto ticket = progress.prepare_wait();
      if (!ingest->empty() || head_decided() ||
          stop.load(std::memory_order_acquire)) {
        progress.cancel_wait();
        continue;
      }
      progress.wait(ticket);
    }
    for (auto& worker : workers) {
      worker->queue.push(WorkerMsg{WorkerMsg::Kind::kStop, 0, nullptr});
    }
  }

  // ------------------------------------------------------------- workers

  void worker_admit(NetworkState& local,
                    std::unordered_map<std::size_t, edf::LinkScanCache>& caches,
                    RobSlot& slot) {
    const ChannelSpec spec = slot.spec;
    const std::size_t up_key = link_key(spec.source, LinkDirection::kUplink);
    const std::size_t down_key =
        link_key(spec.destination, LinkDirection::kDownlink);
    caches.try_emplace(up_key);
    caches.try_emplace(down_key);
    edf::LinkScanCache& up_cache = caches.find(up_key)->second;
    edf::LinkScanCache& down_cache = caches.find(down_key)->second;

    const auto candidates = partitioner->candidates(spec, local);
    RTETHER_ASSERT_MSG(!candidates.empty(), "DPS returned no candidates");
    AdmissionStats scratch;
    RejectReason reason = RejectReason::kUplinkInfeasible;
    std::string detail;
    bool accepted = false;
    for (const auto& candidate : candidates) {
      RTETHER_ASSERT_MSG(candidate.satisfies(spec),
                         "DPS candidate violates Eq 18.8/18.9");
      if (admission_internal::cached_candidate_test(
              local, up_cache, down_cache, scratch, spec, slot.placeholder,
              candidate, reason, detail)) {
        accepted = true;
        slot.partition = candidate;
        break;
      }
    }
    slot.accepted = accepted;
    if (!accepted) {
      slot.reason = reason;
      slot.detail = std::move(detail);
    }
    slot.feasibility_tests = scratch.feasibility_tests;
    slot.demand_evaluations = scratch.demand_evaluations;
    slot.decided.store(true, std::memory_order_release);
    progress.notify();
  }

  void worker_release(
      NetworkState& local,
      std::unordered_map<std::size_t, edf::LinkScanCache>& caches,
      RobSlot& slot) {
    const auto channel = local.find_channel(slot.placeholder);
    RTETHER_ASSERT_MSG(channel.has_value(), "release routed to wrong shard");
    const bool removed = local.remove_channel(slot.placeholder);
    RTETHER_ASSERT(removed);
    const auto up = caches.find(
        link_key(channel->spec.source, LinkDirection::kUplink));
    RTETHER_ASSERT(up != caches.end());
    admission_internal::downdate_link_cache(
        up->second,
        local.link(channel->spec.source, LinkDirection::kUplink),
        {channel->id, channel->spec.period, channel->spec.capacity,
         channel->partition.uplink},
        config.admission.release);
    const auto down = caches.find(
        link_key(channel->spec.destination, LinkDirection::kDownlink));
    RTETHER_ASSERT(down != caches.end());
    admission_internal::downdate_link_cache(
        down->second,
        local.link(channel->spec.destination, LinkDirection::kDownlink),
        {channel->id, channel->spec.period, channel->spec.capacity,
         channel->partition.downlink},
        config.admission.release);
    slot.decided.store(true, std::memory_order_release);
    progress.notify();
  }

  void worker_export(
      NetworkState& local,
      std::unordered_map<std::size_t, edf::LinkScanCache>& caches,
      Migration& migration) {
    migration.link_sets.reserve(migration.keys.size());
    migration.caches.reserve(migration.keys.size());
    for (const std::size_t key : migration.keys) {
      migration.link_sets.push_back(
          local.take_link(key_node(key), key_direction(key)));
      if (const auto it = caches.find(key); it != caches.end()) {
        migration.caches.push_back(std::move(it->second));
        caches.erase(it);
      } else {
        migration.caches.emplace_back();
      }
    }
    // A channel's two links always share a component, so the moving task
    // sets name exactly the channels that move (each once per link).
    for (const edf::TaskSet& set : migration.link_sets) {
      for (const edf::PseudoTask& task : set.tasks()) {
        if (const auto channel = local.find_channel(task.channel)) {
          migration.channels.push_back(*channel);
          local.forget_channel(task.channel);
        }
      }
    }
    migration.ready.store(true, std::memory_order_release);
    migration.ready_event.notify();
  }

  void worker_import(
      NetworkState& local,
      std::unordered_map<std::size_t, edf::LinkScanCache>& caches,
      Migration& migration) {
    while (!migration.ready.load(std::memory_order_acquire)) {
      const auto ticket = migration.ready_event.prepare_wait();
      if (migration.ready.load(std::memory_order_acquire)) {
        migration.ready_event.cancel_wait();
        break;
      }
      migration.ready_event.wait(ticket);
    }
    for (std::size_t i = 0; i < migration.keys.size(); ++i) {
      const std::size_t key = migration.keys[i];
      local.adopt_link(key_node(key), key_direction(key),
                       std::move(migration.link_sets[i]));
      caches[key] = std::move(migration.caches[i]);
    }
    for (const RtChannel& channel : migration.channels) {
      local.adopt_channel(channel);
    }
  }

  void worker_loop(Worker& self) {
    NetworkState local(node_count);
    std::unordered_map<std::size_t, edf::LinkScanCache> caches;
    std::vector<WorkerMsg> burst;
    std::unordered_map<std::size_t, std::vector<ChannelSpec>> burst_specs;
    constexpr std::size_t kMaxBurst = 256;
    for (;;) {
      WorkerMsg msg;
      self.queue.pop(msg);
      if (msg.kind == WorkerMsg::Kind::kStop) {
        return;
      }
      burst.clear();
      burst.push_back(std::move(msg));
      bool plain = burst.back().kind == WorkerMsg::Kind::kAdmit ||
                   burst.back().kind == WorkerMsg::Kind::kRelease;
      WorkerMsg more;
      while (plain && burst.size() < kMaxBurst && self.queue.try_pop(more)) {
        plain = more.kind == WorkerMsg::Kind::kAdmit ||
                more.kind == WorkerMsg::Kind::kRelease;
        burst.push_back(std::move(more));
      }
      if (plain && burst.size() > 1) {
        // Batch pre-pass, as in AdmissionEngine::admit_batch: size each
        // touched cache's checkpoint grid once for the whole burst. Pure
        // throughput — grids never affect verdicts.
        burst_specs.clear();
        for (const WorkerMsg& item : burst) {
          if (item.kind != WorkerMsg::Kind::kAdmit) {
            continue;
          }
          const ChannelSpec& spec = rob[item.slot].spec;
          burst_specs[link_key(spec.source, LinkDirection::kUplink)]
              .push_back(spec);
          burst_specs[link_key(spec.destination, LinkDirection::kDownlink)]
              .push_back(spec);
        }
        for (const auto& [key, specs] : burst_specs) {
          admission_internal::reserve_link_horizon(
              local.link(key_node(key), key_direction(key)), caches[key],
              specs);
        }
      }
      for (WorkerMsg& item : burst) {
        switch (item.kind) {
          case WorkerMsg::Kind::kAdmit:
            worker_admit(local, caches, rob[item.slot]);
            break;
          case WorkerMsg::Kind::kRelease:
            worker_release(local, caches, rob[item.slot]);
            break;
          case WorkerMsg::Kind::kExport:
            worker_export(local, caches, *item.migration);
            break;
          case WorkerMsg::Kind::kImport:
            worker_import(local, caches, *item.migration);
            break;
          case WorkerMsg::Kind::kStop:
            RTETHER_ASSERT_MSG(false, "stop cannot arrive mid-burst");
            return;
        }
      }
    }
  }

  // ------------------------------------------------------------ frontend

  Ticket submit_async(const ChannelOp& op) {
    auto ticket_state = std::make_shared<TicketState>();
    ticket_state->kind = op.kind;
    if (mode == Mode::kInline) {
      ticket_state->sequence = inline_seq++;
      if (op.kind == ChannelOp::Kind::kAdmit) {
        ticket_state->admit.emplace(inline_engine->admit(op.spec));
      } else {
        ticket_state->release.emplace(inline_engine->release(op.id));
      }
      complete(*ticket_state);
      return Ticket(std::move(ticket_state));
    }
    submitted.fetch_add(1, std::memory_order_seq_cst);
    ingest->push(IngestOp{op, ticket_state});
    return Ticket(std::move(ticket_state));
  }

  void drain() {
    if (mode == Mode::kInline) {
      return;
    }
    const std::uint64_t target = submitted.load(std::memory_order_seq_cst);
    while (retired_published.load(std::memory_order_acquire) < target) {
      const auto ticket = retired_event.prepare_wait();
      if (retired_published.load(std::memory_order_acquire) >= target) {
        retired_event.cancel_wait();
        break;
      }
      retired_event.wait(ticket);
    }
  }
};

// ---------------------------------------------------------------------------

namespace {

AdmissionService::Mode select_service_mode(const AdmissionServiceConfig& cfg) {
  // One policy point with the parallel engine: the shard path needs the
  // cached checkpoint scan and at least dispatcher + one worker.
  const AdmissionPath path =
      select_path(cfg.admission.scan, cfg.workers + 1, 1, 0);
  return cfg.workers >= 1 && path == AdmissionPath::kSharded
             ? AdmissionService::Mode::kResident
             : AdmissionService::Mode::kInline;
}

}  // namespace

AdmissionService::AdmissionService(
    std::uint32_t node_count, std::unique_ptr<DeadlinePartitioner> partitioner,
    AdmissionServiceConfig config)
    : impl_(std::make_unique<Impl>(node_count, std::move(partitioner), config,
                                   select_service_mode(config))) {}

AdmissionService::~AdmissionService() = default;

Ticket AdmissionService::submit_async(const ChannelOp& op) {
  return impl_->submit_async(op);
}

ChurnResult AdmissionService::submit(std::span<const ChannelOp> ops) {
  ChurnResult result;
  std::size_t admits = 0;
  for (const ChannelOp& op : ops) {
    admits += op.kind == ChannelOp::Kind::kAdmit ? 1 : 0;
  }
  result.admissions.reserve(admits);
  result.releases.reserve(ops.size() - admits);
  if (impl_->mode == Mode::kInline) {
    // Flush runs of admits through the engine's batch path so the inline
    // service keeps the batched pre-pass (and its single-thread speed).
    std::vector<ChannelRequest> run;
    auto flush = [&] {
      if (run.empty()) {
        return;
      }
      BatchResult batch = impl_->inline_engine->admit_batch(run);
      for (auto& outcome : batch.outcomes) {
        result.admissions.push_back(std::move(outcome));
      }
      run.clear();
    };
    for (const ChannelOp& op : ops) {
      if (op.kind == ChannelOp::Kind::kAdmit) {
        run.push_back(ChannelRequest{op.spec});
      } else {
        flush();
        result.releases.push_back(impl_->inline_engine->release(op.id));
      }
    }
    flush();
    return result;
  }
  std::vector<Ticket> tickets;
  tickets.reserve(ops.size());
  for (const ChannelOp& op : ops) {
    tickets.push_back(submit_async(op));
  }
  for (const Ticket& ticket : tickets) {
    ticket.wait();
    if (ticket.kind() == ChannelOp::Kind::kAdmit) {
      result.admissions.push_back(ticket.admit_outcome());
    } else {
      result.releases.push_back(ticket.release_outcome());
    }
  }
  return result;
}

AdmitOutcome AdmissionService::admit(const ChannelSpec& spec) {
  const Ticket ticket = submit_async(ChannelOp::admit(spec));
  ticket.wait();
  return ticket.admit_outcome();
}

ReleaseOutcome AdmissionService::release(ChannelId id) {
  const Ticket ticket = submit_async(ChannelOp::release(id));
  ticket.wait();
  return ticket.release_outcome();
}

void AdmissionService::drain() { impl_->drain(); }

// Analysis opt-out: these snapshots read dispatcher-owned state from the
// caller's thread. `drain()` is the out-of-band synchronization — it blocks
// until every previously submitted op has retired, and the header requires
// callers to quiesce their producers first, so the dispatcher is parked
// (not mutating) while the reference is used.
const NetworkState& AdmissionService::state() NO_THREAD_SAFETY_ANALYSIS {
  if (impl_->mode == Mode::kInline) {
    return impl_->inline_engine->state();
  }
  impl_->drain();
  return impl_->state;
}

const AdmissionStats& AdmissionService::stats() NO_THREAD_SAFETY_ANALYSIS {
  if (impl_->mode == Mode::kInline) {
    return impl_->inline_engine->stats();
  }
  impl_->drain();
  return impl_->stats;
}

const DeadlinePartitioner& AdmissionService::partitioner() const {
  return impl_->mode == Mode::kInline ? impl_->inline_engine->partitioner()
                                      : *impl_->partitioner;
}

AdmissionService::Mode AdmissionService::mode() const { return impl_->mode; }

unsigned AdmissionService::worker_count() const {
  return impl_->mode == Mode::kInline
             ? 0
             : static_cast<unsigned>(impl_->workers.size());
}

std::uint64_t AdmissionService::migrations() const {
  return impl_->migration_count.load(std::memory_order_relaxed);
}

}  // namespace rtether::core
