/// @file test_calculus.cpp
/// The network-calculus oracle (analysis/calculus.hpp) against hand-computed
/// closed-form values and against the exact EDF feasibility test it
/// cross-checks in production. The oracle is one-sided by design: it must
/// only speak when the admission engine is provably wrong, so the property
/// tests here pin the containments
///
///   exact-feasible  ⊆  lower-envelope-consistent   (check_accept silent)
///   upper-envelope-fits  ⊆  exact-feasible         (check_reject speaks ⇒
///                                                   the set really is
///                                                   feasible)
///
/// over seeded random task sets, with the closed-form FIFO bound pinned to
/// pencil-and-paper values.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/calculus.hpp"
#include "common/random.hpp"
#include "edf/feasibility.hpp"
#include "edf/task.hpp"
#include "edf/task_set.hpp"

namespace rtether::analysis {
namespace {

edf::PseudoTask task(std::uint64_t id, Slot period, Slot capacity,
                     Slot deadline) {
  return edf::PseudoTask{ChannelId{static_cast<std::uint16_t>(id)}, period,
                         capacity, deadline};
}

// ---------------------------------------------------------------------------
// FIFO delay bound: D = T + Σ b_i / R, hand-computed.
// ---------------------------------------------------------------------------

TEST(FifoDelayBound, MatchesHandComputedValue) {
  // Flows (P=10, C=2) and (P=5, C=1): bursts 2 + 1 = 3 frames, aggregate
  // rate 2/10 + 1/5 = 0.4 ≤ R = 1.  D = T + Σb/R = 3 + 3/1 = 6 slots.
  const std::vector<CalculusFlow> flows{{10.0, 2.0, 4.0}, {5.0, 1.0, 3.0}};
  const ServiceCurve service{1.0, 3.0};
  EXPECT_DOUBLE_EQ(CalculusOracle::fifo_delay_bound(flows, service), 6.0);
}

TEST(FifoDelayBound, FasterServerShrinksTheBound) {
  // Same arithmetic with R = 2: bursts 2 + 4 = 6, rates 0.5 + 0.5 = 1 ≤ 2.
  // D = 1.5 + 6/2 = 4.5 slots.
  const std::vector<CalculusFlow> flows{{4.0, 2.0, 2.0}, {8.0, 4.0, 6.0}};
  const ServiceCurve service{2.0, 1.5};
  EXPECT_DOUBLE_EQ(CalculusOracle::fifo_delay_bound(flows, service), 4.5);
}

TEST(FifoDelayBound, EmptyAggregateIsPureLatency) {
  const ServiceCurve service{1.0, 7.0};
  EXPECT_DOUBLE_EQ(CalculusOracle::fifo_delay_bound({}, service), 7.0);
}

TEST(FifoDelayBound, OverloadedServerHasNoBound) {
  // Rates 2/2 + 2/4 = 1.5 > R = 1: the backlog grows without bound and the
  // closed form does not apply — the oracle must say so, not extrapolate.
  const std::vector<CalculusFlow> flows{{2.0, 2.0, 2.0}, {4.0, 2.0, 3.0}};
  const ServiceCurve service{1.0, 0.0};
  EXPECT_LT(CalculusOracle::fifo_delay_bound(flows, service), 0.0);
}

// ---------------------------------------------------------------------------
// check_accept: necessary condition on accepted sets.
// ---------------------------------------------------------------------------

TEST(CheckAccept, FeasibleSetIsConsistent) {
  // U = 2/10 + 3/10 = 0.5; generous deadlines. Exactly feasible, so the
  // lower envelope must fit.
  const std::vector<edf::PseudoTask> tasks{task(1, 10, 2, 5),
                                           task(2, 10, 3, 8)};
  ASSERT_TRUE(edf::is_feasible(edf::TaskSet{tasks}, edf::DemandScan::kExhaustive));
  const CalculusVerdict verdict = CalculusOracle::check_accept(tasks);
  EXPECT_TRUE(verdict.consistent) << verdict.detail;
}

TEST(CheckAccept, EmptySetIsConsistent) {
  EXPECT_TRUE(CalculusOracle::check_accept({}).consistent);
}

TEST(CheckAccept, OverloadIsInconsistent) {
  // Σ r = 1 + 1/2 = 1.5 > 1: no schedule exists; accepting this set is a
  // bug the rate condition alone catches.
  const std::vector<edf::PseudoTask> tasks{task(1, 2, 2, 2), task(2, 4, 2, 4)};
  const CalculusVerdict verdict = CalculusOracle::check_accept(tasks);
  EXPECT_FALSE(verdict.consistent);
  EXPECT_NE(verdict.detail.find("overloaded"), std::string::npos)
      << verdict.detail;
}

TEST(CheckAccept, KinkViolationWithoutOverloadIsInconsistent) {
  // Two flows {P=10, C=4, d=4}: Σ r = 0.8 ≤ 1, but at the kink t = 4 the
  // lower envelope is max(4,0) + max(4,0) = 8 > 4. Both messages demand
  // their full capacity by slot 4 and the link only has 4 slots — infeasible
  // regardless of rate, so an accept must be flagged with witness t = 4.
  const std::vector<edf::PseudoTask> tasks{task(1, 10, 4, 4), task(2, 10, 4, 4)};
  const CalculusVerdict verdict = CalculusOracle::check_accept(tasks);
  ASSERT_FALSE(verdict.consistent);
  EXPECT_DOUBLE_EQ(verdict.witness_instant, 4.0);
}

TEST(CheckAccept, FullUtilizationImplicitDeadlinesStayConsistent) {
  // U = 1 exactly with d = P (Liu & Layland boundary): feasible, and the
  // lower envelope max(C, r(t−d)) at t = d+P gives C = r·P, i.e. it sits
  // exactly on the budget line. The FP margin must keep the oracle silent.
  const std::vector<edf::PseudoTask> tasks{task(1, 4, 2, 4), task(2, 8, 4, 8)};
  ASSERT_TRUE(edf::is_feasible(edf::TaskSet{tasks}, edf::DemandScan::kExhaustive));
  const CalculusVerdict verdict = CalculusOracle::check_accept(tasks);
  EXPECT_TRUE(verdict.consistent) << verdict.detail;
}

// ---------------------------------------------------------------------------
// check_reject: sufficient condition on rejected candidates.
// ---------------------------------------------------------------------------

TEST(CheckReject, ComfortablyFeasibleCandidateFlagsTheRejection) {
  // Lone candidate {P=100, C=1, d=50} against an empty link: upper envelope
  // at t = 50 is 1 ≤ 50 and Σ r = 0.01. Even the inflated demand fits, so
  // rejecting it would be provably wrong.
  const CalculusVerdict verdict =
      CalculusOracle::check_reject({}, task(1, 100, 1, 50));
  EXPECT_FALSE(verdict.consistent);
  EXPECT_NE(verdict.detail.find("reject"), std::string::npos) << verdict.detail;
}

TEST(CheckReject, OverloadingCandidateKeepsTheOracleSilent) {
  // Live task at U = 0.5 plus a candidate at U = 0.75: Σ r > 1, so the
  // rejection is justified and the sufficient check must not fire.
  const std::vector<edf::PseudoTask> live{task(1, 4, 2, 4)};
  const CalculusVerdict verdict =
      CalculusOracle::check_reject(live, task(2, 4, 3, 4));
  EXPECT_TRUE(verdict.consistent);
}

TEST(CheckReject, TightCandidateKeepsTheOracleSilent) {
  // {P=10, C=4, d=4} twice is exactly infeasible (see the accept test); the
  // upper envelope certainly does not fit, so the oracle stays silent about
  // this correct rejection.
  const std::vector<edf::PseudoTask> live{task(1, 10, 4, 4)};
  const CalculusVerdict verdict =
      CalculusOracle::check_reject(live, task(2, 10, 4, 4));
  EXPECT_TRUE(verdict.consistent);
}

// ---------------------------------------------------------------------------
// Cross-checks against the exact EDF test — the production contract.
// ---------------------------------------------------------------------------

std::vector<edf::PseudoTask> random_task_set(Rng& rng) {
  const std::size_t count = 1 + static_cast<std::size_t>(rng.index(5));
  std::vector<edf::PseudoTask> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Slot period = rng.uniform(1, 24);
    const Slot capacity = rng.uniform(1, period);
    const Slot deadline = rng.uniform(capacity, period);
    tasks.push_back(task(i + 1, period, capacity, deadline));
  }
  return tasks;
}

TEST(CalculusCrossCheck, ExactFeasibilityImpliesAcceptConsistency) {
  // The necessary direction, over many seeded sets: whenever the exhaustive
  // EDF scan says feasible, check_accept must stay silent. (The converse is
  // deliberately false — the lower envelope under-approximates demand.)
  Rng rng(20260808);
  std::size_t feasible_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::vector<edf::PseudoTask> tasks = random_task_set(rng);
    if (!edf::is_feasible(edf::TaskSet{tasks}, edf::DemandScan::kExhaustive)) {
      continue;
    }
    ++feasible_seen;
    const CalculusVerdict verdict = CalculusOracle::check_accept(tasks);
    EXPECT_TRUE(verdict.consistent)
        << "oracle flagged an exactly feasible set: " << verdict.detail;
  }
  // The generator must actually exercise the property.
  EXPECT_GE(feasible_seen, 50u);
}

TEST(CalculusCrossCheck, RejectInconsistencyImpliesExactFeasibility) {
  // The sufficient direction: whenever check_reject claims a rejection was
  // wrong, the exhaustive EDF scan must agree the full set is feasible.
  Rng rng(808202600);
  std::size_t flagged = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<edf::PseudoTask> tasks = random_task_set(rng);
    const edf::PseudoTask candidate = tasks.back();
    tasks.pop_back();
    const CalculusVerdict verdict =
        CalculusOracle::check_reject(tasks, candidate);
    if (verdict.consistent) continue;
    ++flagged;
    tasks.push_back(candidate);
    EXPECT_TRUE(
        edf::is_feasible(edf::TaskSet{tasks}, edf::DemandScan::kExhaustive))
        << "oracle called a justified rejection wrong: " << verdict.detail;
  }
  // The upper envelope is conservative but not mute: the sweep must find a
  // healthy number of comfortably-feasible candidates to certify.
  EXPECT_GE(flagged, 50u);
}

}  // namespace
}  // namespace rtether::analysis
