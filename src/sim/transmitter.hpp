#pragma once

/// @file transmitter.hpp
/// One transmit side of a simplex link: the dual output queue of Fig 18.2
/// plus a non-preemptive transmission state machine. RT frames have strict
/// priority over best-effort frames (a best-effort frame only starts when
/// the RT queue is empty), but a frame in flight is never aborted — the
/// one-frame blocking the paper folds into T_latency.
///
/// Start-of-transmission is decided by a same-tick arbitration event, not
/// inline in `enqueue_*`: all frames enqueued at tick T compete before the
/// wire is granted (still at T), so EDF order cannot be inverted by event
/// execution order within a tick. See `Transmitter::schedule_start`.
///
/// Completed frames leave through a `Sink` — a tagged destination record
/// dispatched directly (uplink → switch ingress event, switch port → node
/// delivery event, or a raw function pointer for tests) instead of a
/// type-erased `std::function` callback.
///
/// **Gated (time-triggered) mode.** `install_gate_schedule` turns the
/// transmitter into a TAS-style gated link: each admitted channel owns a
/// periodic one-slot window, RT frames are held in per-channel FIFO queues
/// until their window opens, and best-effort frames may only start when the
/// whole transmission fits before the next reserved window. Gate open/close
/// are typed kernel events (`kGateOpen`/`kGateClose`), so a gated run stays
/// on the allocation-free dispatch path. EDF keys are ignored in this mode —
/// the slot table decided the order offline.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/queues.hpp"
#include "sim/simulator.hpp"

namespace rtether::sim {

class SimNetwork;

/// Counters exposed per transmitter.
struct TransmitterStats {
  std::uint64_t rt_frames_sent{0};
  std::uint64_t best_effort_frames_sent{0};
  Tick busy_ticks{0};
  std::size_t max_rt_queue_depth{0};
  std::size_t max_best_effort_queue_depth{0};
};

class Transmitter {
 public:
  /// Destination of fully transmitted frames (store-and-forward hand-off
  /// point), dispatched by tag.
  struct Sink {
    /// Custom sink (tests/benches): invoked with the finished frame and
    /// the completion tick; the frame slot is released after return.
    using CustomFn = void (*)(void* context, const SimFrame& frame,
                              Tick completion);
    /// Fabric sink (multi-switch partitions, sim/fabric.hpp): like
    /// kCustom, but *ownership of the frame slot transfers* to the
    /// callback — the transmitter does not release it after return (the
    /// fabric either re-enqueues the frame at the next hop or releases it
    /// itself after imaging it into a cut-link record).
    using HandoffFn = void (*)(void* context, FrameIndex frame,
                               Tick completion);
    /// Books a fault-injected drop on a fabric sink (consulted before the
    /// slot is released; fabric transmitters have no SimNetwork to record
    /// the loss into).
    using DropFn = void (*)(void* context, const SimFrame& frame);

    enum class Kind : std::uint8_t {
      kUplinkToSwitch,  ///< node uplink: propagate to the switch ingress
      kPortToNode,      ///< switch port: propagate to the node, measure
      kCustom,          ///< raw callback (tests, standalone benches)
      kFabricHandoff,   ///< fabric partition hand-off (ownership transfers)
    };

    Kind kind{Kind::kCustom};
    /// kUplinkToSwitch: the sending node; kPortToNode: the destination.
    NodeId peer{};
    SimNetwork* network{nullptr};
    CustomFn fn{nullptr};
    HandoffFn handoff{nullptr};
    DropFn drop{nullptr};
    void* context{nullptr};

    [[nodiscard]] static Sink uplink(SimNetwork& network, NodeId node);
    [[nodiscard]] static Sink port(SimNetwork& network, NodeId node);
    [[nodiscard]] static Sink custom(CustomFn fn, void* context);
    [[nodiscard]] static Sink fabric(HandoffFn handoff, DropFn drop,
                                     void* context);
  };

  /// Verdict of the fault hook for one completed transmission. `drop`
  /// loses the frame after it consumed its wire time (a real lost frame
  /// still occupied the link — fault injection only ever *removes* load);
  /// `corrupt` marks the frame CRC-bad so the receiving end discards it;
  /// `extra_delay` adds ticks to the propagation delay (management-frame
  /// delay/reordering faults).
  struct FaultDecision {
    bool drop{false};
    bool corrupt{false};
    Tick extra_delay{0};
  };

  /// Fault-injection hook, consulted at transmission-complete time for
  /// every frame when registered. Raw function pointer + context (same
  /// idiom as Sink/ReceiveFn): the fault-free hot path pays one null
  /// check.
  using FaultFn = FaultDecision (*)(void* context, const SimFrame& frame,
                                    Tick now);

  /// One reserved window stream of the time-triggered schedule: the gate
  /// for `channel` opens for exactly one slot at `first_open`,
  /// `first_open + period_ticks`, `first_open + 2·period_ticks`, ... —
  /// the gate-schedule admission guarantees the occurrences of distinct
  /// entries on one link never overlap.
  struct GateWindow {
    ChannelId channel{};
    Tick period_ticks{0};
    /// Absolute tick of the first window start (epoch-anchored offset);
    /// advanced internally to the first occurrence at or after `now` when
    /// the establishment protocol already consumed simulation time.
    Tick first_open{0};
  };

  /// `best_effort_depth` bounds the FCFS queue (0 = unbounded).
  Transmitter(Simulator& simulator, const SimConfig& config, std::string name,
              Sink sink, std::size_t best_effort_depth = 0);

  /// Registers the fault hook (scenario fault injection; see sim/fault.hpp).
  void set_fault_hook(FaultFn fn, void* context) {
    fault_fn_ = fn;
    fault_context_ = context;
  }

  /// Queues an RT frame under the given EDF key (ticks) and starts
  /// transmitting if idle.
  void enqueue_rt(Tick deadline_key, FrameIndex frame);

  /// Queues a best-effort frame (dropped — and released — if the queue is
  /// full).
  void enqueue_best_effort(FrameIndex frame);

  /// Convenience overloads (tests, cold management paths): the frame is
  /// adopted into the kernel's arena first.
  void enqueue_rt(Tick deadline_key, SimFrame frame) {
    enqueue_rt(deadline_key, simulator_.arena().adopt(std::move(frame)));
  }
  void enqueue_best_effort(SimFrame frame) {
    enqueue_best_effort(simulator_.arena().adopt(std::move(frame)));
  }

  /// Pre-sizes both queues past an expected backlog high-water mark
  /// (benches that must not allocate after warm-up).
  void reserve(std::size_t rt_entries, std::size_t best_effort_entries) {
    rt_queue_.reserve(rt_entries);
    best_effort_queue_.reserve(best_effort_entries);
  }

  /// Switches the transmitter into gated (time-triggered) mode and arms
  /// the given window streams. May be called more than once; each call
  /// appends entries. From here on RT frames are routed to their channel's
  /// FIFO (by the decoded `rt_tag`) and only leave inside that channel's
  /// windows; best-effort fills the unreserved gaps. The self-rescheduling
  /// gate events run forever — drive a gated simulation with `run_until`,
  /// not `run_all`.
  void install_gate_schedule(std::span<const GateWindow> windows);

  [[nodiscard]] bool gated() const { return gated_; }

  /// Kernel dispatch target: same-tick arbitration (EventType::kArbitrate).
  void arbitrate();

  /// Kernel dispatch target: transmission of `frame` finished
  /// (EventType::kTxComplete).
  void complete(FrameIndex frame);

  /// Kernel dispatch target: gate entry `entry_index`'s window opens
  /// (EventType::kGateOpen).
  void gate_open(std::uint32_t entry_index);

  /// Kernel dispatch target: gate entry `entry_index`'s window closes
  /// (EventType::kGateClose).
  void gate_close(std::uint32_t entry_index);

  [[nodiscard]] const TransmitterStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t rt_backlog() const {
    return gated_ ? gated_rt_backlog_ : rt_queue_.size();
  }
  [[nodiscard]] std::size_t best_effort_backlog() const {
    return best_effort_queue_.size();
  }
  [[nodiscard]] std::uint64_t best_effort_dropped() const {
    return best_effort_queue_.dropped();
  }

 private:
  /// One armed window stream. A capacity-C channel owns C entries (one per
  /// in-period offset) that all drain the same per-channel FIFO, indexed by
  /// `queue_index` into `gate_queues_`.
  struct GateEntry {
    ChannelId channel{};
    Tick period_ticks{0};
    /// Absolute tick of the next (not yet opened) window start.
    Tick next_open{0};
    /// The channel's shared FIFO in `gate_queues_`.
    std::uint32_t queue_index{0};
  };

  /// No window currently holds the door.
  static constexpr std::uint32_t kNoGate = 0xffffffffU;

  /// Schedules the same-tick arbitration event (no-op when transmitting or
  /// already scheduled).
  void schedule_start();

  /// Starts the next transmission if idle and work is queued.
  void try_start();

  /// Gated-mode start decision: the open window's RT head if it fits the
  /// remaining window, else a best-effort frame if it fits the gap before
  /// every entry's next window.
  void try_start_gated();

  /// True when a transmission of `tx_ticks` starting at `now` overlaps no
  /// reserved window occurrence.
  [[nodiscard]] bool gate_clear(Tick now, Tick tx_ticks) const;

  Simulator& simulator_;
  const SimConfig& config_;
  std::string name_;
  Sink sink_;
  EdfQueue rt_queue_;
  FcfsQueue best_effort_queue_;
  bool busy_{false};
  /// An arbitration event is queued for the current tick.
  bool start_pending_{false};
  /// Time-triggered mode (install_gate_schedule was called).
  bool gated_{false};
  std::vector<GateEntry> gate_entries_;
  /// One FIFO per distinct gated channel (entries share by `queue_index`).
  std::vector<FcfsQueue> gate_queues_;
  /// Entry whose window is currently open (kNoGate between windows). One
  /// latch suffices: admitted windows on a link never overlap.
  std::uint32_t open_entry_{kNoGate};
  /// End tick of the currently open window.
  Tick open_until_{0};
  /// Frames held across every gate entry's FIFO.
  std::size_t gated_rt_backlog_{0};
  FaultFn fault_fn_{nullptr};
  void* fault_context_{nullptr};
  TransmitterStats stats_;
};

}  // namespace rtether::sim
