#pragma once

/// @file simulator.hpp
/// Discrete-event simulation kernel: a clock, a pooled frame arena, and a
/// time-ordered queue of fixed-size *typed* event records.
///
/// The closed set of simulation events (same-tick EDF arbitration,
/// transmission completion, switch ingress/forward, node delivery,
/// best-effort arrival) is dispatched by tag directly to the owning
/// component — no `std::function`, no virtual call, no per-event heap
/// allocation. Frames are referenced by `FrameIndex` into the arena, so an
/// event is a 48-byte POD carried by value. Higher layers (the `proto`
/// protocol timers) use `schedule_timer`, a raw function-pointer event that
/// is equally allocation-free; arbitrary closures remain available via
/// `schedule_at` for tests and cold setup paths, stored in a freelist of
/// reusable slots.
///
/// The queue is a bucketed calendar: a ring of `kWindowTicks` FIFO buckets
/// (one per tick of the near future) plus a binary min-heap for events
/// beyond the window. Insert and pop are O(1) for near events — the common
/// case; every in-flight transmission, propagation hop and arbitration
/// lands within a few slots — and the far heap migrates into the ring in
/// `(time, sequence)` order when the window advances, so the executed
/// order is *exactly* the total order `(time, sequence)` of the original
/// binary-heap kernel: bucket appends happen in monotonically increasing
/// sequence order (migration first, near inserts after), making every
/// bucket sequence-sorted by construction.
///
/// Events at the same tick therefore execute in scheduling order — the
/// exact tie-break of the original kernel — which keeps runs
/// bit-reproducible and preserves the same-tick arbitration semantics the
/// scenario fuzzer pinned down (see transmitter.hpp).

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/frame.hpp"

namespace rtether::sim {

class Transmitter;
class SimSwitch;
class SimNetwork;
class BestEffortSource;
class FaultInjector;

/// Tag of a typed event record. All but the last two are the simulation's
/// own closed event set; kTimer/kClosure are the escape hatches for higher
/// layers.
enum class EventType : std::uint8_t {
  /// Same-tick EDF arbitration on a Transmitter (PR-3 semantics: every
  /// release at tick T runs before the wire is granted, still at T).
  kArbitrate,
  /// A Transmitter finished pushing `frame` onto the wire.
  kTxComplete,
  /// `frame` reaches the switch after the uplink propagation delay.
  kSwitchIngress,
  /// Store-and-forward processing of `frame` finished; classify + queue.
  kSwitchForward,
  /// `frame` reaches its destination node after the downlink propagation
  /// delay (measurement point for the Eq 18.1 guarantee).
  kNodeDeliver,
  /// A BestEffortSource's next arrival fires.
  kBestEffortArrival,
  /// A FaultInjector's windowed fault event (aux) opens its window.
  kFaultArm,
  /// A FaultInjector's windowed fault event (aux) closes its window.
  kFaultDisarm,
  /// A gated Transmitter's gate entry (aux) opens its transmission window
  /// (time-triggered scheme; see Transmitter::install_gate_schedule).
  kGateOpen,
  /// A gated Transmitter's gate entry (aux) closes its window.
  kGateClose,
  /// Raw function-pointer timer (protocol layers); allocation-free.
  kTimer,
  /// Heap-stored `std::function` closure (tests, cold setup paths).
  kClosure,
};

class Simulator {
 public:
  // Closures are a cold setup/test convenience (EventKind::kClosure); the
  // hot path uses typed events and the pointer-based TimerFn below.
  // LINT-WAIVE(hot-path-type-erasure): deliberate cold-path type erasure.
  using Action = std::function<void()>;
  /// Allocation-free timer callback: `context` is the scheduling object,
  /// `arg` an opaque payload (request IDs, ...), `now` the firing tick.
  using TimerFn = void (*)(void* context, std::uint64_t arg, Tick now);

  /// Runaway guard shared by `run_all` and `run_until`.
  static constexpr std::uint64_t kDefaultMaxEvents = 100'000'000;

  /// Current simulation time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Pooled frame storage shared by every component on this kernel.
  [[nodiscard]] FrameArena& arena() { return arena_; }
  [[nodiscard]] const FrameArena& arena() const { return arena_; }

  /// Schedules a typed simulation event at absolute time `when` (≥ now).
  /// `target` must be the component matching `type`'s dispatch case.
  void schedule_event(Tick when, EventType type, void* target,
                      FrameIndex frame = kNoFrame, std::uint32_t aux = 0) {
    Event event;
    event.time = when;
    event.sequence = next_sequence_++;
    event.target = target;
    event.u.sim = {frame, aux};
    event.arg = 0;
    event.type = type;
    push(event);
  }

  /// Schedules an allocation-free function-pointer timer `delay` ticks out.
  void schedule_timer(Tick delay, TimerFn fn, void* context,
                      std::uint64_t arg = 0) {
    Event event;
    event.time = now_ + delay;
    event.sequence = next_sequence_++;
    event.target = context;
    event.u.timer = fn;
    event.arg = arg;
    event.type = EventType::kTimer;
    push(event);
  }

  /// Schedules `action` at absolute time `when` (≥ now). Cold path: the
  /// closure lives in a reusable slot until it fires.
  void schedule_at(Tick when, Action action);

  /// Schedules `action` `delay` ticks from now.
  void schedule_in(Tick delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Executes the next event; false when the queue is empty.
  bool step();

  /// Runs events with time ≤ `until`, bounded by `max_events` as a runaway
  /// guard (a same-tick self-rescheduling loop would otherwise spin
  /// forever below a fixed horizon). Returns true when every due event ran
  /// — the clock then ends at `until` even if the queue drained early —
  /// and false when the budget was exhausted first, leaving the remaining
  /// events queued and the clock at the last executed event.
  [[nodiscard]] bool run_until(Tick until,
                               std::uint64_t max_events = kDefaultMaxEvents);

  /// Runs until the queue is empty, bounded by `max_events` as a runaway
  /// guard. Returns true when the queue drained; false when the budget was
  /// exhausted first — identical behaviour in every build type, so a
  /// Release CI run stops with a failure instead of hanging. On false,
  /// `pending()` events remain queued and the simulation can be inspected
  /// or resumed.
  [[nodiscard]] bool run_all(std::uint64_t max_events = kDefaultMaxEvents);

  [[nodiscard]] bool empty() const {
    return near_count_ == 0 && far_heap_.empty();
  }
  [[nodiscard]] std::size_t pending() const {
    return near_count_ + far_heap_.size();
  }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Closure slots currently allocated (growth watermark for the
  /// zero-allocation bench; reused slots do not grow it).
  [[nodiscard]] std::size_t closure_slots() const {
    return closure_slots_.size();
  }

  /// Pre-sizes the event storage (benches that must not allocate after
  /// warm-up; bucket growth would otherwise allocate mid-run).
  /// `expected_pending` is the anticipated high-water mark of
  /// simultaneously pending events.
  void reserve_events(std::size_t expected_pending);

 private:
  /// Calendar ring extent: events within `now + kWindowTicks` sit in
  /// per-tick FIFO buckets; later ones wait in the far heap.
  static constexpr std::size_t kWindowBits = 12;
  static constexpr Tick kWindowTicks = Tick{1} << kWindowBits;
  static constexpr Tick kWindowMask = kWindowTicks - 1;

  /// Per-event payload of the typed cases; timers overlay their callback.
  struct SimPayload {
    FrameIndex frame;   // kNoFrame when the event carries no frame
    std::uint32_t aux;  // event-specific small payload (port, node)
  };

  /// Fixed-size 48-byte POD event record, carried by value — a bucket
  /// append or heap sift moves six words, never a closure.
  struct Event {
    Tick time;
    std::uint64_t sequence;  // tie-break: FIFO within a tick
    void* target;            // component / timer context
    union {
      SimPayload sim;  // typed simulation events
      TimerFn timer;   // kTimer only
    } u;
    std::uint64_t arg;  // kTimer payload / kClosure slot index
    EventType type;
  };

  void push(const Event& event);
  /// Positions `cursor_` on the next pending event (migrating the far
  /// heap when the window advances); false when no events remain. The
  /// window only ever jumps to an event that the caller pops immediately,
  /// so `window_start_ ≤ now_` holds whenever user code can schedule.
  [[nodiscard]] bool find_next();
  /// Executes the event `find_next` positioned on (shared pop protocol of
  /// step/run_until/run_all).
  void pop_and_dispatch();
  void far_push(const Event& event);
  void far_pop_into(Event& out);
  /// Advances the window so it starts at `start`, migrating far events
  /// that now fall inside it into their buckets (in (time, seq) order).
  void advance_window(Tick start);
  void dispatch(const Event& event);

  void mark_occupied(std::size_t index) {
    occupied_[index >> 6] |= std::uint64_t{1} << (index & 63);
    occupied_summary_ |= std::uint64_t{1} << (index >> 6);
  }
  void mark_empty(std::size_t index) {
    std::uint64_t& word = occupied_[index >> 6];
    word &= ~(std::uint64_t{1} << (index & 63));
    if (word == 0) {
      occupied_summary_ &= ~(std::uint64_t{1} << (index >> 6));
    }
  }
  /// Next occupied bucket index at or after `from` (cyclic);
  /// `kWindowTicks` when all buckets are empty.
  [[nodiscard]] std::size_t next_occupied(std::size_t from) const;

  [[nodiscard]] static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }

  Tick now_{0};
  std::uint64_t next_sequence_{0};
  std::uint64_t executed_{0};
  /// Calendar ring: bucket `t & kWindowMask` holds the events of tick `t`
  /// for `t` in `[window_start_, window_start_ + kWindowTicks)`, each in
  /// sequence order. Bucket vectors keep their capacity when cleared, so
  /// the steady-state loop never touches the allocator.
  std::vector<std::vector<Event>> buckets_{kWindowTicks};
  /// Two-level occupancy bitmap over the ring (64 words of 64 buckets):
  /// sparse schedules skip empty ticks in O(1) instead of scanning.
  std::array<std::uint64_t, kWindowTicks / 64> occupied_{};
  std::uint64_t occupied_summary_{0};
  /// Events pending across all buckets.
  std::size_t near_count_{0};
  /// Tick currently being drained/scanned; never passes the next pending
  /// event (inserts below it pull it back).
  Tick cursor_{0};
  /// Consumed prefix of the bucket at `cursor_`.
  std::size_t bucket_pos_{0};
  Tick window_start_{0};
  /// reserve_events' 4× high-water headroom has been applied (once).
  bool bucket_headroom_applied_{false};
  /// Min-heap on (time, sequence) for events at or past
  /// `window_start_ + kWindowTicks`.
  std::vector<Event> far_heap_;
  /// Freelist-backed closure storage for kClosure events.
  std::vector<Action> closure_slots_;
  std::vector<std::uint32_t> free_closure_slots_;
  FrameArena arena_;
};

}  // namespace rtether::sim
