#include "scenario/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <thread>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"

namespace rtether::scenario {

namespace {

/// Cross-worker result accumulation. `GUARDED_BY` makes the folding
/// protocol machine-checked: under Clang `-Wthread-safety` a worker cannot
/// touch the shared result without holding the mutex on every path.
struct Accumulator {
  Mutex mutex;
  CampaignResult result GUARDED_BY(mutex);
};

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  const auto deadline =
      config.time_budget_seconds > 0.0
          ? started + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              config.time_budget_seconds))
          : Clock::time_point::max();

  unsigned threads = config.threads;
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  // A single worker thread buys nothing over inline execution (and inline
  // keeps single-threaded campaigns trivially deterministic to debug).
  ThreadPool pool(threads <= 1 ? 0U : threads);

  Accumulator acc;
  std::atomic<bool> out_of_time{false};

  pool.parallel_for_shards(config.scenario_count, [&](std::size_t index) {
    if (out_of_time.load(std::memory_order_relaxed)) return;
    if (Clock::now() >= deadline) {
      out_of_time.store(true, std::memory_order_relaxed);
      return;
    }
    const std::uint64_t seed = config.base_seed + index;
    const ScenarioSpec spec = generate_scenario(config.generator, seed);
    const ScenarioResult run = run_scenario(spec, config.runner);

    MutexLock lock(acc.mutex);
    CampaignResult& result = acc.result;
    ++result.scenarios_run;
    result.ops_total += spec.ops.size();
    result.admitted_total += run.admitted;
    result.frames_delivered_total += run.frames_delivered;
    result.simulated_slots_total += run.simulated_slots;
    for (std::size_t kind = 0; kind < run.fault_injections.size(); ++kind) {
      result.fault_injections_total[kind] += run.fault_injections[kind];
    }
    result.oracle_checks_total += run.oracle_checks;
    // Rotate the fields so (events, hash) pairs cannot cancel across
    // scenarios; XOR keeps the fold order-independent.
    result.sim_digest_xor ^= run.sim_digest.link_stats_hash ^
                             (run.sim_digest.executed_events * seed) ^
                             std::rotl(run.sim_digest.rt_delivered, 17) ^
                             std::rotl(run.sim_digest.best_effort_sent, 31);
    if (!run.passed) {
      ++result.failures;
      // Keep the max_failures *lowest* seeds (sorted insert + trim), not
      // the first to finish — the kept set must be identical across thread
      // interleavings.
      CampaignFailure failure;
      failure.seed = seed;
      failure.detail = run.violations.empty()
                           ? "unknown failure"
                           : run.violations.front().to_string();
      auto& failing = result.failing;
      const auto at = std::lower_bound(
          failing.begin(), failing.end(), failure.seed,
          [](const CampaignFailure& f, std::uint64_t s) { return f.seed < s; });
      if (at != failing.end() || failing.size() < config.max_failures) {
        failure.spec = spec;
        failing.insert(at, std::move(failure));
        if (failing.size() > config.max_failures) {
          failing.pop_back();
        }
      }
    }
  });

  // The fork-join above is the synchronization point: every worker is done,
  // so move the accumulated result out under the lock and drop the lock for
  // the single-threaded epilogue.
  CampaignResult result;
  {
    MutexLock lock(acc.mutex);
    result = std::move(acc.result);
  }

  result.time_budget_hit = out_of_time.load(std::memory_order_relaxed);
  // Throughput metrics cover the campaign itself; shrinking failures is
  // diagnostic work accounted separately, so a red campaign's
  // scenarios/sec stays comparable with a green one's.
  result.seconds =
      std::chrono::duration<double>(Clock::now() - started).count();

  if (config.shrink_failures) {
    ShrinkOptions shrink_options;
    shrink_options.runner = config.runner;
    for (auto& failure : result.failing) {
      failure.minimized =
          shrink_scenario(failure.spec, shrink_options).minimized;
    }
  }
  result.shrink_seconds =
      std::chrono::duration<double>(Clock::now() - started).count() -
      result.seconds;
  return result;
}

}  // namespace rtether::scenario
