#include "sim/fault.hpp"

#include "common/assert.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/switch.hpp"
#include "sim/transmitter.hpp"

namespace rtether::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kFrameLoss:
      return "frame-loss";
    case FaultKind::kFrameCorrupt:
      return "frame-corrupt";
    case FaultKind::kSwitchReboot:
      return "switch-reboot";
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kMgmtDelay:
      return "mgmt-delay";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view text) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    if (text == to_string(kind)) return kind;
  }
  return std::nullopt;
}

/// Bridges the raw Transmitter::FaultFn hook to FaultInjector::decide
/// (LinkContext is private; this struct is a friend).
struct FaultHookBridge {
  static Transmitter::FaultDecision hook(void* context, const SimFrame& frame,
                                         Tick /*now*/) {
    auto* link = static_cast<FaultInjector::LinkContext*>(context);
    const FaultInjector::Decision decision =
        link->injector->decide(*link, frame);
    Transmitter::FaultDecision out;
    out.drop = decision.drop;
    out.corrupt = decision.corrupt;
    out.extra_delay = decision.extra_delay;
    return out;
  }
};

void FaultInjector::install(SimNetwork& network,
                            const std::vector<FaultEvent>& events,
                            Tick run_start) {
  RTETHER_ASSERT_MSG(links_.empty(), "FaultInjector::install runs once");
  events_ = events;
  active_.assign(events_.size(), false);

  // One stable context per link: node uplinks first, then switch ports.
  // The vector is sized up front — the raw hook keeps the address.
  const std::uint32_t nodes = network.node_count();
  links_.reserve(2 * static_cast<std::size_t>(nodes));
  Simulator& simulator = network.simulator();
  for (std::uint32_t n = 0; n < nodes; ++n) {
    links_.push_back(LinkContext{this, NodeId{n}, /*downlink=*/false});
    network.node(NodeId{n}).uplink().set_fault_hook(&FaultHookBridge::hook,
                                                    &links_.back());
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    links_.push_back(LinkContext{this, NodeId{n}, /*downlink=*/true});
    network.ethernet_switch()
        .port(NodeId{n})
        .set_fault_hook(&FaultHookBridge::hook, &links_.back());
  }

  for (std::uint32_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& event = events_[i];
    switch (event.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kFrameLoss:
      case FaultKind::kFrameCorrupt: {
        const Tick open =
            run_start + network.config().slots_to_ticks(event.at_slot);
        const Tick close =
            open + network.config().slots_to_ticks(event.duration_slots);
        simulator.schedule_event(open, EventType::kFaultArm, this, kNoFrame,
                                 i);
        simulator.schedule_event(close, EventType::kFaultDisarm, this,
                                 kNoFrame, i);
        break;
      }
      case FaultKind::kMgmtDelay:
        // Active for the whole scenario: the runner replays ops one at a
        // time (a single management exchange in flight), so delaying and
        // reordering management frames is provably outcome-neutral — the
        // contract test for this class pins exactly that.
        active_[i] = true;
        break;
      case FaultKind::kSwitchReboot:
      case FaultKind::kNodeCrash:
        // Structural: executed by the runner between run segments (their
        // recovery protocol steps the simulator itself); counted via
        // record_structural.
        break;
    }
  }
}

FaultInjector::Decision FaultInjector::decide(const LinkContext& link,
                                              const SimFrame& frame) {
  Decision decision;
  const bool management = frame.info.cls == FrameClass::kManagement;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (!active_[i]) continue;
    const FaultEvent& event = events_[i];
    if (event.node != link.node) continue;
    if (management) {
      // Management frames are never lost or corrupted — establishment and
      // teardown must always terminate — only delayed (kMgmtDelay, both
      // link directions of the faulted node).
      if (event.kind == FaultKind::kMgmtDelay) {
        const Tick extra = Tick{rng_.uniform(0, event.delay_ticks)};
        if (extra > 0) {
          ++injections_[index_of(FaultKind::kMgmtDelay)];
        }
        decision.extra_delay += extra;
      }
      continue;
    }
    // Data frames (RT and best-effort) on the faulted direction.
    switch (event.kind) {
      case FaultKind::kLinkDown:
        if (event.downlink == link.downlink) {
          ++injections_[index_of(FaultKind::kLinkDown)];
          decision.drop = true;
        }
        break;
      case FaultKind::kFrameLoss:
        if (event.downlink == link.downlink &&
            rng_.bernoulli(event.probability)) {
          ++injections_[index_of(FaultKind::kFrameLoss)];
          decision.drop = true;
        }
        break;
      case FaultKind::kFrameCorrupt:
        if (event.downlink == link.downlink &&
            rng_.bernoulli(event.probability)) {
          ++injections_[index_of(FaultKind::kFrameCorrupt)];
          decision.corrupt = true;
        }
        break;
      case FaultKind::kSwitchReboot:
      case FaultKind::kNodeCrash:
      case FaultKind::kMgmtDelay:
        break;
    }
  }
  return decision;
}

}  // namespace rtether::sim
