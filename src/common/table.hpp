#pragma once

/// @file table.hpp
/// Aligned console tables — the bench harness prints every reproduced
/// paper table/figure as one of these.

#include <cstdint>
#include <string>
#include <vector>

namespace rtether {

/// Column-aligned text table with a title row, header row and rule lines.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header; must be called before any row.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string / passes strings through.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({format_cell(cells)...});
  }

  /// Renders the table to a string (trailing newline included).
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  template <typename T>
  static std::string format_cell(const T& v) {
    return std::to_string(v);
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtether
