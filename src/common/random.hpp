#pragma once

/// @file random.hpp
/// Deterministic, seedable pseudo-randomness.
///
/// Experiments must be bit-reproducible across platforms and standard-library
/// versions, so the library carries its own generator (xoshiro256**) and its
/// own distributions instead of relying on `<random>`'s unspecified
/// distribution algorithms.

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rtether {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, tiny state.
class Rng {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi], inclusive; unbiased (rejection sampling).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform in [0, n); n > 0.
  std::uint64_t index(std::uint64_t n) { return uniform(0, n - 1); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform_real();

  /// True with probability p (p clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      using std::swap;
      swap(v[i], v[static_cast<std::size_t>(uniform(0, i))]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    RTETHER_ASSERT(!v.empty());
    return v[static_cast<std::size_t>(index(v.size()))];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rtether
