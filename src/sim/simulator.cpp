#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace rtether::sim {

void Simulator::schedule_at(Tick when, Action action) {
  RTETHER_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  queue_.push(Event{when, next_sequence_++, std::move(action)});
}

void Simulator::schedule_in(Tick delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top is const; the action is moved out via const_cast,
  // which is safe because the element is popped before the action runs.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

void Simulator::run_until(Tick until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

bool Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (executed == max_events) {
      // Runaway guard: report instead of aborting, in every build type —
      // callers (and CI Release runs) decide how to fail.
      return false;
    }
    step();
    ++executed;
  }
  return true;
}

}  // namespace rtether::sim
