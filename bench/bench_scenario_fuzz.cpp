/// Scenario-fuzzing campaign driver + throughput bench.
///
/// Runs a seed-replayable conformance campaign (see src/scenario/) and
/// reports scenario throughput so fuzzing capacity joins the repo's perf
/// trajectory (BENCH_scenario_fuzz.json). Any failing scenario makes the
/// exit code non-zero and dumps the failing seed plus its shrunk, minimized
/// spec under --out-dir — the nightly CI job uploads that directory as an
/// artifact.
///
/// Usage:
///   bench_scenario_fuzz [scenarios] [threads] [json] [seconds] [base_seed]
///       [--out-dir DIR]
///
///   scenarios  campaign size (default 10000)
///   threads    worker threads, 0 = hardware (default 0)
///   json       BENCH JSON path (default BENCH_scenario_fuzz.json)
///   seconds    wall-clock budget, 0 = unbounded (default 0) — the nightly
///              job passes 60
///   base_seed  first seed (default 1); scenario i replays seed base+i
///   --out-dir  where failing seeds/specs are written (default
///              scenario_failures)
///   --profile  workload profile: "mixed" (default), "churn" — the
///              churn-heavy steady-state admit/release campaign the nightly
///              job runs alongside the mixed one — or "faults", where every
///              scenario carries a fault plan (link down, loss, corruption,
///              switch reboot, node crash, management delay) and the runner
///              enforces the survival contract
///   --scheme   pin the admission scheme for every seed; "tt" (the only
///              accepted value) runs the time-triggered gate-schedule
///              campaign — star topology, zero-miss/zero-jitter oracle,
///              windowed-fault garnish
///   --backend KIND
///              append an extra `core::AdmissionBackend` kind (e.g.
///              "service") to the runner's conformance set — every
///              scenario then also diffs that backend against the
///              sequential controller; repeatable
///   --min-slots-per-sec N
///              sim-slot throughput gate: exit non-zero when a green
///              campaign of ≥1000 scenarios sustained fewer than N
///              simulated slots per second. The PR CI bench job passes
///              250000 — half of what one thread of the typed event kernel
///              sustains on the 10k mixed campaign (≈520k/s), so the gate
///              keeps ≥2× headroom even on a 1-core runner. 0 disables.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/json_writer.hpp"
#include "core/admission_backend.hpp"
#include "core/partitioner.hpp"
#include "scenario/campaign.hpp"
#include "scenario/json_io.hpp"

using namespace rtether;

namespace {

/// Strict numeric argv parsing: a typo'd count ("10k", a flag value gone
/// missing) must fail the invocation, not silently become a 0-scenario
/// campaign that exits green having tested nothing.
bool parse_u64_arg(const char* text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end != text && *end == '\0';
}

bool parse_double_arg(const char* text, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(text, &end);
  return errno == 0 && end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  scenario::CampaignConfig config;
  config.scenario_count = 10'000;
  config.threads = 0;
  std::string json_path = "BENCH_scenario_fuzz.json";
  std::string out_dir = "scenario_failures";

  int positional = 0;
  bool ok = true;
  std::string profile = "mixed";
  double min_slots_per_sec = 0.0;
  for (int i = 1; i < argc && ok; ++i) {
    if (std::strcmp(argv[i], "--out-dir") == 0) {
      ok = i + 1 < argc;
      if (ok) out_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--min-slots-per-sec") == 0) {
      ok = i + 1 < argc && parse_double_arg(argv[i + 1], min_slots_per_sec);
      if (ok) ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--backend") == 0) {
      ok = i + 1 < argc;
      if (ok) {
        const std::string kind = argv[++i];
        // Validate up front: a typo'd kind must fail the invocation, not
        // every scenario of a 10k campaign.
        ok = core::make_admission_backend(kind, 2,
                                          core::make_partitioner("SDPS")) !=
             nullptr;
        if (ok) config.runner.backends.push_back(kind);
      }
      continue;
    }
    if (std::strcmp(argv[i], "--scheme") == 0) {
      // Pin the admission scheme instead of drawing it per seed. Only the
      // time-triggered gate-schedule backend needs this (the EDF schemes
      // are covered by the profile draw); "tt" selects the star-only
      // TT generator profile with windowed-fault garnish.
      ok = i + 1 < argc;
      if (ok) {
        const std::string scheme = argv[++i];
        ok = scheme == "tt" || scheme == "TT";
        if (ok) {
          config.generator.profile =
              scenario::GeneratorProfile::kTimeTriggered;
          profile = "tt";
        }
      }
      continue;
    }
    if (std::strcmp(argv[i], "--profile") == 0) {
      ok = i + 1 < argc;
      if (ok) {
        profile = argv[++i];
        if (profile == "mixed") {
          config.generator.profile = scenario::GeneratorProfile::kMixed;
        } else if (profile == "churn") {
          config.generator.profile = scenario::GeneratorProfile::kChurnHeavy;
          // Longer op streams: steady-state churn needs room to reach and
          // hold saturation, not just ramp up.
          config.generator.max_ops = 96;
        } else if (profile == "faults") {
          config.generator.profile = scenario::GeneratorProfile::kFaultHeavy;
        } else {
          ok = false;
        }
      }
      continue;
    }
    std::uint64_t value = 0;
    switch (positional++) {
      case 0:
        ok = parse_u64_arg(argv[i], value);
        config.scenario_count = static_cast<std::size_t>(value);
        break;
      case 1:
        ok = parse_u64_arg(argv[i], value) && value <= 4096;
        config.threads = static_cast<unsigned>(value);
        break;
      case 2:
        json_path = argv[i];
        break;
      case 3:
        ok = parse_double_arg(argv[i], config.time_budget_seconds);
        break;
      case 4:
        ok = parse_u64_arg(argv[i], config.base_seed);
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "usage: bench_scenario_fuzz [scenarios] [threads] [json] "
                 "[seconds] [base_seed] [--out-dir DIR] "
                 "[--profile mixed|churn|faults] [--scheme tt] "
                 "[--backend KIND] [--min-slots-per-sec N]\n");
    return 64;
  }

  std::printf(
      "scenario fuzz campaign: %zu scenarios, %u threads (0=hw), base seed "
      "%llu, profile %s%s\n",
      config.scenario_count, config.threads,
      static_cast<unsigned long long>(config.base_seed), profile.c_str(),
      config.time_budget_seconds > 0.0 ? ", time-bounded" : "");

  const auto result = scenario::run_campaign(config);

  std::printf(
      "ran %zu scenarios in %.2f s: %.0f scenarios/s, %.0f simulated "
      "slots/s\n",
      result.scenarios_run, result.seconds, result.scenarios_per_second(),
      result.simulated_slots_per_second());
  std::printf(
      "  ops=%llu admitted=%llu frames_delivered=%llu failures=%zu%s\n",
      static_cast<unsigned long long>(result.ops_total),
      static_cast<unsigned long long>(result.admitted_total),
      static_cast<unsigned long long>(result.frames_delivered_total),
      result.failures,
      result.time_budget_hit ? " (time budget hit)" : "");

  if (!result.failing.empty()) {
    std::filesystem::create_directories(out_dir);
    for (const auto& failure : result.failing) {
      const std::string stem =
          out_dir + "/seed-" + std::to_string(failure.seed);
      if (!scenario::save_scenario(failure.spec, stem + ".json") ||
          !scenario::save_scenario(failure.minimized, stem + ".min.json")) {
        std::fprintf(stderr, "FAILED to write %s\n", stem.c_str());
      }
      std::printf("FAILING seed %llu: %s\n  spec: %s\n  min:  %s\n",
                  static_cast<unsigned long long>(failure.seed),
                  failure.detail.c_str(), (stem + ".json").c_str(),
                  (stem + ".min.json").c_str());
    }
  }

  JsonWriter json;
  json.begin_object();
  json.member("bench", "scenario_fuzz");
  json.member("profile", profile);
  json.member("campaign_size",
              static_cast<std::uint64_t>(config.scenario_count));
  json.member("scenarios_run",
              static_cast<std::uint64_t>(result.scenarios_run));
  json.member("threads", static_cast<std::uint64_t>(config.threads));
  json.member("base_seed", config.base_seed);
  json.member("seconds", result.seconds);
  json.member("shrink_seconds", result.shrink_seconds);
  json.member("scenarios_per_sec", result.scenarios_per_second());
  json.member("sim_slots_per_sec", result.simulated_slots_per_second());
  json.member("ops_total", result.ops_total);
  json.member("admitted_total", result.admitted_total);
  json.member("frames_delivered_total", result.frames_delivered_total);
  json.member("failures", static_cast<std::uint64_t>(result.failures));
  json.member("oracle_checks", result.oracle_checks_total);
  json.member("time_budget_hit", result.time_budget_hit);
  json.member("sim_digest_xor", result.sim_digest_xor);
  json.member("min_slots_per_sec_gate", min_slots_per_sec);
  json.key("failing_seeds").begin_array();
  for (const auto& failure : result.failing) {
    json.value(failure.seed);
  }
  json.end_array();
  json.end_object();
  if (!json.write_file(json_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (result.failures != 0) {
    return 1;
  }
  // Throughput gate (campaigns below 1000 scenarios are too noisy to
  // gate — pool spin-up and shrink time dominate).
  if (min_slots_per_sec > 0.0 && result.scenarios_run >= 1000 &&
      result.simulated_slots_per_second() < min_slots_per_sec) {
    std::printf("FAIL: %.0f simulated slots/s below the %.0f gate\n",
                result.simulated_slots_per_second(), min_slots_per_sec);
    return 2;
  }
  return 0;
}
