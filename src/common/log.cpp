#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace rtether {

namespace {

// Atomic protocol, not a mutex capability: the level is a monotonic-ish
// tuning knob read on every log call site; relaxed ordering suffices
// because no other state is published through it (each log line is
// self-contained and fprintf(stderr) is atomic per call). Kept mutex-free
// so logging never introduces a lock-order edge into annotated code.
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!log_enabled(level)) {
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace rtether
