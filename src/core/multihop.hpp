#pragma once

/// @file multihop.hpp
/// k-hop generalization of the paper's deadline partitioning and admission
/// control (future work of §18.5). A channel crossing k directed links
/// splits its deadline into k parts with Σd_j = d_i (Eq 18.8 generalized)
/// and d_j ≥ C_i on every hop (Eq 18.9 generalized — hence d_i ≥ k·C_i for
/// a path of k store-and-forward hops). Per-link EDF feasibility is tested
/// exactly as in the two-link case; the soundness argument is hop-by-hop
/// identical because every queue sorts by the *global* absolute deadline
/// carried in the frame header (see DESIGN.md, "Per-hop EDF keys").

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "core/admission.hpp"
#include "core/channel.hpp"
#include "core/id_allocator.hpp"
#include "core/topology.hpp"
#include "edf/feasibility.hpp"
#include "edf/task_set.hpp"

namespace rtether::core {

/// An admitted multi-hop channel: its path and per-hop deadline budgets
/// (parallel arrays; deadlines[j] belongs to path[j]).
struct MultihopChannel {
  ChannelId id;
  ChannelSpec spec;
  std::vector<LinkId> path;
  std::vector<Slot> deadlines;

  /// Generalized Eq 18.8/18.9 check.
  [[nodiscard]] bool partition_valid() const;
};

/// Per-link task sets over a fabric (the multi-switch "system state").
class PathNetworkState {
 public:
  explicit PathNetworkState(Topology topology);

  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Task set on a directed link (an empty static set if never used).
  [[nodiscard]] const edf::TaskSet& link(const LinkId& id) const;

  /// LinkLoad: channels traversing the directed link.
  [[nodiscard]] std::size_t link_load(const LinkId& id) const {
    return link(id).size();
  }

  void add_channel(const MultihopChannel& channel);
  bool remove_channel(ChannelId id);
  [[nodiscard]] std::optional<MultihopChannel> find_channel(
      ChannelId id) const;
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

 private:
  Topology topology_;
  std::unordered_map<LinkId, edf::TaskSet> links_;
  std::unordered_map<ChannelId, MultihopChannel> channels_;
};

/// Splits a deadline across a path. Implementations must return budgets
/// satisfying the generalized Eqs 18.8/18.9 for any spec with
/// deadline ≥ path_length · capacity.
class PathPartitioner {
 public:
  virtual ~PathPartitioner() = default;

  /// Per-hop budgets (same length/order as `path`).
  [[nodiscard]] virtual std::vector<Slot> split(
      const ChannelSpec& spec, const std::vector<LinkId>& path,
      const PathNetworkState& state) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Largest-remainder apportionment of `deadline` over `weights` with a
  /// lower bound of `capacity` per hop: every budget ≥ capacity, budgets
  /// sum exactly to `deadline`, surplus distributed ∝ weights.
  [[nodiscard]] static std::vector<Slot> apportion(
      Slot deadline, Slot capacity, const std::vector<double>& weights);
};

/// SDPS over k hops: equal split (the paper's Eq 18.14 generalized).
class SymmetricPathPartitioner final : public PathPartitioner {
 public:
  [[nodiscard]] std::vector<Slot> split(
      const ChannelSpec& spec, const std::vector<LinkId>& path,
      const PathNetworkState& state) const override;
  [[nodiscard]] std::string name() const override { return "SDPS"; }
};

/// ADPS over k hops: split ∝ LinkLoad of each hop (+1 for the requested
/// channel itself, as in the two-link implementation).
class AsymmetricPathPartitioner final : public PathPartitioner {
 public:
  [[nodiscard]] std::vector<Slot> split(
      const ChannelSpec& spec, const std::vector<LinkId>& path,
      const PathNetworkState& state) const override;
  [[nodiscard]] std::string name() const override { return "ADPS"; }
};

/// Factory: "SDPS" or "ADPS".
[[nodiscard]] std::unique_ptr<PathPartitioner> make_path_partitioner(
    const std::string& name);

/// Admission control over a fabric: route, split, per-link two-constraint
/// feasibility on every hop, commit or reject with no residue.
///
/// Under the default `kCheckpoints` scan each directed link carries an
/// `edf::LinkScanCache`, exactly like the star engines: a hop's trial is an
/// O(checkpoints) merge-walk (`check_with`), an accepted channel `commit`s
/// into every hop's cache and a release `downdate`s them — the k-hop
/// generalization of the star release fast path, maintained through the
/// shared `core::admission_internal` helpers. Decisions and diagnostics are
/// bit-identical to the from-scratch `check_feasibility` per hop (the
/// pre-cache behavior); other scan strategies still take that reference
/// path.
class PathAdmissionController {
 public:
  PathAdmissionController(Topology topology,
                          std::unique_ptr<PathPartitioner> partitioner,
                          AdmissionConfig config = {});

  [[nodiscard]] Expected<MultihopChannel, Rejection> request(
      const ChannelSpec& spec);

  /// Releases an established channel; typed `kUnknownChannel` rejection if
  /// the ID is not live. O(affected hops): every traversed link's cache is
  /// downdated in place.
  [[nodiscard]] ReleaseOutcome release(ChannelId id);

  /// Pre-typed-outcome release shape; kept one release for callers still
  /// migrating to `ReleaseOutcome` / the `AdmissionBackend` surface.
  [[deprecated("use release(); it reports a typed ReleaseOutcome")]]
  bool release_ok(ChannelId id) {
    return release(id).has_value();
  }

  [[nodiscard]] const PathNetworkState& state() const { return state_; }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }

 private:
  PathNetworkState state_;
  std::unique_ptr<PathPartitioner> partitioner_;
  AdmissionConfig config_;
  ChannelIdAllocator ids_;
  AdmissionStats stats_;
  /// Per-directed-link scan caches (kCheckpoints scans only). A link absent
  /// here is in the default-constructed state, which shadows the empty task
  /// set `PathNetworkState::link` reports for untouched links.
  std::unordered_map<LinkId, edf::LinkScanCache> caches_;
};

}  // namespace rtether::core
