// Determinism suite for the typed event kernel: identical seeds must give
// bit-identical simulation outcomes — executed-event counts, per-link
// stats, delivery records and miss/loss verdicts — across repeated runs
// and across campaign thread counts; and five corpus entries (three EDF,
// two time-triggered) are pinned to golden SimDigests, the EDF three
// captured from the seed (`std::function`) kernel, so
// a kernel refactor cannot silently shift sim semantics: any change to
// event ordering, queue service order or measurement shows up here as a
// digest mismatch with a replayable spec.

#include <gtest/gtest.h>

#include <string>

#include "scenario/campaign.hpp"
#include "scenario/generator.hpp"
#include "scenario/json_io.hpp"
#include "scenario/runner.hpp"

namespace rtether::scenario {
namespace {

ScenarioSpec load_corpus(const std::string& name) {
  const std::string path = std::string(RTETHER_SCENARIO_CORPUS_DIR) + "/" + name;
  const auto spec = load_scenario(path);
  EXPECT_TRUE(spec.has_value()) << "failed to load " << path;
  return spec.value_or(ScenarioSpec{});
}

TEST(SimDeterminism, IdenticalSeedGivesIdenticalDigest) {
  GeneratorConfig config;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ScenarioSpec spec = generate_scenario(config, seed);
    const ScenarioResult first = run_scenario(spec);
    const ScenarioResult second = run_scenario(spec);
    EXPECT_EQ(first.passed, second.passed) << "seed " << seed;
    EXPECT_EQ(first.sim_digest, second.sim_digest) << "seed " << seed;
    EXPECT_EQ(first.frames_delivered, second.frames_delivered)
        << "seed " << seed;
    EXPECT_EQ(first.simulated_slots, second.simulated_slots)
        << "seed " << seed;
  }
}

TEST(SimDeterminism, TtCampaignFingerprintIsThreadCountIndependent) {
  // Same contract for the time-triggered profile: gate-event scheduling,
  // epoch anchoring and the zero-jitter audit must not read anything
  // thread-dependent. (Seeds here overlap the EDF campaign's on purpose —
  // the TT profile expands them into a different scenario stream.)
  CampaignConfig config;
  config.scenario_count = 48;
  config.generator.profile = GeneratorProfile::kTimeTriggered;
  CampaignResult results[3];
  const unsigned threads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    config.threads = threads[i];
    results[i] = run_campaign(config);
  }
  EXPECT_EQ(results[0].failures, 0U);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[i].failures, results[0].failures);
    EXPECT_EQ(results[i].admitted_total, results[0].admitted_total);
    EXPECT_EQ(results[i].frames_delivered_total,
              results[0].frames_delivered_total);
    EXPECT_EQ(results[i].sim_digest_xor, results[0].sim_digest_xor)
        << "TT -j" << threads[i] << " diverged from -j1";
  }
}

TEST(SimDeterminism, CampaignFingerprintIsThreadCountIndependent) {
  // The per-scenario sims are single-threaded; the campaign fans scenarios
  // across a pool. Every aggregate — including the XOR-folded SimDigest —
  // must be identical no matter how many workers raced.
  CampaignConfig config;
  config.scenario_count = 48;
  CampaignResult results[3];
  const unsigned threads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    config.threads = threads[i];
    results[i] = run_campaign(config);
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[i].failures, results[0].failures);
    EXPECT_EQ(results[i].scenarios_run, results[0].scenarios_run);
    EXPECT_EQ(results[i].ops_total, results[0].ops_total);
    EXPECT_EQ(results[i].admitted_total, results[0].admitted_total);
    EXPECT_EQ(results[i].frames_delivered_total,
              results[0].frames_delivered_total);
    EXPECT_EQ(results[i].simulated_slots_total,
              results[0].simulated_slots_total);
    EXPECT_EQ(results[i].sim_digest_xor, results[0].sim_digest_xor)
        << "-j" << threads[i] << " diverged from -j1";
  }
}

// Golden pins: SimDigests recorded under the seed kernel (PR 4 tree, the
// std::function binary-heap simulator) for three corpus entries covering
// RT-only, RT + best-effort cross-traffic, and admit/release churn. The
// typed calendar-queue kernel must reproduce them bit-for-bit. If a future
// change breaks these *intentionally* (a semantic fix with a fuzzer-found
// counterexample, like PR 3's same-tick arbitration), re-record the values
// and say why in the commit.

struct GoldenDigest {
  const char* file;
  SimDigest digest;
  std::uint64_t frames_delivered;
  std::uint64_t simulated_slots;
};

const GoldenDigest kGolden[] = {
    {"fuzz-2.json",
     {15947, 28, 0, 1953, 1953, 0xf7624fb728856bb9ULL},
     28,
     346},
    {"fuzz-5.json",
     {2816, 299, 0, 0, 0, 0x1840ccaec65d6a18ULL},
     299,
     453},
    {"churn-steady-state.json",
     {1509, 73, 0, 0, 0, 0xb9ec6a610ad5c195ULL},
     73,
     389},
    // Time-triggered entries, recorded at the introduction of the TT
    // backend: the gate-schedule slot table makes the wire fully static, so
    // these digests pin gate-event ordering, the epoch anchoring and the
    // non-work-conserving transmitter on top of the kernel semantics.
    {"tt-churn.json",
     {2712, 199, 0, 0, 0, 0xcdf96b7e05c6d898ULL},
     199,
     340},
    {"tt-best-effort.json",
     {6450, 84, 0, 653, 653, 0xaacfbd8646a2df27ULL},
     84,
     296},
    // Fabric entries, recorded at the introduction of the partitioned
    // parallel kernel: multi-switch line/tree topologies whose simulation
    // phase runs the barrier-round PDES driver. These pin the fabric's
    // event ordering, per-hop EDF service, cut-link record injection and
    // the fault hooks — under every fabric thread count (the digest is
    // thread-count independent by construction; the determinism tests
    // above enforce that separately).
    {"fabric-tree.json",
     {2644, 282, 0, 0, 0, 0xd881cef282055bb9ULL},
     282,
     436},
    {"fabric-line-best-effort-fault.json",
     {1711, 103, 0, 61, 61, 0xfeb81846e26d0fd3ULL},
     103,
     320},
    {"fabric-tree-fault.json",
     {1915, 187, 0, 0, 0, 0x3b039c24a2e48432ULL},
     187,
     327},
};

TEST(SimDeterminism, GoldenDigestsMatchSeedKernel) {
  for (const GoldenDigest& golden : kGolden) {
    const ScenarioSpec spec = load_corpus(golden.file);
    const ScenarioResult result = run_scenario(spec);
    EXPECT_TRUE(result.passed) << golden.file;
    EXPECT_EQ(result.sim_digest.executed_events,
              golden.digest.executed_events)
        << golden.file;
    EXPECT_EQ(result.sim_digest.rt_delivered, golden.digest.rt_delivered)
        << golden.file;
    EXPECT_EQ(result.sim_digest.deadline_misses,
              golden.digest.deadline_misses)
        << golden.file;
    EXPECT_EQ(result.sim_digest.best_effort_sent,
              golden.digest.best_effort_sent)
        << golden.file;
    EXPECT_EQ(result.sim_digest.best_effort_delivered,
              golden.digest.best_effort_delivered)
        << golden.file;
    EXPECT_EQ(result.sim_digest.link_stats_hash,
              golden.digest.link_stats_hash)
        << golden.file << ": per-link stats diverged from the seed kernel";
    EXPECT_EQ(result.frames_delivered, golden.frames_delivered)
        << golden.file;
    EXPECT_EQ(result.simulated_slots, golden.simulated_slots) << golden.file;
  }
}

// --- Fabric (partitioned parallel kernel) determinism --------------------
// The PDES contract: the partitioned kernel's digest is a pure function of
// the spec — the fabric thread count (including 0, the inline sequential
// baseline) must never show through. Conservative barrier rounds make this
// true by construction; these tests pin it empirically.

TEST(SimDeterminism, FabricDigestIsFabricThreadCountIndependent) {
  GeneratorConfig config;
  config.profile = GeneratorProfile::kFabric;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ScenarioSpec spec = generate_scenario(config, seed);
    RunnerOptions options;
    options.fabric_threads = 0;  // sequential baseline
    const ScenarioResult baseline = run_scenario(spec, options);
    EXPECT_TRUE(baseline.passed)
        << "seed " << seed << ": "
        << (baseline.violations.empty()
                ? std::string("?")
                : baseline.violations.front().to_string());
    EXPECT_GE(baseline.fabric_partitions, 2U) << "seed " << seed;
    for (unsigned threads : {1U, 2U, 4U}) {
      options.fabric_threads = threads;
      const ScenarioResult result = run_scenario(spec, options);
      EXPECT_EQ(result.passed, baseline.passed)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(result.sim_digest, baseline.sim_digest)
          << "seed " << seed << ": fabric_threads=" << threads
          << " diverged from the sequential baseline";
      EXPECT_EQ(result.frames_delivered, baseline.frames_delivered)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(result.cut_link_records, baseline.cut_link_records)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(SimDeterminism, FabricCampaignFingerprintIsThreadCountIndependent) {
  // Two axes at once: campaign workers (scenarios raced across a pool) and
  // fabric worker threads inside each scenario's simulation. The XOR-folded
  // fingerprint must not move on either axis.
  CampaignConfig config;
  config.scenario_count = 24;
  config.generator.profile = GeneratorProfile::kFabric;
  struct Case {
    unsigned campaign_threads;
    unsigned fabric_threads;
  };
  const Case cases[] = {{1, 0}, {2, 2}, {4, 4}};
  CampaignResult results[3];
  for (int i = 0; i < 3; ++i) {
    config.threads = cases[i].campaign_threads;
    config.runner.fabric_threads = cases[i].fabric_threads;
    results[i] = run_campaign(config);
  }
  EXPECT_EQ(results[0].failures, 0U)
      << (results[0].failing.empty()
              ? std::string("?")
              : results[0].failing.front().detail);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[i].failures, results[0].failures);
    EXPECT_EQ(results[i].admitted_total, results[0].admitted_total);
    EXPECT_EQ(results[i].frames_delivered_total,
              results[0].frames_delivered_total);
    EXPECT_EQ(results[i].sim_digest_xor, results[0].sim_digest_xor)
        << "fabric campaign -j" << cases[i].campaign_threads
        << " fabric_threads=" << cases[i].fabric_threads
        << " diverged from the sequential baseline";
  }
}

TEST(SimDeterminism, FabricCorpusDigestsAreThreadCountIndependent) {
  // The checked-in fabric corpus entries replay to the identical digest
  // under every fabric thread count — the corpus-anchored version of the
  // generated-seed test above, so the property is pinned on specs that can
  // never drift with the generator.
  const char* files[] = {"fabric-tree.json",
                         "fabric-line-best-effort-fault.json",
                         "fabric-tree-fault.json"};
  for (const char* file : files) {
    const ScenarioSpec spec = load_corpus(file);
    RunnerOptions options;
    options.fabric_threads = 0;
    const ScenarioResult baseline = run_scenario(spec, options);
    EXPECT_TRUE(baseline.passed) << file;
    for (unsigned threads : {1U, 2U, 4U}) {
      options.fabric_threads = threads;
      const ScenarioResult result = run_scenario(spec, options);
      EXPECT_EQ(result.sim_digest, baseline.sim_digest)
          << file << ": fabric_threads=" << threads << " diverged";
      EXPECT_EQ(result.frames_delivered, baseline.frames_delivered) << file;
      EXPECT_EQ(result.fault_injections, baseline.fault_injections) << file;
    }
  }
}

TEST(SimDeterminism, ThousandNodeFabricRunsCleanly) {
  // The ISSUE's scale gate: a >=1k-node fabric runs end-to-end through the
  // conformance runner with zero deadline misses, on the parallel driver.
  GeneratorConfig config;
  config.profile = GeneratorProfile::kFabric;
  config.min_nodes = 1000;
  config.max_nodes = 1200;
  config.max_switches = 8;
  config.min_ops = 48;
  config.max_ops = 72;
  config.max_run_slots = 150;
  const ScenarioSpec spec = generate_scenario(config, 7);
  ASSERT_GE(spec.topology.nodes, 1000U);
  RunnerOptions options;
  options.fabric_threads = 4;
  const ScenarioResult result = run_scenario(spec, options);
  EXPECT_TRUE(result.passed)
      << (result.violations.empty()
              ? std::string("?")
              : result.violations.front().to_string());
  EXPECT_EQ(result.sim_digest.deadline_misses, 0U);
  EXPECT_GE(result.fabric_partitions, 2U);
  EXPECT_GT(result.frames_delivered, 0U);
}

}  // namespace
}  // namespace rtether::scenario
