#include "sim/queues.hpp"

namespace rtether::sim {

void EdfQueue::push(Tick deadline_key, SimFrame frame) {
  heap_.push(Entry{deadline_key, next_sequence_++, std::move(frame)});
}

std::optional<SimFrame> EdfQueue::pop() {
  if (heap_.empty()) {
    return std::nullopt;
  }
  // top() is const; moving out is safe because we pop immediately.
  SimFrame frame = std::move(const_cast<Entry&>(heap_.top()).frame);
  heap_.pop();
  return frame;
}

std::optional<Tick> EdfQueue::peek_deadline() const {
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.top().deadline;
}

bool FcfsQueue::push(SimFrame frame) {
  if (max_depth_ != 0 && queue_.size() >= max_depth_) {
    ++dropped_;
    return false;
  }
  queue_.push_back(std::move(frame));
  return true;
}

std::optional<SimFrame> FcfsQueue::pop() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  SimFrame frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

}  // namespace rtether::sim
