#pragma once

/// @file deadline_codec.hpp
/// The paper's header-field trick (§18.2.2): the RT layer rewrites the IP
/// header of outgoing real-time datagrams so that downstream EDF queues can
/// read scheduling metadata without any new protocol field:
///
///  - IP source address (32 bits) + 16 most-significant bits of the IP
///    destination address = the frame's 48-bit absolute deadline,
///  - 16 least-significant bits of the IP destination = RT channel ID,
///  - ToS = 255 marks the datagram as real-time (other values reserved
///    for future services).
///
/// The true addressing is recovered from the RT channel table at the
/// receiver; the wire stays standard Ethernet/IPv4.

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "net/ipv4.hpp"

namespace rtether::net {

/// ToS value that marks a real-time frame.
inline constexpr std::uint8_t kRtTos = 255;

/// Largest encodable absolute deadline (48 bits of slots/ticks).
inline constexpr std::uint64_t kMaxEncodableDeadline =
    (std::uint64_t{1} << 48) - 1;

/// Scheduling metadata carried inside the IP header of an RT frame.
struct RtFrameTag {
  /// Absolute deadline (slot/tick count since epoch), 48 bits.
  std::uint64_t absolute_deadline{0};
  /// RT channel the frame belongs to.
  ChannelId channel;

  friend bool operator==(const RtFrameTag&, const RtFrameTag&) = default;
};

/// Writes the tag into `header` (source/destination/ToS are overwritten).
/// Asserts the deadline fits in 48 bits.
void encode_rt_tag(const RtFrameTag& tag, Ipv4Header& header);

/// Reads a tag back from a header; nullopt when ToS != 255 (not an RT
/// frame).
[[nodiscard]] std::optional<RtFrameTag> decode_rt_tag(
    const Ipv4Header& header);

/// True when the header is marked real-time (ToS == 255).
[[nodiscard]] bool is_rt_frame(const Ipv4Header& header);

}  // namespace rtether::net
