#pragma once

/// @file id_allocator.hpp
/// Network-unique RT channel ID allocation. The wire format gives the ID
/// 16 bits (Fig 18.3); ID 0 is reserved as "not set with a valid value yet"
/// (§18.2.2), so at most 65535 channels can be live at once.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace rtether::core {

class ChannelIdAllocator {
 public:
  ChannelIdAllocator() = default;

  /// The reserved invalid ID (0).
  static constexpr ChannelId kInvalid{0};

  /// Maximum simultaneously live channels (all 16-bit IDs minus the
  /// reserved 0). The parallel engine's ID-headroom guard keys off this.
  static constexpr std::size_t kCapacity = 65535;

  /// Allocates the smallest free non-zero ID; nullopt when all 65535 IDs
  /// are live. Freed IDs are reused smallest-first, which keeps IDs dense —
  /// useful for table-indexed lookups at the switch.
  [[nodiscard]] std::optional<ChannelId> allocate();

  /// Returns an ID to the pool; false if it was not live (double free).
  bool release(ChannelId id);

  [[nodiscard]] bool is_live(ChannelId id) const;

  [[nodiscard]] std::size_t live_count() const { return live_count_; }

 private:
  /// live_[v] == true when ID v is allocated. Index 0 never allocated.
  std::vector<bool> live_ = std::vector<bool>(kCapacity + 1, false);
  std::size_t live_count_{0};
  /// Smallest ID that might be free; scan resumes here.
  std::uint32_t next_hint_{1};
};

}  // namespace rtether::core
