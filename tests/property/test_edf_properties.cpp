// Property-based tests over randomized task sets: the three demand-scan
// strategies must agree, and the structural invariants of the EDF theory
// (demand monotonicity, busy-period bounds, checkpoint completeness) must
// hold for every generated instance.

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "edf/busy_period.hpp"
#include "edf/checkpoints.hpp"
#include "edf/demand.hpp"
#include "edf/feasibility.hpp"
#include "edf/hyperperiod.hpp"
#include "edf/utilization.hpp"

namespace rtether::edf {
namespace {

/// Random constrained-deadline task set with bounded hyperperiod (so the
/// exhaustive oracle stays fast).
TaskSet random_task_set(Rng& rng, std::size_t max_tasks) {
  const std::size_t count = 1 + rng.index(max_tasks);
  TaskSet set;
  for (std::size_t i = 0; i < count; ++i) {
    // Periods from a divisor-rich set keeps lcm small.
    static constexpr Slot kPeriods[] = {4, 6, 8, 12, 16, 24, 48};
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(std::min<Slot>(period, 4));
    const Slot deadline = capacity + rng.index(period - capacity + 1);
    set.add(PseudoTask{ChannelId(static_cast<std::uint16_t>(i + 1)), period,
                       capacity, deadline});
  }
  return set;
}

class EdfProperties : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EdfProperties,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST_P(EdfProperties, AllScanStrategiesAgree) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 40; ++iteration) {
    const TaskSet set = random_task_set(rng, 6);
    const bool every = is_feasible(set, DemandScan::kEverySlot);
    const bool checkpoints_only = is_feasible(set, DemandScan::kCheckpoints);
    const bool exhaustive = is_feasible(set, DemandScan::kExhaustive);
    EXPECT_EQ(every, checkpoints_only);
    EXPECT_EQ(every, exhaustive);
  }
}

TEST_P(EdfProperties, DemandIsMonotone) {
  Rng rng(GetParam() ^ 0x1111);
  const TaskSet set = random_task_set(rng, 6);
  Slot previous = 0;
  for (Slot t = 0; t <= 200; ++t) {
    const Slot h = demand(set, t);
    EXPECT_GE(h, previous);
    previous = h;
  }
}

TEST_P(EdfProperties, DemandNeverExceedsUtilizationLongRun) {
  // h(t) ≤ U·t + ΣC for all t (each task contributes at most
  // ⌈t/P⌉·C ≤ (t/P)·C + C).
  Rng rng(GetParam() ^ 0x2222);
  const TaskSet set = random_task_set(rng, 6);
  const double u = set.utilization();
  for (Slot t = 1; t <= 500; t += 7) {
    EXPECT_LE(static_cast<double>(demand(set, t)),
              u * static_cast<double>(t) +
                  static_cast<double>(set.total_capacity()) + 1e-9);
  }
}

TEST_P(EdfProperties, BusyPeriodBoundsAndFixedPoint) {
  Rng rng(GetParam() ^ 0x3333);
  const TaskSet set = random_task_set(rng, 6);
  if (utilization_exceeds_one(set)) {
    EXPECT_FALSE(busy_period(set).has_value());
    return;
  }
  const auto bp = busy_period(set);
  ASSERT_TRUE(bp.has_value());
  EXPECT_GE(*bp, set.total_capacity());
  if (const auto h = hyperperiod(set)) {
    EXPECT_LE(*bp, *h);
  }
}

TEST_P(EdfProperties, ViolationTimeIsAlwaysACheckpoint) {
  Rng rng(GetParam() ^ 0x4444);
  for (int iteration = 0; iteration < 40; ++iteration) {
    const TaskSet set = random_task_set(rng, 6);
    const auto report = check_feasibility(set, DemandScan::kEverySlot);
    if (report.reason != InfeasibleReason::kDemandExceeded) continue;
    const auto points = checkpoints(set, *report.violation_time);
    ASSERT_FALSE(points.empty());
    // The first violating instant must be a member of Eq 18.5's set —
    // otherwise the checkpoint scan could miss real violations.
    EXPECT_EQ(points.back(), *report.violation_time);
  }
}

TEST_P(EdfProperties, FeasibilitySurvivesRemoval) {
  // Removing a task never makes a feasible set infeasible (EDF demand is
  // monotone in the task set).
  Rng rng(GetParam() ^ 0x5555);
  TaskSet set = random_task_set(rng, 6);
  if (!is_feasible(set)) return;
  while (set.size() > 1) {
    const auto victim = set.tasks()[rng.index(set.size())].channel;
    set.remove(victim);
    EXPECT_TRUE(is_feasible(set));
  }
}

TEST_P(EdfProperties, AddingZeroSlackTaskDetected) {
  // A task with deadline == capacity consumes its whole deadline window;
  // any other task with deadline ≤ that window must cause a violation.
  Rng rng(GetParam() ^ 0x6666);
  TaskSet set;
  set.add(PseudoTask{ChannelId(1), 48, 4, 4});
  EXPECT_TRUE(is_feasible(set));
  set.add(PseudoTask{ChannelId(2), 48, 1, 4});
  EXPECT_FALSE(is_feasible(set));
}

TEST_P(EdfProperties, ImplicitDeadlineEquivalence) {
  // For implicit-deadline sets the fast path must agree with the full
  // demand scan.
  Rng rng(GetParam() ^ 0x7777);
  TaskSet set;
  const std::size_t count = 1 + rng.index(5);
  for (std::size_t i = 0; i < count; ++i) {
    static constexpr Slot kPeriods[] = {4, 6, 8, 12, 24};
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(period / 2);
    set.add(PseudoTask{ChannelId(static_cast<std::uint16_t>(i + 1)), period,
                       capacity, period});
  }
  const auto fast = check_feasibility(set, DemandScan::kCheckpoints);
  const bool oracle = !utilization_exceeds_one(set) &&
                      is_feasible(set, DemandScan::kEverySlot);
  EXPECT_EQ(fast.feasible, oracle);
  if (fast.feasible) {
    EXPECT_TRUE(fast.used_utilization_fast_path);
  }
}

}  // namespace
}  // namespace rtether::edf
