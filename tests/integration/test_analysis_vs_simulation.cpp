// The paper's central soundness claim, checked end to end: any channel set
// the admission control accepts is delivered by the simulated network
// within d_i + T_latency — establishment over real frames, EDF queues at
// both hops, randomized workloads.

#include <gtest/gtest.h>

#include "analysis/validation.hpp"

namespace rtether::analysis {
namespace {

struct Scenario {
  const char* name;
  const char* scheme;
  std::uint32_t masters;
  std::uint32_t slaves;
  std::size_t requests;
  Slot deadline;
  traffic::FlowDirection direction;
  bool best_effort;
};

class AnalysisVsSimulation : public ::testing::TestWithParam<Scenario> {};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, AnalysisVsSimulation,
    ::testing::Values(
        Scenario{"sdps_paper", "SDPS", 3, 9, 40, 40,
                 traffic::FlowDirection::kMasterToSlave, false},
        Scenario{"adps_paper", "ADPS", 3, 9, 40, 40,
                 traffic::FlowDirection::kMasterToSlave, false},
        Scenario{"adps_tight_deadlines", "ADPS", 3, 9, 40, 14,
                 traffic::FlowDirection::kMasterToSlave, false},
        Scenario{"adps_reverse", "ADPS", 3, 9, 40, 40,
                 traffic::FlowDirection::kSlaveToMaster, false},
        Scenario{"adps_mixed_with_background", "ADPS", 3, 9, 30, 40,
                 traffic::FlowDirection::kMixed, true},
        Scenario{"search_saturated", "Search", 2, 6, 60, 30,
                 traffic::FlowDirection::kMasterToSlave, false}),
    [](const auto& scenario_info) { return scenario_info.param.name; });

TEST_P(AnalysisVsSimulation, AdmittedImpliesDeliveredOnTime) {
  const Scenario& s = GetParam();
  ValidationConfig config;
  config.sim.ticks_per_slot = 64;
  config.scheme = s.scheme;
  config.workload.masters = s.masters;
  config.workload.slaves = s.slaves;
  config.workload.direction = s.direction;
  config.workload.deadline = traffic::SlotDistribution::fixed(s.deadline);
  config.request_count = s.requests;
  config.run_slots = 1'200;
  config.with_best_effort = s.best_effort;
  config.best_effort_load = 0.5;
  config.seed = 1234;

  const auto result = run_guarantee_validation(config);
  EXPECT_GT(result.channels_established, 0u);
  EXPECT_GT(result.frames_delivered, 0u);
  EXPECT_EQ(result.deadline_misses, 0u);
  EXPECT_LE(result.worst_delay_ratio, 1.0);
  // No frame loss for RT traffic (queues are unbounded for RT).
  EXPECT_EQ(result.frames_sent, result.frames_delivered);
}

TEST(AnalysisVsSimulation, MultipleSeedsSweep) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ValidationConfig config;
    config.sim.ticks_per_slot = 64;
    config.scheme = "ADPS";
    config.workload.masters = 2;
    config.workload.slaves = 8;
    config.workload.deadline = traffic::SlotDistribution::uniform(10, 60);
    config.workload.period = traffic::SlotDistribution::choice({50, 100, 200});
    config.workload.capacity = traffic::SlotDistribution::uniform(1, 4);
    config.request_count = 30;
    config.run_slots = 1'000;
    config.seed = seed;
    const auto result = run_guarantee_validation(config);
    EXPECT_EQ(result.deadline_misses, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rtether::analysis
