#pragma once

/// @file feasibility.hpp
/// The two-constraint EDF feasibility test of paper §18.3.2:
///
///   1. utilization ΣC_i/P_i ≤ 1                       (Eq 18.2)
///   2. h(n, t) ≤ t for all t                          (Eq 18.3)
///
/// with the paper's two refinements of constraint 2: scan only the first
/// busy period (Eq 18.4) and only the deadline checkpoints (Eq 18.5), plus
/// the Liu & Layland shortcut — when every deadline equals its period,
/// constraint 1 alone is necessary and sufficient.
///
/// Three interchangeable scan strategies are provided so the ablation bench
/// can quantify the refinements and property tests can cross-validate them.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "edf/task_set.hpp"
#include "edf/utilization.hpp"

namespace rtether::edf {

/// How constraint 2 (demand criterion) is scanned.
enum class DemandScan {
  /// Every integer slot t in [1, busy period]. Correct but slow; the
  /// reference for cross-validation.
  kEverySlot,
  /// Only the checkpoints of Eq 18.5 within [1, busy period] — the paper's
  /// algorithm and the library default.
  kCheckpoints,
  /// Every integer slot t in [1, hyperperiod + max deadline]. Exhaustive
  /// oracle for tests; falls back to the (equally exact, Eq 18.4) busy-period
  /// bound when the hyperperiod overflows 64 bits *or* exceeds the practical
  /// scan budget `kExhaustiveOracleCap` — a near-64-bit hyperperiod must not
  /// turn the oracle into an out-of-memory abort, and the fallback cannot
  /// change decisions because the busy-period bound is already sufficient.
  kExhaustive,
};

/// Largest bound the kExhaustive oracle will scan beyond the busy period.
/// Hyperperiod-sized extensions above this are skipped (see DemandScan).
inline constexpr Slot kExhaustiveOracleCap = Slot{1} << 22;

/// Why a task set was declared infeasible.
enum class InfeasibleReason {
  kNone,                 ///< feasible
  kUtilizationExceeded,  ///< constraint 1 violated (U > 1)
  kDemandExceeded,       ///< constraint 2 violated at `violation_time`
};

/// Outcome of a feasibility check, with enough detail for diagnostics and
/// for the admission controller's reject messages.
struct FeasibilityReport {
  bool feasible{false};
  InfeasibleReason reason{InfeasibleReason::kNone};
  /// Utilization of the task set (double — reporting only; the constraint
  /// itself is decided by `utilization_exceeds_one`).
  double utilization{0.0};
  /// First instant where h(n,t) > t (only for kDemandExceeded).
  std::optional<Slot> violation_time;
  /// Demand at the violating instant (only for kDemandExceeded).
  std::optional<Slot> violation_demand;
  /// Busy-period length actually scanned (0 when the Liu & Layland fast
  /// path or the utilization test decided).
  Slot scanned_bound{0};
  /// Number of demand evaluations performed (ablation metric).
  std::uint64_t demand_evaluations{0};
  /// True when the Liu & Layland implicit-deadline shortcut decided.
  bool used_utilization_fast_path{false};

  /// Human-readable one-line summary.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full two-constraint test with the chosen demand scan.
[[nodiscard]] FeasibilityReport check_feasibility(
    const TaskSet& set, DemandScan scan = DemandScan::kCheckpoints);

/// Convenience: true iff `check_feasibility(set, scan).feasible`.
[[nodiscard]] bool is_feasible(const TaskSet& set,
                               DemandScan scan = DemandScan::kCheckpoints);

/// Incremental per-link scan state for high-throughput admission.
///
/// `check_feasibility` re-derives everything from scratch: the checkpoint
/// grid is regenerated and sorted, and the demand h(n, t) is re-summed over
/// all n tasks at every instant — O(n · checkpoints) per request, per
/// candidate. A switch admitting a large batch of channel requests repeats
/// that work on nearly identical task sets thousands of times.
///
/// This cache exploits two structural facts:
///
///   1. h(n, t) is a step function that jumps exactly at the checkpoints
///      (Eq 18.5), so memoizing its value at each cached checkpoint lets a
///      candidate task x be trial-tested against `set ∪ {x}` by a single
///      merge-walk: h(set ∪ {x}, t) = cached h(set, t) + h({x}, t), where
///      the cached value at any instant is a floor lookup. O(checkpoints)
///      per trial instead of O(n · checkpoints).
///   2. The grid is computed once per link and maintained *incrementally in
///      both directions*: `commit` folds an admitted task in, `downdate`
///      subtracts a released task back out (each instant carries an owner
///      count — how many shadowed tasks have a checkpoint there — so the
///      released task's private instants are dropped exactly). The link's
///      hyperperiod is a running lcm while the set only grows and is
///      re-derived from the per-period workload buckets on release (lcm is
///      order-independent, so the rebuilt value matches a from-scratch
///      running lcm bit for bit, including the overflow→nullopt verdict).
///
/// Decisions are bit-identical to `check_feasibility(set ∪ {x},
/// kCheckpoints)`: constraint 1 uses the same exact arithmetic (tasks
/// visited in the same order), the busy-period bound is the same least
/// fixed point, and the merge-walk visits exactly the deduplicated
/// checkpoint union in ascending order, reporting the same first violation.
///
/// The cache shadows one link direction's TaskSet. Every `TaskSet::add`
/// must be mirrored by `commit` and every `TaskSet::remove` by `downdate`
/// (`reset` remains as the cold rebuild for adopting a pre-populated link —
/// and as the release-as-invalidate baseline the churn bench gates
/// against). `check_with` asserts the shadow is in sync.
///
/// `check_with` is const: a trial test — even a rejected one, even one whose
/// busy period reaches past the cached horizon — leaves no residue in the
/// cache. That makes a cache shareable between concurrent readers (the
/// parallel admission engine trial-tests candidates from worker threads) as
/// long as `commit`/`reset`/`reserve_horizon` are externally serialized
/// against them. Callers that want the grid to keep pace with growing busy
/// periods call `reserve_horizon` after a scanned trial (see
/// `core::AdmissionEngine`); a trial past the horizon is still answered
/// exactly, from stack scratch space, just without memoization.
class LinkScanCache {
 public:
  /// Valid for an empty task set.
  LinkScanCache() = default;

  /// Cold rebuild from the link's current task set (adopting a pre-populated
  /// link, or the release-as-invalidate baseline policy). Clamps the horizon
  /// to the set's busy period; releases on the hot path use `downdate`.
  void reset(const TaskSet& set);

  /// Trial-tests `set ∪ {extra}` without mutating anything — the cache
  /// included. Identical verdict and diagnostics to `check_feasibility`
  /// with kCheckpoints. `set` must be the task set this cache shadows;
  /// `extra` must be valid.
  [[nodiscard]] FeasibilityReport check_with(const TaskSet& set,
                                             const PseudoTask& extra) const;

  /// Mirrors a `TaskSet::add(task)` on the shadowed set: folds the task's
  /// demand into every cached checkpoint and merges its own checkpoints in.
  /// `busy_period_after` — the accepted trial's `scanned_bound`, i.e. the
  /// busy period of the set including `task` — warm-starts the next trial's
  /// fixed-point iteration; pass nullopt when unknown (Liu & Layland
  /// fast-path accepts, where no scan ran).
  void commit(const PseudoTask& task,
              std::optional<Slot> busy_period_after = std::nullopt);

  /// Mirrors a `TaskSet::remove` on the shadowed set: subtracts the task's
  /// demand from every cached instant, drops the instants only it owned,
  /// and re-derives the hyperperiod / utilization / busy-period state from
  /// the post-removal `set` — O(points + tasks) instead of the
  /// O(tasks · points) cold rescan `reset` performs. The memoized grid (and
  /// its horizon) survives the release, so an identical re-admit is a pure
  /// merge-walk again. `set` must be the post-removal task set; `task` the
  /// exact pseudo-task that was removed.
  void downdate(const TaskSet& set, const PseudoTask& task);

  /// Pre-extends the checkpoint grid to `horizon` (batch pre-pass: pay the
  /// grid generation once per link up front). No-op when already covered.
  void reserve_horizon(const TaskSet& set, Slot horizon);

  /// Highest instant the cached grid covers.
  [[nodiscard]] Slot horizon() const { return horizon_; }

  /// lcm of the shadowed set's periods; nullopt once it overflows 64 bits.
  /// Maintained as a running lcm on commit and re-derived from the
  /// per-period buckets on downdate — never recomputed per request.
  [[nodiscard]] std::optional<Slot> cached_hyperperiod() const {
    return hyperperiod_;
  }

  /// Number of tasks the cache believes the shadowed set holds.
  [[nodiscard]] std::size_t task_count() const { return task_count_; }

 private:
  /// Appends the shadowed set's checkpoints in (horizon_, limit] — ascending,
  /// deduplicated — and their demands to `points`/`demands`. The generation
  /// shared by `extend` (which folds them into the cache, tracking owner
  /// counts) and by a const `check_with` whose trial bound outruns the
  /// cached horizon (which keeps them on the stack and passes a null
  /// `owners`).
  void grid_beyond(const TaskSet& set, Slot limit, std::vector<Slot>& points,
                   std::vector<Slot>& demands,
                   std::vector<std::uint32_t>* owners) const;

  /// Grows the grid to `new_horizon`, generating only the new instants.
  void extend(const TaskSet& set, Slot new_horizon);

  /// Busy period of `shadowed set ∪ {extra}` — the same least fixed point
  /// `busy_period_with` computes, but iterated over the per-period workload
  /// buckets and warm-started from the shadowed set's cached busy period
  /// (the least fixed point only grows as tasks are added, so starting at
  /// the old one converges to the identical new one in a step or two).
  [[nodiscard]] std::optional<Slot> trial_busy_period(
      const TaskSet& set, const PseudoTask& extra) const;

  /// Recomputes `busy_period_` for the shadowed (post-mutation) set from
  /// the period buckets: the identical least fixed point `busy_period(set)`
  /// finds, in O(distinct periods) per iteration step.
  [[nodiscard]] std::optional<Slot> bucket_busy_period(Slot backlog) const;

  /// Checkpoint instants of the shadowed set in [1, horizon_], ascending,
  /// deduplicated — exactly `checkpoints(set, horizon_)`.
  std::vector<Slot> points_;
  /// demand(set, points_[k]) for each cached instant.
  std::vector<Slot> demands_;
  /// How many shadowed tasks have a checkpoint at points_[k] (t ≡ d_j mod
  /// P_j, t ≥ d_j). `downdate` drops an instant when its last owner leaves,
  /// keeping the grid exactly `checkpoints(set, horizon_)` through churn.
  std::vector<std::uint32_t> owners_;
  Slot horizon_{0};
  std::size_t task_count_{0};
  /// Tasks with deadline != period; 0 enables the Liu & Layland fast path.
  std::size_t non_implicit_{0};
  std::optional<Slot> hyperperiod_{Slot{1}};
  /// Exact 128-bit utilization state of the shadowed set: trial tests of
  /// constraint 1 are O(1) instead of O(n).
  UtilizationAccumulator utilization_;
  /// Workload aggregated per distinct period: (P, ΣC of tasks with that P),
  /// sorted by P. Σ⌈L/P_i⌉·C_i distributes over tasks sharing a period, so
  /// the busy-period iteration costs O(distinct periods) per step.
  std::vector<std::pair<Slot, Slot>> period_buckets_;
  /// Busy period of the shadowed set; nullopt when unknown (after a
  /// fast-path accept) — the next trial then cold-starts from the backlog.
  std::optional<Slot> busy_period_{Slot{0}};
};

}  // namespace rtether::edf
