/// Ablation TT — time-triggered gate scheduling vs the paper's EDF (ADPS).
///
/// Two experiments on identical workloads, one metric triple out:
///
///   * **Acceptance ratio** — the TT-profile scenario stream (star
///     topologies, valid d ≥ 2C specs, admit/release churn) replays the
///     same op streams under scheme="TT" and scheme="ADPS" through the
///     full conformance runner (admission phases only). TT trades
///     acceptance for determinism: offsets must pack into min(d, P) and
///     survive gcd-residue conflicts, so its ratio trails EDF's — except
///     on downlink-coupled workloads where per-frame gating wins (see
///     tests/scenario/corpus/tt-jitter-critical.json).
///
///   * **Jitter & best-effort throughput** — a fixed contended star (two
///     producers sharing a consumer downlink, best-effort cross-traffic at
///     0.5 offered load) that both schemes admit in full, simulated under
///     each scheme. TT must report zero worst-case jitter by construction;
///     EDF's work-conserving arbitration shows the spread. Best-effort
///     throughput measures what the non-work-conserving gates cost the
///     background traffic.
///
/// Writes BENCH_tt.json. Exit codes: 1 = a conformance replay failed
/// (bug, replayable seed printed), 2 = metric-presence gate — the TT
/// acceptance ratio or the best-effort throughput could not be measured
/// (empty campaign, BE phase sent nothing) — a run that reports neither
/// headline number must not look green in CI.
///
/// Usage:
///   bench_ablation_tt [scenarios] [json] [base_seed]
///     scenarios  acceptance-campaign size per scheme (default 400)
///     json       output path (default BENCH_tt.json)
///     base_seed  first generator seed (default 1)

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

using namespace rtether;

namespace {

bool parse_u64_arg(const char* text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end != text && *end == '\0';
}

struct AcceptanceTally {
  std::uint64_t admitted{0};
  std::uint64_t rejected{0};
  std::uint64_t failures{0};

  [[nodiscard]] double ratio() const {
    const std::uint64_t total = admitted + rejected;
    return total > 0 ? static_cast<double>(admitted) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// The fixed jitter/BE workload: every channel is admissible under both
/// schemes (asserted by the replay), and node 1's downlink is shared by
/// two producers so EDF arbitration has something to jitter about.
scenario::ScenarioSpec jitter_workload() {
  scenario::ScenarioSpec spec;
  spec.name = "ablation-tt-jitter";
  spec.seed = 42;
  spec.scheme = "TT";
  spec.topology.kind = scenario::TopologyKind::kStar;
  spec.topology.nodes = 6;
  spec.simulate = true;
  spec.run_slots = 400;
  spec.ticks_per_slot = 16;
  spec.with_best_effort = true;
  spec.best_effort_load = 0.5;
  spec.ops.push_back(
      scenario::ScenarioOp::admit({NodeId{0}, NodeId{1}, 8, 1, 8}));
  spec.ops.push_back(
      scenario::ScenarioOp::admit({NodeId{2}, NodeId{1}, 8, 2, 12}));
  spec.ops.push_back(
      scenario::ScenarioOp::admit({NodeId{3}, NodeId{4}, 16, 2, 16}));
  spec.ops.push_back(
      scenario::ScenarioOp::admit({NodeId{5}, NodeId{4}, 4, 1, 6}));
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t scenarios = 400;
  std::string json_path = "BENCH_tt.json";
  std::uint64_t base_seed = 1;
  bool ok = true;
  if (argc > 1) ok = parse_u64_arg(argv[1], scenarios);
  if (ok && argc > 2) json_path = argv[2];
  if (ok && argc > 3) ok = parse_u64_arg(argv[3], base_seed);
  if (!ok || argc > 4) {
    std::fprintf(stderr,
                 "usage: bench_ablation_tt [scenarios] [json] [base_seed]\n");
    return 64;
  }

  std::puts("================================================================");
  std::puts("Ablation TT — gate-schedule (TAS) admission vs EDF/ADPS");
  std::puts("================================================================");

  // --- Acceptance ratio over the TT-profile stream -----------------------
  scenario::GeneratorConfig generator;
  generator.profile = scenario::GeneratorProfile::kTimeTriggered;
  scenario::RunnerOptions admission_only;
  admission_only.run_simulation = false;

  AcceptanceTally tt_tally;
  AcceptanceTally edf_tally;
  for (std::uint64_t i = 0; i < scenarios; ++i) {
    scenario::ScenarioSpec spec =
        scenario::generate_scenario(generator, base_seed + i);
    const auto tt_result = scenario::run_scenario(spec, admission_only);
    tt_tally.admitted += tt_result.admitted;
    tt_tally.rejected += tt_result.rejected;
    if (!tt_result.passed) {
      ++tt_tally.failures;
      std::printf("FAILING TT seed %llu: %s\n",
                  static_cast<unsigned long long>(base_seed + i),
                  tt_result.summary().c_str());
    }
    spec.scheme = "ADPS";
    const auto edf_result = scenario::run_scenario(spec, admission_only);
    edf_tally.admitted += edf_result.admitted;
    edf_tally.rejected += edf_result.rejected;
    if (!edf_result.passed) {
      ++edf_tally.failures;
      std::printf("FAILING ADPS seed %llu: %s\n",
                  static_cast<unsigned long long>(base_seed + i),
                  edf_result.summary().c_str());
    }
  }

  // --- Jitter & best-effort throughput on the fixed contended star -------
  scenario::RunnerOptions with_jitter;
  with_jitter.record_jitter = true;
  scenario::ScenarioSpec tt_spec = jitter_workload();
  const auto tt_sim = scenario::run_scenario(tt_spec, with_jitter);
  scenario::ScenarioSpec edf_spec = jitter_workload();
  edf_spec.scheme = "ADPS";
  const auto edf_sim = scenario::run_scenario(edf_spec, with_jitter);
  std::uint64_t sim_failures = 0;
  for (const auto* result : {&tt_sim, &edf_sim}) {
    if (!result->passed || result->admitted != 4) {
      ++sim_failures;
      std::printf("FAILING jitter workload: %s\n",
                  result->summary().c_str());
    }
  }

  const auto be_per_kslot = [](const scenario::ScenarioResult& result) {
    return result.simulated_slots > 0
               ? 1000.0 *
                     static_cast<double>(
                         result.sim_digest.best_effort_delivered) /
                     static_cast<double>(result.simulated_slots)
               : 0.0;
  };

  ConsoleTable table("TT vs EDF/ADPS on identical workloads");
  table.set_header({"metric", "TT", "ADPS"});
  table.add("acceptance ratio", tt_tally.ratio(), edf_tally.ratio());
  table.add("worst jitter (ticks)", tt_sim.worst_jitter_ticks,
            edf_sim.worst_jitter_ticks);
  table.add("BE delivered / 1k slots", be_per_kslot(tt_sim),
            be_per_kslot(edf_sim));
  table.add("BE delivered",
            tt_sim.sim_digest.best_effort_delivered,
            edf_sim.sim_digest.best_effort_delivered);
  table.print();
  std::puts("reading: TT buys zero jitter with gate exclusivity; the cost");
  std::puts("is acceptance (offsets must pack into min(d, P)) and whatever");
  std::puts("best-effort drains through the unreserved windows.\n");

  JsonWriter json;
  json.begin_object();
  json.member("bench", "ablation_tt");
  json.member("scenarios", scenarios);
  json.member("base_seed", base_seed);
  json.member("tt_admitted", tt_tally.admitted);
  json.member("tt_rejected", tt_tally.rejected);
  json.member("tt_acceptance_ratio", tt_tally.ratio());
  json.member("edf_admitted", edf_tally.admitted);
  json.member("edf_rejected", edf_tally.rejected);
  json.member("edf_acceptance_ratio", edf_tally.ratio());
  json.member("tt_worst_jitter_ticks", tt_sim.worst_jitter_ticks);
  json.member("edf_worst_jitter_ticks", edf_sim.worst_jitter_ticks);
  json.member("tt_be_delivered", tt_sim.sim_digest.best_effort_delivered);
  json.member("edf_be_delivered", edf_sim.sim_digest.best_effort_delivered);
  json.member("tt_be_delivered_per_kslot", be_per_kslot(tt_sim));
  json.member("edf_be_delivered_per_kslot", be_per_kslot(edf_sim));
  json.member("failures",
              tt_tally.failures + edf_tally.failures + sim_failures);
  json.end_object();
  if (!json.write_file(json_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (tt_tally.failures + edf_tally.failures + sim_failures != 0) {
    return 1;
  }
  // Metric-presence gate: a run that measured no TT acceptance decisions
  // or no best-effort traffic reported neither headline number — fail
  // rather than upload a hollow artifact.
  if (tt_tally.admitted + tt_tally.rejected == 0) {
    std::puts("FAIL: TT acceptance ratio not measured (0 decisions)");
    return 2;
  }
  if (tt_sim.sim_digest.best_effort_sent == 0 ||
      edf_sim.sim_digest.best_effort_sent == 0) {
    std::puts("FAIL: best-effort throughput not measured (0 BE frames)");
    return 2;
  }
  return 0;
}
