#include "proto/periodic_sender.hpp"

#include "common/assert.hpp"

namespace rtether::proto {

PeriodicRtSender::PeriodicRtSender(NodeRtLayer& layer, ChannelId channel,
                                   Slot phase_slots)
    : layer_(layer), channel_(channel), phase_slots_(phase_slots) {}

void PeriodicRtSender::start() {
  RTETHER_ASSERT_MSG(layer_.find_tx(channel_) != nullptr,
                     "sender attached to a channel not established for TX");
  running_ = true;
  schedule_release(phase_slots_);
}

void PeriodicRtSender::schedule_release(Slot delay_slots) {
  const TxChannel* tx = layer_.find_tx(channel_);
  if (tx == nullptr || !running_) return;
  // Allocation-free kernel timer — a release every period must not touch
  // the heap (the sim-kernel bench asserts the steady state doesn't).
  layer_.network().simulator().schedule_timer(
      layer_.network().config().slots_to_ticks(delay_slots),
      [](void* context, std::uint64_t /*arg*/, Tick /*now*/) {
        static_cast<PeriodicRtSender*>(context)->on_release();
      },
      this);
}

void PeriodicRtSender::on_release() {
  if (!running_) return;
  const TxChannel* channel = layer_.find_tx(channel_);
  if (channel == nullptr) {
    running_ = false;  // torn down while scheduled
    return;
  }
  layer_.send_message(channel_);
  ++messages_sent_;
  schedule_release(channel->period);
}

std::vector<std::unique_ptr<PeriodicRtSender>>
start_senders_for_all_channels(NodeRtLayer& layer, Slot stagger_slots) {
  std::vector<std::unique_ptr<PeriodicRtSender>> senders;
  Slot phase = 0;
  for (const auto& [id, tx] : layer.tx_channels()) {
    senders.push_back(
        std::make_unique<PeriodicRtSender>(layer, id, phase));
    senders.back()->start();
    phase += stagger_slots;
  }
  return senders;
}

}  // namespace rtether::proto
