/// @file test_fault_injection.cpp
/// The fault universe end to end, one class at a time: every `FaultKind`
/// is driven through the runner's survival contract (zero deadline misses,
/// exact accounting, loss-free clean channels) with its per-class injection
/// counter proven nonzero — the same proof the fault campaign gates on,
/// here in deterministic per-class form. Plus the plumbing around the
/// plan: JSON round-trips, generator well-formedness/determinism for the
/// fault-heavy profile, and the shrinker's removal-only contract (shrunk
/// fault plans are ordered subsequences of the original — reordering a
/// fault relative to the ops it interrupts would shrink into a different
/// scenario, not a smaller replay).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "scenario/generator.hpp"
#include "scenario/json_io.hpp"
#include "scenario/runner.hpp"
#include "scenario/shrinker.hpp"
#include "sim/fault.hpp"

namespace rtether::scenario {
namespace {

std::size_t index_of(sim::FaultKind kind) {
  return static_cast<std::size_t>(kind);
}

/// Star scenario with steady RT traffic: node 1 → 2 every 10 slots, node
/// 3 → 0 every 20. Enough frames per 200-slot run for windowed faults to
/// hit several of them.
ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.seed = 42;  // seeds the injector's Bernoulli/delay stream
  spec.name = "fault-unit";
  spec.topology.nodes = 4;
  spec.scheme = "ADPS";
  spec.run_slots = 200;
  spec.ops.push_back(ScenarioOp::admit({NodeId{1}, NodeId{2}, 10, 1, 4}));
  spec.ops.push_back(ScenarioOp::admit({NodeId{3}, NodeId{0}, 20, 2, 10}));
  return spec;
}

sim::FaultEvent window_fault(sim::FaultKind kind, std::uint32_t node,
                             bool downlink, Slot at, Slot duration,
                             double probability) {
  sim::FaultEvent fault;
  fault.kind = kind;
  fault.node = NodeId{node};
  fault.downlink = downlink;
  fault.at_slot = at;
  fault.duration_slots = duration;
  fault.probability = probability;
  return fault;
}

/// Runs the spec, requiring the survival contract to hold and the given
/// class to have actually fired.
ScenarioResult run_surviving(const ScenarioSpec& spec, sim::FaultKind kind) {
  const ScenarioResult result = run_scenario(spec);
  EXPECT_TRUE(result.passed)
      << (result.violations.empty() ? std::string("no violation recorded")
                                    : result.violations[0].to_string());
  EXPECT_GT(result.fault_injections[index_of(kind)], 0u)
      << sim::to_string(kind) << " was declared but never injected";
  EXPECT_GT(result.frames_delivered, 0u);
  return result;
}

// ---------------------------------------------------------------------------
// One survival test per fault class.
// ---------------------------------------------------------------------------

TEST(FaultSurvival, LinkDownWindow) {
  ScenarioSpec spec = base_spec();
  spec.faults.push_back(window_fault(sim::FaultKind::kLinkDown, /*node=*/2,
                                     /*downlink=*/true, 20, 40, 0.0));
  ASSERT_TRUE(spec.well_formed());
  const auto result = run_surviving(spec, sim::FaultKind::kLinkDown);
  // ~4 releases of channel 1→2 fall inside the 40-slot outage.
  EXPECT_GE(result.fault_injections[index_of(sim::FaultKind::kLinkDown)], 3u);
}

TEST(FaultSurvival, CertainFrameLossWindow) {
  ScenarioSpec spec = base_spec();
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameLoss, /*node=*/1,
                                     /*downlink=*/false, 30, 50, 1.0));
  ASSERT_TRUE(spec.well_formed());
  run_surviving(spec, sim::FaultKind::kFrameLoss);
}

TEST(FaultSurvival, CertainCorruptionWindow) {
  ScenarioSpec spec = base_spec();
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameCorrupt, /*node=*/0,
                                     /*downlink=*/true, 40, 60, 1.0));
  ASSERT_TRUE(spec.well_formed());
  run_surviving(spec, sim::FaultKind::kFrameCorrupt);
}

TEST(FaultSurvival, SwitchRebootReRegistersEveryChannel) {
  ScenarioSpec spec = base_spec();
  sim::FaultEvent reboot;
  reboot.kind = sim::FaultKind::kSwitchReboot;
  reboot.at_slot = 60;
  spec.faults.push_back(reboot);
  ASSERT_TRUE(spec.well_formed());
  // `passed` covers the whole reboot contract: recovery re-registers the
  // survivors over the wire protocol and the runner diffs that re-admission
  // bit-for-bit against a fresh controller (kReadmissionDivergence).
  const auto result = run_surviving(spec, sim::FaultKind::kSwitchReboot);
  EXPECT_EQ(result.fault_injections[index_of(sim::FaultKind::kSwitchReboot)],
            1u);
}

TEST(FaultSurvival, NodeCrashTeardownStorm) {
  ScenarioSpec spec = base_spec();
  sim::FaultEvent crash;
  crash.kind = sim::FaultKind::kNodeCrash;
  crash.node = NodeId{1};  // source of the 10-slot channel
  crash.at_slot = 50;
  spec.faults.push_back(crash);
  ASSERT_TRUE(spec.well_formed());
  const auto result = run_surviving(spec, sim::FaultKind::kNodeCrash);
  EXPECT_EQ(result.fault_injections[index_of(sim::FaultKind::kNodeCrash)], 1u);
}

TEST(FaultSurvival, MgmtDelayReordersRecoveryHandshakes) {
  // Management frames only cross the wire mid-run during structural
  // recovery, so the delay class is exercised against a reboot's
  // re-registration exchanges — delayed and reordered, yet the recovery
  // must still converge to the bit-identical admission state.
  ScenarioSpec spec = base_spec();
  sim::FaultEvent delay;
  delay.kind = sim::FaultKind::kMgmtDelay;
  delay.node = NodeId{1};
  delay.delay_ticks = 24;
  spec.faults.push_back(delay);
  sim::FaultEvent reboot;
  reboot.kind = sim::FaultKind::kSwitchReboot;
  reboot.at_slot = 60;
  spec.faults.push_back(reboot);
  ASSERT_TRUE(spec.well_formed());
  run_surviving(spec, sim::FaultKind::kMgmtDelay);
}

TEST(FaultSurvival, CleanChannelStaysLossFreeThroughAnOutage) {
  // The fault scopes node 2's downlink only; channel 3→0 is clean and the
  // runner's contract check (clean channels lose nothing) must pass while
  // the faulted channel takes real losses.
  ScenarioSpec spec = base_spec();
  spec.faults.push_back(window_fault(sim::FaultKind::kLinkDown, /*node=*/2,
                                     /*downlink=*/true, 20, 100, 0.0));
  ASSERT_TRUE(spec.well_formed());
  const auto result = run_surviving(spec, sim::FaultKind::kLinkDown);
  EXPECT_EQ(result.sim_digest.deadline_misses, 0u);
}

// ---------------------------------------------------------------------------
// Plumbing: strings, JSON, generator.
// ---------------------------------------------------------------------------

TEST(FaultPlumbing, KindStringsRoundTrip) {
  for (std::size_t i = 0; i < sim::kFaultKindCount; ++i) {
    const auto kind = static_cast<sim::FaultKind>(i);
    const auto parsed = sim::fault_kind_from_string(sim::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << sim::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(sim::fault_kind_from_string("flux-capacitor").has_value());
  EXPECT_FALSE(sim::fault_kind_from_string("").has_value());
}

TEST(FaultPlumbing, JsonRoundTripsEveryClass) {
  ScenarioSpec spec = base_spec();
  sim::FaultEvent mgmt;
  mgmt.kind = sim::FaultKind::kMgmtDelay;
  mgmt.node = NodeId{3};
  mgmt.delay_ticks = 17;
  spec.faults.push_back(mgmt);
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameLoss, 1, false, 10,
                                     30, 0.25));
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameCorrupt, 2, true,
                                     25, 40, 0.5));
  spec.faults.push_back(window_fault(sim::FaultKind::kLinkDown, 0, true, 60,
                                     20, 0.0));
  sim::FaultEvent reboot;
  reboot.kind = sim::FaultKind::kSwitchReboot;
  reboot.at_slot = 90;
  spec.faults.push_back(reboot);
  ASSERT_TRUE(spec.well_formed());

  const std::string json = to_json(spec);
  const auto parsed = from_json(json);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(*parsed, spec);
  // Byte-stable: re-serializing the parse reproduces the document, so
  // corpus entries do not churn under load/save cycles.
  EXPECT_EQ(to_json(*parsed), json);
}

TEST(FaultPlumbing, FaultHeavyGeneratorIsWellFormedAndFaulted) {
  GeneratorConfig config;
  config.profile = GeneratorProfile::kFaultHeavy;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ScenarioSpec spec = generate_scenario(config, seed);
    ASSERT_TRUE(spec.well_formed()) << "seed " << seed;
    EXPECT_FALSE(spec.faults.empty()) << "seed " << seed;
    EXPECT_EQ(spec.topology.kind, TopologyKind::kStar) << "seed " << seed;
    EXPECT_TRUE(spec.simulate) << "seed " << seed;
    EXPECT_GE(spec.run_slots, 200u) << "seed " << seed;
  }
}

TEST(FaultPlumbing, FaultHeavyGeneratorIsDeterministic) {
  GeneratorConfig config;
  config.profile = GeneratorProfile::kFaultHeavy;
  for (std::uint64_t seed : {7ULL, 1234ULL, 998877ULL}) {
    const ScenarioSpec first = generate_scenario(config, seed);
    const ScenarioSpec second = generate_scenario(config, seed);
    EXPECT_EQ(first, second);
    EXPECT_EQ(to_json(first), to_json(second));
  }
}

// ---------------------------------------------------------------------------
// Shrinker: fault plans shrink by removal only.
// ---------------------------------------------------------------------------

/// Equality modulo node identity: the shrinker's node pass densely renumbers
/// the surviving nodes, which may rename a fault's endpoint — legitimate.
/// What must never change is everything that anchors the event in time and
/// semantics.
bool same_ignoring_node(const sim::FaultEvent& a, const sim::FaultEvent& b) {
  return a.kind == b.kind && a.at_slot == b.at_slot &&
         a.duration_slots == b.duration_slots && a.downlink == b.downlink &&
         a.probability == b.probability && a.delay_ticks == b.delay_ticks;
}

bool is_ordered_subsequence(const std::vector<sim::FaultEvent>& shrunk,
                            const std::vector<sim::FaultEvent>& original) {
  std::size_t cursor = 0;
  for (const auto& fault : shrunk) {
    while (cursor < original.size() &&
           !same_ignoring_node(original[cursor], fault)) {
      ++cursor;
    }
    if (cursor == original.size()) return false;
    ++cursor;
  }
  return true;
}

TEST(FaultShrinker, IsolatesAFaultDependentFailureByRemovalOnly) {
  // A fault plan whose *last* event is malformed (window opens past the end
  // of the run): the scenario fails as kMalformedSpec, and that failure
  // depends on exactly one fault event. Removal-only ddmin must strip the
  // valid events around it and keep the culprit — without ever reordering
  // or re-anchoring anything (a candidate that moved the bad event earlier
  // would change which ops its window interrupts).
  ScenarioSpec spec = base_spec();
  sim::FaultEvent mgmt;
  mgmt.kind = sim::FaultKind::kMgmtDelay;
  mgmt.node = NodeId{3};
  mgmt.delay_ticks = 8;
  spec.faults.push_back(mgmt);
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameLoss, 1, false, 10,
                                     30, 0.5));
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameCorrupt, 2, true,
                                     40, 40, 0.25));
  spec.faults.push_back(window_fault(sim::FaultKind::kLinkDown, 0, true, 80,
                                     20, 0.0));
  const sim::FaultEvent culprit = window_fault(
      sim::FaultKind::kFrameLoss, 2, true, /*at=*/250, /*duration=*/10, 1.0);
  spec.faults.push_back(culprit);  // at_slot 250 ≥ run_slots 200
  ASSERT_FALSE(spec.well_formed());

  const auto failure = run_scenario(spec);
  ASSERT_FALSE(failure.passed);
  ASSERT_EQ(failure.violations[0].kind, ViolationKind::kMalformedSpec);

  const auto shrunk = shrink_scenario(spec);
  EXPECT_EQ(shrunk.failure.violations[0].kind, ViolationKind::kMalformedSpec);
  ASSERT_EQ(shrunk.minimized.faults.size(), 1u);
  EXPECT_TRUE(same_ignoring_node(shrunk.minimized.faults[0], culprit));
  EXPECT_TRUE(is_ordered_subsequence(shrunk.minimized.faults, spec.faults));
  EXPECT_TRUE(shrunk.minimized.ops.empty())
      << "the op stream is noise for a malformed-plan failure";
}

/// The off-by-one DPS from test_scenario_shrinker.cpp, reused to plant an
/// ops-side failure underneath a fault plan.
class OffByOnePartitioner final : public core::DeadlinePartitioner {
 public:
  [[nodiscard]] std::vector<core::DeadlinePartition> candidates(
      const core::ChannelSpec& spec,
      const core::NetworkState& state) const override {
    if (state.link_load(spec.source, core::LinkDirection::kUplink) >= 2) {
      return {{spec.deadline - (spec.capacity - 1), spec.capacity - 1}};
    }
    return correct_.candidates(spec, state);
  }
  [[nodiscard]] std::string name() const override { return "ADPS-broken"; }

 private:
  core::AsymmetricPartitioner correct_;
};

TEST(FaultShrinker, FaultPlanNeverReordersWhileOpsShrink) {
  // Failure planted on the ops side (load-dependent partition bug), fault
  // plan along for the ride: whatever the shrinker keeps of the plan must
  // be an ordered subsequence of the original — and the minimized spec
  // must stay well-formed through every dimension pass.
  ScenarioSpec spec = base_spec();
  spec.topology.nodes = 6;
  auto admit = [&](std::uint32_t src, std::uint32_t dst) {
    spec.ops.push_back(
        ScenarioOp::admit({NodeId{src}, NodeId{dst}, 100, 2, 40}));
  };
  admit(0, 4);
  admit(0, 5);
  admit(0, 2);  // third channel on uplink 0 → the broken candidate fires
  sim::FaultEvent mgmt;
  mgmt.kind = sim::FaultKind::kMgmtDelay;
  mgmt.node = NodeId{2};
  mgmt.delay_ticks = 8;
  spec.faults.push_back(mgmt);
  spec.faults.push_back(window_fault(sim::FaultKind::kFrameLoss, 2, true, 10,
                                     30, 0.5));
  spec.faults.push_back(window_fault(sim::FaultKind::kLinkDown, 4, true, 50,
                                     20, 0.0));
  ASSERT_TRUE(spec.well_formed());

  ShrinkOptions options;
  options.runner.partitioner_factory = [](const std::string&) {
    return std::make_unique<OffByOnePartitioner>();
  };
  ASSERT_FALSE(run_scenario(spec, options.runner).passed);

  const auto shrunk = shrink_scenario(spec, options);
  EXPECT_FALSE(shrunk.failure.passed);
  EXPECT_TRUE(shrunk.minimized.well_formed());
  EXPECT_TRUE(is_ordered_subsequence(shrunk.minimized.faults, spec.faults));
  Slot previous = 0;
  for (const auto& fault : shrunk.minimized.faults) {
    EXPECT_GE(fault.at_slot, previous);
    previous = fault.at_slot;
  }
  // The minimized spec replays under the planted bug and is green without
  // it — fault plan included.
  EXPECT_FALSE(run_scenario(shrunk.minimized, options.runner).passed);
  EXPECT_TRUE(run_scenario(shrunk.minimized).passed);
}

}  // namespace
}  // namespace rtether::scenario
