#pragma once

/// @file spec.hpp
/// `ScenarioSpec` — a complete, self-contained description of one
/// conformance scenario: a topology, a DPS scheme, an ordered admit/release
/// op stream and the simulation phase parameters. Specs are plain data:
/// value-comparable (the shrinker mutates copies), JSON round-trippable
/// (json_io.hpp) and replayable from a single 64-bit seed (generator.hpp).
///
/// The scenario subsystem exists because the paper's central claim —
/// analytic per-link EDF admission (Eqs 18.2–18.5) *implies* zero deadline
/// misses on the wire (Eq 18.1) — is a property of every reachable system
/// state, not of the handful of hand-written integration scenarios. The
/// fuzzing engine generates randomized topologies and workloads, runs them
/// through every admission path the library offers, and checks the
/// two-sided oracle end-to-end (runner.hpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/channel.hpp"
#include "core/topology.hpp"
#include "sim/fault.hpp"

namespace rtether::scenario {

/// Shape of the switching fabric.
enum class TopologyKind : std::uint8_t {
  kStar,        ///< the paper's single switch (all four admission paths run)
  kSwitchLine,  ///< switches in a line, nodes round-robin (multihop path)
  kSwitchTree,  ///< a binary tree of switches, nodes round-robin (multihop)
};

[[nodiscard]] const char* to_string(TopologyKind kind);

/// True when `scheme` names a scheme the runner can execute: one of the
/// four DPS names ("SDPS", "ADPS", "UDPS", "Search") or the time-triggered
/// gate-schedule scheme ("TT"). Anything else is a malformed spec — the
/// JSON loader and the runner both reject it instead of silently falling
/// back to a default scheme.
[[nodiscard]] bool known_scheme(std::string_view scheme);

struct TopologySpec {
  TopologyKind kind{TopologyKind::kStar};
  /// Switch count; forced to 1 for kStar.
  std::uint32_t switches{1};
  /// Total end-nodes, attached round-robin (node n → switch n % switches).
  std::uint32_t nodes{4};

  /// Materializes the fabric for the multihop admission path.
  [[nodiscard]] core::Topology build() const;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// One step of the scenario's op stream.
struct ScenarioOp {
  enum class Kind : std::uint8_t { kAdmit, kRelease };

  /// `target` value meaning "release a raw, never-assigned channel ID"
  /// (negative-path fuzzing: teardown of unknown channels must be refused
  /// by every engine, identically).
  static constexpr std::uint32_t kNoTarget = 0xffffffffU;

  Kind kind{Kind::kAdmit};
  /// kAdmit: the requested contract (may be deliberately invalid — the
  /// generator emits malformed specs and unknown nodes so rejection paths
  /// are fuzzed too).
  core::ChannelSpec spec{};
  /// kRelease: index (into the op stream) of the admit op whose channel to
  /// release, or kNoTarget to release `raw_id` directly. Releasing the
  /// channel of a *rejected* admit resolves to `raw_id` as well.
  std::uint32_t target{kNoTarget};
  /// kRelease with kNoTarget (or a rejected target): the ID to tear down.
  std::uint16_t raw_id{0};

  [[nodiscard]] static ScenarioOp admit(const core::ChannelSpec& spec) {
    ScenarioOp op;
    op.kind = Kind::kAdmit;
    op.spec = spec;
    return op;
  }
  [[nodiscard]] static ScenarioOp release_of(std::uint32_t admit_index) {
    ScenarioOp op;
    op.kind = Kind::kRelease;
    op.target = admit_index;
    return op;
  }
  [[nodiscard]] static ScenarioOp release_raw(std::uint16_t id) {
    ScenarioOp op;
    op.kind = Kind::kRelease;
    op.raw_id = id;
    return op;
  }

  friend bool operator==(const ScenarioOp&, const ScenarioOp&) = default;
};

/// A full scenario. Everything the runner needs, nothing it infers.
struct ScenarioSpec {
  /// The seed that generated this spec (replay handle; 0 for hand-written
  /// corpus entries).
  std::uint64_t seed{0};
  /// Optional human-readable tag for corpus entries and reports.
  std::string name;

  TopologySpec topology{};
  /// Admission scheme. The EDF schemes "SDPS", "ADPS", "UDPS" and "Search"
  /// run the star engines (the multihop path maps them to their SDPS/ADPS
  /// k-hop generalization); "TT" runs the time-triggered gate-schedule
  /// backend instead (star only, zero-jitter contract). Must satisfy
  /// `known_scheme`.
  std::string scheme{"ADPS"};
  std::vector<ScenarioOp> ops;

  // --- Simulation phase (star topologies only) ---------------------------
  /// Drive the admitted set through the slot-accurate simulator and check
  /// Eq 18.1 per delivered frame.
  bool simulate{true};
  /// Simulated run length after establishment, slots.
  Slot run_slots{300};
  /// Simulator granularity.
  Tick ticks_per_slot{16};
  /// Best-effort cross-traffic from every node during the run.
  bool with_best_effort{false};
  double best_effort_load{0.0};
  /// Bursty (on/off) rather than Poisson best-effort arrivals.
  bool bursty_best_effort{false};
  /// Deterministic fault plan, replayed during the simulation phase.
  /// Ordered by `at_slot`; windows are relative to the measured run's
  /// start. Requires `simulate` — the survival contract (runner.hpp) is
  /// defined over the simulated wire. Windowed kinds run on any topology;
  /// structural and management kinds require the star (they act through
  /// its establishment protocol).
  std::vector<sim::FaultEvent> faults;

  /// Number of admit ops in the stream.
  [[nodiscard]] std::size_t admit_count() const;

  /// Structural sanity (indices in range, release targets point at admit
  /// ops, topology non-empty). The runner refuses malformed specs; the
  /// generator and shrinker only produce well-formed ones.
  [[nodiscard]] bool well_formed() const;

  [[nodiscard]] std::string summary() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

}  // namespace rtether::scenario
