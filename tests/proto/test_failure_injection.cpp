// Failure injection: lost management frames, unanswered requests,
// duplicated requests/responses. The establishment protocol must stay
// correct (no double admission, no stuck requests, no state residue) under
// all of them.

#include <gtest/gtest.h>

#include <memory>

#include "core/partitioner.hpp"
#include "net/ethernet.hpp"
#include "net/mgmt_frames.hpp"
#include "proto/rt_layer.hpp"
#include "proto/stack.hpp"
#include "sim/addressing.hpp"

namespace rtether::proto {
namespace {

sim::SimConfig test_config() {
  return sim::SimConfig{.ticks_per_slot = 100,
                        .propagation_ticks = 1,
                        .switch_processing_ticks = 1};
}

TEST(FailureInjection, UnansweredRequestTimesOutAfterRetries) {
  // A network with NO management software in the switch: requests fall
  // into the void. The RT layer must retransmit `request_attempts` times
  // and then report a timeout.
  sim::SimNetwork network(test_config(), 2);
  RtLayerConfig layer_config;
  layer_config.request_timeout_slots = 100;
  layer_config.request_attempts = 3;
  NodeRtLayer layer(network, NodeId{0}, layer_config);

  bool done = false;
  SetupOutcome outcome;
  layer.request_channel(NodeId{1}, 100, 3, 40,
                        [&](const SetupOutcome& result) {
                          done = true;
                          outcome = result;
                        });
  EXPECT_TRUE(network.simulator().run_all());

  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_NE(outcome.detail.find("timeout"), std::string::npos);
  // All three attempts reached the switch (and were swallowed).
  EXPECT_EQ(network.ethernet_switch().stats().management_received, 3u);
  EXPECT_TRUE(layer.tx_channels().empty());
}

TEST(FailureInjection, DuplicateRequestAdmittedOnlyOnce) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());

  // Craft a raw RequestFrame and inject it twice from node 0 (as a
  // retransmission would).
  net::RequestFrame request;
  request.connection_request = ConnectionRequestId(9);
  request.rt_channel = ChannelId(0);
  request.source_mac = sim::node_mac(NodeId{0});
  request.destination_mac = sim::node_mac(NodeId{1});
  request.source_ip = sim::node_ip(NodeId{0});
  request.destination_ip = sim::node_ip(NodeId{1});
  request.period = 100;
  request.capacity = 3;
  request.deadline = 40;

  auto inject = [&] {
    net::EthernetHeader ethernet;
    ethernet.destination = sim::switch_mac();
    ethernet.source = sim::node_mac(NodeId{0});
    ethernet.ether_type = net::EtherType::kRtManagement;
    ByteWriter writer;
    ethernet.serialize(writer);
    writer.write_bytes(request.serialize());
    auto frame = sim::SimFrame::make(stack.network().next_frame_id(),
                                     std::move(writer).take(), 0,
                                     stack.network().now(), NodeId{0});
    stack.network().node(NodeId{0}).send_best_effort(std::move(frame));
  };
  inject();
  inject();
  EXPECT_TRUE(stack.network().simulator().run_all());

  EXPECT_EQ(stack.management().stats().requests_received, 2u);
  EXPECT_EQ(stack.management().stats().requests_admitted, 1u);
  EXPECT_EQ(stack.management().stats().duplicate_requests_ignored, 1u);
  EXPECT_EQ(stack.management().admission().state().channel_count(), 1u);
}

TEST(FailureInjection, DuplicateDestinationResponseIgnored) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());

  // Replay the destination's accepting ResponseFrame — the switch has
  // already relayed the verdict and must ignore the echo.
  net::ResponseFrame response;
  response.connection_request = ConnectionRequestId(1);
  response.rt_channel = channel->id;
  response.accepted = true;
  net::EthernetHeader ethernet;
  ethernet.destination = sim::switch_mac();
  ethernet.source = sim::node_mac(NodeId{1});
  ethernet.ether_type = net::EtherType::kRtManagement;
  ByteWriter writer;
  ethernet.serialize(writer);
  writer.write_bytes(response.serialize());
  auto frame = sim::SimFrame::make(stack.network().next_frame_id(),
                                   std::move(writer).take(), 0,
                                   stack.network().now(), NodeId{1});
  stack.network().node(NodeId{1}).send_best_effort(std::move(frame));
  EXPECT_TRUE(stack.network().simulator().run_all());

  EXPECT_EQ(stack.management().admission().state().channel_count(), 1u);
  EXPECT_EQ(stack.layer(NodeId{0}).tx_channels().size(), 1u);
}

TEST(FailureInjection, GarbageManagementFrameIgnored) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  // Management EtherType but unparseable payload.
  net::EthernetHeader ethernet;
  ethernet.destination = sim::switch_mac();
  ethernet.source = sim::node_mac(NodeId{0});
  ethernet.ether_type = net::EtherType::kRtManagement;
  ByteWriter writer;
  ethernet.serialize(writer);
  writer.write_u8(0xEE);  // unknown type octet
  writer.write_u8(0x01);
  auto frame = sim::SimFrame::make(stack.network().next_frame_id(),
                                   std::move(writer).take(), 0,
                                   stack.network().now(), NodeId{0});
  stack.network().node(NodeId{0}).send_best_effort(std::move(frame));
  EXPECT_TRUE(stack.network().simulator().run_all());

  EXPECT_EQ(stack.management().admission().state().channel_count(), 0u);
  // The network keeps working afterwards.
  EXPECT_TRUE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40).has_value());
}

TEST(FailureInjection, TruncatedRequestIgnored) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  net::RequestFrame request;
  request.source_mac = sim::node_mac(NodeId{0});
  request.destination_mac = sim::node_mac(NodeId{1});
  request.period = 100;
  request.capacity = 3;
  request.deadline = 40;
  auto bytes = request.serialize();
  bytes.resize(bytes.size() / 2);  // cut the frame in half

  net::EthernetHeader ethernet;
  ethernet.destination = sim::switch_mac();
  ethernet.source = sim::node_mac(NodeId{0});
  ethernet.ether_type = net::EtherType::kRtManagement;
  ByteWriter writer;
  ethernet.serialize(writer);
  writer.write_bytes(bytes);
  auto frame = sim::SimFrame::make(stack.network().next_frame_id(),
                                   std::move(writer).take(), 0,
                                   stack.network().now(), NodeId{0});
  stack.network().node(NodeId{0}).send_best_effort(std::move(frame));
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_EQ(stack.management().stats().requests_admitted, 0u);
}

TEST(FailureInjection, TimeoutThenLateCapacityStillConsistent) {
  // Requests that time out must not leak request IDs: issue many timeouts,
  // then verify fresh requests still work on a functioning stack.
  sim::SimNetwork network(test_config(), 2);
  RtLayerConfig layer_config;
  layer_config.request_timeout_slots = 10;
  layer_config.request_attempts = 1;
  NodeRtLayer layer(network, NodeId{0}, layer_config);

  int timeouts = 0;
  for (int i = 0; i < 50; ++i) {
    layer.request_channel(NodeId{1}, 100, 3, 40,
                          [&](const SetupOutcome& outcome) {
                            if (!outcome.accepted) ++timeouts;
                          });
  }
  EXPECT_TRUE(network.simulator().run_all());
  EXPECT_EQ(timeouts, 50);
  EXPECT_TRUE(layer.tx_channels().empty());
}

TEST(FailureInjection, TeardownOfUnknownChannelHarmless) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  net::TeardownFrame teardown;
  teardown.rt_channel = ChannelId(999);
  net::EthernetHeader ethernet;
  ethernet.destination = sim::switch_mac();
  ethernet.source = sim::node_mac(NodeId{0});
  ethernet.ether_type = net::EtherType::kRtManagement;
  ByteWriter writer;
  ethernet.serialize(writer);
  writer.write_bytes(teardown.serialize());
  auto frame = sim::SimFrame::make(stack.network().next_frame_id(),
                                   std::move(writer).take(), 0,
                                   stack.network().now(), NodeId{0});
  stack.network().node(NodeId{0}).send_best_effort(std::move(frame));
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_EQ(stack.management().stats().teardowns, 0u);
}

}  // namespace
}  // namespace rtether::proto
