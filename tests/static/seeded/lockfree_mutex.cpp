// Seeded lint violation: scripts/lint_invariants.py --profile lock-free
// must report the mutex below (rule lock-free-path). WILL_FAIL ctest case
// static.lint_seeded_lockfree.
#include <mutex>

std::mutex g_seeded_mutex;

void seeded_lockfree_violation() {
  std::lock_guard<std::mutex> lock(g_seeded_mutex);
}
