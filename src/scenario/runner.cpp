#include "scenario/runner.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/calculus.hpp"
#include "common/bytes.hpp"
#include "core/admission.hpp"
#include "core/admission_backend.hpp"
#include "core/gate_schedule.hpp"
#include "edf/feasibility.hpp"
#include "net/ethernet.hpp"
#include "net/mgmt_frames.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"
#include "sim/addressing.hpp"
#include "sim/best_effort.hpp"
#include "sim/fabric.hpp"
#include "sim/fault.hpp"
#include "sim/parallel.hpp"

namespace rtether::scenario {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kMalformedSpec:
      return "malformed scenario spec";
    case ViolationKind::kPartitionInvariant:
      return "DPS candidate violates Eq 18.8/18.9";
    case ViolationKind::kPathSplitInvariant:
      return "k-hop split violates generalized Eq 18.8/18.9";
    case ViolationKind::kEngineDisagreement:
      return "admission paths disagree";
    case ViolationKind::kReleaseDisagreement:
      return "release results disagree";
    case ViolationKind::kMultihopParity:
      return "multihop/classic SDPS parity broken";
    case ViolationKind::kStateInconsistent:
      return "committed states out of sync";
    case ViolationKind::kInfeasibleState:
      return "committed link fails the EDF test";
    case ViolationKind::kStackDivergence:
      return "wire-protocol outcome diverges from analytic decision";
    case ViolationKind::kDeadlineMiss:
      return "deadline miss in simulation";
    case ViolationKind::kFrameLoss:
      return "RT frame lost in simulation";
    case ViolationKind::kSimBudgetExhausted:
      return "simulation event budget exhausted (runaway guard)";
    case ViolationKind::kFaultContract:
      return "fault survival contract broken";
    case ViolationKind::kReadmissionDivergence:
      return "post-reboot re-admission diverges from fresh admission";
    case ViolationKind::kCalculusViolation:
      return "EDF accept violates the network-calculus bound";
    case ViolationKind::kCalculusDisagreement:
      return "EDF reject contradicts the network-calculus bound";
    case ViolationKind::kGateConflict:
      return "TT gate placement conflicts or breaks its bounds";
    case ViolationKind::kJitterViolation:
      return "TT delivery jitter nonzero";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream out;
  out << scenario::to_string(kind);
  if (op_index != static_cast<std::size_t>(-1)) {
    out << " at op " << op_index;
  }
  if (!detail.empty()) {
    out << ": " << detail;
  }
  return out.str();
}

std::string ScenarioResult::summary() const {
  std::ostringstream out;
  out << (passed ? "PASS" : "FAIL") << " admitted=" << admitted
      << " rejected=" << rejected << " released=" << released
      << " frames=" << frames_delivered;
  for (const auto& violation : violations) {
    out << "\n  " << violation.to_string();
  }
  return out.str();
}

namespace {

using core::AdmissionController;
using core::ChannelSpec;
using core::Rejection;
using core::ReleaseOutcome;
using core::RtChannel;

using AdmitOutcome = Expected<RtChannel, Rejection>;

/// FNV-1a accumulator for the SimDigest link-stats fingerprint.
class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_{0xcbf29ce484222325ULL};
};

void mix_transmitter(Fnv1a& fnv, const sim::Transmitter& tx) {
  const auto& stats = tx.stats();
  fnv.mix(stats.rt_frames_sent);
  fnv.mix(stats.best_effort_frames_sent);
  fnv.mix(stats.busy_ticks);
  fnv.mix(stats.max_rt_queue_depth);
  fnv.mix(stats.max_best_effort_queue_depth);
  fnv.mix(tx.best_effort_dropped());
}

/// Fingerprints the finished simulation: every per-link counter, the switch
/// aggregates and the per-channel delivery records. Field order is part of
/// the golden contract — do not reorder.
SimDigest compute_sim_digest(const sim::SimNetwork& network) {
  SimDigest digest;
  digest.executed_events = network.simulator().executed_events();
  const sim::SimStats& stats = network.stats();
  digest.rt_delivered = stats.total_rt_delivered();
  digest.deadline_misses = stats.total_deadline_misses();
  digest.best_effort_sent = stats.best_effort_sent();
  digest.best_effort_delivered = stats.best_effort_delivered();

  Fnv1a fnv;
  for (std::uint32_t n = 0; n < network.node_count(); ++n) {
    mix_transmitter(fnv, network.node(NodeId{n}).uplink());
  }
  const sim::SimSwitch& sw = network.ethernet_switch();
  for (std::uint32_t n = 0; n < sw.port_count(); ++n) {
    mix_transmitter(fnv, sw.port(NodeId{n}));
  }
  fnv.mix(sw.stats().rt_forwarded);
  fnv.mix(sw.stats().best_effort_forwarded);
  fnv.mix(sw.stats().management_received);
  fnv.mix(sw.stats().flooded);
  fnv.mix(sw.stats().rt_dropped_unknown_destination);
  for (const auto& [id, channel] : stats.channels()) {
    fnv.mix(id.value());
    fnv.mix(channel.frames_sent);
    fnv.mix(channel.frames_delivered);
    fnv.mix(channel.deadline_misses);
    fnv.mix(static_cast<std::uint64_t>(channel.worst_lateness_ticks));
    fnv.mix(channel.delay_ticks.count());
    fnv.mix_double(channel.delay_ticks.mean());
    fnv.mix_double(channel.delay_ticks.min());
    fnv.mix_double(channel.delay_ticks.max());
  }
  fnv.mix(stats.best_effort_delay_ticks().count());
  fnv.mix_double(stats.best_effort_delay_ticks().mean());
  digest.link_stats_hash = fnv.value();
  return digest;
}

[[nodiscard]] bool outcomes_equal(const AdmitOutcome& a,
                                  const AdmitOutcome& b) {
  if (a.has_value() != b.has_value()) return false;
  if (a.has_value()) return *a == *b;
  return a.error().reason == b.error().reason &&
         a.error().detail == b.error().detail;
}

[[nodiscard]] bool outcomes_equal(const ReleaseOutcome& a,
                                  const ReleaseOutcome& b) {
  if (a.has_value() != b.has_value()) return false;
  if (a.has_value()) return *a == *b;
  return a.error() == b.error();
}

[[nodiscard]] std::string describe(const AdmitOutcome& outcome) {
  if (outcome.has_value()) {
    std::ostringstream out;
    out << "accepted id=" << outcome->id.value()
        << " d_iu=" << outcome->partition.uplink
        << " d_id=" << outcome->partition.downlink;
    return out.str();
  }
  return std::string("rejected (") + core::to_string(outcome.error().reason) +
         "): " + outcome.error().detail;
}

[[nodiscard]] std::string describe(const ReleaseOutcome& outcome) {
  if (outcome.has_value()) {
    return "released id=" + std::to_string(outcome->value());
  }
  return std::string("rejected (") + core::to_string(outcome.error().reason) +
         "): " + outcome.error().detail;
}

/// Resolves which channel ID a release op tears down: the ID its target
/// admit op was assigned, or the raw ID when the target never admitted.
[[nodiscard]] ChannelId resolve_release(
    const ScenarioOp& op,
    const std::vector<std::optional<ChannelId>>& id_by_op) {
  if (op.target != ScenarioOp::kNoTarget && id_by_op[op.target]) {
    return *id_by_op[op.target];
  }
  return ChannelId{op.raw_id};
}

/// Live channels of a NetworkState, sorted by ID — the canonical form for
/// cross-engine registry comparison.
[[nodiscard]] std::vector<RtChannel> sorted_channels(
    const core::NetworkState& state) {
  auto channels = state.channels();
  std::sort(channels.begin(), channels.end(),
            [](const RtChannel& a, const RtChannel& b) { return a.id < b.id; });
  return channels;
}

struct RunContext {
  const ScenarioSpec& spec;
  const RunnerOptions& options;
  ScenarioResult result;

  bool fail(ViolationKind kind, std::size_t op_index, std::string detail) {
    result.violations.push_back({kind, op_index, std::move(detail)});
    return false;
  }
};

/// Phases A–D: the reference controller run with the candidate audit, the
/// configured `AdmissionBackend` kinds over the same stream, and the
/// end-of-stream consistency checks. Fills the per-op reference outcomes the
/// later phases (multihop parity, wire replay) compare against.
bool run_star_engines(
    RunContext& ctx, std::vector<std::optional<AdmitOutcome>>& ref_by_op,
    std::vector<std::optional<ChannelId>>& id_by_op,
    std::vector<std::optional<ReleaseOutcome>>& release_by_op) {
  const ScenarioSpec& spec = ctx.spec;
  const std::uint32_t nodes = spec.topology.nodes;
  auto make_dps = [&] { return ctx.options.partitioner_factory(spec.scheme); };

  AdmissionController controller(nodes, make_dps());
  const auto audit_dps = make_dps();

  // --- Phase A: reference run with the Eq 18.8/18.9 candidate audit ------
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kRelease) {
      const ChannelId id = resolve_release(op, id_by_op);
      release_by_op[i] = controller.release(id);
      if (release_by_op[i]->has_value()) ++ctx.result.released;
      continue;
    }
    // The audit mirrors admission_flow's gate: candidates are only
    // requested for valid specs between known nodes with ID headroom.
    const auto& request = op.spec;
    std::vector<core::DeadlinePartition> candidates;
    bool audited = false;
    if (request.valid() && controller.state().node_exists(request.source) &&
        controller.state().node_exists(request.destination) &&
        controller.state().channel_count() <
            core::ChannelIdAllocator::kCapacity) {
      candidates = audit_dps->candidates(request, controller.state());
      audited = true;
      for (const auto& candidate : candidates) {
        if (!candidate.satisfies(request)) {
          std::ostringstream detail;
          detail << spec.scheme << " proposed d_iu=" << candidate.uplink
                 << " d_id=" << candidate.downlink << " for "
                 << request.to_string();
          return ctx.fail(ViolationKind::kPartitionInvariant, i, detail.str());
        }
      }
    }
    auto outcome = controller.request(request);
    if (outcome.has_value()) {
      ++ctx.result.admitted;
      id_by_op[i] = outcome->id;
      // Independent cross-theory audit (necessary direction): the two link
      // task sets the engine just committed must satisfy the
      // network-calculus lower envelope — EDF feasibility implies it.
      for (const auto& [node, dir] :
           {std::pair{request.source, core::LinkDirection::kUplink},
            std::pair{request.destination, core::LinkDirection::kDownlink}}) {
        const auto verdict = analysis::CalculusOracle::check_accept(
            controller.state().link(node, dir).tasks());
        ++ctx.result.oracle_checks;
        if (!verdict.consistent) {
          return ctx.fail(ViolationKind::kCalculusViolation, i,
                          std::string(core::to_string(dir)) + " of node " +
                              std::to_string(node.value()) + ": " +
                              verdict.detail);
        }
      }
    } else {
      ++ctx.result.rejected;
      // Cross-theory audit (sufficient direction): an infeasibility
      // rejection is wrong if some DPS candidate is calculus-provably
      // feasible on *both* links (check_reject reports inconsistent
      // exactly when the inflated upper envelope fits — which implies
      // exact EDF feasibility).
      const auto reason = outcome.error().reason;
      if (audited && (reason == core::RejectReason::kUplinkInfeasible ||
                      reason == core::RejectReason::kDownlinkInfeasible)) {
        for (const auto& candidate : candidates) {
          const edf::PseudoTask up{ChannelId{0}, request.period,
                                   request.capacity, candidate.uplink};
          const edf::PseudoTask down{ChannelId{0}, request.period,
                                     request.capacity, candidate.downlink};
          const auto uplink_verdict = analysis::CalculusOracle::check_reject(
              controller.state()
                  .link(request.source, core::LinkDirection::kUplink)
                  .tasks(),
              up);
          const auto downlink_verdict = analysis::CalculusOracle::check_reject(
              controller.state()
                  .link(request.destination, core::LinkDirection::kDownlink)
                  .tasks(),
              down);
          ctx.result.oracle_checks += 2;
          if (!uplink_verdict.consistent && !downlink_verdict.consistent) {
            std::ostringstream detail;
            detail << "candidate d_iu=" << candidate.uplink
                   << " d_id=" << candidate.downlink << " for "
                   << request.to_string()
                   << " rejected although both links pass the calculus "
                      "sufficiency check";
            return ctx.fail(ViolationKind::kCalculusDisagreement, i,
                            detail.str());
          }
        }
      }
    }
    ref_by_op[i] = std::move(outcome);
  }

  // --- Phases B/C: every configured backend over the unified front door --
  // Each kind drives the identical op stream through
  // `AdmissionBackend::submit` and must match the controller outcome for
  // outcome — admissions *and* typed release verdicts.
  std::vector<core::ChannelOp> ops;
  ops.reserve(spec.ops.size());
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kAdmit) {
      ops.push_back(core::ChannelOp::admit(op.spec));
    } else {
      ops.push_back(core::ChannelOp::release(resolve_release(op, id_by_op)));
    }
  }
  const auto reference_registry = sorted_channels(controller.state());
  for (const std::string& kind : ctx.options.backends) {
    core::BackendConfig backend_config;
    backend_config.threads = ctx.options.parallel_threads;
    // Fuzz batches are small; lower the fallback threshold so the sharded
    // paths actually execute instead of degenerating to the batched engine.
    backend_config.min_parallel_batch = 2;
    auto backend =
        core::make_admission_backend(kind, nodes, make_dps(), backend_config);
    if (!backend) {
      return ctx.fail(ViolationKind::kEngineDisagreement,
                      static_cast<std::size_t>(-1),
                      "unknown admission backend '" + kind + "'");
    }
    const auto churn = backend->submit(ops);
    std::size_t admit_cursor = 0;
    std::size_t release_cursor = 0;
    for (std::size_t i = 0; i < spec.ops.size(); ++i) {
      if (spec.ops[i].kind == ScenarioOp::Kind::kAdmit) {
        const auto& outcome = churn.admissions[admit_cursor++];
        if (!outcomes_equal(outcome, *ref_by_op[i])) {
          return ctx.fail(ViolationKind::kEngineDisagreement, i,
                          kind + " backend: " + describe(outcome) +
                              " vs controller: " + describe(*ref_by_op[i]));
        }
      } else {
        const auto& outcome = churn.releases[release_cursor++];
        if (!outcomes_equal(outcome, *release_by_op[i])) {
          return ctx.fail(ViolationKind::kReleaseDisagreement, i,
                          kind + " backend: " + describe(outcome) +
                              " vs controller: " +
                              describe(*release_by_op[i]));
        }
      }
    }

    // --- Phase D: end-of-stream registry consistency per backend ---------
    if (sorted_channels(backend->state()) != reference_registry) {
      return ctx.fail(ViolationKind::kStateInconsistent,
                      static_cast<std::size_t>(-1),
                      kind +
                          " backend's live channel registry differs "
                          "after the stream");
    }
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (const auto dir :
         {core::LinkDirection::kUplink, core::LinkDirection::kDownlink}) {
      if (!edf::is_feasible(controller.state().link(NodeId{n}, dir))) {
        return ctx.fail(ViolationKind::kInfeasibleState,
                        static_cast<std::size_t>(-1),
                        std::string("link of node ") + std::to_string(n) +
                            " (" + core::to_string(dir) +
                            ") infeasible after churn");
      }
    }
  }
  return true;
}

/// Phase E: the multihop path over the scenario fabric, with the k-hop
/// split audit and (when applicable) SDPS parity against the classic
/// controller's decisions.
bool run_multihop(RunContext& ctx,
                  const std::vector<std::optional<AdmitOutcome>>& ref_by_op,
                  std::vector<core::MultihopChannel>* live_channels = nullptr) {
  const ScenarioSpec& spec = ctx.spec;
  core::Topology topology = spec.topology.build();
  core::PathAdmissionController multihop(
      spec.topology.build(),
      ctx.options.path_partitioner_factory(spec.scheme));
  const auto audit_split = ctx.options.path_partitioner_factory(spec.scheme);

  // The k-way largest-remainder apportionment matches the two-link floor
  // split exactly on even deadlines under SDPS (see
  // tests/property/test_multihop_properties.cpp) — there, decisions must
  // be identical to the classic controller's.
  bool parity = spec.topology.kind == TopologyKind::kStar &&
                spec.scheme == "SDPS";
  for (const auto& op : spec.ops) {
    if (op.kind == ScenarioOp::Kind::kAdmit && op.spec.valid() &&
        op.spec.deadline % 2 != 0) {
      parity = false;
      break;
    }
  }

  std::vector<std::optional<ChannelId>> id_by_op(spec.ops.size());
  std::size_t live = 0;
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kRelease) {
      if (multihop.release(resolve_release(op, id_by_op))) --live;
      continue;
    }
    const auto& request = op.spec;
    // Pre-request audit of the split, mirroring request()'s own gate.
    const bool structurally_ok =
        request.period > 0 && request.capacity > 0 &&
        request.capacity <= request.period && request.deadline > 0 &&
        topology.attachment(request.source).has_value() &&
        topology.attachment(request.destination).has_value();
    if (structurally_ok && live < core::ChannelIdAllocator::kCapacity) {
      const auto route = topology.route(request.source, request.destination);
      if (route &&
          request.deadline >= request.capacity * route->size()) {
        const auto budgets =
            audit_split->split(request, *route, multihop.state());
        Slot sum = 0;
        bool hop_floor_ok = budgets.size() == route->size();
        for (const Slot budget : budgets) {
          hop_floor_ok = hop_floor_ok && budget >= request.capacity;
          sum += budget;
        }
        if (!hop_floor_ok || sum != request.deadline) {
          std::ostringstream detail;
          detail << audit_split->name() << " split of " << request.to_string()
                 << " over " << route->size() << " hops: sum=" << sum
                 << " (want " << request.deadline << ")";
          return ctx.fail(ViolationKind::kPathSplitInvariant, i, detail.str());
        }
      }
    }
    const auto outcome = multihop.request(request);
    if (outcome.has_value()) {
      id_by_op[i] = outcome->id;
      ++live;
      if (!outcome->partition_valid()) {
        return ctx.fail(ViolationKind::kPathSplitInvariant, i,
                        "admitted multihop channel fails partition_valid()");
      }
    }
    if (parity && ref_by_op[i].has_value() &&
        outcome.has_value() != ref_by_op[i]->has_value()) {
      return ctx.fail(ViolationKind::kMultihopParity, i,
                      "multihop " +
                          std::string(outcome.has_value() ? "accepted"
                                                          : "rejected") +
                          " where classic controller did the opposite for " +
                          request.to_string());
    }
  }

  if (multihop.state().channel_count() != live) {
    return ctx.fail(ViolationKind::kStateInconsistent,
                    static_cast<std::size_t>(-1),
                    "multihop registry count drifted from the op stream");
  }
  if (spec.topology.kind != TopologyKind::kStar) {
    // Multi-switch scenarios have no star reference; report the multihop
    // controller's own stats.
    ctx.result.admitted = multihop.stats().accepted;
    ctx.result.rejected = multihop.stats().rejected;
    ctx.result.released = multihop.stats().released;
  }

  // Every directed link a live channel crosses must still be feasible.
  std::unordered_set<core::LinkId> links;
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    if (!id_by_op[i]) continue;
    if (const auto channel = multihop.state().find_channel(*id_by_op[i])) {
      for (const auto& link : channel->path) links.insert(link);
    }
  }
  for (const auto& link : links) {
    if (!edf::is_feasible(multihop.state().link(link))) {
      return ctx.fail(ViolationKind::kInfeasibleState,
                      static_cast<std::size_t>(-1),
                      "multihop link " + link.to_string() +
                          " infeasible after churn");
    }
  }
  if (live_channels != nullptr) {
    // Surviving channel set for the fabric simulation phase, in admission
    // (op) order — the FabricNetwork's construction order. A released op's
    // ID may have been recycled by a later admit, in which case both ops
    // resolve to the same live channel: keep the first occurrence.
    std::unordered_set<std::uint16_t> seen;
    for (std::size_t i = 0; i < spec.ops.size(); ++i) {
      if (!id_by_op[i]) continue;
      if (const auto channel = multihop.state().find_channel(*id_by_op[i])) {
        if (seen.insert(channel->id.value()).second) {
          live_channels->push_back(*channel);
        }
      }
    }
  }
  return true;
}

/// Fingerprints a finished fabric simulation, mirroring
/// `compute_sim_digest`'s structure: per-partition transmitter counters in
/// the canonical order, per-partition per-channel delivery records
/// (including delay-statistics bit patterns), best-effort delay aggregates,
/// and the cut-link record counts. Field order is part of the golden
/// contract — do not reorder. Every input is a deterministic function of
/// the spec (the barrier-round schedule is fixed), so this digest is
/// bit-identical across driver thread counts.
SimDigest compute_fabric_digest(const sim::FabricNetwork& fabric) {
  SimDigest digest;
  digest.executed_events = fabric.executed_events();
  Fnv1a fnv;
  for (std::size_t p = 0; p < fabric.partition_count(); ++p) {
    const sim::SimStats& stats = fabric.partition_stats(p);
    digest.rt_delivered += stats.total_rt_delivered();
    digest.deadline_misses += stats.total_deadline_misses();
    digest.best_effort_sent += stats.best_effort_sent();
    digest.best_effort_delivered += stats.best_effort_delivered();
    for (const sim::Transmitter* tx : fabric.transmitters(p)) {
      mix_transmitter(fnv, *tx);
    }
    for (const auto& [id, channel] : stats.channels()) {
      fnv.mix(id.value());
      fnv.mix(channel.frames_sent);
      fnv.mix(channel.frames_delivered);
      fnv.mix(channel.deadline_misses);
      fnv.mix(static_cast<std::uint64_t>(channel.worst_lateness_ticks));
      fnv.mix(channel.delay_ticks.count());
      fnv.mix_double(channel.delay_ticks.mean());
      fnv.mix_double(channel.delay_ticks.min());
      fnv.mix_double(channel.delay_ticks.max());
    }
    fnv.mix(stats.best_effort_delay_ticks().count());
    fnv.mix_double(stats.best_effort_delay_ticks().mean());
  }
  for (const auto& trunk : fabric.trunk_traffic()) {
    fnv.mix(trunk.from);
    fnv.mix(trunk.to);
    fnv.mix(trunk.records);
  }
  digest.link_stats_hash = fnv.value();
  return digest;
}

/// Phase F: the fabric simulation of multi-switch scenarios. The admitted
/// multihop channel set runs through the partitioned kernel
/// (sim/fabric.hpp) under the conservative barrier-round driver
/// (sim/parallel.hpp, `RunnerOptions::fabric_threads` workers), and the
/// same guarantee/survival contracts as the star phase are enforced:
/// zero deadline misses against the path-generalized Eq 18.1 allowance,
/// loss-free channels outside every fault's scope, exact frame accounting
/// (sent == delivered + dropped) inside it.
bool run_simulation_fabric(RunContext& ctx,
                           const std::vector<core::MultihopChannel>& channels) {
  const ScenarioSpec& spec = ctx.spec;
  sim::SimConfig sim_config;
  sim_config.ticks_per_slot = spec.ticks_per_slot;
  // One slot of trunk propagation: plausible for long inter-switch
  // cabling, and it widens the conservative lookahead to a full slot of
  // event work per synchronization round (see sim/config.hpp).
  sim_config.trunk_propagation_ticks = spec.ticks_per_slot;

  sim::FabricOptions fabric_options;
  fabric_options.seed = spec.seed;
  fabric_options.traffic_stop = sim_config.slots_to_ticks(spec.run_slots);
  fabric_options.with_best_effort = spec.with_best_effort;
  fabric_options.best_effort_load = spec.best_effort_load;
  fabric_options.bursty_best_effort = spec.bursty_best_effort;
  fabric_options.faults = spec.faults;

  sim::FabricNetwork fabric(sim_config, spec.topology.build(), channels,
                            fabric_options);
  sim::ParallelSimulator driver(fabric, ctx.options.fabric_threads);

  Slot max_deadline = 0;
  for (const auto& channel : channels) {
    max_deadline = std::max(max_deadline, channel.spec.deadline);
  }
  // Drain: anything released before the stop must land within its
  // deadline plus the allowance; the extra slots cover in-flight
  // self-reschedules and the multi-hop pipeline.
  const Slot drain_slots = max_deadline + 64;
  if (!driver.run_until(fabric_options.traffic_stop +
                        sim_config.slots_to_ticks(drain_slots))) {
    return ctx.fail(ViolationKind::kSimBudgetExhausted,
                    static_cast<std::size_t>(-1),
                    "a fabric partition tripped the runaway guard");
  }
  ctx.result.simulated_slots = spec.run_slots + drain_slots;
  ctx.result.sim_digest = compute_fabric_digest(fabric);
  ctx.result.fabric_partitions = fabric.partition_count();
  ctx.result.cut_link_records = fabric.cut_link_records();
  ctx.result.fault_injections = fabric.fault_injections();

  // Which channels a fault may legitimately have touched (the fabric only
  // supports windowed kinds, so scope is per node link, as on the star).
  const auto in_fault_scope = [&](const core::MultihopChannel& channel) {
    for (const auto& fault : spec.faults) {
      if (fault.downlink ? channel.spec.destination == fault.node
                         : channel.spec.source == fault.node) {
        return true;
      }
    }
    return false;
  };

  const auto counts = fabric.channel_counts();
  for (const auto& channel : channels) {
    const auto it = counts.find(channel.id.value());
    if (it == counts.end()) continue;  // nothing released during the run
    const sim::FabricChannelCounts& count = it->second;
    ctx.result.frames_delivered += count.delivered;
    if (count.misses != 0) {
      std::ostringstream detail;
      detail << "fabric channel " << channel.id.value() << " (d="
             << channel.spec.deadline << ", " << channel.path.size()
             << " hops) missed " << count.misses << " of " << count.sent
             << " frames";
      return ctx.fail(ViolationKind::kDeadlineMiss,
                      static_cast<std::size_t>(-1), detail.str());
    }
    if (in_fault_scope(channel)) {
      if (count.sent != count.delivered + count.dropped) {
        std::ostringstream detail;
        detail << "faulted fabric channel " << channel.id.value() << " sent "
               << count.sent << " but delivered " << count.delivered
               << " + dropped " << count.dropped << " does not add up";
        return ctx.fail(ViolationKind::kFaultContract,
                        static_cast<std::size_t>(-1), detail.str());
      }
      continue;
    }
    if (count.dropped != 0) {
      std::ostringstream detail;
      detail << "fabric channel " << channel.id.value()
             << " is outside every fault's scope but booked " << count.dropped
             << " fault drops";
      return ctx.fail(ViolationKind::kFaultContract,
                      static_cast<std::size_t>(-1), detail.str());
    }
    if (count.sent != count.delivered) {
      std::ostringstream detail;
      detail << "fabric channel " << channel.id.value() << " sent "
             << count.sent << " but delivered " << count.delivered;
      return ctx.fail(ViolationKind::kFrameLoss, static_cast<std::size_t>(-1),
                      detail.str());
    }
  }
  return true;
}

/// Replays the op stream over the management protocol; the wire must reach
/// the same decisions, IDs and uplink deadlines as the analytic reference
/// (`ref_by_op`). Fills `live` with the surviving established channels.
/// Shared by the EDF and TT simulation phases — the wire is scheme-blind.
bool replay_wire(
    RunContext& ctx, proto::Stack& stack,
    const std::vector<std::optional<AdmitOutcome>>& ref_by_op,
    const std::vector<std::optional<ChannelId>>& id_by_op,
    const std::vector<std::optional<ReleaseOutcome>>& release_by_op,
    std::unordered_map<std::uint16_t, proto::EstablishedChannel>& live) {
  const ScenarioSpec& spec = ctx.spec;
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kRelease) {
      if (!release_by_op[i].has_value() || !release_by_op[i]->has_value()) {
        continue;
      }
      const ChannelId id = resolve_release(op, id_by_op);
      const auto it = live.find(id.value());
      if (it == live.end()) {
        return ctx.fail(ViolationKind::kStateInconsistent, i,
                        "stack lost track of channel " +
                            std::to_string(id.value()));
      }
      stack.teardown(it->second);
      live.erase(it);
      continue;
    }
    const auto& request = op.spec;
    const auto established =
        stack.establish(request.source, request.destination, request.period,
                        request.capacity, request.deadline);
    const auto& reference = *ref_by_op[i];
    if (established.has_value() != reference.has_value()) {
      return ctx.fail(
          ViolationKind::kStackDivergence, i,
          "wire " +
              std::string(established.has_value()
                              ? "accepted"
                              : "rejected (" + established.error() + ")") +
              " vs analytic " + describe(reference));
    }
    if (established.has_value()) {
      if (established->id != reference->id ||
          established->uplink_deadline != reference->partition.uplink) {
        std::ostringstream detail;
        detail << "wire id=" << established->id.value()
               << " d_iu=" << established->uplink_deadline << " vs analytic "
               << describe(reference);
        return ctx.fail(ViolationKind::kStackDivergence, i, detail.str());
      }
      live.emplace(established->id.value(), *established);
    }
  }
  return true;
}

/// Worst per-position delivery-delay spread (ticks) across the live
/// channels: frame position j of a period is compared only against position
/// j of other periods — the measure the TT audit enforces at 0, computed
/// the same way for the EDF schemes so the ablation bench compares like
/// with like. Returns 0 when delay recording was off.
std::uint64_t worst_position_jitter(
    const sim::SimStats& stats,
    const std::unordered_map<std::uint16_t, proto::EstablishedChannel>&
        live) {
  std::uint64_t worst = 0;
  for (const auto& [idv, channel] : live) {
    const auto channel_stats = stats.channel(channel.id);
    if (!channel_stats) continue;
    const auto& delays = channel_stats->delivery_delays;
    const std::size_t capacity = channel.capacity;
    for (std::size_t p = 0; p < capacity && p < delays.size(); ++p) {
      Tick low = delays[p];
      Tick high = delays[p];
      for (std::size_t i = p; i < delays.size(); i += capacity) {
        low = std::min(low, delays[i]);
        high = std::max(high, delays[i]);
      }
      worst = std::max<std::uint64_t>(worst, high - low);
    }
  }
  return worst;
}

/// Phase F: wire-protocol replay plus the Eq 18.1 guarantee check in the
/// slot-accurate simulator.
bool run_simulation(
    RunContext& ctx, const std::vector<std::optional<AdmitOutcome>>& ref_by_op,
    const std::vector<std::optional<ChannelId>>& id_by_op,
    const std::vector<std::optional<ReleaseOutcome>>& release_by_op) {
  const ScenarioSpec& spec = ctx.spec;
  sim::SimConfig sim_config;
  sim_config.ticks_per_slot = spec.ticks_per_slot;
  proto::Stack stack(sim_config, spec.topology.nodes,
                     ctx.options.partitioner_factory(spec.scheme));
  auto& network = stack.network();
  network.set_miss_allowance(
      sim_config.t_latency_ticks(spec.with_best_effort));
  if (ctx.options.record_jitter) {
    network.stats().set_record_delays(true);
  }

  std::unordered_map<std::uint16_t, proto::EstablishedChannel> live;
  if (!replay_wire(ctx, stack, ref_by_op, id_by_op, release_by_op, live)) {
    return false;
  }

  // The fault plan (if any) hooks every transmitter now, so windows are
  // relative to the measured run's start — establishment above ran on a
  // pristine wire and its conformance checks stay exact.
  sim::FaultInjector injector(spec.seed);
  const sim::FaultEvent* structural = nullptr;
  for (const auto& fault : spec.faults) {
    if (fault.kind == sim::FaultKind::kSwitchReboot ||
        fault.kind == sim::FaultKind::kNodeCrash) {
      structural = &fault;  // well_formed: at most one
    }
  }
  if (!spec.faults.empty()) {
    injector.install(network, spec.faults, network.now());
  }

  // Synchronous periodic senders on every surviving channel (phase 0 — the
  // worst-case aligned release pattern), optional best-effort background.
  // `live` doubles as the measured-channel roster for the end-of-run
  // checks; a reboot appends its re-registered channels to it.
  std::vector<const proto::EstablishedChannel*> channels;
  channels.reserve(live.size());
  for (const auto& [id, channel] : live) channels.push_back(&channel);
  std::sort(channels.begin(), channels.end(),
            [](const auto* a, const auto* b) { return a->id < b->id; });

  Slot max_deadline = 0;
  // Senders are only ever stopped, never destroyed mid-run: a stopped
  // sender may still have one armed kernel timer pointing at it.
  std::vector<std::unique_ptr<proto::PeriodicRtSender>> senders;
  for (const auto* channel : channels) {
    max_deadline = std::max(max_deadline, channel->deadline);
    senders.push_back(std::make_unique<proto::PeriodicRtSender>(
        stack.layer(channel->source), channel->id));
    senders.back()->start();
  }
  std::vector<std::unique_ptr<sim::BestEffortSource>> background;
  if (spec.with_best_effort) {
    sim::BestEffortProfile profile;
    profile.offered_load = spec.best_effort_load;
    profile.arrivals = spec.bursty_best_effort
                           ? sim::BestEffortArrivals::kOnOff
                           : sim::BestEffortArrivals::kPoisson;
    background = sim::attach_best_effort_everywhere(network, profile,
                                                    spec.seed ^ 0xbeefULL);
  }

  const Tick run_start = network.now();
  Tick stop_at = run_start + sim_config.slots_to_ticks(spec.run_slots);
  bool rebooted = false;

  // Structural faults segment the measured run: run to the fault instant,
  // execute the fault and its recovery protocol (which steps the simulator
  // itself), then continue to the stop.
  if (structural != nullptr) {
    const Tick fault_at =
        run_start + sim_config.slots_to_ticks(structural->at_slot);
    if (!network.simulator().run_until(fault_at)) {
      return ctx.fail(ViolationKind::kSimBudgetExhausted,
                      static_cast<std::size_t>(-1),
                      "runaway guard tripped before the structural fault");
    }
    if (structural->kind == sim::FaultKind::kSwitchReboot) {
      // --- Switch reboot: tables lost, nodes must re-register. ----------
      rebooted = true;
      injector.record_structural(sim::FaultKind::kSwitchReboot);
      for (auto& sender : senders) sender->stop();
      stack.management().reboot();
      for (std::uint32_t n = 0; n < spec.topology.nodes; ++n) {
        stack.layer(NodeId{n}).reset_channels();
      }
      // Re-register the surviving set in ID order over the wire; the
      // outcome must be bit-identical to admitting the same specs, in the
      // same order, on a fresh controller (the reboot erased all state, so
      // nothing else is acceptable).
      core::AdmissionController fresh(
          spec.topology.nodes, ctx.options.partitioner_factory(spec.scheme));
      std::vector<proto::EstablishedChannel> survivors;
      survivors.reserve(channels.size());
      for (const auto* channel : channels) survivors.push_back(*channel);
      std::vector<proto::EstablishedChannel> restarted;
      restarted.reserve(survivors.size());
      for (const auto& old : survivors) {
        const auto re = stack.establish(old.source, old.destination,
                                        old.period, old.capacity,
                                        old.deadline);
        ChannelSpec request;
        request.source = old.source;
        request.destination = old.destination;
        request.period = old.period;
        request.capacity = old.capacity;
        request.deadline = old.deadline;
        const auto expected = fresh.request(request);
        if (re.has_value() != expected.has_value() ||
            (re.has_value() &&
             (re->id != expected->id ||
              re->uplink_deadline != expected->partition.uplink))) {
          std::ostringstream detail;
          detail << "re-registration of old channel " << old.id.value()
                 << " (" << request.to_string() << "): wire "
                 << (re.has_value()
                         ? "id=" + std::to_string(re->id.value()) +
                               " d_iu=" + std::to_string(re->uplink_deadline)
                         : "rejected (" + re.error() + ")")
                 << " vs fresh controller " << describe(expected);
          return ctx.fail(ViolationKind::kReadmissionDivergence,
                          static_cast<std::size_t>(-1), detail.str());
        }
        if (re.has_value()) {
          max_deadline = std::max(max_deadline, re->deadline);
          live[re->id.value()] = *re;
          restarted.push_back(*re);
        }
      }
      // Restart the release pattern only once every survivor is back, at
      // the next boundary of the *original* slot grid. The slotted EDF
      // analysis assumes slot-aligned synchronous releases; each handshake
      // above ends at an arbitrary tick, and starting senders there would
      // offset the streams against each other by sub-slot amounts — at
      // full utilization that is a *permanent* sub-slot lateness (found by
      // the fault campaign as systematic 9-tick misses after a reboot).
      const Tick ticks_per_slot = sim_config.slots_to_ticks(1);
      const Tick off_grid = (network.now() - run_start) % ticks_per_slot;
      if (off_grid != 0 &&
          !network.simulator().run_until(network.now() +
                                         (ticks_per_slot - off_grid))) {
        return ctx.fail(ViolationKind::kSimBudgetExhausted,
                        static_cast<std::size_t>(-1),
                        "runaway guard tripped aligning the reboot restart");
      }
      for (const auto& channel : restarted) {
        senders.push_back(std::make_unique<proto::PeriodicRtSender>(
            stack.layer(channel.source), channel.id));
        senders.back()->start();
      }
    } else {
      // --- Node crash: its channels are torn down, then the wire absorbs
      // a storm of stale/duplicate teardown frames from the dead node. ---
      injector.record_structural(sim::FaultKind::kNodeCrash);
      const NodeId crashed = structural->node;
      for (auto& sender : senders) {
        const auto it = live.find(sender->channel().value());
        if (it != live.end() && it->second.source == crashed) sender->stop();
      }
      std::vector<proto::EstablishedChannel> victims;
      const proto::EstablishedChannel* bystander = nullptr;
      for (const auto* channel : channels) {
        if (channel->source == crashed) {
          victims.push_back(*channel);
        } else if (bystander == nullptr) {
          bystander = channel;
        }
      }
      for (const auto& victim : victims) stack.teardown(victim);
      // Raw management injection, bypassing the RT layer's bookkeeping —
      // exactly what a half-dead node's retransmit buffer would emit.
      auto inject_teardown = [&](NodeId from, ChannelId id) {
        net::TeardownFrame teardown;
        teardown.rt_channel = id;
        teardown.is_ack = false;
        net::EthernetHeader ethernet;
        ethernet.destination = sim::switch_mac();
        ethernet.source = sim::node_mac(from);
        ethernet.ether_type = net::EtherType::kRtManagement;
        const auto payload = teardown.serialize();
        ByteWriter writer(net::EthernetHeader::kWireSize + payload.size());
        ethernet.serialize(writer);
        writer.write_bytes(payload);
        sim::SimFrame frame = sim::SimFrame::make(network.next_frame_id(),
                                                  std::move(writer).take(), 0,
                                                  network.now(), from);
        network.node(from).send_best_effort(std::move(frame));
      };
      // Duplicates: teardowns for channels already gone (must be re-acked
      // and ignored). Stray: a teardown for a *live* bystander channel
      // from the wrong node (must not tear it down — the bystander's
      // clean-channel check below proves it survived).
      for (const auto& victim : victims) {
        inject_teardown(crashed, victim.id);
      }
      if (bystander != nullptr) {
        inject_teardown(crashed, bystander->id);
      }
    }
    // The recovery protocol steps the simulator itself, and its management
    // handshakes queue at best-effort priority — behind whatever backlog
    // the cross-traffic built up — so recovery can overrun the nominal
    // stop by far. Running to a stop instant that is already in the past
    // would end the run mid-flight (frames stranded in queues look like
    // unbooked losses). Give the recovered network the full remainder of
    // the measured run instead.
    stop_at = std::max(
        stop_at, network.now() + sim_config.slots_to_ticks(
                                     spec.run_slots - structural->at_slot));
  }

  if (!network.simulator().run_until(stop_at)) {
    return ctx.fail(ViolationKind::kSimBudgetExhausted,
                    static_cast<std::size_t>(-1),
                    "runaway guard tripped during the measured run");
  }
  for (auto& sender : senders) sender->stop();
  for (auto& source : background) source->stop();
  // Drain: anything released before the stop must land within its deadline
  // plus the allowance; one extra period covers in-flight self-reschedules.
  const Slot drain_slots = max_deadline + 64;
  if (!network.simulator().run_until(
          stop_at + sim_config.slots_to_ticks(drain_slots))) {
    return ctx.fail(ViolationKind::kSimBudgetExhausted,
                    static_cast<std::size_t>(-1),
                    "runaway guard tripped during the drain");
  }
  ctx.result.simulated_slots =
      (stop_at - run_start) / sim_config.slots_to_ticks(1) + drain_slots;
  ctx.result.sim_digest = compute_sim_digest(network);
  ctx.result.fault_injections = injector.injections();
  if (ctx.options.record_jitter) {
    ctx.result.worst_jitter_ticks = worst_position_jitter(network.stats(),
                                                          live);
  }
  // Which channels a fault may legitimately have touched. After a reboot
  // every channel is in scope (and re-registration may have recycled IDs
  // across different specs, so per-ID attribution is meaningless anyway).
  const auto in_fault_scope = [&](const proto::EstablishedChannel& channel) {
    if (rebooted) return true;
    for (const auto& fault : spec.faults) {
      switch (fault.kind) {
        case sim::FaultKind::kLinkDown:
        case sim::FaultKind::kFrameLoss:
        case sim::FaultKind::kFrameCorrupt:
          if (fault.downlink ? channel.destination == fault.node
                             : channel.source == fault.node) {
            return true;
          }
          break;
        case sim::FaultKind::kNodeCrash:
          if (channel.source == fault.node) return true;
          break;
        case sim::FaultKind::kSwitchReboot:
        case sim::FaultKind::kMgmtDelay:
          break;  // reboot handled above; mgmt delay touches no channel
      }
    }
    return false;
  };

  // The survival contract. Deadline misses must be zero for *every*
  // channel — the fault model only removes load (a dropped frame consumed
  // its wire time first), so EDF's guarantee is untouched. Channels
  // outside every fault's scope must be loss-free; channels in scope must
  // account for every frame exactly: sent == delivered + dropped.
  for (const auto& [idv, channel] : live) {
    const auto stats = network.stats().channel(channel.id);
    if (!stats) continue;  // period longer than the run; nothing released
    ctx.result.frames_delivered += stats->frames_delivered;
    if (stats->deadline_misses != 0) {
      std::ostringstream detail;
      detail << "channel " << channel.id.value() << " (d="
             << channel.deadline << ") missed " << stats->deadline_misses
             << " of " << stats->frames_sent << " frames; worst lateness "
             << stats->worst_lateness_ticks << " ticks";
      return ctx.fail(ViolationKind::kDeadlineMiss,
                      static_cast<std::size_t>(-1), detail.str());
    }
    if (in_fault_scope(channel)) {
      if (stats->frames_sent !=
          stats->frames_delivered + stats->frames_dropped) {
        std::ostringstream detail;
        detail << "faulted channel " << channel.id.value() << " sent "
               << stats->frames_sent << " but delivered "
               << stats->frames_delivered << " + dropped "
               << stats->frames_dropped << " does not add up";
        return ctx.fail(ViolationKind::kFaultContract,
                        static_cast<std::size_t>(-1), detail.str());
      }
      continue;
    }
    if (stats->frames_dropped != 0) {
      std::ostringstream detail;
      detail << "channel " << channel.id.value()
             << " is outside every fault's scope but booked "
             << stats->frames_dropped << " fault drops";
      return ctx.fail(ViolationKind::kFaultContract,
                      static_cast<std::size_t>(-1), detail.str());
    }
    if (stats->frames_sent != stats->frames_delivered) {
      std::ostringstream detail;
      detail << "channel " << channel.id.value() << " sent "
             << stats->frames_sent << " but delivered "
             << stats->frames_delivered;
      return ctx.fail(ViolationKind::kFrameLoss,
                      static_cast<std::size_t>(-1), detail.str());
    }
  }
  return true;
}

// --- Time-triggered (TT) scheme phases -----------------------------------

/// The fixed inert partitioner TT components carry: gate synthesis has no
/// deadline split to choose, the instance only feeds the `partitioner()`
/// accessor and reports.
std::unique_ptr<core::DeadlinePartitioner> tt_placeholder_dps() {
  return core::make_partitioner("SDPS");
}

/// Checks one link's gate table for reservation conflicts: two offset
/// streams {o + kP} and {o' + mP'} collide iff o ≡ o' (mod gcd(P, P')).
/// Returns the first conflict found, or an empty string.
std::string find_gate_conflict(const core::GateTable& table) {
  for (std::size_t a = 0; a < table.size(); ++a) {
    const auto& first = table[a];
    for (std::size_t b = a + 1; b < table.size(); ++b) {
      const auto& second = table[b];
      const Slot residue = std::gcd(first.period, second.period);
      for (const Slot oa : first.offsets) {
        for (const Slot ob : second.offsets) {
          if (oa % residue == ob % residue) {
            std::ostringstream detail;
            detail << "channels " << first.id.value() << " (P="
                   << first.period << ", offset " << oa << ") and "
                   << second.id.value() << " (P=" << second.period
                   << ", offset " << ob << ") collide mod gcd=" << residue;
            return detail.str();
          }
        }
      }
    }
  }
  return {};
}

/// Audits one admitted channel's placement against the gate-schedule
/// contract: C offsets per link, strictly increasing, store-and-forward
/// ordering v_i ≥ u_i + 1, and delivery inside min(d, P). Returns the
/// first violation found, or an empty string.
std::string audit_placement(const ChannelSpec& request,
                            const core::GatePlacement& placement) {
  const Slot horizon = std::min(request.deadline, request.period);
  std::ostringstream detail;
  if (placement.uplink.size() != request.capacity ||
      placement.downlink.size() != request.capacity) {
    detail << "placement has " << placement.uplink.size() << "/"
           << placement.downlink.size() << " offsets for capacity "
           << request.capacity;
    return detail.str();
  }
  for (std::size_t i = 0; i < placement.uplink.size(); ++i) {
    const Slot uplink = placement.uplink[i];
    const Slot downlink = placement.downlink[i];
    if (i > 0 && (uplink <= placement.uplink[i - 1] ||
                  downlink <= placement.downlink[i - 1])) {
      detail << "offsets of frame " << i << " not strictly increasing";
      return detail.str();
    }
    if (downlink < uplink + 1) {
      detail << "frame " << i << " leaves the switch (v=" << downlink
             << ") before it fully arrived (u=" << uplink << ")";
      return detail.str();
    }
    if (downlink + 1 > horizon) {
      detail << "frame " << i << " delivers at slot " << downlink + 1
             << " past min(d, P)=" << horizon;
      return detail.str();
    }
  }
  return {};
}

/// Phases A–D for the TT scheme: the reference `GateScheduleAdmission` run
/// with the per-accept placement audit, the "tt" backend over the unified
/// front door (bit-identical outcomes), and the end-of-stream registry and
/// pairwise conflict-freedom checks.
bool run_star_tt(
    RunContext& ctx, std::vector<std::optional<AdmitOutcome>>& ref_by_op,
    std::vector<std::optional<ChannelId>>& id_by_op,
    std::vector<std::optional<ReleaseOutcome>>& release_by_op) {
  const ScenarioSpec& spec = ctx.spec;
  const std::uint32_t nodes = spec.topology.nodes;
  core::GateScheduleAdmission reference(nodes, tt_placeholder_dps());

  // --- Phase A: reference run with the placement audit -------------------
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kRelease) {
      release_by_op[i] = reference.release(resolve_release(op, id_by_op));
      if (release_by_op[i]->has_value()) ++ctx.result.released;
      continue;
    }
    const auto& request = op.spec;
    auto outcome = reference.admit(request);
    if (outcome.has_value()) {
      ++ctx.result.admitted;
      id_by_op[i] = outcome->id;
      if (!outcome->partition.satisfies(request)) {
        std::ostringstream detail;
        detail << "TT derived d_iu=" << outcome->partition.uplink
               << " d_id=" << outcome->partition.downlink << " for "
               << request.to_string();
        return ctx.fail(ViolationKind::kPartitionInvariant, i, detail.str());
      }
      const auto placement = reference.placement(outcome->id);
      if (!placement) {
        return ctx.fail(ViolationKind::kGateConflict, i,
                        "admitted channel " +
                            std::to_string(outcome->id.value()) +
                            " has no recorded placement");
      }
      if (auto broken = audit_placement(request, *placement);
          !broken.empty()) {
        return ctx.fail(ViolationKind::kGateConflict, i,
                        request.to_string() + ": " + broken);
      }
    } else {
      ++ctx.result.rejected;
    }
    ref_by_op[i] = std::move(outcome);
  }

  // --- Phases B/C: the "tt" backend over the unified front door ----------
  std::vector<core::ChannelOp> ops;
  ops.reserve(spec.ops.size());
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kAdmit) {
      ops.push_back(core::ChannelOp::admit(op.spec));
    } else {
      ops.push_back(core::ChannelOp::release(resolve_release(op, id_by_op)));
    }
  }
  auto backend = core::make_admission_backend("tt", nodes,
                                              tt_placeholder_dps(), {});
  const auto churn = backend->submit(ops);
  std::size_t admit_cursor = 0;
  std::size_t release_cursor = 0;
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    if (spec.ops[i].kind == ScenarioOp::Kind::kAdmit) {
      const auto& outcome = churn.admissions[admit_cursor++];
      if (!outcomes_equal(outcome, *ref_by_op[i])) {
        return ctx.fail(ViolationKind::kEngineDisagreement, i,
                        "tt backend: " + describe(outcome) +
                            " vs reference: " + describe(*ref_by_op[i]));
      }
    } else {
      const auto& outcome = churn.releases[release_cursor++];
      if (!outcomes_equal(outcome, *release_by_op[i])) {
        return ctx.fail(ViolationKind::kReleaseDisagreement, i,
                        "tt backend: " + describe(outcome) +
                            " vs reference: " + describe(*release_by_op[i]));
      }
    }
  }

  // --- Phase D: registry consistency and conflict-free gate tables -------
  if (sorted_channels(backend->state()) !=
      sorted_channels(reference.state())) {
    return ctx.fail(ViolationKind::kStateInconsistent,
                    static_cast<std::size_t>(-1),
                    "tt backend's live channel registry differs after the "
                    "stream");
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (const auto dir :
         {core::LinkDirection::kUplink, core::LinkDirection::kDownlink}) {
      if (auto broken =
              find_gate_conflict(reference.gate_table(NodeId{n}, dir));
          !broken.empty()) {
        return ctx.fail(ViolationKind::kGateConflict,
                        static_cast<std::size_t>(-1),
                        std::string(core::to_string(dir)) + " of node " +
                            std::to_string(n) + ": " + broken);
      }
    }
  }
  return true;
}

/// Phase F for the TT scheme: wire-protocol replay against the
/// gate-schedule reference, then the scheme's own guarantee in the
/// slot-accurate simulator — the admitted gate tables are installed into
/// every transmitter, all senders release in phase at a common slot-aligned
/// epoch, and the run must show zero misses, zero losses outside fault
/// scope, *and zero delivery jitter*: each frame position's delivery delay
/// is identical in every period, by construction of the slot table.
bool run_simulation_tt(
    RunContext& ctx, const std::vector<std::optional<AdmitOutcome>>& ref_by_op,
    const std::vector<std::optional<ChannelId>>& id_by_op,
    const std::vector<std::optional<ReleaseOutcome>>& release_by_op) {
  const ScenarioSpec& spec = ctx.spec;
  sim::SimConfig sim_config;
  sim_config.ticks_per_slot = spec.ticks_per_slot;
  proto::Stack stack(sim_config, spec.topology.nodes,
                     core::make_admission_backend("tt", spec.topology.nodes,
                                                  tt_placeholder_dps(), {}));
  auto& network = stack.network();
  network.set_miss_allowance(
      sim_config.t_latency_ticks(spec.with_best_effort));
  network.stats().set_record_delays(true);

  std::unordered_map<std::uint16_t, proto::EstablishedChannel> live;
  if (!replay_wire(ctx, stack, ref_by_op, id_by_op, release_by_op, live)) {
    return false;
  }

  // Windowed fault plan; structural faults were rejected as malformed for
  // TT (the reboot recovery protocol is an EDF-scheme behavior).
  sim::FaultInjector injector(spec.seed);
  if (!spec.faults.empty()) {
    injector.install(network, spec.faults, network.now());
  }

  std::vector<const proto::EstablishedChannel*> channels;
  channels.reserve(live.size());
  for (const auto& [id, channel] : live) channels.push_back(&channel);
  std::sort(channels.begin(), channels.end(),
            [](const auto* a, const auto* b) { return a->id < b->id; });

  // Common epoch t0: the next slot boundary after establishment. Every
  // gate stream anchors its offsets at t0 and every sender releases phase 0
  // exactly at t0, so the conflict-free residues of admission become
  // conflict-free absolute window instants on the wire — and per-position
  // delivery delays are period-invariant (the zero-jitter contract). The
  // collision analysis is epoch-invariant, so any common t0 works.
  const Tick ticks_per_slot = sim_config.slots_to_ticks(1);
  Tick epoch = network.now();
  if (epoch % ticks_per_slot != 0) {
    epoch += ticks_per_slot - epoch % ticks_per_slot;
  }

  const core::GateScheduleAdmission* gates =
      stack.management().admission().gate_schedule();
  RTETHER_ASSERT_MSG(gates != nullptr,
                     "the tt backend must expose its gate schedule");
  // Downlink gates shift by the store-and-forward pipeline delay: frame j
  // finishes its uplink window at u_j + 1 slots and is queued on the
  // egress port propagation + processing ticks later — with v_j ≥ u_j + 1
  // that is never after the shifted downlink window opens.
  const Tick downlink_shift =
      sim_config.propagation_ticks + sim_config.switch_processing_ticks;
  std::vector<sim::Transmitter::GateWindow> windows;
  for (std::uint32_t n = 0; n < spec.topology.nodes; ++n) {
    for (const auto dir :
         {core::LinkDirection::kUplink, core::LinkDirection::kDownlink}) {
      const core::GateTable& table = gates->gate_table(NodeId{n}, dir);
      if (table.empty()) continue;
      const Tick shift =
          dir == core::LinkDirection::kUplink ? Tick{0} : downlink_shift;
      windows.clear();
      for (const auto& reservation : table) {
        for (const Slot offset : reservation.offsets) {
          sim::Transmitter::GateWindow window;
          window.channel = reservation.id;
          window.period_ticks = sim_config.slots_to_ticks(reservation.period);
          window.first_open =
              epoch + sim_config.slots_to_ticks(offset) + shift;
          windows.push_back(window);
        }
      }
      sim::Transmitter& transmitter =
          dir == core::LinkDirection::kUplink
              ? network.node(NodeId{n}).uplink()
              : network.ethernet_switch().port(NodeId{n});
      transmitter.install_gate_schedule(windows);
    }
  }

  Slot max_deadline = 0;
  std::vector<std::unique_ptr<proto::PeriodicRtSender>> senders;
  for (const auto* channel : channels) {
    max_deadline = std::max(max_deadline, channel->deadline);
    senders.push_back(std::make_unique<proto::PeriodicRtSender>(
        stack.layer(channel->source), channel->id));
  }
  std::vector<std::unique_ptr<sim::BestEffortSource>> background;
  if (spec.with_best_effort) {
    sim::BestEffortProfile profile;
    profile.offered_load = spec.best_effort_load;
    profile.arrivals = spec.bursty_best_effort
                           ? sim::BestEffortArrivals::kOnOff
                           : sim::BestEffortArrivals::kPoisson;
    background = sim::attach_best_effort_everywhere(network, profile,
                                                    spec.seed ^ 0xbeefULL);
  }

  // Park the wire at the epoch, then start the synchronized release
  // pattern the slot table was synthesized for.
  if (!network.simulator().run_until(epoch)) {
    return ctx.fail(ViolationKind::kSimBudgetExhausted,
                    static_cast<std::size_t>(-1),
                    "runaway guard tripped reaching the TT epoch");
  }
  for (auto& sender : senders) sender->start();

  const Tick stop_at = epoch + sim_config.slots_to_ticks(spec.run_slots);
  if (!network.simulator().run_until(stop_at)) {
    return ctx.fail(ViolationKind::kSimBudgetExhausted,
                    static_cast<std::size_t>(-1),
                    "runaway guard tripped during the measured run");
  }
  for (auto& sender : senders) sender->stop();
  for (auto& source : background) source->stop();
  const Slot drain_slots = max_deadline + 64;
  if (!network.simulator().run_until(
          stop_at + sim_config.slots_to_ticks(drain_slots))) {
    return ctx.fail(ViolationKind::kSimBudgetExhausted,
                    static_cast<std::size_t>(-1),
                    "runaway guard tripped during the drain");
  }
  ctx.result.simulated_slots = spec.run_slots + drain_slots;
  ctx.result.sim_digest = compute_sim_digest(network);
  ctx.result.fault_injections = injector.injections();
  ctx.result.worst_jitter_ticks =
      worst_position_jitter(network.stats(), live);

  // Which channels a windowed fault may legitimately have touched (a drop
  // perturbs the frame-position bookkeeping, so they are also exempt from
  // the jitter check — but never from the zero-miss contract).
  const auto in_fault_scope = [&](const proto::EstablishedChannel& channel) {
    for (const auto& fault : spec.faults) {
      switch (fault.kind) {
        case sim::FaultKind::kLinkDown:
        case sim::FaultKind::kFrameLoss:
        case sim::FaultKind::kFrameCorrupt:
          if (fault.downlink ? channel.destination == fault.node
                             : channel.source == fault.node) {
            return true;
          }
          break;
        case sim::FaultKind::kSwitchReboot:
        case sim::FaultKind::kNodeCrash:
        case sim::FaultKind::kMgmtDelay:
          break;  // structural rejected for TT; mgmt delay touches none
      }
    }
    return false;
  };

  for (const auto& [idv, channel] : live) {
    const auto stats = network.stats().channel(channel.id);
    if (!stats) continue;  // period longer than the run; nothing released
    ctx.result.frames_delivered += stats->frames_delivered;
    if (stats->deadline_misses != 0) {
      std::ostringstream detail;
      detail << "TT channel " << channel.id.value() << " (d="
             << channel.deadline << ") missed " << stats->deadline_misses
             << " of " << stats->frames_sent << " frames; worst lateness "
             << stats->worst_lateness_ticks << " ticks";
      return ctx.fail(ViolationKind::kDeadlineMiss,
                      static_cast<std::size_t>(-1), detail.str());
    }
    if (in_fault_scope(channel)) {
      if (stats->frames_sent !=
          stats->frames_delivered + stats->frames_dropped) {
        std::ostringstream detail;
        detail << "faulted TT channel " << channel.id.value() << " sent "
               << stats->frames_sent << " but delivered "
               << stats->frames_delivered << " + dropped "
               << stats->frames_dropped << " does not add up";
        return ctx.fail(ViolationKind::kFaultContract,
                        static_cast<std::size_t>(-1), detail.str());
      }
      continue;
    }
    if (stats->frames_dropped != 0) {
      std::ostringstream detail;
      detail << "TT channel " << channel.id.value()
             << " is outside every fault's scope but booked "
             << stats->frames_dropped << " fault drops";
      return ctx.fail(ViolationKind::kFaultContract,
                      static_cast<std::size_t>(-1), detail.str());
    }
    if (stats->frames_sent != stats->frames_delivered) {
      std::ostringstream detail;
      detail << "TT channel " << channel.id.value() << " sent "
             << stats->frames_sent << " but delivered "
             << stats->frames_delivered;
      return ctx.fail(ViolationKind::kFrameLoss,
                      static_cast<std::size_t>(-1), detail.str());
    }
    // The zero-jitter contract: frame position j of every period leaves at
    // offsets (u_j, v_j) of that period, so its delivery delay is the same
    // constant in every period — delays repeat with the message capacity.
    const auto& delays = stats->delivery_delays;
    const std::size_t capacity = channel.capacity;
    for (std::size_t i = capacity; i < delays.size(); ++i) {
      if (delays[i] != delays[i - capacity]) {
        std::ostringstream detail;
        detail << "TT channel " << channel.id.value() << " frame " << i
               << " (position " << i % capacity << ") delivered after "
               << delays[i] << " ticks vs " << delays[i - capacity]
               << " one period earlier";
        return ctx.fail(ViolationKind::kJitterViolation,
                        static_cast<std::size_t>(-1), detail.str());
      }
    }
  }
  return true;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunnerOptions& options) {
  RunnerOptions resolved = options;
  if (!resolved.partitioner_factory) {
    resolved.partitioner_factory = [](const std::string& scheme) {
      return core::make_partitioner(scheme);
    };
  }
  if (!resolved.path_partitioner_factory) {
    resolved.path_partitioner_factory = [](const std::string& scheme) {
      return core::make_path_partitioner(scheme == "SDPS" ? "SDPS" : "ADPS");
    };
  }

  RunContext ctx{spec, resolved, {}};
  if (!known_scheme(spec.scheme)) {
    // Strict: an unknown scheme must be a replayable failure, not a silent
    // fallback to some default DPS (the multihop factory used to map
    // anything unrecognized to ADPS).
    ctx.fail(ViolationKind::kMalformedSpec, static_cast<std::size_t>(-1),
             "unknown scheme '" + spec.scheme +
                 "' (want SDPS, ADPS, UDPS, Search or TT)");
    return ctx.result;
  }
  if (!spec.well_formed()) {
    ctx.fail(ViolationKind::kMalformedSpec, static_cast<std::size_t>(-1),
             "release targets must point back at admit ops and fault plans "
             "need a simulated wire with sane windows (structural faults: "
             "star only)");
    return ctx.result;
  }
  const bool tt = spec.scheme == "TT";
  if (tt && spec.topology.kind != TopologyKind::kStar) {
    ctx.fail(ViolationKind::kMalformedSpec, static_cast<std::size_t>(-1),
             "the TT scheme runs on the star fabric only");
    return ctx.result;
  }
  if (tt) {
    for (const auto& fault : spec.faults) {
      if (fault.kind == sim::FaultKind::kSwitchReboot ||
          fault.kind == sim::FaultKind::kNodeCrash) {
        ctx.fail(ViolationKind::kMalformedSpec, static_cast<std::size_t>(-1),
                 "TT fault plans must be windowed — the structural recovery "
                 "protocol is defined for the EDF schemes");
        return ctx.result;
      }
    }
  }

  std::vector<std::optional<AdmitOutcome>> ref_by_op(spec.ops.size());
  std::vector<std::optional<ChannelId>> id_by_op(spec.ops.size());
  std::vector<std::optional<ReleaseOutcome>> release_by_op(spec.ops.size());

  const bool star = spec.topology.kind == TopologyKind::kStar;
  bool ok = true;
  if (tt) {
    // The TT scheme swaps the EDF engine battery (phases A–E) for its own
    // A–D; there is no multihop generalization of the gate synthesis.
    ok = run_star_tt(ctx, ref_by_op, id_by_op, release_by_op);
    if (ok && spec.simulate && resolved.run_simulation) {
      ok = run_simulation_tt(ctx, ref_by_op, id_by_op, release_by_op);
    }
    ctx.result.passed = ok && ctx.result.violations.empty();
    return ctx.result;
  }
  if (star) {
    ok = run_star_engines(ctx, ref_by_op, id_by_op, release_by_op);
  }
  std::vector<core::MultihopChannel> fabric_channels;
  if (ok) {
    ok = run_multihop(ctx, ref_by_op, star ? nullptr : &fabric_channels);
  }
  if (ok && star && spec.simulate && resolved.run_simulation) {
    ok = run_simulation(ctx, ref_by_op, id_by_op, release_by_op);
  }
  if (ok && !star && spec.simulate && resolved.run_simulation) {
    ok = run_simulation_fabric(ctx, fabric_channels);
  }
  ctx.result.passed = ok && ctx.result.violations.empty();
  return ctx.result;
}

}  // namespace rtether::scenario
