#pragma once

/// @file checkpoints.hpp
/// The deadline checkpoint set of paper Eq 18.5:
///
///   t ∈ ∪_{i=1..Q} { m·P_i + d_i : m = 0, 1, … }
///
/// restricted to [1, bound]. The demand function h(n, t) only steps at these
/// instants, so testing h(n, t) ≤ t there is equivalent to testing every t.

#include <vector>

#include "common/types.hpp"
#include "edf/task_set.hpp"

namespace rtether::edf {

/// All checkpoints in [1, bound], sorted ascending, deduplicated.
[[nodiscard]] std::vector<Slot> checkpoints(const TaskSet& set, Slot bound);

/// Number of checkpoints in [1, bound] without materializing them
/// (upper bound — duplicates across tasks are counted once per task).
[[nodiscard]] std::uint64_t checkpoint_count_upper_bound(const TaskSet& set,
                                                         Slot bound);

}  // namespace rtether::edf
