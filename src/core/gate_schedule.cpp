#include "core/gate_schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/assert.hpp"

namespace rtether::core {

namespace {

std::string invalid_spec_detail(const ChannelSpec& spec) {
  std::ostringstream detail;
  detail << spec.to_string() << " is invalid";
  if (spec.capacity > 0 && spec.deadline < 2 * spec.capacity) {
    detail << " (d < 2C cannot cross a store-and-forward switch)";
  }
  return detail.str();
}

std::string placement_detail(const char* side, NodeId node, Slot horizon,
                             Slot frame_index) {
  std::ostringstream detail;
  detail << side << node.value() << ": no conflict-free gate window for frame "
         << frame_index << " within " << horizon << " slots";
  return detail.str();
}

}  // namespace

GateScheduleAdmission::GateScheduleAdmission(
    std::uint32_t node_count, std::unique_ptr<DeadlinePartitioner> partitioner,
    AdmissionConfig config)
    : state_(node_count),
      partitioner_(std::move(partitioner)),
      config_(config),
      uplink_tables_(node_count),
      downlink_tables_(node_count) {
  RTETHER_ASSERT(partitioner_ != nullptr);
}

bool GateScheduleAdmission::collides(const GateTable& table, Slot period,
                                     Slot offset) {
  for (const GateReservation& reservation : table) {
    const Slot g = std::gcd(period, reservation.period);
    const Slot residue = offset % g;
    for (const Slot existing : reservation.offsets) {
      ++stats_.demand_evaluations;
      if (existing % g == residue) {
        return true;
      }
    }
  }
  return false;
}

bool GateScheduleAdmission::place_frames(const GateTable& table, Slot period,
                                         Slot count,
                                         const std::vector<Slot>* floors,
                                         Slot last_bound,
                                         std::vector<Slot>& out) {
  ++stats_.feasibility_tests;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  Slot next = 0;
  for (Slot i = 0; i < count; ++i) {
    // Frames i+1 … count−1 still need strictly later slots below
    // `last_bound`, so frame i must fit by then.
    const Slot bound =
        std::min(last_bound - (count - 1 - i), std::min(period - 1, kOffsetCap));
    Slot candidate = next;
    if (floors != nullptr) {
      candidate = std::max(candidate, (*floors)[static_cast<std::size_t>(i)]);
    }
    for (;; ++candidate) {
      if (candidate > bound) {
        return false;
      }
      if (!collides(table, period, candidate)) {
        break;
      }
    }
    out.push_back(candidate);
    next = candidate + 1;
  }
  return true;
}

AdmitOutcome GateScheduleAdmission::admit(const ChannelSpec& spec) {
  ++stats_.requested;
  auto reject = [&](RejectReason reason,
                    std::string detail) -> AdmitOutcome {
    ++stats_.rejected;
    return Unexpected(Rejection{reason, std::move(detail)});
  };

  if (!spec.valid()) {
    return reject(RejectReason::kInvalidSpec, invalid_spec_detail(spec));
  }
  if (!state_.node_exists(spec.source) ||
      !state_.node_exists(spec.destination)) {
    return reject(RejectReason::kUnknownNode, spec.to_string());
  }

  // The table repeats with the channel's own period, so every frame must
  // be delivered within min(d, P) slots of release; downlink frame i needs
  // a slot strictly after uplink frame i (store-and-forward).
  const Slot horizon = std::min(spec.deadline, spec.period);
  if (horizon < spec.capacity + 1) {
    // P == C: the channel fills its entire period on each link, leaving no
    // later-in-period slot for the downlink copy. (EDF admits this load —
    // its downlink work rides into the next period — so this is the
    // structural utilization gap between the two schemes.)
    return reject(
        RejectReason::kUplinkInfeasible,
        placement_detail("uplink of node ", spec.source, horizon, 0));
  }

  GatePlacement placement;
  if (!place_frames(uplink_tables_[spec.source.value()], spec.period,
                    spec.capacity, nullptr, horizon - 2, placement.uplink)) {
    return reject(RejectReason::kUplinkInfeasible,
                  placement_detail("uplink of node ", spec.source, horizon,
                                   placement.uplink.size()));
  }

  std::vector<Slot> floors(placement.uplink.size());
  for (std::size_t i = 0; i < floors.size(); ++i) {
    floors[i] = placement.uplink[i] + 1;
  }
  if (!place_frames(downlink_tables_[spec.destination.value()], spec.period,
                    spec.capacity, &floors, horizon - 1, placement.downlink)) {
    return reject(RejectReason::kDownlinkInfeasible,
                  placement_detail("downlink of node ", spec.destination,
                                   horizon, placement.downlink.size()));
  }

  const auto id = ids_.allocate();
  if (!id) {
    return reject(RejectReason::kChannelIdsExhausted, spec.to_string());
  }

  // Report the placement as an Eq 18.8/18.9 partition: the uplink share is
  // the slots the message actually spends before the switch.
  const Slot uplink_share =
      std::clamp(placement.uplink.back() + 1, spec.capacity,
                 spec.deadline - spec.capacity);
  const DeadlinePartition partition{uplink_share,
                                    spec.deadline - uplink_share};
  RTETHER_ASSERT(partition.satisfies(spec));

  uplink_tables_[spec.source.value()].push_back(
      GateReservation{*id, spec.period, placement.uplink});
  downlink_tables_[spec.destination.value()].push_back(
      GateReservation{*id, spec.period, placement.downlink});
  placements_.emplace(*id, placement);

  const RtChannel channel{*id, spec, partition};
  state_.add_channel(channel);
  ++stats_.accepted;
  return channel;
}

ReleaseOutcome GateScheduleAdmission::release(ChannelId id) {
  const auto channel = state_.find_channel(id);
  if (!channel) {
    std::string detail = "channel ";
    detail += std::to_string(id.value());
    detail += " is not live";
    return Unexpected(
        Rejection{RejectReason::kUnknownChannel, std::move(detail)});
  }

  auto erase_reservation = [](GateTable& table, ChannelId victim) {
    const auto it =
        std::find_if(table.begin(), table.end(),
                     [victim](const GateReservation& reservation) {
                       return reservation.id == victim;
                     });
    RTETHER_ASSERT_MSG(it != table.end(), "gate table out of sync");
    table.erase(it);
  };
  erase_reservation(uplink_tables_[channel->spec.source.value()], id);
  erase_reservation(downlink_tables_[channel->spec.destination.value()], id);
  placements_.erase(id);

  const bool removed = state_.remove_channel(id);
  RTETHER_ASSERT_MSG(removed, "channel registry out of sync");
  const bool was_live = ids_.release(id);
  RTETHER_ASSERT_MSG(was_live, "channel present in state but ID not live");
  ++stats_.released;
  return id;
}

const GateTable& GateScheduleAdmission::gate_table(NodeId node,
                                                   LinkDirection dir) const {
  RTETHER_ASSERT(state_.node_exists(node));
  return dir == LinkDirection::kUplink ? uplink_tables_[node.value()]
                                       : downlink_tables_[node.value()];
}

std::optional<GatePlacement> GateScheduleAdmission::placement(
    ChannelId id) const {
  const auto it = placements_.find(id);
  if (it == placements_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void GateScheduleAdmission::reset() {
  state_ = NetworkState(state_.node_count());
  ids_ = ChannelIdAllocator{};
  for (auto& table : uplink_tables_) {
    table.clear();
  }
  for (auto& table : downlink_tables_) {
    table.clear();
  }
  placements_.clear();
}

}  // namespace rtether::core
