#pragma once

/// @file config.hpp
/// Simulator timing parameters tying the analysis' slot units to the
/// simulation's tick grid.

#include "common/types.hpp"
#include "common/units.hpp"

namespace rtether::sim {

struct SimConfig {
  /// Ticks per analysis slot (transmission time of one maximal frame).
  /// Sub-slot latencies are expressed in ticks.
  Tick ticks_per_slot{64};

  /// One-way propagation + PHY delay per link, ticks. Industrial cables are
  /// short (≤ 100 m ⇒ ~0.5 µs ≪ slot), so the default is 1 tick.
  Tick propagation_ticks{1};

  /// Switch store-and-forward processing latency per frame, ticks.
  Tick switch_processing_ticks{1};

  /// One-way propagation + PHY delay per inter-switch trunk, ticks (multi-
  /// switch fabrics only; the star never reads it). Trunks run longer
  /// cabling than node drops, and in the parallel simulator this delay is
  /// the conservative lookahead between partitions — the fabric runner
  /// sets it to one slot, which is both physically plausible (~50 µs of
  /// fiber at 100 Mbit/s slot granularity) and wide enough that a
  /// synchronization round spans a full slot of event work.
  Tick trunk_propagation_ticks{1};

  /// When false, the RT layer's EDF queues are bypassed and *all* traffic —
  /// including RT-tagged frames — takes the FCFS path at every hop. This is
  /// the motivational baseline: plain switched Ethernet without the paper's
  /// RT layer (bench_baseline_fcfs).
  bool edf_enabled{true};

  /// Transmission time for `wire_bytes` on a link, in ticks (rounded up;
  /// minimum 1 tick).
  [[nodiscard]] Tick transmission_ticks(std::uint64_t wire_bytes) const {
    if (wire_bytes == kMaxFrameWireBytes) {
      // Maximal frame = exactly one slot by definition; every RT data
      // frame takes this branch (hot path: skips the 64-bit division).
      return ticks_per_slot;
    }
    const Tick ticks = (wire_bytes * ticks_per_slot + kMaxFrameWireBytes - 1) /
                       kMaxFrameWireBytes;
    return ticks > 0 ? ticks : 1;
  }

  /// Converts analysis slots to ticks.
  [[nodiscard]] Tick slots_to_ticks(Slot slots) const {
    return slots * ticks_per_slot;
  }

  /// The system constant T_latency of paper Eq 18.1: everything the
  /// per-link EDF analysis does not account for — two propagation delays,
  /// switch processing, and (when non-RT traffic shares the links) one
  /// maximal frame of non-preemption blocking per hop. An RT message is
  /// guaranteed delivered within d_i slots + this.
  [[nodiscard]] Tick t_latency_ticks(bool with_best_effort_traffic) const {
    const Tick blocking =
        with_best_effort_traffic ? 2 * ticks_per_slot : 0;
    return 2 * propagation_ticks + switch_processing_ticks + blocking;
  }
};

}  // namespace rtether::sim
