#pragma once

/// @file legacy_sim_kernel.hpp
/// Frozen copy of the seed simulation kernel (PRs 1–4): `std::function`
/// actions heap-allocated per event, `SimFrame`s moved by value through
/// type-erased closures and `priority_queue`s, callback-wired star
/// topology. Kept **only** as the measured baseline for
/// `bench_sim_kernel`'s ≥3× throughput gate — do not use in new code; the
/// production kernel lives in src/sim/simulator.hpp.
///
/// The classes below are verbatim from the seed tree (modulo the `legacy`
/// namespace and frame/config/stats types shared with the live tree, which
/// are kernel-independent). `LegacyStarNetwork` replicates the seed
/// `SimNetwork`/`SimSwitch` wiring — per-hop lambdas capturing frames by
/// value — with the identical event pattern, so both kernels simulate the
/// same workload with the same event counts and verdicts.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"
#include "sim/config.hpp"
#include "sim/frame.hpp"
#include "sim/stats.hpp"

namespace rtether::sim::legacy {

/// Seed `Ipv4Header::serialize`: a temporary growable buffer per header
/// (one heap allocation per simulated frame, as the seed tree did it).
inline void legacy_serialize_ipv4(const net::Ipv4Header& ip, ByteWriter& out) {
  ByteWriter header(net::Ipv4Header::kWireSize);
  header.write_u8(0x45);  // version 4, IHL 5
  header.write_u8(ip.tos);
  header.write_u16(ip.total_length);
  header.write_u16(ip.identification);
  header.write_u16(0);  // flags/fragment offset: never fragmented here
  header.write_u8(ip.ttl);
  header.write_u8(static_cast<std::uint8_t>(ip.protocol));
  header.write_u16(0);  // checksum placeholder
  header.write_u32(ip.source.value());
  header.write_u32(ip.destination.value());

  std::vector<std::uint8_t> bytes = std::move(header).take();
  const std::uint16_t checksum = net::internet_checksum(bytes);
  bytes[10] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[11] = static_cast<std::uint8_t>(checksum);
  out.write_bytes(bytes);
}

/// Seed measurement layer: per-channel records behind a `std::map`.
class LegacySimStats {
 public:
  void record_rt_sent(ChannelId channel) { ++channels_[channel].frames_sent; }

  void record_rt_delivered(ChannelId channel, Tick created,
                           Tick absolute_deadline, Tick delivered,
                           Tick allowance) {
    auto& stats = channels_[channel];
    ++stats.frames_delivered;
    stats.delay_ticks.add(static_cast<double>(delivered - created));
    const auto lateness = static_cast<std::int64_t>(delivered) -
                          static_cast<std::int64_t>(absolute_deadline);
    stats.worst_lateness_ticks = std::max(stats.worst_lateness_ticks, lateness);
    if (delivered > absolute_deadline + allowance) {
      ++stats.deadline_misses;
    }
  }

  void record_best_effort_sent() { ++best_effort_sent_; }
  void record_best_effort_delivered(Tick created, Tick delivered) {
    ++best_effort_delivered_;
    best_effort_delay_.add(static_cast<double>(delivered - created));
  }

  [[nodiscard]] const std::map<ChannelId, ChannelDeliveryStats>& channels()
      const {
    return channels_;
  }
  [[nodiscard]] std::uint64_t total_rt_delivered() const {
    std::uint64_t total = 0;
    for (const auto& [id, stats] : channels_) total += stats.frames_delivered;
    return total;
  }
  [[nodiscard]] std::uint64_t total_deadline_misses() const {
    std::uint64_t total = 0;
    for (const auto& [id, stats] : channels_) total += stats.deadline_misses;
    return total;
  }
  [[nodiscard]] std::uint64_t best_effort_sent() const {
    return best_effort_sent_;
  }
  [[nodiscard]] std::uint64_t best_effort_delivered() const {
    return best_effort_delivered_;
  }

 private:
  std::map<ChannelId, ChannelDeliveryStats> channels_;
  std::uint64_t best_effort_sent_{0};
  std::uint64_t best_effort_delivered_{0};
  RunningStats best_effort_delay_;
};

/// Seed forwarding table: `std::unordered_map` keyed by MacAddress.
class LegacyForwardingTable {
 public:
  void learn(const net::MacAddress& mac, NodeId node) { table_[mac] = node; }

  [[nodiscard]] std::optional<NodeId> lookup(
      const net::MacAddress& mac) const {
    const auto it = table_.find(mac);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::unordered_map<net::MacAddress, NodeId> table_;
};

/// Seed kernel: a clock and a time-ordered queue of type-erased closures.
class LegacySimulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] Tick now() const { return now_; }

  void schedule_at(Tick when, Action action) {
    RTETHER_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    queue_.push(Event{when, next_sequence_++, std::move(action)});
  }

  void schedule_in(Tick delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  bool step() {
    if (queue_.empty()) {
      return false;
    }
    // priority_queue::top is const; the action is moved out via const_cast,
    // which is safe because the element is popped before the action runs.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.action();
    return true;
  }

  void run_until(Tick until) {
    while (!queue_.empty() && queue_.top().time <= until) {
      step();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Tick time;
    std::uint64_t sequence;  // tie-break: FIFO within a tick
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  Tick now_{0};
  std::uint64_t next_sequence_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Seed EDF queue: frames by value inside the heap entries.
class LegacyEdfQueue {
 public:
  void push(Tick deadline_key, SimFrame frame) {
    heap_.push(Entry{deadline_key, next_sequence_++, std::move(frame)});
  }

  std::optional<SimFrame> pop() {
    if (heap_.empty()) {
      return std::nullopt;
    }
    SimFrame frame = std::move(const_cast<Entry&>(heap_.top()).frame);
    heap_.pop();
    return frame;
  }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    Tick deadline;
    std::uint64_t sequence;
    SimFrame frame;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_{0};
};

/// Seed FCFS queue: frames by value in a deque.
class LegacyFcfsQueue {
 public:
  explicit LegacyFcfsQueue(std::size_t max_depth = 0)
      : max_depth_(max_depth) {}

  bool push(SimFrame frame) {
    if (max_depth_ != 0 && queue_.size() >= max_depth_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(frame));
    return true;
  }

  std::optional<SimFrame> pop() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    SimFrame frame = std::move(queue_.front());
    queue_.pop_front();
    return frame;
  }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::deque<SimFrame> queue_;
  std::size_t max_depth_;
  std::uint64_t dropped_{0};
};

/// Seed transmitter: dual queue + non-preemptive state machine, completion
/// through a type-erased `DeliverFn` closure carrying the frame by value.
class LegacyTransmitter {
 public:
  using DeliverFn = std::function<void(SimFrame frame, Tick completion)>;

  LegacyTransmitter(LegacySimulator& simulator, const SimConfig& config,
                    DeliverFn deliver, std::size_t best_effort_depth = 0)
      : simulator_(simulator),
        config_(config),
        deliver_(std::move(deliver)),
        best_effort_queue_(best_effort_depth) {
    RTETHER_ASSERT(deliver_ != nullptr);
  }

  void enqueue_rt(Tick deadline_key, SimFrame frame) {
    rt_queue_.push(deadline_key, std::move(frame));
    schedule_start();
  }

  void enqueue_best_effort(SimFrame frame) {
    best_effort_queue_.push(std::move(frame));
    schedule_start();
  }

  [[nodiscard]] const TransmitterStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t best_effort_dropped() const {
    return best_effort_queue_.dropped();
  }

 private:
  void schedule_start() {
    // Same-tick arbitration deferral — seed semantics (PR 3).
    if (busy_ || start_pending_) {
      return;
    }
    if (rt_queue_.empty() && best_effort_queue_.empty()) {
      return;
    }
    start_pending_ = true;
    simulator_.schedule_in(0, [this] {
      start_pending_ = false;
      try_start();
    });
  }

  void try_start() {
    if (busy_) {
      return;  // non-preemptive: the in-flight frame finishes first
    }
    std::optional<SimFrame> frame = rt_queue_.pop();
    const bool is_rt = frame.has_value();
    if (!frame) {
      frame = best_effort_queue_.pop();
    }
    if (!frame) {
      return;
    }

    busy_ = true;
    const Tick tx_ticks = config_.transmission_ticks(frame->wire_bytes());
    stats_.busy_ticks += tx_ticks;
    if (is_rt) {
      ++stats_.rt_frames_sent;
    } else {
      ++stats_.best_effort_frames_sent;
    }

    // Move the frame into the completion event (heap-allocated closure).
    simulator_.schedule_in(tx_ticks,
                           [this, frame = std::move(*frame)]() mutable {
                             busy_ = false;
                             const Tick completion = simulator_.now();
                             deliver_(std::move(frame), completion);
                             schedule_start();
                           });
  }

  LegacySimulator& simulator_;
  const SimConfig& config_;
  DeliverFn deliver_;
  LegacyEdfQueue rt_queue_;
  LegacyFcfsQueue best_effort_queue_;
  bool busy_{false};
  bool start_pending_{false};
  TransmitterStats stats_;
};

/// Seed `SimNetwork`+`SimSwitch` wiring: star of N nodes, learning switch,
/// per-hop propagation/processing closures, delivery-side measurement.
/// Only the data path needed by the bench workload (RT + best-effort with
/// primed forwarding; no management plane).
class LegacyStarNetwork {
 public:
  LegacyStarNetwork(SimConfig config, std::uint32_t node_count,
                    std::size_t best_effort_depth = 0)
      : config_(config) {
    miss_allowance_ = config_.t_latency_ticks(/*with_best_effort=*/true);
    ports_.reserve(node_count);
    uplinks_.reserve(node_count);
    for (std::uint32_t n = 0; n < node_count; ++n) {
      const NodeId node{n};
      // Switch port toward `node`: propagation then measure + (no-op)
      // receive, the seed SimNetwork delivery lambda.
      ports_.push_back(std::make_unique<LegacyTransmitter>(
          simulator_, config_,
          [this, node](SimFrame frame, Tick /*completion*/) {
            simulator_.schedule_in(
                config_.propagation_ticks,
                [this, frame = std::move(frame)]() {
                  const Tick now = simulator_.now();
                  if (frame.info.cls == FrameClass::kRealTime &&
                      frame.info.rt_tag) {
                    stats_.record_rt_delivered(
                        frame.info.rt_tag->channel, frame.created_at,
                        frame.info.rt_tag->absolute_deadline, now,
                        miss_allowance_);
                  } else if (frame.info.cls == FrameClass::kBestEffort) {
                    stats_.record_best_effort_delivered(frame.created_at,
                                                        now);
                  }
                });
          },
          best_effort_depth));
      // Node uplink: propagation then switch ingress.
      uplinks_.push_back(std::make_unique<LegacyTransmitter>(
          simulator_, config_,
          [this, node](SimFrame frame, Tick /*completion*/) {
            simulator_.schedule_in(
                config_.propagation_ticks,
                [this, node, frame = std::move(frame)]() mutable {
                  ingress(std::move(frame), node);
                });
          },
          best_effort_depth));
    }
  }

  [[nodiscard]] LegacySimulator& simulator() { return simulator_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] Tick now() const { return simulator_.now(); }
  [[nodiscard]] LegacySimStats& stats() { return stats_; }
  [[nodiscard]] std::uint64_t next_frame_id() { return next_frame_id_++; }
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(uplinks_.size());
  }

  void prime_forwarding() {
    for (std::uint32_t n = 0; n < node_count(); ++n) {
      table_.learn(node_mac(NodeId{n}), NodeId{n});
    }
  }

  void send_rt(NodeId from, Tick deadline_key, SimFrame frame) {
    uplinks_[from.value()]->enqueue_rt(deadline_key, std::move(frame));
  }

  void send_best_effort(NodeId from, SimFrame frame) {
    uplinks_[from.value()]->enqueue_best_effort(std::move(frame));
  }

  [[nodiscard]] const LegacyTransmitter& uplink(NodeId node) const {
    return *uplinks_[node.value()];
  }
  [[nodiscard]] const LegacyTransmitter& port(NodeId node) const {
    return *ports_[node.value()];
  }

 private:
  void ingress(SimFrame frame, NodeId from) {
    table_.learn(frame.info.source_mac, from);
    simulator_.schedule_in(
        config_.switch_processing_ticks,
        [this, frame = std::move(frame), from]() mutable {
          forward(std::move(frame), from);
        });
  }

  void forward(SimFrame frame, NodeId from) {
    (void)from;
    const auto dst = table_.lookup(frame.info.destination_mac);
    RTETHER_ASSERT_MSG(dst.has_value(),
                       "bench workload uses primed forwarding only");
    if (frame.info.cls == FrameClass::kRealTime) {
      const Tick key = frame.info.rt_tag->absolute_deadline;
      ports_[dst->value()]->enqueue_rt(key, std::move(frame));
      return;
    }
    ports_[dst->value()]->enqueue_best_effort(std::move(frame));
  }

  SimConfig config_;
  LegacySimulator simulator_;
  LegacySimStats stats_;
  std::vector<std::unique_ptr<LegacyTransmitter>> uplinks_;
  std::vector<std::unique_ptr<LegacyTransmitter>> ports_;
  LegacyForwardingTable table_;
  std::uint64_t next_frame_id_{1};
  Tick miss_allowance_{0};
};

}  // namespace rtether::sim::legacy
