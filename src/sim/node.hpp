#pragma once

/// @file node.hpp
/// A simulated end-node's link interface: the uplink transmitter with the
/// RT(EDF)+FCFS queue pair of Fig 18.2 and a receive hook for downlink
/// deliveries. The RT-layer intelligence (channel tables, deadline
/// assignment, establishment protocol) lives in `proto::NodeRtLayer` and
/// drives this class.

#include <functional>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/transmitter.hpp"

namespace rtether::sim {

class SimNode {
 public:
  /// Invoked when a frame is fully delivered to this node. Raw function
  /// pointer + context: the hot path (the RT layer's receive dispatch) is
  /// one direct indirect call, with no type erasure.
  using ReceiveFn = void (*)(void* context, const SimFrame& frame, Tick now);

  SimNode(Simulator& simulator, const SimConfig& config, NodeId id,
          SimNetwork& network, std::size_t best_effort_depth = 0);

  [[nodiscard]] NodeId id() const { return id_; }

  /// Queues an RT frame on the uplink under the node-local EDF key
  /// (release + d_iu in ticks, computed by the RT layer).
  void send_rt(Tick deadline_key, FrameIndex frame);

  /// Queues a best-effort frame on the uplink.
  void send_best_effort(FrameIndex frame);

  /// Convenience overloads: adopt an externally built frame into the arena
  /// (tests, cold management paths).
  void send_rt(Tick deadline_key, SimFrame frame);
  void send_best_effort(SimFrame frame);

  /// Registers the receive hook (the RT layer).
  void set_receiver(ReceiveFn receiver, void* context) {
    receiver_ = receiver;
    receiver_context_ = context;
  }

  /// Test convenience: closure-based receive hook. The closure is stored
  /// once in the node and bridged through the raw hook.
  void set_receiver(std::function<void(const SimFrame& frame, Tick now)> hook);

  /// Called by the network when a downlink frame arrives.
  void receive(const SimFrame& frame, Tick now) {
    if (receiver_ != nullptr) {
      receiver_(receiver_context_, frame, now);
    }
  }

  [[nodiscard]] Transmitter& uplink() { return uplink_; }
  [[nodiscard]] const Transmitter& uplink() const { return uplink_; }

 private:
  NodeId id_;
  const SimConfig& config_;
  Transmitter uplink_;
  ReceiveFn receiver_{nullptr};
  void* receiver_context_{nullptr};
  /// Backing storage for the closure convenience form only.
  std::function<void(const SimFrame&, Tick)> receiver_closure_;
};

}  // namespace rtether::sim
