/// Ablation A4 — feasibility-test microbenchmarks (google-benchmark).
///
/// Quantifies the paper's two refinements of the demand criterion:
/// scanning every slot up to the busy period (Eq 18.4) vs only the deadline
/// checkpoints (Eq 18.5), plus the Liu & Layland fast path, on task sets of
/// growing size — the cost that bounds the switch's admission latency.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"
#include "edf/feasibility.hpp"

namespace {

using namespace rtether;
using namespace rtether::edf;

/// A link task set resembling the paper's: identical {P=100, C=3} channels
/// with deadlines spread over [10, 60].
TaskSet paper_like_set(std::size_t channels) {
  Rng rng(7);
  TaskSet set;
  for (std::size_t i = 0; i < channels; ++i) {
    const Slot deadline = 10 + rng.index(51);
    set.add(PseudoTask{ChannelId(static_cast<std::uint16_t>(i + 1)), 100, 3,
                       deadline});
  }
  return set;
}

/// Heterogeneous periods → long busy periods and many checkpoints.
TaskSet heterogeneous_set(std::size_t channels) {
  Rng rng(11);
  TaskSet set;
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  for (std::size_t i = 0; i < channels; ++i) {
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(3);
    const Slot deadline = capacity + rng.index(period - capacity + 1);
    set.add(PseudoTask{ChannelId(static_cast<std::uint16_t>(i + 1)), period,
                       capacity, deadline});
  }
  return set;
}

void BM_DemandScan_EverySlot(benchmark::State& state) {
  const auto set = paper_like_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_feasibility(set, DemandScan::kEverySlot).feasible);
  }
}
BENCHMARK(BM_DemandScan_EverySlot)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_DemandScan_Checkpoints(benchmark::State& state) {
  const auto set = paper_like_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_feasibility(set, DemandScan::kCheckpoints).feasible);
  }
}
BENCHMARK(BM_DemandScan_Checkpoints)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_DemandScan_Heterogeneous_EverySlot(benchmark::State& state) {
  const auto set =
      heterogeneous_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_feasibility(set, DemandScan::kEverySlot).feasible);
  }
}
BENCHMARK(BM_DemandScan_Heterogeneous_EverySlot)->Arg(4)->Arg(8)->Arg(16);

void BM_DemandScan_Heterogeneous_Checkpoints(benchmark::State& state) {
  const auto set =
      heterogeneous_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_feasibility(set, DemandScan::kCheckpoints).feasible);
  }
}
BENCHMARK(BM_DemandScan_Heterogeneous_Checkpoints)->Arg(4)->Arg(8)->Arg(16);

void BM_LiuLaylandFastPath(benchmark::State& state) {
  TaskSet set;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
       ++i) {
    set.add(PseudoTask{ChannelId(static_cast<std::uint16_t>(i + 1)), 100, 3,
                       100});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_feasibility(set).feasible);
  }
}
BENCHMARK(BM_LiuLaylandFastPath)->Arg(8)->Arg(32);

void BM_AdmissionDecision(benchmark::State& state) {
  // End-to-end cost of one switch admission decision (partition + two
  // link tests + commit + rollback) at a given occupancy.
  using namespace rtether::core;
  const auto occupancy = static_cast<std::uint32_t>(state.range(0));
  AdmissionController controller(60,
                                 std::make_unique<AsymmetricPartitioner>());
  Rng rng(3);
  std::uint32_t added = 0;
  while (added < occupancy) {
    const ChannelSpec spec{
        NodeId{static_cast<std::uint32_t>(rng.index(10))},
        NodeId{static_cast<std::uint32_t>(10 + rng.index(50))}, 100, 3, 40};
    if (controller.request(spec)) ++added;
    if (controller.stats().rejected > 500) break;  // saturated
  }
  const ChannelSpec probe{NodeId{0}, NodeId{20}, 100, 3, 40};
  for (auto _ : state) {
    auto result = controller.request(probe);
    if (result) {
      (void)controller.release(result->id);
    }
  }
}
BENCHMARK(BM_AdmissionDecision)->Arg(0)->Arg(30)->Arg(60)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
