// Negative-compile case (Clang only): acquiring a capability without a
// matching release (an unannotated/imbalanced lock acquisition) must fail
// under -Wthread-safety -Werror ("mutex is still held at the end of
// function").
//   * without defines      -> control twin, balanced lock/unlock, COMPILES
//   * with -DSTATIC_NEG    -> lock leaks out of the function, must FAIL
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Registry {
 public:
  void update() EXCLUDES(mutex_) {
    mutex_.lock();
    ++generation_;
#if !defined(STATIC_NEG)
    mutex_.unlock();
#endif
  }

 private:
  rtether::Mutex mutex_;
  int generation_ GUARDED_BY(mutex_){0};
};

}  // namespace

void touch_registry() {
  Registry registry;
  registry.update();
}
