#include "sim/switch.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "sim/addressing.hpp"

namespace rtether::sim {

SimSwitch::SimSwitch(Simulator& simulator, const SimConfig& config,
                     std::uint32_t node_count, PortDeliverFn deliver,
                     std::size_t best_effort_depth)
    : simulator_(simulator), config_(config) {
  RTETHER_ASSERT(deliver != nullptr);
  ports_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const NodeId node{n};
    ports_.push_back(std::make_unique<Transmitter>(
        simulator_, config_, "switch-port-" + std::to_string(n),
        [deliver, node](SimFrame frame, Tick completion) {
          deliver(node, std::move(frame), completion);
        },
        best_effort_depth));
  }
}

Transmitter& SimSwitch::port(NodeId node) {
  RTETHER_ASSERT(node.value() < ports_.size());
  return *ports_[node.value()];
}

const Transmitter& SimSwitch::port(NodeId node) const {
  RTETHER_ASSERT(node.value() < ports_.size());
  return *ports_[node.value()];
}

void SimSwitch::ingress(SimFrame frame, NodeId from) {
  // Source-address learning happens on reception, before processing.
  table_.learn(frame.info.source_mac, from);
  simulator_.schedule_in(
      config_.switch_processing_ticks,
      [this, frame = std::move(frame), from]() mutable {
        forward(std::move(frame), from);
      });
}

void SimSwitch::forward(SimFrame frame, NodeId from) {
  switch (frame.info.cls) {
    case FrameClass::kManagement: {
      if (frame.info.destination_mac == switch_mac()) {
        ++stats_.management_received;
        if (mgmt_handler_) {
          mgmt_handler_(frame, from, simulator_.now());
        }
        return;
      }
      // Management frame relayed between nodes: treat as best-effort below.
      [[fallthrough]];
    }
    case FrameClass::kBestEffort: {
      const auto dst = table_.lookup(frame.info.destination_mac);
      if (dst && !frame.info.destination_mac.is_broadcast()) {
        ++stats_.best_effort_forwarded;
        port(*dst).enqueue_best_effort(std::move(frame));
        return;
      }
      // Unknown unicast or broadcast: flood to all ports except ingress.
      ++stats_.flooded;
      for (std::uint32_t n = 0; n < ports_.size(); ++n) {
        if (NodeId{n} == from) continue;
        port(NodeId{n}).enqueue_best_effort(frame);
      }
      return;
    }
    case FrameClass::kRealTime: {
      RTETHER_ASSERT_MSG(frame.info.rt_tag.has_value(),
                         "RT classification without a decoded tag");
      const auto dst = table_.lookup(frame.info.destination_mac);
      if (!dst) {
        // Cannot flood RT traffic without violating other ports'
        // guarantees; establishment always precedes data, so this signals
        // a misbehaving sender.
        ++stats_.rt_dropped_unknown_destination;
        RTETHER_LOG(kWarn, "switch",
                    "dropping RT frame to unlearned MAC "
                        << frame.info.destination_mac.to_string());
        return;
      }
      ++stats_.rt_forwarded;
      if (!config_.edf_enabled) {
        // Baseline mode: plain switched Ethernet, FCFS everywhere.
        port(*dst).enqueue_best_effort(std::move(frame));
        return;
      }
      // EDF key: the absolute end-to-end deadline carried in the IP header
      // (release + d_i) — see DESIGN.md "Per-hop EDF keys".
      const Tick key = frame.info.rt_tag->absolute_deadline;
      port(*dst).enqueue_rt(key, std::move(frame));
      return;
    }
  }
}

void SimSwitch::send_from_switch(NodeId to, SimFrame frame) {
  port(to).enqueue_best_effort(std::move(frame));
}

void SimSwitch::prime_forwarding(std::uint32_t node_count) {
  for (std::uint32_t n = 0; n < node_count; ++n) {
    table_.learn(node_mac(NodeId{n}), NodeId{n});
  }
}

}  // namespace rtether::sim
