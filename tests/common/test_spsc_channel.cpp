#include "common/spsc_channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace rtether {
namespace {

struct Record {
  std::uint64_t sequence;
  std::uint64_t payload;
};

TEST(SpscChannel, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscChannel<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscChannel<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscChannel<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscChannel<int>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscChannel<int>(1025).capacity(), 2048u);
}

TEST(SpscChannel, SingleThreadFifoAcrossManyWraps) {
  SpscChannel<int> channel(4);  // tiny ring: every 4 ops wrap the cursors
  int out = 0;
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(channel.try_push(2 * round));
    ASSERT_TRUE(channel.try_push(2 * round + 1));
    ASSERT_TRUE(channel.try_peek(out));
    EXPECT_EQ(out, 2 * round);
    channel.pop();
    ASSERT_TRUE(channel.try_peek(out));
    EXPECT_EQ(out, 2 * round + 1);
    channel.pop();
  }
  EXPECT_TRUE(channel.empty());
  EXPECT_FALSE(channel.try_peek(out));
}

TEST(SpscChannel, FullRingBackpressuresTryPush) {
  SpscChannel<int> channel(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(channel.try_push(int{i}));
  }
  EXPECT_FALSE(channel.try_push(99));  // full: producer spills instead
  int out = 0;
  ASSERT_TRUE(channel.try_peek(out));
  EXPECT_EQ(out, 0);
  channel.pop();
  EXPECT_TRUE(channel.try_push(99));  // one slot drained, one push fits
  for (int expect : {1, 2, 3, 99}) {
    ASSERT_TRUE(channel.try_peek(out));
    EXPECT_EQ(out, expect);
    channel.pop();
  }
}

TEST(SpscChannel, PeekIsNonConsuming) {
  SpscChannel<int> channel(8);
  ASSERT_TRUE(channel.try_push(5));
  int out = 0;
  ASSERT_TRUE(channel.try_peek(out));
  ASSERT_TRUE(channel.try_peek(out));  // repeated peeks see the same front
  EXPECT_EQ(out, 5);
  EXPECT_EQ(channel.pushed(), 1u);
  EXPECT_EQ(channel.consumed(), 0u);
  channel.pop();
  EXPECT_EQ(channel.consumed(), 1u);
  EXPECT_TRUE(channel.empty());
}

TEST(SpscChannel, CursorsAreMonotonicAcrossWraps) {
  SpscChannel<int> channel(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(channel.try_push(i));
    channel.pop();
  }
  // The cursors count records, not slots: they never wrap with the ring.
  EXPECT_EQ(channel.pushed(), 100u);
  EXPECT_EQ(channel.consumed(), 100u);
}

TEST(SpscChannel, TwoThreadStreamKeepsFifoUnderContention) {
  // The cut-link pattern under maximal cursor contention: one producer
  // spinning records into a tiny ring, one consumer draining concurrently.
  // FIFO and the exact record payloads must survive; TSan checks the
  // release/acquire pairing (this suite runs in the TSan CI lane).
  constexpr std::uint64_t kRecords = 50'000;
  SpscChannel<Record> channel(16);  // small ring: constant full/empty edges
  std::thread producer([&channel] {
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      const Record record{i, i * 0x9e3779b97f4a7c15ULL};
      while (!channel.try_push(record)) {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t next = 0;
  while (next < kRecords) {
    Record out{};
    if (!channel.try_peek(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out.sequence, next);
    ASSERT_EQ(out.payload, next * 0x9e3779b97f4a7c15ULL);
    channel.pop();
    ++next;
  }
  producer.join();
  EXPECT_TRUE(channel.empty());
  EXPECT_EQ(channel.pushed(), kRecords);
  EXPECT_EQ(channel.consumed(), kRecords);
}

TEST(SpscChannel, RoleHandoffAcrossBarrierIsRaceFree) {
  // The parallel simulator moves both channel roles between pool workers
  // at every fork/join barrier. Model that handoff: alternating rounds
  // where a fresh thread produces and a fresh thread consumes, with join()
  // as the barrier. TSan must see the happens-before chain through the
  // cursors, not just through join().
  SpscChannel<Record> channel(8);
  std::uint64_t sequence = 0;
  std::uint64_t drained = 0;
  for (int round = 0; round < 64; ++round) {
    std::thread producer([&channel, &sequence] {
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(channel.try_push(Record{sequence, sequence ^ 0xabcdULL}));
        ++sequence;
      }
    });
    producer.join();
    std::thread consumer([&channel, &drained] {
      Record out{};
      while (channel.try_peek(out)) {
        ASSERT_EQ(out.sequence, drained);
        ASSERT_EQ(out.payload, drained ^ 0xabcdULL);
        channel.pop();
        ++drained;
      }
    });
    consumer.join();
  }
  EXPECT_EQ(drained, sequence);
  EXPECT_TRUE(channel.empty());
}

}  // namespace
}  // namespace rtether
