#include "net/mgmt_frames.hpp"

#include <gtest/gtest.h>

namespace rtether::net {
namespace {

RequestFrame sample_request() {
  RequestFrame f;
  f.connection_request = ConnectionRequestId(7);
  f.rt_channel = ChannelId(0);
  f.source_mac = MacAddress::from_u48(0x0200'0000'0001ULL);
  f.destination_mac = MacAddress::from_u48(0x0200'0000'0002ULL);
  f.source_ip = Ipv4Address(10, 0, 0, 1);
  f.destination_ip = Ipv4Address(10, 0, 0, 2);
  f.period = 100;
  f.capacity = 3;
  f.deadline = 40;
  return f;
}

TEST(RequestFrame, WireSizeMatchesFigure) {
  // Fig 18.3 payload: type(8) + req-id(8) + channel(16) + 2×MAC(48) +
  // 2×IP(32) + P(32) + C(32) + d(32) = 288 bits = 36 bytes.
  EXPECT_EQ(sample_request().serialize().size(), RequestFrame::kWireSize);
}

TEST(RequestFrame, RoundTrip) {
  const auto original = sample_request();
  const auto parsed = RequestFrame::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(RequestFrame, RoundTripWithAssignedChannel) {
  auto original = sample_request();
  original.rt_channel = ChannelId(0xbeef);
  const auto parsed = RequestFrame::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rt_channel, ChannelId(0xbeef));
}

TEST(RequestFrame, MaxFieldValues) {
  auto original = sample_request();
  original.period = 0xffffffff;
  original.capacity = 0xffffffff;
  original.deadline = 0xffffffff;
  original.connection_request = ConnectionRequestId(255);
  const auto parsed = RequestFrame::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(RequestFrame, RejectsWrongType) {
  auto bytes = sample_request().serialize();
  bytes[0] = static_cast<std::uint8_t>(MgmtFrameType::kConnectResponse);
  EXPECT_FALSE(RequestFrame::parse(bytes).has_value());
}

TEST(RequestFrame, RejectsTruncation) {
  const auto bytes = sample_request().serialize();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(RequestFrame::parse(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(ResponseFrame, RoundTripAccept) {
  ResponseFrame f;
  f.connection_request = ConnectionRequestId(7);
  f.rt_channel = ChannelId(42);
  f.accepted = true;
  f.uplink_deadline = 33;
  const auto parsed = ResponseFrame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(ResponseFrame, RoundTripReject) {
  ResponseFrame f;
  f.connection_request = ConnectionRequestId(1);
  f.rt_channel = ChannelId(0);
  f.accepted = false;
  const auto parsed = ResponseFrame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->accepted);
  EXPECT_EQ(parsed->uplink_deadline, 0u);
}

TEST(ResponseFrame, VerdictIsOneBit) {
  // Only the low bit of the verdict octet is significant (Fig 18.4).
  ResponseFrame f;
  f.accepted = true;
  auto bytes = f.serialize();
  EXPECT_EQ(bytes[4], 1);
  bytes[4] = 0x03;  // high garbage bits must be ignored
  const auto parsed = ResponseFrame::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->accepted);
}

TEST(ResponseFrame, RejectsWrongTypeAndTruncation) {
  ResponseFrame f;
  const auto bytes = f.serialize();
  auto wrong = bytes;
  wrong[0] = static_cast<std::uint8_t>(MgmtFrameType::kConnectRequest);
  EXPECT_FALSE(ResponseFrame::parse(wrong).has_value());
  const std::span<const std::uint8_t> prefix(bytes.data(), bytes.size() - 1);
  EXPECT_FALSE(ResponseFrame::parse(prefix).has_value());
}

TEST(TeardownFrame, RoundTripRequestAndAck) {
  TeardownFrame request;
  request.rt_channel = ChannelId(99);
  request.is_ack = false;
  const auto parsed_request = TeardownFrame::parse(request.serialize());
  ASSERT_TRUE(parsed_request.has_value());
  EXPECT_EQ(*parsed_request, request);

  TeardownFrame ack;
  ack.rt_channel = ChannelId(99);
  ack.is_ack = true;
  const auto parsed_ack = TeardownFrame::parse(ack.serialize());
  ASSERT_TRUE(parsed_ack.has_value());
  EXPECT_TRUE(parsed_ack->is_ack);
}

TEST(PeekMgmtType, IdentifiesAllTypes) {
  EXPECT_EQ(peek_mgmt_type(sample_request().serialize()),
            MgmtFrameType::kConnectRequest);
  EXPECT_EQ(peek_mgmt_type(ResponseFrame{}.serialize()),
            MgmtFrameType::kConnectResponse);
  TeardownFrame td;
  EXPECT_EQ(peek_mgmt_type(td.serialize()),
            MgmtFrameType::kTeardownRequest);
  td.is_ack = true;
  EXPECT_EQ(peek_mgmt_type(td.serialize()),
            MgmtFrameType::kTeardownResponse);
}

TEST(PeekMgmtType, RejectsUnknownAndEmpty) {
  EXPECT_FALSE(peek_mgmt_type({}).has_value());
  const std::vector<std::uint8_t> junk{0xff, 0x00};
  EXPECT_FALSE(peek_mgmt_type(junk).has_value());
  const std::vector<std::uint8_t> zero{0x00};
  EXPECT_FALSE(peek_mgmt_type(zero).has_value());
}

}  // namespace
}  // namespace rtether::net
