#include "traffic/distribution.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rtether::traffic {
namespace {

TEST(SlotDistribution, FixedAlwaysSame) {
  Rng rng(1);
  const auto d = SlotDistribution::fixed(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.sample(rng), 42u);
  }
  EXPECT_EQ(d.min_value(), 42u);
  EXPECT_EQ(d.max_value(), 42u);
}

TEST(SlotDistribution, UniformInRange) {
  Rng rng(2);
  const auto d = SlotDistribution::uniform(10, 20);
  std::set<Slot> seen;
  for (int i = 0; i < 2000; ++i) {
    const Slot v = d.sample(rng);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 11u);  // all values hit
  EXPECT_EQ(d.min_value(), 10u);
  EXPECT_EQ(d.max_value(), 20u);
}

TEST(SlotDistribution, ChoicePicksOnlyListedValues) {
  Rng rng(3);
  const auto d = SlotDistribution::choice({50, 100, 200});
  std::set<Slot> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(d.sample(rng));
  }
  EXPECT_EQ(seen, (std::set<Slot>{50, 100, 200}));
  EXPECT_EQ(d.min_value(), 50u);
  EXPECT_EQ(d.max_value(), 200u);
}

TEST(SlotDistribution, SingletonChoice) {
  Rng rng(4);
  const auto d = SlotDistribution::choice({7});
  EXPECT_EQ(d.sample(rng), 7u);
}

}  // namespace
}  // namespace rtether::traffic
