/// Ablation A3 — ADPS design choices the paper leaves implicit.
///
/// Eq 18.16 is stated over real numbers; an implementation must decide
/// (a) whether the requested channel itself counts toward LinkLoad,
/// (b) how to round Upart·d_i to integer slots, and (c) whether channel
/// *count* (paper) or link *utilization* (UDPS) measures load. This bench
/// quantifies each choice on the Fig 18.5 workload, plus the exhaustive
/// Search partitioner as an upper bound and its admission-cost price.

#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"
#include "traffic/master_slave.hpp"

using namespace rtether;

namespace {

struct Variant {
  const char* name;
  std::unique_ptr<core::DeadlinePartitioner> (*make)();
};

std::unique_ptr<core::DeadlinePartitioner> make_paper() {
  return std::make_unique<core::AsymmetricPartitioner>();
}
std::unique_ptr<core::DeadlinePartitioner> make_exclude_self() {
  core::AdpsOptions options;
  options.include_requested_channel = false;
  return std::make_unique<core::AsymmetricPartitioner>(options);
}
std::unique_ptr<core::DeadlinePartitioner> make_floor() {
  core::AdpsOptions options;
  options.round_to_nearest = false;
  return std::make_unique<core::AsymmetricPartitioner>(options);
}
std::unique_ptr<core::DeadlinePartitioner> make_udps() {
  return std::make_unique<core::UtilizationWeightedPartitioner>();
}
std::unique_ptr<core::DeadlinePartitioner> make_search() {
  return std::make_unique<core::SearchPartitioner>();
}
std::unique_ptr<core::DeadlinePartitioner> make_sdps() {
  return std::make_unique<core::SymmetricPartitioner>();
}

}  // namespace

int main() {
  std::puts("================================================================");
  std::puts("Ablation A3 — ADPS variants on the Fig 18.5 workload");
  std::puts("(10 masters / 50 slaves, {P=100,C=3,d=40}, 200 requested)");
  std::puts("================================================================");

  const Variant variants[] = {
      {"SDPS (baseline)", &make_sdps},
      {"ADPS (paper: count, include-self, round)", &make_paper},
      {"ADPS exclude-self", &make_exclude_self},
      {"ADPS floor-rounding", &make_floor},
      {"UDPS (utilization-weighted)", &make_udps},
      {"Search (exhaustive splits)", &make_search},
  };

  ConsoleTable table("A3: accepted channels and admission cost (5 seeds)");
  table.set_header({"variant", "accepted (mean)", "feasibility tests",
                    "demand evals"});

  constexpr std::uint32_t kSeeds = 5;
  for (const auto& variant : variants) {
    double accepted_total = 0.0;
    std::uint64_t tests_total = 0;
    std::uint64_t evals_total = 0;
    for (std::uint32_t seed = 0; seed < kSeeds; ++seed) {
      traffic::MasterSlaveWorkload workload({}, 42 + seed);
      core::AdmissionController controller(workload.node_count(),
                                           variant.make());
      for (const auto& spec : workload.generate(200)) {
        if (controller.request(spec)) {
          accepted_total += 1.0;
        }
      }
      tests_total += controller.stats().feasibility_tests;
      evals_total += controller.stats().demand_evaluations;
    }
    table.add(variant.name, accepted_total / kSeeds,
              tests_total / kSeeds, evals_total / kSeeds);
  }
  table.print();
  std::puts("reading: the paper's choices (count-based load, include-self,");
  std::puts("round-to-nearest) are near-optimal among single-guess schemes;");
  std::puts("Search buys a few extra channels at a large admission cost.\n");
  return 0;
}
