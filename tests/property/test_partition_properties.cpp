// Property-based tests for deadline-partitioning schemes: Eqs 18.8/18.9
// must hold for every partitioner on every valid spec and system state, and
// the admission controller must never corrupt its state across randomized
// request/release interleavings.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"
#include "edf/feasibility.hpp"
#include "traffic/master_slave.hpp"

namespace rtether::core {
namespace {

ChannelSpec random_spec(Rng& rng, std::uint32_t nodes) {
  const auto source = static_cast<std::uint32_t>(rng.index(nodes));
  auto destination = static_cast<std::uint32_t>(rng.index(nodes - 1));
  if (destination >= source) ++destination;
  const Slot period = 10 + rng.index(400);
  const Slot capacity = 1 + rng.index(std::min<Slot>(period, 8));
  const Slot deadline = 2 * capacity + rng.index(2 * period);
  return ChannelSpec{NodeId{source}, NodeId{destination}, period, capacity,
                     deadline};
}

struct SchemeCase {
  const char* name;
};

class PartitionProperties
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, PartitionProperties,
    ::testing::Combine(::testing::Values("SDPS", "ADPS", "UDPS", "Search"),
                       ::testing::Range<std::uint64_t>(0, 8)),
    [](const auto& combo_info) {
      return std::string(std::get<0>(combo_info.param)) + "_seed" +
             std::to_string(std::get<1>(combo_info.param));
    });

TEST_P(PartitionProperties, EveryCandidateSatisfiesPaperEquations) {
  const auto [scheme, seed] = GetParam();
  Rng rng(seed);
  const auto partitioner = make_partitioner(scheme);

  NetworkState state(12);
  std::uint16_t next_id = 1;
  for (int iteration = 0; iteration < 60; ++iteration) {
    const auto spec = random_spec(rng, 12);
    ASSERT_TRUE(spec.valid());
    const auto candidates = partitioner->candidates(spec, state);
    ASSERT_FALSE(candidates.empty());
    for (const auto& partition : candidates) {
      EXPECT_EQ(partition.uplink + partition.downlink, spec.deadline)
          << "Eq 18.8 violated by " << scheme;
      EXPECT_GE(partition.uplink, spec.capacity)
          << "Eq 18.9 (uplink) violated by " << scheme;
      EXPECT_GE(partition.downlink, spec.capacity)
          << "Eq 18.9 (downlink) violated by " << scheme;
    }
    // Occasionally commit a channel so later iterations see varied loads.
    if (rng.bernoulli(0.5)) {
      state.add_channel(
          RtChannel{ChannelId(next_id++), spec, candidates.front()});
    }
  }
}

TEST_P(PartitionProperties, AdmissionStateStaysConsistent) {
  const auto [scheme, seed] = GetParam();
  Rng rng(seed ^ 0xabcdef);
  AdmissionController controller(12, make_partitioner(scheme));
  std::vector<ChannelId> live;

  for (int iteration = 0; iteration < 150; ++iteration) {
    if (!live.empty() && rng.bernoulli(0.3)) {
      const std::size_t victim = rng.index(live.size());
      EXPECT_TRUE(controller.release(live[victim]));
      live.erase(live.begin() +
                 static_cast<std::ptrdiff_t>(victim));
    } else {
      const auto result = controller.request(random_spec(rng, 12));
      if (result) {
        live.push_back(result->id);
      }
    }
    EXPECT_EQ(controller.state().channel_count(), live.size());
  }

  // Every link task set must still pass its own feasibility test — the
  // committed state is feasible by construction (paper's invariant).
  for (std::uint32_t n = 0; n < 12; ++n) {
    EXPECT_TRUE(edf::is_feasible(
        controller.state().link(NodeId{n}, LinkDirection::kUplink)));
    EXPECT_TRUE(edf::is_feasible(
        controller.state().link(NodeId{n}, LinkDirection::kDownlink)));
  }

  // Releasing everything returns to a pristine state.
  for (const auto id : live) {
    EXPECT_TRUE(controller.release(id));
  }
  EXPECT_EQ(controller.state().channel_count(), 0u);
  for (std::uint32_t n = 0; n < 12; ++n) {
    EXPECT_TRUE(
        controller.state().link(NodeId{n}, LinkDirection::kUplink).empty());
    EXPECT_TRUE(controller.state()
                    .link(NodeId{n}, LinkDirection::kDownlink)
                    .empty());
  }
}

TEST_P(PartitionProperties, AcceptedSupersetNeverShrinksWithSearch) {
  // Search tries the ADPS candidate first, then more: on identical request
  // streams Search accepts at least as many channels as ADPS.
  const auto [scheme, seed] = GetParam();
  if (std::string(scheme) != "ADPS") GTEST_SKIP();

  traffic::MasterSlaveWorkload workload({}, seed);
  const auto specs = workload.generate(150);

  AdmissionController adps(60, make_partitioner("ADPS"));
  AdmissionController search(60, make_partitioner("Search"));
  std::size_t adps_accepted = 0;
  std::size_t search_accepted = 0;
  for (const auto& spec : specs) {
    if (adps.request(spec)) ++adps_accepted;
    if (search.request(spec)) ++search_accepted;
  }
  EXPECT_GE(search_accepted, adps_accepted);
}

TEST(PartitionProperties2, AdpsReducesToSdpsOnSymmetricState) {
  // With equal loads on both ends, Eq 18.16 gives Upart = 1/2 — exactly
  // SDPS (even deadlines; odd ones differ by the rounding convention).
  Rng rng(99);
  NetworkState state(6);
  // Same number of channels on node 0's uplink and node 1's downlink.
  state.add_channel(RtChannel{ChannelId(1),
                              ChannelSpec{NodeId{0}, NodeId{2}, 100, 3, 40},
                              DeadlinePartition{20, 20}});
  state.add_channel(RtChannel{ChannelId(2),
                              ChannelSpec{NodeId{3}, NodeId{1}, 100, 3, 40},
                              DeadlinePartition{20, 20}});
  for (int i = 0; i < 50; ++i) {
    Slot deadline = (6 + rng.index(50)) * 2;  // even
    const ChannelSpec spec{NodeId{0}, NodeId{1}, 100, 3, deadline};
    EXPECT_EQ(AsymmetricPartitioner().partition(spec, state),
              SymmetricPartitioner().partition(spec, state));
  }
}

}  // namespace
}  // namespace rtether::core
