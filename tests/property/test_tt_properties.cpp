// Property-based tests for the time-triggered gate-schedule admission:
// seeded random workloads drive the three invariants the greedy
// earliest-fit synthesis promises by construction —
//
//   1. every accepted set's gate windows are pairwise conflict-free
//      (o ≡ o' (mod gcd(P, P')) never holds across reservations) and each
//      placement respects the store-and-forward ordering and the
//      min(d, P) horizon;
//   2. acceptance is monotone under channel removal: any subsequence of an
//      accepted stream is accepted on a fresh admission (greedy choices
//      only move earlier when competitors disappear);
//   3. release-then-identical-re-admit is always re-accepted (release
//      frees exactly the windows the admit reserved).
//
// These are the properties the differential conformance runner leans on;
// here they are exercised directly against core::GateScheduleAdmission,
// without the scenario machinery in between.

#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "core/gate_schedule.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {
namespace {

constexpr std::uint32_t kNodes = 8;

ChannelSpec random_spec(Rng& rng, std::uint32_t nodes) {
  const auto source = static_cast<std::uint32_t>(rng.index(nodes));
  auto destination = static_cast<std::uint32_t>(rng.index(nodes - 1));
  if (destination >= source) ++destination;
  const Slot capacity = 1 + rng.index(4);
  const Slot period = std::max<Slot>(capacity, 4 + rng.index(60));
  const Slot deadline = 2 * capacity + rng.index(2 * period);
  return ChannelSpec{NodeId{source}, NodeId{destination}, period, capacity,
                     deadline};
}

GateScheduleAdmission make_tt() {
  return GateScheduleAdmission(kNodes, make_partitioner("SDPS"));
}

/// Pairwise residue audit of one link's table: two offsets collide iff
/// they are congruent modulo gcd of their periods.
void expect_conflict_free(const GateTable& table, const char* where) {
  for (std::size_t a = 0; a < table.size(); ++a) {
    for (std::size_t b = a; b < table.size(); ++b) {
      const Slot gcd = std::gcd(table[a].period, table[b].period);
      for (std::size_t i = 0; i < table[a].offsets.size(); ++i) {
        for (std::size_t j = 0; j < table[b].offsets.size(); ++j) {
          if (a == b && i == j) continue;
          EXPECT_NE(table[a].offsets[i] % gcd, table[b].offsets[j] % gcd)
              << where << ": channels " << table[a].id.value() << " and "
              << table[b].id.value() << " share slot residue "
              << table[a].offsets[i] % gcd << " (mod " << gcd << ")";
        }
      }
    }
  }
}

void expect_tables_conflict_free(const GateScheduleAdmission& admission) {
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    expect_conflict_free(
        admission.gate_table(NodeId{n}, LinkDirection::kUplink), "uplink");
    expect_conflict_free(
        admission.gate_table(NodeId{n}, LinkDirection::kDownlink),
        "downlink");
  }
}

void expect_placement_sound(const ChannelSpec& spec,
                            const GatePlacement& placement) {
  ASSERT_EQ(placement.uplink.size(), spec.capacity);
  ASSERT_EQ(placement.downlink.size(), spec.capacity);
  const Slot horizon = std::min(spec.deadline, spec.period);
  for (std::size_t i = 0; i < placement.uplink.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(placement.uplink[i - 1], placement.uplink[i]);
      EXPECT_LT(placement.downlink[i - 1], placement.downlink[i]);
    }
    // Store-and-forward: frame i leaves the switch only after it fully
    // arrived; the last downlink slot delivers within min(d, P).
    EXPECT_GE(placement.downlink[i], placement.uplink[i] + 1);
    EXPECT_LT(placement.downlink[i], horizon);
  }
}

class TtProperties : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TtProperties,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST_P(TtProperties, AcceptedSetsHaveConflictFreeGateWindows) {
  Rng rng(GetParam());
  auto admission = make_tt();
  std::size_t accepted = 0;
  for (int iteration = 0; iteration < 60; ++iteration) {
    const ChannelSpec spec = random_spec(rng, kNodes);
    const auto outcome = admission.admit(spec);
    if (!outcome.has_value()) continue;
    ++accepted;
    const auto placement = admission.placement(outcome.value().id);
    ASSERT_TRUE(placement.has_value());
    expect_placement_sound(spec, *placement);
    expect_tables_conflict_free(admission);
  }
  // The load is sized so the property is exercised, not vacuously true.
  EXPECT_GT(accepted, 0u) << "seed " << GetParam();
}

TEST_P(TtProperties, AcceptanceIsMonotoneUnderChannelRemoval) {
  Rng rng(GetParam());
  auto admission = make_tt();
  std::vector<ChannelSpec> accepted;
  for (int iteration = 0; iteration < 60; ++iteration) {
    const ChannelSpec spec = random_spec(rng, kNodes);
    if (admission.admit(spec).has_value()) accepted.push_back(spec);
  }
  ASSERT_FALSE(accepted.empty());

  // Any subsequence of an accepted stream must be accepted wholesale on a
  // fresh admission: removing channels only frees windows, and greedy
  // earliest-fit never places a survivor *later* because a competitor
  // vanished.
  auto subsequence = make_tt();
  std::size_t kept = 0;
  for (const ChannelSpec& spec : accepted) {
    if (!rng.bernoulli(0.6)) continue;
    ++kept;
    const auto outcome = subsequence.admit(spec);
    EXPECT_TRUE(outcome.has_value())
        << "seed " << GetParam() << ": kept channel #" << kept
        << " rejected on the thinned stream: "
        << (outcome.has_value() ? "" : outcome.error().detail);
  }
}

TEST_P(TtProperties, ReleaseThenIdenticalReadmitIsAccepted) {
  Rng rng(GetParam());
  auto admission = make_tt();
  std::vector<std::pair<ChannelId, ChannelSpec>> live;
  for (int iteration = 0; iteration < 80; ++iteration) {
    if (!live.empty() && rng.bernoulli(0.4)) {
      const std::size_t victim = rng.index(live.size());
      auto [id, spec] = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      ASSERT_TRUE(admission.release(id).has_value());
      const auto outcome = admission.admit(spec);
      ASSERT_TRUE(outcome.has_value())
          << "seed " << GetParam()
          << ": identical re-admit rejected after release: "
          << outcome.error().detail;
      live.emplace_back(outcome.value().id, spec);
      continue;
    }
    const ChannelSpec spec = random_spec(rng, kNodes);
    const auto outcome = admission.admit(spec);
    if (outcome.has_value()) live.emplace_back(outcome.value().id, spec);
  }
  EXPECT_FALSE(live.empty()) << "seed " << GetParam();
}

}  // namespace
}  // namespace rtether::core
