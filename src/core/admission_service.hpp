#pragma once

/// @file admission_service.hpp
/// Resident sharded admission service. Where `ParallelAdmissionEngine` forks
/// and joins workers per batch, `AdmissionService` keeps one dispatcher
/// thread and N shard workers alive for its whole lifetime: producers push
/// admit/release ops into a lock-free MPSC ring and get back a `Ticket`
/// that completes asynchronously. Link state is statically partitioned by
/// conflict component (a channel occupies its source uplink and destination
/// downlink; components of that conflict graph are independent), and a
/// topology-crossing admit migrates the smaller component between workers
/// on the fly — admits, releases and re-partitions interleave in flight.
///
/// The linearization point of every op is the dispatcher's dequeue from the
/// ingest ring: decisions, assigned channel IDs, rejection diagnostics and
/// final stats are bit-identical to replaying the ops in dequeue order
/// through the sequential `AdmissionController`. The dispatcher runs a
/// CPU-style out-of-order-execute / in-order-retire pipeline to keep that
/// guarantee: workers decide feasibility against shard-local state under
/// dispatcher-private placeholder IDs, and the dispatcher retires decisions
/// in dequeue order, assigning the real (smallest-free) channel IDs.
///
/// Partitioner contract (same as the parallel engine): `candidates()` must
/// be a pure function of the spec and the two touched link directions —
/// true for SDPS/ADPS/UDPS/Search. One partitioner instance is shared by
/// all workers concurrently.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "core/admission.hpp"
#include "core/network_state.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {

namespace service_detail {
struct TicketState;
}  // namespace service_detail

/// Tuning knobs for `AdmissionService`.
struct AdmissionServiceConfig {
  AdmissionConfig admission{};
  /// Shard workers. 0 (or a non-checkpoint scan, which the shard path does
  /// not cache) selects inline mode: no threads, ops complete synchronously
  /// inside `submit_async` via an internal `AdmissionEngine`.
  unsigned workers{0};
  /// Ingest ring capacity (producers block when full).
  std::size_t queue_capacity{4096};
  /// Reorder-buffer depth: max ops in flight between dispatch and retire.
  std::size_t rob_capacity{4096};
  /// Per-worker op ring capacity (dispatcher blocks when full).
  std::size_t worker_queue_capacity{1024};
};

/// Completion handle for one submitted op. Copyable (shared state); `wait`
/// blocks until the service retires the op. Tickets remain valid after the
/// service is destroyed (destruction drains all in-flight ops first).
/// The class itself is `[[nodiscard]]`: a dropped ticket is a completion
/// that can never be observed, so discarding `submit_async`'s return is
/// almost certainly a bug (cast to void to fire-and-forget deliberately).
class [[nodiscard]] Ticket {
 public:
  Ticket() = default;

  /// False for default-constructed tickets only.
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const;
  /// Blocks until the op retires. No-op if already done.
  void wait() const;

  /// Registers `fn` to run exactly once when the op completes, after the
  /// outcome is readable. If the op already retired, `fn` runs inline
  /// before this returns; otherwise it runs on the service's retiring
  /// thread — keep it short, non-blocking, and do not call back into the
  /// service from it. One callback per op (ticket copies share it).
  void on_complete(std::function<void()> fn) const;

  /// Position of the op in the service's linearization order (the
  /// dispatcher's dequeue sequence). Valid once `done()`.
  [[nodiscard]] std::uint64_t sequence() const;
  [[nodiscard]] ChannelOp::Kind kind() const;
  /// The admit verdict; requires `done()` and `kind() == kAdmit`.
  [[nodiscard]] const AdmitOutcome& admit_outcome() const;
  /// The release verdict; requires `done()` and `kind() == kRelease`.
  [[nodiscard]] const ReleaseOutcome& release_outcome() const;

  /// Pre-completed tickets, for synchronous backends fronting the async API.
  [[nodiscard]] static Ticket completed(AdmitOutcome outcome);
  [[nodiscard]] static Ticket completed(ReleaseOutcome outcome);

 private:
  friend class AdmissionService;
  explicit Ticket(std::shared_ptr<service_detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<service_detail::TicketState> state_;
};

class AdmissionService {
 public:
  enum class Mode : std::uint8_t {
    kInline,    ///< no threads; ops complete inside submit_async
    kResident,  ///< dispatcher + shard workers, async completion
  };

  AdmissionService(std::uint32_t node_count,
                   std::unique_ptr<DeadlinePartitioner> partitioner,
                   AdmissionServiceConfig config = {});

  /// Drains all in-flight ops, then stops and joins every thread. Every
  /// ticket ever returned is completed by the time this returns.
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Enqueues one op; thread-safe from any number of producers. Blocks only
  /// when the ingest ring is full (backpressure). The returned ticket
  /// completes when the op retires.
  [[nodiscard]] Ticket submit_async(const ChannelOp& op);

  /// Submits a mixed op stream and waits for all of it; results are in
  /// per-kind submission order, exactly like the other backends.
  [[nodiscard]] ChurnResult submit(std::span<const ChannelOp> ops);

  /// Convenience synchronous wrappers over `submit_async` + `wait`.
  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec);
  [[nodiscard]] ReleaseOutcome release(ChannelId id);

  /// Blocks until every op submitted *before this call* has retired.
  /// Callers must quiesce their own producers first if they need a stable
  /// point-in-time state.
  void drain();

  /// Authoritative admitted state / running stats. Both drain first, so
  /// they reflect every op submitted before the call; concurrent producers
  /// make the snapshot racy (quiesce first), hence non-const.
  [[nodiscard]] const NetworkState& state();
  [[nodiscard]] const AdmissionStats& stats();

  [[nodiscard]] const DeadlinePartitioner& partitioner() const;
  [[nodiscard]] Mode mode() const;
  [[nodiscard]] unsigned worker_count() const;
  /// Component migrations performed by topology-crossing admits.
  [[nodiscard]] std::uint64_t migrations() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtether::core
