#include "sim/frame.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/units.hpp"
#include "net/ipv4.hpp"

namespace rtether::sim {

const char* to_string(FrameClass cls) {
  switch (cls) {
    case FrameClass::kManagement:
      return "management";
    case FrameClass::kRealTime:
      return "real-time";
    case FrameClass::kBestEffort:
      return "best-effort";
  }
  return "?";
}

std::optional<FrameInfo> classify_frame(std::span<const std::uint8_t> bytes) {
  // Direct header decode: classification runs once per simulated frame on
  // the kernel's hot path, so the Ethernet fields are read straight off
  // the span (one bounds check) instead of through the generic
  // field-by-field parser. The IPv4 stage keeps the full parser — it
  // verifies the header checksum, the wire-fidelity property the
  // simulated switch is meant to exercise.
  if (bytes.size() < net::EthernetHeader::kWireSize) {
    return std::nullopt;
  }
  std::uint64_t destination = 0;
  std::uint64_t source = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    destination = destination << 8 | bytes[i];
    source = source << 8 | bytes[6 + i];
  }
  FrameInfo info;
  info.destination_mac = net::MacAddress::from_u48(destination);
  info.source_mac = net::MacAddress::from_u48(source);
  const auto ether_type = static_cast<net::EtherType>(
      static_cast<std::uint16_t>(bytes[12] << 8 | bytes[13]));

  if (ether_type == net::EtherType::kRtManagement) {
    info.cls = FrameClass::kManagement;
    return info;
  }
  if (ether_type == net::EtherType::kIpv4) {
    ByteReader ip_reader(bytes.subspan(net::EthernetHeader::kWireSize));
    const auto ip = net::Ipv4Header::parse(ip_reader);
    if (ip && net::is_rt_frame(*ip)) {
      info.cls = FrameClass::kRealTime;
      info.rt_tag = net::decode_rt_tag(*ip);
      return info;
    }
  }
  info.cls = FrameClass::kBestEffort;
  return info;
}

std::uint64_t SimFrame::wire_bytes() const {
  const std::uint64_t on_wire =
      bytes.size() + extra_payload_bytes + 4 /*FCS*/ + 8 /*preamble*/ +
      12 /*IFG*/;
  return std::clamp(on_wire, kMinFrameWireBytes, kMaxFrameWireBytes);
}

SimFrame SimFrame::make(std::uint64_t frame_id,
                        std::vector<std::uint8_t> frame_bytes,
                        std::uint64_t extra_payload_bytes, Tick created_at,
                        NodeId origin) {
  SimFrame frame;
  frame.bytes = std::move(frame_bytes);
  frame.finalize(frame_id, extra_payload_bytes, created_at, origin);
  return frame;
}

void SimFrame::finalize(std::uint64_t frame_id, std::uint64_t extra_payload,
                        Tick created, NodeId origin_node) {
  id = frame_id;
  extra_payload_bytes = extra_payload;
  const auto classified = classify_frame(bytes);
  RTETHER_ASSERT_MSG(classified.has_value(),
                     "frame bytes lack an Ethernet header");
  info = *classified;
  created_at = created;
  origin = origin_node;
}

FrameIndex FrameArena::acquire() {
  if (!free_.empty()) {
    const FrameIndex index = free_.back();
    free_.pop_back();
    SimFrame& slot = slots_[index];
    slot.id = 0;
    slot.bytes.clear();  // keeps capacity — the allocation-free steady state
    slot.extra_payload_bytes = 0;
    slot.info = FrameInfo{};
    slot.created_at = 0;
    slot.origin = NodeId{};
    slot.corrupted = false;
    return index;
  }
  const auto index = static_cast<FrameIndex>(slots_.size());
  RTETHER_ASSERT_MSG(index != kNoFrame, "frame arena exhausted");
  slots_.emplace_back();
  // The freelist can hold at most every slot; keeping its capacity ahead
  // of the slot count (growing geometrically, not per slot) keeps
  // `release` allocation-free no matter how the pool drains later.
  if (free_.capacity() < slots_.size()) {
    free_.reserve(std::max(slots_.size(), 2 * free_.capacity()));
  }
  return index;
}

FrameIndex FrameArena::adopt(SimFrame&& frame) {
  const FrameIndex index = acquire();
  slots_[index] = std::move(frame);
  return index;
}

FrameIndex FrameArena::clone(FrameIndex source) {
  const FrameIndex index = acquire();
  SimFrame& slot = slots_[index];
  const SimFrame& from = slots_[source];
  slot.id = from.id;
  slot.bytes.assign(from.bytes.begin(), from.bytes.end());
  slot.extra_payload_bytes = from.extra_payload_bytes;
  slot.info = from.info;
  slot.created_at = from.created_at;
  slot.origin = from.origin;
  slot.corrupted = from.corrupted;
  return index;
}

void FrameArena::release(FrameIndex index) {
  RTETHER_ASSERT(index < slots_.size());
  free_.push_back(index);
}

void FrameArena::prewarm(std::size_t extra, std::size_t byte_capacity) {
  std::vector<FrameIndex> scratch;
  scratch.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    scratch.push_back(acquire());
  }
  // Released last-acquired-first: the pre-sized buffers sit on top of the
  // freelist stack and are handed out before any unsized slot.
  for (const FrameIndex index : scratch) {
    slots_[index].bytes.reserve(byte_capacity);
    release(index);
  }
}

}  // namespace rtether::sim
