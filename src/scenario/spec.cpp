#include "scenario/spec.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace rtether::scenario {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kSwitchLine:
      return "line";
    case TopologyKind::kSwitchTree:
      return "tree";
  }
  return "?";
}

bool known_scheme(std::string_view scheme) {
  return scheme == "SDPS" || scheme == "ADPS" || scheme == "UDPS" ||
         scheme == "Search" || scheme == "TT";
}

core::Topology TopologySpec::build() const {
  const std::uint32_t switch_count =
      kind == TopologyKind::kStar ? 1 : switches;
  RTETHER_ASSERT_MSG(switch_count >= 1 && nodes >= 1,
                     "scenario topology must have switches and nodes");
  core::Topology topology(nodes, switch_count);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    topology.attach_node(NodeId{n}, core::SwitchId{n % switch_count});
  }
  switch (kind) {
    case TopologyKind::kStar:
      break;
    case TopologyKind::kSwitchLine:
      for (std::uint32_t s = 0; s + 1 < switch_count; ++s) {
        topology.connect_switches(core::SwitchId{s}, core::SwitchId{s + 1});
      }
      break;
    case TopologyKind::kSwitchTree:
      // Heap-shaped binary tree: switch s links to its parent (s-1)/2.
      for (std::uint32_t s = 1; s < switch_count; ++s) {
        topology.connect_switches(core::SwitchId{s},
                                  core::SwitchId{(s - 1) / 2});
      }
      break;
  }
  return topology;
}

std::size_t ScenarioSpec::admit_count() const {
  std::size_t count = 0;
  for (const auto& op : ops) {
    if (op.kind == ScenarioOp::Kind::kAdmit) ++count;
  }
  return count;
}

bool ScenarioSpec::well_formed() const {
  if (topology.nodes == 0) return false;
  if (topology.kind == TopologyKind::kStar ? false : topology.switches == 0) {
    return false;
  }
  if (ticks_per_slot == 0) return false;
  // A best-effort phase needs a sane offered load (the sim sources assert
  // load > 0); rejecting here keeps a hand-edited corpus entry a test
  // failure instead of a process abort.
  if (with_best_effort &&
      !(std::isfinite(best_effort_load) && best_effort_load > 0.0)) {
    return false;
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    if (op.kind != ScenarioOp::Kind::kRelease) continue;
    if (op.target == ScenarioOp::kNoTarget) continue;
    // A release may only point backwards, at an admit op.
    if (op.target >= i) return false;
    if (ops[op.target].kind != ScenarioOp::Kind::kAdmit) return false;
  }
  // Fault plans only make sense on a simulated wire, must respect the
  // tick-ordering invariant the shrinker preserves, and carry at most one
  // structural fault (the runner segments the run around it). Windowed
  // kinds (link-down, frame-loss, frame-corrupt) are defined on any
  // simulated topology; structural and management kinds act through the
  // star's establishment protocol, which multi-switch fabrics do not
  // model.
  if (!faults.empty()) {
    if (!simulate) return false;
    const bool star = topology.kind == TopologyKind::kStar;
    std::size_t structural = 0;
    Slot previous_at = 0;
    for (const auto& fault : faults) {
      if (fault.at_slot < previous_at) return false;
      previous_at = fault.at_slot;
      if (fault.node.value() >= topology.nodes) return false;
      switch (fault.kind) {
        case sim::FaultKind::kLinkDown:
          if (fault.at_slot >= run_slots || fault.duration_slots == 0) {
            return false;
          }
          break;
        case sim::FaultKind::kFrameLoss:
        case sim::FaultKind::kFrameCorrupt:
          if (fault.at_slot >= run_slots || fault.duration_slots == 0) {
            return false;
          }
          if (!(std::isfinite(fault.probability) && fault.probability > 0.0 &&
                fault.probability <= 1.0)) {
            return false;
          }
          break;
        case sim::FaultKind::kSwitchReboot:
        case sim::FaultKind::kNodeCrash:
          if (!star) return false;
          if (fault.at_slot == 0 || fault.at_slot >= run_slots) return false;
          ++structural;
          break;
        case sim::FaultKind::kMgmtDelay:
          if (!star) return false;
          if (fault.delay_ticks == 0) return false;
          break;
      }
    }
    if (structural > 1) return false;
  }
  return true;
}

std::string ScenarioSpec::summary() const {
  std::ostringstream out;
  out << (name.empty() ? "scenario" : name) << " seed=" << seed << " "
      << to_string(topology.kind) << "(nodes=" << topology.nodes
      << ", switches="
      << (topology.kind == TopologyKind::kStar ? 1U : topology.switches)
      << ") scheme=" << scheme << " ops=" << ops.size()
      << " admits=" << admit_count();
  if (simulate && topology.kind == TopologyKind::kStar) {
    out << " sim=" << run_slots << "slots";
    if (with_best_effort) {
      out << (bursty_best_effort ? "+bursty-be" : "+be") << "("
          << best_effort_load << ")";
    }
    if (!faults.empty()) {
      out << " faults=[";
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (i != 0) out << ",";
        out << sim::to_string(faults[i].kind) << "@" << faults[i].at_slot;
      }
      out << "]";
    }
  }
  return out.str();
}

}  // namespace rtether::scenario
