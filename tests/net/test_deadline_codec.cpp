#include "net/deadline_codec.hpp"

#include <gtest/gtest.h>

namespace rtether::net {
namespace {

TEST(DeadlineCodec, EncodeSetsToS255) {
  Ipv4Header header;
  encode_rt_tag({12345, ChannelId(7)}, header);
  EXPECT_EQ(header.tos, kRtTos);
  EXPECT_TRUE(is_rt_frame(header));
}

TEST(DeadlineCodec, RoundTripSimple) {
  Ipv4Header header;
  const RtFrameTag tag{0x0000'0000'1234ULL, ChannelId(42)};
  encode_rt_tag(tag, header);
  const auto decoded = decode_rt_tag(header);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

TEST(DeadlineCodec, BitLayoutMatchesPaper) {
  // §18.2.2: IP source = deadline bits 47..16; IP destination high half =
  // deadline bits 15..0; low half = channel ID.
  Ipv4Header header;
  encode_rt_tag({0xABCD'EF12'3456ULL, ChannelId(0x7788)}, header);
  EXPECT_EQ(header.source.value(), 0xABCDEF12u);
  EXPECT_EQ(header.destination.value() >> 16, 0x3456u);
  EXPECT_EQ(header.destination.value() & 0xffff, 0x7788u);
}

TEST(DeadlineCodec, MaxDeadlineRoundTrips) {
  Ipv4Header header;
  const RtFrameTag tag{kMaxEncodableDeadline, ChannelId(0xffff)};
  encode_rt_tag(tag, header);
  const auto decoded = decode_rt_tag(header);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

TEST(DeadlineCodec, ZeroValuesRoundTrip) {
  Ipv4Header header;
  const RtFrameTag tag{0, ChannelId(0)};
  encode_rt_tag(tag, header);
  const auto decoded = decode_rt_tag(header);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

TEST(DeadlineCodec, OversizedDeadlineAsserts) {
  Ipv4Header header;
  EXPECT_DEATH(encode_rt_tag({kMaxEncodableDeadline + 1, ChannelId(1)},
                             header),
               "exceeds 48 bits");
}

TEST(DeadlineCodec, NonRtFrameDecodesToNothing) {
  Ipv4Header header;
  header.tos = 0;
  EXPECT_FALSE(decode_rt_tag(header).has_value());
  header.tos = 254;  // "other values … future services"
  EXPECT_FALSE(decode_rt_tag(header).has_value());
  EXPECT_FALSE(is_rt_frame(header));
}

TEST(DeadlineCodec, SurvivesHeaderSerialization) {
  // The tag must survive the full serialize/parse cycle, checksum included.
  Ipv4Header header;
  header.protocol = IpProtocol::kUdp;
  header.total_length = 28;
  const RtFrameTag tag{0x1122'3344'5566ULL, ChannelId(0x0102)};
  encode_rt_tag(tag, header);

  ByteWriter w;
  header.serialize(w);
  ByteReader r(w.bytes());
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  const auto decoded = decode_rt_tag(*parsed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

}  // namespace
}  // namespace rtether::net
