#pragma once

/// @file fault.hpp
/// Deterministic, seed-replayable fault injection for the simulated star
/// network: the fault plan (`FaultEvent`) a scenario declares and the
/// runtime (`FaultInjector`) that executes it against a `SimNetwork`.
///
/// Fault *decisions* (drop / corrupt / delay) are consulted by the
/// transmitters at transmission-complete time through the raw
/// function-pointer hook `Transmitter::FaultFn` — the fault-free hot path
/// pays one null check and nothing else, so golden sim digests of
/// fault-free scenarios are untouched. Windowed faults (link down, frame
/// loss, CRC corruption, management delay) arm and disarm through typed
/// kernel events (`EventType::kFaultArm` / `kFaultDisarm`); structural
/// faults (switch reboot, node crash) are driven by the scenario runner
/// between simulation segments, because their recovery protocol (channel
/// re-registration, teardown storms) must itself step the simulator.
///
/// The model deliberately drops frames *after* they consumed their wire
/// time (a real lost frame still occupied the link), so fault injection
/// can only remove load from the schedule — deadline misses must stay
/// zero for every channel, faulted or not. That is the heart of the
/// survival contract the conformance runner enforces; see
/// scenario/runner.cpp.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"

namespace rtether::sim {

class SimNetwork;
struct SimFrame;

/// The closed set of injectable fault classes.
enum class FaultKind : std::uint8_t {
  /// Link to/from `node` is down: every data frame completing transmission
  /// on the faulted direction during the window is lost.
  kLinkDown,
  /// Bernoulli frame loss with `probability` per data frame on the link.
  kFrameLoss,
  /// Bernoulli CRC corruption with `probability`: the frame still travels,
  /// but the receiving end (switch ingress or node NIC) discards it.
  kFrameCorrupt,
  /// The switch reboots at `at_slot`: channel table, MAC forwarding table
  /// and pending management state are lost; nodes must re-register.
  kSwitchReboot,
  /// The application on `node` crashes at `at_slot`: its channels are torn
  /// down, followed by a storm of stale/duplicate teardown frames.
  kNodeCrash,
  /// Management frames to/from `node` are delayed by a uniform random
  /// extra [0, delay_ticks] ticks (and thereby reordered). Active for the
  /// whole scenario.
  kMgmtDelay,
};

/// Number of fault classes (per-class injection counters).
inline constexpr std::size_t kFaultKindCount = 6;

[[nodiscard]] const char* to_string(FaultKind kind);

/// Inverse of `to_string` (corpus round-trips); nullopt for strings that
/// name no fault class.
[[nodiscard]] std::optional<FaultKind> fault_kind_from_string(
    std::string_view text);

/// One declared fault in a scenario's plan. Plain data: generated,
/// serialized, shrunk and replayed exactly like ops.
struct FaultEvent {
  FaultKind kind{FaultKind::kFrameLoss};
  /// Window start, in slots relative to the start of the measured run
  /// (after establishment). For kSwitchReboot/kNodeCrash: the instant the
  /// structural fault fires. Ignored for kMgmtDelay (whole-run).
  Slot at_slot{0};
  /// Window length in slots (windowed kinds only).
  Slot duration_slots{0};
  /// Faulted node (link endpoint, crashed node, delayed node). Ignored for
  /// kSwitchReboot.
  NodeId node{};
  /// Windowed link faults: true = the switch→node downlink, false = the
  /// node→switch uplink.
  bool downlink{false};
  /// Per-frame Bernoulli probability (kFrameLoss, kFrameCorrupt).
  double probability{0.0};
  /// Maximum extra delay (kMgmtDelay), ticks.
  Tick delay_ticks{0};

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

/// Executes a scenario's windowed fault plan against a live network.
///
/// One injector serves the whole network: it installs itself as the fault
/// hook on every node uplink and every switch port, arms/disarms windowed
/// events via typed kernel events, and draws all randomness from one
/// deterministic stream (seeded from the scenario seed) consumed in
/// frame-completion order — replaying the same spec replays the same
/// faults, frame for frame.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed ^ kSeedSalt) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the fault hooks on every transmitter of `network` and
  /// schedules arm/disarm kernel events for every *windowed* event in
  /// `events` (structural kinds — reboot, crash — are the runner's job and
  /// are skipped here). Windows are relative to `run_start`, the tick the
  /// measured run begins. Must be called once, before the run.
  void install(SimNetwork& network, const std::vector<FaultEvent>& events,
               Tick run_start);

  /// Kernel dispatch targets (EventType::kFaultArm / kFaultDisarm):
  /// `index` is the position in the installed event list.
  void arm(std::uint32_t index) { active_[index] = true; }
  void disarm(std::uint32_t index) { active_[index] = false; }

  /// Records a structural fault occurrence (reboot, crash) — the runner
  /// executes those itself but counts them here so campaign stats cover
  /// every class.
  void record_structural(FaultKind kind) { ++injections_[index_of(kind)]; }

  /// Frames affected (windowed kinds) / occurrences (structural kinds),
  /// per fault class.
  [[nodiscard]] const std::array<std::uint64_t, kFaultKindCount>& injections()
      const {
    return injections_;
  }

 private:
  /// Hook context registered with one transmitter: which link this is.
  struct LinkContext {
    FaultInjector* injector{nullptr};
    NodeId node{};
    bool downlink{false};
  };

  [[nodiscard]] static std::size_t index_of(FaultKind kind) {
    return static_cast<std::size_t>(kind);
  }

  /// The decision hook body (bridged through Transmitter::FaultFn).
  struct Decision {
    bool drop{false};
    bool corrupt{false};
    Tick extra_delay{0};
  };
  [[nodiscard]] Decision decide(const LinkContext& link, const SimFrame& frame);

  static constexpr std::uint64_t kSeedSalt = 0xfa01'7de7'ec70'4711ULL;

  std::vector<FaultEvent> events_;
  std::vector<bool> active_;
  /// One context per link (node uplinks first, then switch ports), stable
  /// addresses for the raw hook registration.
  std::vector<LinkContext> links_;
  Rng rng_;
  std::array<std::uint64_t, kFaultKindCount> injections_{};

  friend struct FaultHookBridge;
};

}  // namespace rtether::sim
