#include "sim/transmitter.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sim/network.hpp"
#include "sim/switch.hpp"

namespace rtether::sim {

Transmitter::Sink Transmitter::Sink::uplink(SimNetwork& network, NodeId node) {
  Sink sink;
  sink.kind = Kind::kUplinkToSwitch;
  sink.peer = node;
  sink.network = &network;
  return sink;
}

Transmitter::Sink Transmitter::Sink::port(SimNetwork& network, NodeId node) {
  Sink sink;
  sink.kind = Kind::kPortToNode;
  sink.peer = node;
  sink.network = &network;
  return sink;
}

Transmitter::Sink Transmitter::Sink::custom(CustomFn fn, void* context) {
  Sink sink;
  sink.kind = Kind::kCustom;
  sink.fn = fn;
  sink.context = context;
  return sink;
}

Transmitter::Sink Transmitter::Sink::fabric(HandoffFn handoff, DropFn drop,
                                            void* context) {
  Sink sink;
  sink.kind = Kind::kFabricHandoff;
  sink.handoff = handoff;
  sink.drop = drop;
  sink.context = context;
  return sink;
}

Transmitter::Transmitter(Simulator& simulator, const SimConfig& config,
                         std::string name, Sink sink,
                         std::size_t best_effort_depth)
    : simulator_(simulator),
      config_(config),
      name_(std::move(name)),
      sink_(sink),
      best_effort_queue_(best_effort_depth) {
  RTETHER_ASSERT(sink_.kind != Sink::Kind::kCustom || sink_.fn != nullptr);
  RTETHER_ASSERT(sink_.kind != Sink::Kind::kFabricHandoff ||
                 (sink_.handoff != nullptr && sink_.drop != nullptr));
  RTETHER_ASSERT(sink_.kind == Sink::Kind::kCustom ||
                 sink_.kind == Sink::Kind::kFabricHandoff ||
                 sink_.network != nullptr);
}

void Transmitter::enqueue_rt(Tick deadline_key, FrameIndex frame) {
  if (gated_) {
    // Time-triggered mode: the EDF key is ignored — the slot table decided
    // the order offline. Route the frame to its channel's window FIFO.
    const SimFrame& held = simulator_.arena().get(frame);
    RTETHER_ASSERT_MSG(held.info.rt_tag.has_value(),
                       "gated RT enqueue without a decoded tag");
    const ChannelId channel = held.info.rt_tag->channel;
    for (GateEntry& entry : gate_entries_) {
      if (entry.channel == channel) {
        // Unbounded: never drops.
        (void)gate_queues_[entry.queue_index].push(frame);
        ++gated_rt_backlog_;
        stats_.max_rt_queue_depth =
            std::max(stats_.max_rt_queue_depth, gated_rt_backlog_);
        schedule_start();
        return;
      }
    }
    RTETHER_ASSERT_MSG(false, "gated RT frame for a channel with no window");
  }
  rt_queue_.push(deadline_key, frame);
  stats_.max_rt_queue_depth =
      std::max(stats_.max_rt_queue_depth, rt_queue_.size());
  schedule_start();
}

void Transmitter::enqueue_best_effort(FrameIndex frame) {
  if (best_effort_queue_.push(frame)) {
    stats_.max_best_effort_queue_depth = std::max(
        stats_.max_best_effort_queue_depth, best_effort_queue_.size());
  } else {
    // Bounded queue overflow: the frame is dropped here and its slot goes
    // back to the pool.
    simulator_.arena().release(frame);
  }
  schedule_start();
}

void Transmitter::schedule_start() {
  // Defer the start-of-transmission decision to a same-tick arbitration
  // event instead of grabbing the wire inline. Two frames released at the
  // same tick used to be served in *event execution* order: the first
  // enqueue found the link idle and started transmitting even when the
  // second had the earlier EDF deadline — a full slot of priority-inversion
  // blocking the per-link analysis (Eqs 18.2–18.5) does not account for,
  // found by the scenario fuzzer as a real deadline miss (seed 37 of the
  // default campaign, minimized to two zero-slack channels sharing an
  // uplink). With the deferral, every release scheduled at tick T runs
  // before the arbitration event created at T, so service starts — still at
  // tick T — with the true EDF minimum of everything available.
  if (busy_ || start_pending_) {
    return;
  }
  // Nothing queued (a completion with both queues drained — the common
  // case in sparse periodic traffic): don't burn an event; the next
  // enqueue schedules its own arbitration.
  if (rt_queue_.empty() && best_effort_queue_.empty() &&
      gated_rt_backlog_ == 0) {
    return;
  }
  start_pending_ = true;
  simulator_.schedule_event(simulator_.now(), EventType::kArbitrate, this);
}

void Transmitter::arbitrate() {
  start_pending_ = false;
  try_start();
}

void Transmitter::try_start() {
  if (busy_) {
    return;  // non-preemptive: the in-flight frame finishes first
  }
  if (gated_) {
    try_start_gated();
    return;
  }
  // Strict priority: RT (EDF order) before best-effort (FCFS order). Each
  // queue is consulted with a single move-out pop.
  FrameIndex frame = rt_queue_.pop();
  const bool is_rt = frame != kNoFrame;
  if (!is_rt) {
    frame = best_effort_queue_.pop();
  }
  if (frame == kNoFrame) {
    return;
  }

  busy_ = true;
  const Tick tx_ticks =
      config_.transmission_ticks(simulator_.arena().get(frame).wire_bytes());
  stats_.busy_ticks += tx_ticks;
  if (is_rt) {
    ++stats_.rt_frames_sent;
  } else {
    ++stats_.best_effort_frames_sent;
  }

  // The frame rides the completion event by index; no copy, no closure.
  simulator_.schedule_event(simulator_.now() + tx_ticks,
                            EventType::kTxComplete, this, frame);
}

void Transmitter::try_start_gated() {
  const Tick now = simulator_.now();
  FrameIndex frame = kNoFrame;
  bool is_rt = false;
  Tick tx_ticks = 0;
  if (open_entry_ != kNoGate && now < open_until_) {
    FcfsQueue& queue = gate_queues_[gate_entries_[open_entry_].queue_index];
    const FrameIndex head = queue.peek();
    if (head != kNoFrame) {
      const Tick tx = config_.transmission_ticks(
          simulator_.arena().get(head).wire_bytes());
      // Start only if the transmission completes inside the window. A
      // frame released mid-window waits for the channel's next window —
      // the TT contract is per-window, not work-conserving, and that is
      // exactly what makes the delivery instants jitter-free.
      if (now + tx <= open_until_) {
        frame = queue.pop();
        --gated_rt_backlog_;
        is_rt = true;
        tx_ticks = tx;
      }
    }
  }
  if (frame == kNoFrame) {
    // Best-effort fills the unreserved gaps: it may start only when the
    // whole transmission lands before every entry's next window (and
    // outside the currently open one). Retried at each gate_close.
    const FrameIndex head = best_effort_queue_.peek();
    if (head != kNoFrame) {
      const Tick tx = config_.transmission_ticks(
          simulator_.arena().get(head).wire_bytes());
      if (gate_clear(now, tx)) {
        frame = best_effort_queue_.pop();
        tx_ticks = tx;
      }
    }
  }
  if (frame == kNoFrame) {
    return;
  }
  busy_ = true;
  stats_.busy_ticks += tx_ticks;
  if (is_rt) {
    ++stats_.rt_frames_sent;
  } else {
    ++stats_.best_effort_frames_sent;
  }
  simulator_.schedule_event(now + tx_ticks, EventType::kTxComplete, this,
                            frame);
}

bool Transmitter::gate_clear(Tick now, Tick tx_ticks) const {
  if (open_entry_ != kNoGate && now < open_until_) {
    return false;  // inside a reserved window
  }
  const Tick end = now + tx_ticks;
  for (const GateEntry& entry : gate_entries_) {
    if (entry.next_open < end) {
      return false;
    }
  }
  return true;
}

void Transmitter::install_gate_schedule(std::span<const GateWindow> windows) {
  gated_ = true;
  const Tick now = simulator_.now();
  for (const GateWindow& window : windows) {
    RTETHER_ASSERT_MSG(window.period_ticks > 0,
                       "a gate window stream needs a period");
    GateEntry entry;
    entry.channel = window.channel;
    entry.period_ticks = window.period_ticks;
    entry.next_open = window.first_open;
    // A capacity-C channel installs C window streams; they all drain one
    // shared per-channel FIFO so a frame held at offset u_j can leave at
    // whichever of the channel's windows opens next.
    entry.queue_index = kNoGate;
    for (const GateEntry& existing : gate_entries_) {
      if (existing.channel == window.channel) {
        entry.queue_index = existing.queue_index;
        break;
      }
    }
    if (entry.queue_index == kNoGate) {
      entry.queue_index = static_cast<std::uint32_t>(gate_queues_.size());
      gate_queues_.emplace_back();
    }
    if (entry.next_open < now) {
      // The establishment protocol consumed simulation time; jump the
      // epoch-anchored stream to its first occurrence at or after now.
      const Tick behind = now - entry.next_open;
      entry.next_open += (behind + entry.period_ticks - 1) /
                         entry.period_ticks * entry.period_ticks;
    }
    const auto index = static_cast<std::uint32_t>(gate_entries_.size());
    gate_entries_.push_back(std::move(entry));
    simulator_.schedule_event(gate_entries_.back().next_open,
                              EventType::kGateOpen, this, kNoFrame, index);
  }
}

void Transmitter::gate_open(std::uint32_t entry_index) {
  GateEntry& entry = gate_entries_[entry_index];
  open_entry_ = entry_index;
  open_until_ = simulator_.now() + config_.ticks_per_slot;
  simulator_.schedule_event(open_until_, EventType::kGateClose, this, kNoFrame,
                            entry_index);
  entry.next_open += entry.period_ticks;
  simulator_.schedule_event(entry.next_open, EventType::kGateOpen, this,
                            kNoFrame, entry_index);
  schedule_start();
}

void Transmitter::gate_close(std::uint32_t entry_index) {
  // Adjacent windows: the successor's gate_open (scheduled a full period
  // ago, hence with an earlier sequence number) runs before this close at
  // the same tick — only the entry still holding the door may clear it.
  if (open_entry_ == entry_index) {
    open_entry_ = kNoGate;
  }
  schedule_start();
}

void Transmitter::complete(FrameIndex frame) {
  busy_ = false;
  const Tick completion = simulator_.now();
  Tick propagation = config_.propagation_ticks;
  if (fault_fn_ != nullptr) {
    const FaultDecision fault =
        fault_fn_(fault_context_, simulator_.arena().get(frame), completion);
    if (fault.drop) {
      // The frame consumed its wire time above; losing it here removes
      // load downstream but never adds blocking — the survival contract's
      // zero-miss guarantee rests on this.
      if (sink_.kind == Sink::Kind::kFabricHandoff) {
        sink_.drop(sink_.context, simulator_.arena().get(frame));
      } else if (sink_.kind != Sink::Kind::kCustom) {
        sink_.network->record_fault_drop(simulator_.arena().get(frame));
      }
      simulator_.arena().release(frame);
      schedule_start();
      return;
    }
    if (fault.corrupt) {
      simulator_.arena().get(frame).corrupted = true;
    }
    propagation += fault.extra_delay;
  }
  switch (sink_.kind) {
    case Sink::Kind::kUplinkToSwitch:
      // Store-and-forward hand-off: the frame reaches the switch after one
      // propagation delay.
      simulator_.schedule_event(completion + propagation,
                                EventType::kSwitchIngress,
                                &sink_.network->ethernet_switch(), frame,
                                sink_.peer.value());
      break;
    case Sink::Kind::kPortToNode:
      // The frame reaches the destination node (and the measurement layer)
      // after one propagation delay.
      simulator_.schedule_event(completion + propagation,
                                EventType::kNodeDeliver, sink_.network, frame,
                                sink_.peer.value());
      break;
    case Sink::Kind::kCustom:
      sink_.fn(sink_.context, simulator_.arena().get(frame), completion);
      simulator_.arena().release(frame);
      break;
    case Sink::Kind::kFabricHandoff:
      // Ownership transfers: the fabric re-enqueues or releases the slot.
      sink_.handoff(sink_.context, frame, completion);
      break;
  }
  schedule_start();
}

}  // namespace rtether::sim
