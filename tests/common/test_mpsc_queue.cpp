#include "common/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace rtether {
namespace {

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(1024).capacity(), 1024u);
  EXPECT_EQ(MpscQueue<int>(1025).capacity(), 2048u);
}

TEST(MpscQueue, SingleThreadFifoAcrossManyWraps) {
  MpscQueue<int> queue(4);  // tiny ring: every 4 ops wrap the positions
  int out = 0;
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(queue.try_push(2 * round));
    ASSERT_TRUE(queue.try_push(2 * round + 1));
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, 2 * round);
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, 2 * round + 1);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(MpscQueue, FullRingBackpressuresTryPush) {
  MpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_push(int{i}));
  }
  EXPECT_FALSE(queue.try_push(99));  // full: producer sees back-pressure
  int out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.try_push(99));  // one slot drained, one push fits
  for (int expect : {1, 2, 3, 99}) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpscQueue, BlockingPushParksUntilConsumerDrains) {
  MpscQueue<int> queue(2);
  ASSERT_TRUE(queue.try_push(0));
  ASSERT_TRUE(queue.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(2);  // ring is full: must park until a pop frees a slot
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));
  int out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
}

TEST(MpscQueue, BlockingPopParksUntilProducerPublishes) {
  MpscQueue<int> queue(8);
  std::thread consumer([&] {
    int out = 0;
    queue.pop(out);
    EXPECT_EQ(out, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.push(42);
  consumer.join();
}

TEST(MpscQueue, MultiProducerKeepsPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscQueue<std::uint64_t> queue(64);  // small ring: heavy contention + wraps
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        queue.push((p << 32) | i);
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t drained = 0;
  while (drained < kProducers * kPerProducer) {
    std::uint64_t tagged = 0;
    queue.pop(tagged);
    const std::uint64_t producer = tagged >> 32;
    const std::uint64_t seq = tagged & 0xffffffffU;
    ASSERT_LT(producer, kProducers);
    ASSERT_EQ(seq, next[producer]) << "producer " << producer
                                   << " reordered against itself";
    ++next[producer];
    ++drained;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, ExternalConsumerWakeIsNotified) {
  Eventcount wake;
  MpscQueue<int> queue(8, &wake);
  std::atomic<bool> woken{false};
  std::thread consumer([&] {
    // Park on the external eventcount, not the queue's own; a push must
    // still wake us (the dispatcher's multi-source wait pattern).
    while (queue.empty()) {
      const auto ticket = wake.prepare_wait();
      if (!queue.empty()) {
        wake.cancel_wait();
        break;
      }
      wake.wait(ticket);
    }
    int out = 0;
    EXPECT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, 7);
    woken.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(queue.try_push(7));
  consumer.join();
  EXPECT_TRUE(woken.load(std::memory_order_acquire));
}

TEST(MpscQueue, DestructorReleasesUndrainedElements) {
  auto tracer = std::make_shared<int>(5);
  {
    MpscQueue<std::shared_ptr<int>> queue(8);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(queue.try_push(std::shared_ptr<int>(tracer)));
    }
    EXPECT_EQ(tracer.use_count(), 6);
  }
  EXPECT_EQ(tracer.use_count(), 1);  // queue destroyed its 5 copies
}

TEST(MpscQueue, MoveOnlyElementsFlowThrough) {
  MpscQueue<std::unique_ptr<int>> queue(4);
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(9)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 9);
}

}  // namespace
}  // namespace rtether
