#include "core/network_state.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rtether::core {

const char* to_string(LinkDirection dir) {
  return dir == LinkDirection::kUplink ? "uplink" : "downlink";
}

NetworkState::NetworkState(std::uint32_t node_count)
    : uplinks_(node_count), downlinks_(node_count) {
  RTETHER_ASSERT_MSG(node_count >= 1, "network needs at least one node");
}

const edf::TaskSet& NetworkState::link(NodeId node, LinkDirection dir) const {
  RTETHER_ASSERT(node_exists(node));
  return dir == LinkDirection::kUplink ? uplinks_[node.value()]
                                       : downlinks_[node.value()];
}

edf::TaskSet& NetworkState::link_mutable(NodeId node, LinkDirection dir) {
  RTETHER_ASSERT(node_exists(node));
  return dir == LinkDirection::kUplink ? uplinks_[node.value()]
                                       : downlinks_[node.value()];
}

void NetworkState::add_channel(const RtChannel& channel) {
  RTETHER_ASSERT(node_exists(channel.spec.source));
  RTETHER_ASSERT(node_exists(channel.spec.destination));
  RTETHER_ASSERT_MSG(!channels_.contains(channel.id),
                     "duplicate RT channel ID");
  RTETHER_ASSERT_MSG(channel.partition.satisfies(channel.spec),
                     "partition violates Eq 18.8/18.9");

  link_mutable(channel.spec.source, LinkDirection::kUplink)
      .add({channel.id, channel.spec.period, channel.spec.capacity,
            channel.partition.uplink});
  link_mutable(channel.spec.destination, LinkDirection::kDownlink)
      .add({channel.id, channel.spec.period, channel.spec.capacity,
            channel.partition.downlink});
  channels_.emplace(channel.id, channel);
}

bool NetworkState::remove_channel(ChannelId id) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    return false;
  }
  const RtChannel& channel = it->second;
  const bool up_removed =
      link_mutable(channel.spec.source, LinkDirection::kUplink).remove(id);
  const bool down_removed =
      link_mutable(channel.spec.destination, LinkDirection::kDownlink)
          .remove(id);
  RTETHER_ASSERT_MSG(up_removed && down_removed,
                     "channel registry out of sync with link task sets");
  channels_.erase(it);
  return true;
}

void NetworkState::adopt_link(NodeId node, LinkDirection dir,
                              edf::TaskSet tasks) {
  link_mutable(node, dir) = std::move(tasks);
}

edf::TaskSet NetworkState::take_link(NodeId node, LinkDirection dir) {
  return std::exchange(link_mutable(node, dir), edf::TaskSet{});
}

bool NetworkState::forget_channel(ChannelId id) {
  return channels_.erase(id) != 0;
}

void NetworkState::adopt_channel(const RtChannel& channel) {
  RTETHER_ASSERT_MSG(!channels_.contains(channel.id),
                     "duplicate RT channel ID");
  channels_.emplace(channel.id, channel);
}

std::optional<RtChannel> NetworkState::find_channel(ChannelId id) const {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return std::nullopt;
  return it->second;
}

std::vector<RtChannel> NetworkState::channels() const {
  std::vector<RtChannel> result;
  result.reserve(channels_.size());
  for (const auto& [id, channel] : channels_) {
    result.push_back(channel);
  }
  return result;
}

double NetworkState::link_utilization(NodeId node, LinkDirection dir) const {
  return link(node, dir).utilization();
}

}  // namespace rtether::core
