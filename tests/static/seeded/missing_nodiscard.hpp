// Seeded lint violation: scripts/lint_invariants.py --profile nodiscard
// must flag the declaration below (rule nodiscard-expected). WILL_FAIL
// ctest case static.lint_seeded_nodiscard.
#pragma once

#include "common/expected.hpp"

namespace rtether::seeded {

Expected<int, int> parse_flag(int raw);

}  // namespace rtether::seeded
