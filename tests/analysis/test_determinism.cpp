// Bit-reproducibility: identical seeds must give identical simulations —
// the property every experiment in EXPERIMENTS.md relies on.

#include <gtest/gtest.h>

#include "analysis/validation.hpp"

namespace rtether::analysis {
namespace {

ValidationConfig config_for(std::uint64_t seed) {
  ValidationConfig config;
  config.sim.ticks_per_slot = 64;
  config.workload.masters = 2;
  config.workload.slaves = 6;
  config.request_count = 25;
  config.run_slots = 600;
  config.with_best_effort = true;
  config.best_effort_load = 0.4;
  config.seed = seed;
  return config;
}

/// Flattens the parts of a result that must match bit-for-bit.
std::string fingerprint(const ValidationResult& result) {
  std::string fp = std::to_string(result.channels_established) + "|" +
                   std::to_string(result.frames_sent) + "|" +
                   std::to_string(result.frames_delivered) + "|" +
                   std::to_string(result.best_effort_sent) + "|" +
                   std::to_string(result.best_effort_delivered);
  // Built up with += rather than operator+ chains: GCC 12's -O3 -Wrestrict
  // misfires on `"literal" + std::to_string(...)` (GCC PR105651).
  for (const auto& channel : result.channels) {
    fp += "|";
    fp += std::to_string(channel.id.value());
    fp += ":";
    fp += std::to_string(channel.frames_delivered);
    fp += ":";
    fp += std::to_string(channel.worst_delay_slots);
  }
  return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const auto a = run_guarantee_validation(config_for(77));
  const auto b = run_guarantee_validation(config_for(77));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_guarantee_validation(config_for(77));
  const auto b = run_guarantee_validation(config_for(78));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace rtether::analysis
