#pragma once

/// @file spsc_channel.hpp
/// Fixed-capacity single-producer / single-consumer channel of POD records
/// — the cut-link transport of the parallel simulator (sim/parallel.hpp).
///
/// One partition thread pushes, one partition thread pops; the barrier
/// between simulation rounds moves the producer/consumer roles between
/// pool workers with full fork/join ordering, so at any instant at most
/// one thread is on each side. Under that contract the channel is a
/// classic two-cursor ring: the producer owns `tail_`, the consumer owns
/// `head_`, each publishes its cursor with a release store and reads the
/// other side's with an acquire load. No CAS, no per-cell sequence
/// numbers, and — by design — no mutex anywhere: lock-freedom on the
/// cross-partition path is a hard invariant (lint rule lock-free-path),
/// exactly like the MPSC ingest ring (common/mpsc_queue.hpp).
///
/// The element type must be trivially copyable: records cross partition
/// (and thread) boundaries by value, never by reference into the
/// producer's arena — that is what keeps the consumer free of data races
/// against the producer's allocator.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace rtether {

template <typename T>
class SpscChannel {
  static_assert(std::is_trivially_copyable_v<T>,
                "SPSC records cross thread boundaries by value");

 public:
  /// `capacity` is rounded up to a power of two (≥ 2).
  explicit SpscChannel(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side: false when the ring is full (the caller spills and
  /// retries after the consumer drained — see sim::FabricNetwork).
  [[nodiscard]] bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[static_cast<std::size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: copies the front record without consuming it; false
  /// when the channel is empty.
  [[nodiscard]] bool try_peek(T& out) const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = slots_[static_cast<std::size_t>(head) & mask_];
    return true;
  }

  /// Consumer side: consumes the front record (must exist — peek first).
  void pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    RTETHER_ASSERT(head != tail_.load(std::memory_order_acquire));
    head_.store(head + 1, std::memory_order_release);
  }

  /// Records consumed so far (producer-visible; monotonic). The acquire
  /// pairs with the consumer's release in `pop`, so resources tied to a
  /// consumed record may be safely reclaimed by the producer.
  [[nodiscard]] std::uint64_t consumed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Records pushed so far (producer's own counter; exact on the producer
  /// thread, a monotonic lower bound anywhere else).
  [[nodiscard]] std::uint64_t pushed() const {
    return tail_.load(std::memory_order_acquire);
  }

  /// Consumer-side emptiness check.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_{1};
  /// Consumer cursor: next slot to pop. Written by the consumer only.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  /// Producer cursor: next slot to fill. Written by the producer only.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace rtether
