#include "common/math.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace rtether {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(CheckedMul, SmallValues) {
  EXPECT_EQ(checked_mul(6, 7), 42u);
  EXPECT_EQ(checked_mul(0, kMax), 0u);
  EXPECT_EQ(checked_mul(kMax, 0), 0u);
  EXPECT_EQ(checked_mul(1, kMax), kMax);
}

TEST(CheckedMul, OverflowDetected) {
  EXPECT_FALSE(checked_mul(kMax, 2).has_value());
  EXPECT_FALSE(checked_mul(std::uint64_t{1} << 32, std::uint64_t{1} << 32)
                   .has_value());
  // Boundary: exactly max is fine.
  EXPECT_EQ(checked_mul(kMax / 2, 2), kMax - 1);
}

TEST(CheckedAdd, SmallValues) {
  EXPECT_EQ(checked_add(1, 2), 3u);
  EXPECT_EQ(checked_add(kMax - 1, 1), kMax);
}

TEST(CheckedAdd, OverflowDetected) {
  EXPECT_FALSE(checked_add(kMax, 1).has_value());
  EXPECT_FALSE(checked_add(kMax / 2 + 1, kMax / 2 + 1).has_value());
}

TEST(CheckedLcm, BasicValues) {
  EXPECT_EQ(checked_lcm(4, 6), 12u);
  EXPECT_EQ(checked_lcm(7, 13), 91u);
  EXPECT_EQ(checked_lcm(100, 100), 100u);
  EXPECT_EQ(checked_lcm(1, 50), 50u);
}

TEST(CheckedLcm, ZeroOperand) {
  EXPECT_EQ(checked_lcm(0, 5), 0u);
  EXPECT_EQ(checked_lcm(5, 0), 0u);
}

TEST(CheckedLcm, OverflowDetected) {
  // Two large coprime numbers.
  EXPECT_FALSE(checked_lcm((std::uint64_t{1} << 33) - 1,
                           (std::uint64_t{1} << 33) - 9)
                   .has_value());
}

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_EQ(ceil_div(kMax, 1), kMax);
  EXPECT_EQ(ceil_div(kMax, kMax), 1u);
}

TEST(FloorDiv, Basics) {
  EXPECT_EQ(floor_div(10, 5), 2u);
  EXPECT_EQ(floor_div(11, 5), 2u);
  EXPECT_EQ(floor_div(4, 5), 0u);
}

TEST(SatSub, NoWrapAround) {
  EXPECT_EQ(sat_sub(5, 3), 2u);
  EXPECT_EQ(sat_sub(3, 5), 0u);
  EXPECT_EQ(sat_sub(0, kMax), 0u);
  EXPECT_EQ(sat_sub(kMax, 0), kMax);
}

}  // namespace
}  // namespace rtether
