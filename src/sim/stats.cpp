#include "sim/stats.hpp"

#include <algorithm>

namespace rtether::sim {

ChannelDeliveryStats& SimStats::slot(ChannelId id) {
  if (2 * (used_ + 1) > table_.size()) {
    rehash(table_.empty() ? 16 : 2 * table_.size());
  }
  std::size_t index = start_index(id, table_.size());
  while (table_[index].used && table_[index].id != id) {
    index = (index + 1) & (table_.size() - 1);
  }
  TableSlot& found = table_[index];
  if (!found.used) {
    found.used = true;
    found.id = id;
    ++used_;
  }
  return found.stats;
}

const SimStats::TableSlot* SimStats::find(ChannelId id) const {
  if (table_.empty()) return nullptr;
  std::size_t index = start_index(id, table_.size());
  while (table_[index].used) {
    if (table_[index].id == id) return &table_[index];
    index = (index + 1) & (table_.size() - 1);
  }
  return nullptr;
}

void SimStats::rehash(std::size_t capacity) {
  std::vector<TableSlot> bigger(capacity);
  for (const TableSlot& old : table_) {
    if (!old.used) continue;
    std::size_t index = start_index(old.id, capacity);
    while (bigger[index].used) {
      index = (index + 1) & (capacity - 1);
    }
    bigger[index] = old;
  }
  table_ = std::move(bigger);
}

void SimStats::record_rt_delivered(ChannelId channel, Tick created,
                                   Tick absolute_deadline, Tick delivered,
                                   Tick allowance) {
  auto& stats = slot(channel);
  ++stats.frames_delivered;
  stats.delay_ticks.add(static_cast<double>(delivered - created));
  if (record_delays_) {
    stats.delivery_delays.push_back(delivered - created);
  }
  const auto lateness = static_cast<std::int64_t>(delivered) -
                        static_cast<std::int64_t>(absolute_deadline);
  stats.worst_lateness_ticks =
      std::max(stats.worst_lateness_ticks, lateness);
  if (delivered > absolute_deadline + allowance) {
    ++stats.deadline_misses;
  }
}

void SimStats::record_best_effort_delivered(Tick created, Tick delivered) {
  ++best_effort_delivered_;
  best_effort_delay_.add(static_cast<double>(delivered - created));
}

std::map<ChannelId, ChannelDeliveryStats> SimStats::channels() const {
  std::map<ChannelId, ChannelDeliveryStats> sorted;
  for (const TableSlot& entry : table_) {
    if (entry.used) sorted.emplace(entry.id, entry.stats);
  }
  return sorted;
}

std::optional<ChannelDeliveryStats> SimStats::channel(ChannelId id) const {
  const TableSlot* found = find(id);
  if (found == nullptr) return std::nullopt;
  return found->stats;
}

std::uint64_t SimStats::total_rt_delivered() const {
  std::uint64_t total = 0;
  for (const TableSlot& entry : table_) {
    if (entry.used) total += entry.stats.frames_delivered;
  }
  return total;
}

std::uint64_t SimStats::total_deadline_misses() const {
  std::uint64_t total = 0;
  for (const TableSlot& entry : table_) {
    if (entry.used) total += entry.stats.deadline_misses;
  }
  return total;
}

}  // namespace rtether::sim
