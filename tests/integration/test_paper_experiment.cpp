// Integration check of the paper's headline experiment (Fig 18.5) at
// reduced seed count: the full reproduction lives in
// bench/fig18_5_acceptance.cpp; this test pins the curve *shape* so
// regressions fail CI rather than just bending a figure.

#include <gtest/gtest.h>

#include "analysis/acceptance.hpp"

namespace rtether::analysis {
namespace {

class Fig185Shape : public ::testing::Test {
 protected:
  static AcceptanceSweepConfig sweep() {
    AcceptanceSweepConfig config;
    config.request_counts = {20, 40, 60, 80, 100, 120, 140, 160, 180, 200};
    config.seeds = 3;
    config.base_seed = 42;
    return config;
  }

  static traffic::MasterSlaveConfig workload() {
    return traffic::MasterSlaveConfig{};  // the paper's parameters
  }
};

TEST_F(Fig185Shape, AdpsDominatesSdpsEverywhere) {
  const auto sdps = run_master_slave_sweep("SDPS", workload(), sweep());
  const auto adps = run_master_slave_sweep("ADPS", workload(), sweep());
  for (std::size_t i = 0; i < sdps.points.size(); ++i) {
    EXPECT_GE(adps.points[i].accepted_mean + 1e-9,
              sdps.points[i].accepted_mean)
        << "at requested=" << sdps.points[i].requested;
  }
}

TEST_F(Fig185Shape, BothAcceptEverythingAtLowLoad) {
  const auto sdps = run_master_slave_sweep("SDPS", workload(), sweep());
  const auto adps = run_master_slave_sweep("ADPS", workload(), sweep());
  // At 20 requested, nothing saturates: near-total acceptance.
  EXPECT_GE(sdps.points[0].accepted_min, 18.0);
  EXPECT_GE(adps.points[0].accepted_min, 18.0);
}

TEST_F(Fig185Shape, SdpsPlateauNearSixty) {
  const auto sdps = run_master_slave_sweep("SDPS", workload(), sweep());
  const auto& last = sdps.points.back();
  // Analytic plateau: 10 masters × 6 channels/uplink.
  EXPECT_NEAR(last.accepted_mean, 60.0, 2.0);
  // Plateau reached well before 200 requested.
  EXPECT_NEAR(sdps.points[6].accepted_mean, 60.0, 3.0);  // at 140
}

TEST_F(Fig185Shape, AdpsPlateauNearPaperValue) {
  const auto adps = run_master_slave_sweep("ADPS", workload(), sweep());
  const auto& last = adps.points.back();
  // Paper Fig 18.5 shows ≈ 110 accepted at 200 requested.
  EXPECT_GE(last.accepted_mean, 95.0);
  EXPECT_LE(last.accepted_mean, 125.0);
}

TEST_F(Fig185Shape, RatioRoughlyMatchesPaper) {
  const auto sdps = run_master_slave_sweep("SDPS", workload(), sweep());
  const auto adps = run_master_slave_sweep("ADPS", workload(), sweep());
  const double ratio = adps.points.back().accepted_mean /
                       sdps.points.back().accepted_mean;
  // Paper: ≈ 110/60 ≈ 1.8.
  EXPECT_GE(ratio, 1.55);
  EXPECT_LE(ratio, 2.1);
}

TEST_F(Fig185Shape, SchemesAgreeBeforeSaturation) {
  // Below the SDPS knee (~60) the curves should track each other closely.
  const auto sdps = run_master_slave_sweep("SDPS", workload(), sweep());
  const auto adps = run_master_slave_sweep("ADPS", workload(), sweep());
  EXPECT_NEAR(sdps.points[0].accepted_mean, adps.points[0].accepted_mean,
              2.0);
  EXPECT_NEAR(sdps.points[1].accepted_mean, adps.points[1].accepted_mean,
              4.0);
}

TEST_F(Fig185Shape, SlaveToMasterMirrorsTheEffect) {
  // ADPS's advantage is direction-agnostic: with slave→master traffic the
  // bottleneck moves to master *downlinks* and ADPS still wins.
  auto w = workload();
  w.direction = traffic::FlowDirection::kSlaveToMaster;
  auto config = sweep();
  config.request_counts = {200};
  const auto sdps = run_master_slave_sweep("SDPS", w, config);
  const auto adps = run_master_slave_sweep("ADPS", w, config);
  EXPECT_GT(adps.points[0].accepted_mean,
            1.5 * sdps.points[0].accepted_mean);
}

}  // namespace
}  // namespace rtether::analysis
