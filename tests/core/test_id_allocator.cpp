#include "core/id_allocator.hpp"

#include <gtest/gtest.h>

namespace rtether::core {
namespace {

TEST(ChannelIdAllocator, NeverAllocatesZero) {
  // ID 0 is "not set with a valid value yet" (§18.2.2).
  ChannelIdAllocator alloc;
  for (int i = 0; i < 100; ++i) {
    const auto id = alloc.allocate();
    ASSERT_TRUE(id.has_value());
    EXPECT_NE(*id, ChannelIdAllocator::kInvalid);
  }
}

TEST(ChannelIdAllocator, AllocatesSmallestFreeFirst) {
  ChannelIdAllocator alloc;
  EXPECT_EQ(alloc.allocate(), ChannelId(1));
  EXPECT_EQ(alloc.allocate(), ChannelId(2));
  EXPECT_EQ(alloc.allocate(), ChannelId(3));
}

TEST(ChannelIdAllocator, ReusesFreedIdsSmallestFirst) {
  ChannelIdAllocator alloc;
  (void)alloc.allocate();  // 1
  (void)alloc.allocate();  // 2
  (void)alloc.allocate();  // 3
  EXPECT_TRUE(alloc.release(ChannelId(2)));
  EXPECT_TRUE(alloc.release(ChannelId(1)));
  EXPECT_EQ(alloc.allocate(), ChannelId(1));
  EXPECT_EQ(alloc.allocate(), ChannelId(2));
  EXPECT_EQ(alloc.allocate(), ChannelId(4));
}

TEST(ChannelIdAllocator, DoubleFreeRejected) {
  ChannelIdAllocator alloc;
  const auto id = alloc.allocate();
  EXPECT_TRUE(alloc.release(*id));
  EXPECT_FALSE(alloc.release(*id));
}

TEST(ChannelIdAllocator, FreeingInvalidRejected) {
  ChannelIdAllocator alloc;
  EXPECT_FALSE(alloc.release(ChannelId(0)));
  EXPECT_FALSE(alloc.release(ChannelId(9)));
}

TEST(ChannelIdAllocator, IsLiveTracksState) {
  ChannelIdAllocator alloc;
  const auto id = alloc.allocate();
  EXPECT_TRUE(alloc.is_live(*id));
  EXPECT_FALSE(alloc.is_live(ChannelId(2)));
  alloc.release(*id);
  EXPECT_FALSE(alloc.is_live(*id));
  EXPECT_FALSE(alloc.is_live(ChannelId(0)));
}

TEST(ChannelIdAllocator, LiveCount) {
  ChannelIdAllocator alloc;
  EXPECT_EQ(alloc.live_count(), 0u);
  const auto a = alloc.allocate();
  const auto b = alloc.allocate();
  EXPECT_EQ(alloc.live_count(), 2u);
  alloc.release(*a);
  EXPECT_EQ(alloc.live_count(), 1u);
  alloc.release(*b);
  EXPECT_EQ(alloc.live_count(), 0u);
}

TEST(ChannelIdAllocator, ExhaustionReturnsNullopt) {
  ChannelIdAllocator alloc;
  for (std::uint32_t i = 0; i < 65535; ++i) {
    ASSERT_TRUE(alloc.allocate().has_value()) << "failed at " << i;
  }
  EXPECT_EQ(alloc.live_count(), 65535u);
  EXPECT_FALSE(alloc.allocate().has_value());
  // Releasing one makes exactly one available again.
  EXPECT_TRUE(alloc.release(ChannelId(12345)));
  EXPECT_EQ(alloc.allocate(), ChannelId(12345));
  EXPECT_FALSE(alloc.allocate().has_value());
}

TEST(ChannelIdAllocator, ExhaustionChurnKeepsSmallestFirstAndRefusesExtras) {
  // Negative paths under full occupancy: double release of a freed ID,
  // release of the reserved 0, and re-exhaustion after scattered churn —
  // the scan hint must not skip freed IDs below it.
  ChannelIdAllocator alloc;
  for (std::uint32_t i = 0; i < 65535; ++i) {
    ASSERT_TRUE(alloc.allocate().has_value());
  }
  EXPECT_TRUE(alloc.release(ChannelId(60000)));
  EXPECT_TRUE(alloc.release(ChannelId(5)));
  EXPECT_TRUE(alloc.release(ChannelId(30000)));
  EXPECT_FALSE(alloc.release(ChannelId(5)));  // double free while exhausted
  EXPECT_FALSE(alloc.release(ChannelId(0)));  // reserved, never live
  EXPECT_EQ(alloc.live_count(), 65532u);
  // Freed IDs come back smallest-first, regardless of release order.
  EXPECT_EQ(alloc.allocate(), ChannelId(5));
  EXPECT_EQ(alloc.allocate(), ChannelId(30000));
  EXPECT_EQ(alloc.allocate(), ChannelId(60000));
  EXPECT_FALSE(alloc.allocate().has_value());
  EXPECT_EQ(alloc.live_count(), 65535u);
}

TEST(ChannelIdAllocator, DoubleReleaseAfterReuseTargetsTheNewOwner) {
  // Once a freed ID is re-allocated, releasing it again is a *valid*
  // teardown of the new owner — only a third release is a double free.
  ChannelIdAllocator alloc;
  const auto id = alloc.allocate();
  EXPECT_TRUE(alloc.release(*id));
  EXPECT_EQ(alloc.allocate(), *id);  // reused
  EXPECT_TRUE(alloc.release(*id));   // releases the reuser
  EXPECT_FALSE(alloc.release(*id));  // now a double free
  EXPECT_EQ(alloc.live_count(), 0u);
}

}  // namespace
}  // namespace rtether::core
