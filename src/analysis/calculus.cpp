#include "analysis/calculus.hpp"

#include <algorithm>
#include <string>

namespace rtether::analysis {

namespace {

/// Directional comparison slack. The envelopes are evaluated in doubles
/// while the engine works in exact integers, so every verdict leaves a
/// relative margin: the oracle only speaks when the inequality fails by
/// more than plausible rounding. Periods can approach 2^64, hence the
/// relative term.
double margin(double lhs, double rhs) { return 1e-9 * (lhs + rhs) + 1e-6; }

struct Flow {
  double period;
  double capacity;
  double deadline;
  double rate;
};

std::vector<Flow> to_flows(std::span<const edf::PseudoTask> tasks) {
  std::vector<Flow> flows;
  flows.reserve(tasks.size());
  for (const edf::PseudoTask& task : tasks) {
    const double period = static_cast<double>(task.period);
    const double capacity = static_cast<double>(task.capacity);
    flows.push_back(Flow{period, capacity, static_cast<double>(task.deadline),
                         capacity / period});
  }
  return flows;
}

double total_rate(const std::vector<Flow>& flows) {
  double rate = 0.0;
  for (const Flow& flow : flows) rate += flow.rate;
  return rate;
}

/// Lower demand envelope at instant t: Σ_{d_i ≤ t} max(C_i, r_i·(t − d_i)).
double lower_envelope(const std::vector<Flow>& flows, double t) {
  double demand = 0.0;
  for (const Flow& flow : flows) {
    if (flow.deadline > t) continue;
    demand += std::max(flow.capacity, flow.rate * (t - flow.deadline));
  }
  return demand;
}

/// Upper demand envelope at instant t: Σ_{d_i ≤ t} (C_i + r_i·(t − d_i)).
double upper_envelope(const std::vector<Flow>& flows, double t) {
  double demand = 0.0;
  for (const Flow& flow : flows) {
    if (flow.deadline > t) continue;
    demand += flow.capacity + flow.rate * (t - flow.deadline);
  }
  return demand;
}

std::string describe(const char* inequality, double lhs, double t) {
  return std::string(inequality) + ": demand " + std::to_string(lhs) +
         " vs budget " + std::to_string(t) + " at t=" + std::to_string(t);
}

}  // namespace

CalculusVerdict CalculusOracle::check_accept(
    std::span<const edf::PseudoTask> tasks) {
  CalculusVerdict verdict;
  const std::vector<Flow> flows = to_flows(tasks);

  // Asymptotic slope: feasibility implies utilization Σ r ≤ 1; beyond the
  // last kink the deficit lhs − t shrinks at rate Σ r − 1, so with this
  // condition the kink instants below cover the whole half-line.
  const double rate = total_rate(flows);
  if (rate > 1.0 + margin(rate, 1.0)) {
    verdict.consistent = false;
    verdict.detail = "accepted set overloaded: total rate " +
                     std::to_string(rate) + " > 1";
    return verdict;
  }

  // Both kink families: d_j (a flow's C_j lands in the sum) and d_j + P_j
  // (its max switches from the constant arm to the rate arm).
  for (const Flow& kink : flows) {
    for (const double t : {kink.deadline, kink.deadline + kink.period}) {
      const double lhs = lower_envelope(flows, t);
      if (lhs > t + margin(lhs, t)) {
        verdict.consistent = false;
        verdict.witness_instant = t;
        verdict.detail =
            describe("EDF accept violates calculus lower bound", lhs, t);
        return verdict;
      }
    }
  }
  return verdict;
}

CalculusVerdict CalculusOracle::check_reject(
    std::span<const edf::PseudoTask> tasks, const edf::PseudoTask& candidate) {
  CalculusVerdict verdict;
  std::vector<Flow> flows = to_flows(tasks);
  flows.push_back(to_flows({&candidate, 1}).front());

  // Sufficiency needs every comparison to hold with room to spare (the
  // margins point the other way here): if any check is even close, the
  // oracle stays silent and the engine's exact verdict stands.
  const double rate = total_rate(flows);
  if (rate + margin(rate, 1.0) > 1.0) return verdict;

  // The upper envelope's only kinks are the deadlines (each term is linear
  // from d_j on), and the rate condition bounds the tail slope.
  for (const Flow& kink : flows) {
    const double t = kink.deadline;
    const double lhs = upper_envelope(flows, t);
    if (lhs + margin(lhs, t) > t) return verdict;
  }

  verdict.consistent = false;
  verdict.detail =
      "EDF reject contradicts calculus upper bound: inflated demand fits, "
      "candidate {P=" +
      std::to_string(candidate.period) +
      ", C=" + std::to_string(candidate.capacity) +
      ", d=" + std::to_string(candidate.deadline) + "} is exactly feasible";
  return verdict;
}

double CalculusOracle::fifo_delay_bound(std::span<const CalculusFlow> flows,
                                        const ServiceCurve& service) {
  double burst = 0.0;
  double rate = 0.0;
  for (const CalculusFlow& flow : flows) {
    const ArrivalCurve arrival = flow.arrival();
    burst += arrival.burst;
    rate += arrival.rate;
  }
  if (rate > service.rate) return -1.0;
  return service.latency + burst / service.rate;
}

}  // namespace rtether::analysis
