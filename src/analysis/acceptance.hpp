#pragma once

/// @file acceptance.hpp
/// The Fig 18.5 experiment engine: feed a stream of channel requests to an
/// admission controller configured with a given DPS and count how many are
/// accepted, sweeping the number of requested channels and averaging over
/// seeds. Pure admission-control work — no packet simulation required (the
/// paper's figure is produced the same way).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/channel.hpp"
#include "traffic/master_slave.hpp"

namespace rtether::analysis {

/// One x-axis point of an acceptance curve.
struct AcceptancePoint {
  std::size_t requested{0};
  double accepted_mean{0.0};
  double accepted_min{0.0};
  double accepted_max{0.0};
};

/// A full curve for one scheme.
struct AcceptanceCurve {
  std::string scheme;
  std::vector<AcceptancePoint> points;
};

struct AcceptanceSweepConfig {
  /// x-axis: numbers of requested channels (paper: 20…200 step 20).
  std::vector<std::size_t> request_counts{20, 40,  60,  80,  100,
                                          120, 140, 160, 180, 200};
  /// Independent repetitions; curves report mean/min/max over these.
  std::uint32_t seeds{5};
  std::uint64_t base_seed{42};
  core::AdmissionConfig admission{};
};

/// Generic request-stream factory: returns the first `count` requests for
/// the given seed (a fresh, deterministic stream per seed).
using RequestStream =
    std::function<std::vector<core::ChannelSpec>(std::uint64_t seed,
                                                 std::size_t count)>;

/// Runs the sweep for one scheme over an arbitrary request stream.
/// `node_count` sizes the admission controller's network.
[[nodiscard]] AcceptanceCurve run_acceptance_sweep(
    const std::string& scheme, std::uint32_t node_count,
    const RequestStream& stream, const AcceptanceSweepConfig& config);

/// Convenience for the paper's master–slave workload.
[[nodiscard]] AcceptanceCurve run_master_slave_sweep(
    const std::string& scheme, const traffic::MasterSlaveConfig& workload,
    const AcceptanceSweepConfig& config);

/// Single-shot: accepted count after feeding `specs` in order to a fresh
/// controller running `scheme`.
[[nodiscard]] std::size_t count_accepted(
    const std::string& scheme, std::uint32_t node_count,
    const std::vector<core::ChannelSpec>& specs,
    const core::AdmissionConfig& admission = {});

}  // namespace rtether::analysis
