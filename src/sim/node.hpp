#pragma once

/// @file node.hpp
/// A simulated end-node's link interface: the uplink transmitter with the
/// RT(EDF)+FCFS queue pair of Fig 18.2 and a receive hook for downlink
/// deliveries. The RT-layer intelligence (channel tables, deadline
/// assignment, establishment protocol) lives in `proto::NodeRtLayer` and
/// drives this class.

#include <functional>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/transmitter.hpp"

namespace rtether::sim {

class SimNode {
 public:
  /// Invoked when a frame is fully delivered to this node.
  using ReceiveFn = std::function<void(const SimFrame& frame, Tick now)>;

  SimNode(Simulator& simulator, const SimConfig& config, NodeId id,
          Transmitter::DeliverFn uplink_deliver,
          std::size_t best_effort_depth = 0);

  [[nodiscard]] NodeId id() const { return id_; }

  /// Queues an RT frame on the uplink under the node-local EDF key
  /// (release + d_iu in ticks, computed by the RT layer).
  void send_rt(Tick deadline_key, SimFrame frame);

  /// Queues a best-effort frame on the uplink.
  void send_best_effort(SimFrame frame);

  /// Registers the receive hook (RT layer or test observer).
  void set_receiver(ReceiveFn receiver) { receiver_ = std::move(receiver); }

  /// Called by the network when a downlink frame arrives.
  void receive(const SimFrame& frame, Tick now);

  [[nodiscard]] Transmitter& uplink() { return uplink_; }
  [[nodiscard]] const Transmitter& uplink() const { return uplink_; }

 private:
  NodeId id_;
  const SimConfig& config_;
  Transmitter uplink_;
  ReceiveFn receiver_;
};

}  // namespace rtether::sim
