#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/partitioner.hpp"
#include "net/ipv4.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"

namespace rtether::proto {
namespace {

sim::SimConfig test_config() {
  return sim::SimConfig{.ticks_per_slot = 100,
                        .propagation_ticks = 1,
                        .switch_processing_ticks = 1};
}

TEST(DataPath, MessageDeliversCapacityFrames) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());

  std::vector<std::uint64_t> deliveries;
  stack.layer(NodeId{1}).set_data_callback(
      [&](const RxChannel& rx, const sim::SimFrame& frame, Tick) {
        EXPECT_EQ(rx.id, channel->id);
        deliveries.push_back(frame.id);
      });

  stack.layer(NodeId{0}).send_message(channel->id);
  EXPECT_TRUE(stack.network().simulator().run_all());

  // One message = C_i = 3 maximal frames.
  EXPECT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(stack.layer(NodeId{1}).rx_channels().at(channel->id)
                .frames_received,
            3u);
}

TEST(DataPath, FramesCarryPaperDeadlineEncoding) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());

  std::vector<sim::SimFrame> received;
  stack.layer(NodeId{1}).set_data_callback(
      [&](const RxChannel&, const sim::SimFrame& frame, Tick) {
        received.push_back(frame);
      });

  const Tick release = stack.network().now();
  stack.layer(NodeId{0}).send_message(channel->id);
  EXPECT_TRUE(stack.network().simulator().run_all());

  ASSERT_EQ(received.size(), 3u);
  for (const auto& frame : received) {
    // The wire bytes must parse as a real IPv4 header with ToS 255 and the
    // §18.2.2 deadline encoding.
    ASSERT_EQ(frame.info.cls, sim::FrameClass::kRealTime);
    ASSERT_TRUE(frame.info.rt_tag.has_value());
    EXPECT_EQ(frame.info.rt_tag->channel, channel->id);
    EXPECT_EQ(frame.info.rt_tag->absolute_deadline,
              release + stack.network().config().slots_to_ticks(40));
    // Maximal frame on the wire (the analysis counts max-size frames).
    EXPECT_EQ(frame.wire_bytes(), kMaxFrameWireBytes);
  }
}

TEST(DataPath, StatsTrackSentAndDelivered) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  stack.layer(NodeId{0}).send_message(channel->id);
  stack.layer(NodeId{0}).send_message(channel->id);
  EXPECT_TRUE(stack.network().simulator().run_all());

  const auto stats = stack.network().stats().channel(channel->id);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames_sent, 6u);
  EXPECT_EQ(stats->frames_delivered, 6u);
  EXPECT_EQ(stats->deadline_misses, 0u);
}

TEST(DataPath, UnknownChannelFramesIgnoredByReceiver) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  int callbacks = 0;
  stack.layer(NodeId{2}).set_data_callback(
      [&](const RxChannel&, const sim::SimFrame&, Tick) { ++callbacks; });
  // Node 2 never established anything; nothing should reach its callback.
  stack.layer(NodeId{0}).send_message(channel->id);
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_EQ(callbacks, 0);
}

TEST(DataPath, SendOnUnestablishedChannelAsserts) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  EXPECT_DEATH(stack.layer(NodeId{0}).send_message(ChannelId(9)),
               "not established");
}

TEST(PeriodicSender, SendsEveryPeriod) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());

  PeriodicRtSender sender(stack.layer(NodeId{0}), channel->id);
  sender.start();
  const Tick start = stack.network().now();
  EXPECT_TRUE(stack.network().simulator().run_until(
      start + stack.network().config().slots_to_ticks(999)));
  sender.stop();

  // Releases at +0, +100, …, +900 — ten messages in the first 999 slots.
  EXPECT_EQ(sender.messages_sent(), 10u);
  const auto stats = stack.network().stats().channel(channel->id);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames_sent, 30u);
}

TEST(PeriodicSender, PhaseDelaysFirstRelease) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  PeriodicRtSender sender(stack.layer(NodeId{0}), channel->id,
                          /*phase_slots=*/50);
  sender.start();
  const Tick start = stack.network().now();
  EXPECT_TRUE(stack.network().simulator().run_until(
      start + stack.network().config().slots_to_ticks(149)));
  // Releases at +50 only (next would be +150).
  EXPECT_EQ(sender.messages_sent(), 1u);
}

TEST(PeriodicSender, StartAllHelper) {
  Stack stack(test_config(), 6, std::make_unique<core::SymmetricPartitioner>());
  for (std::uint32_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(stack.establish(NodeId{0}, NodeId{i}, 100, 3, 40));
  }
  auto senders = start_senders_for_all_channels(stack.layer(NodeId{0}),
                                                /*stagger_slots=*/10);
  EXPECT_EQ(senders.size(), 3u);
  const Tick start = stack.network().now();
  EXPECT_TRUE(stack.network().simulator().run_until(
      start + stack.network().config().slots_to_ticks(95)));
  for (auto& s : senders) s->stop();
  // Phases 0, 10, 20 — all three released exactly once by slot 95.
  for (const auto& s : senders) {
    EXPECT_EQ(s->messages_sent(), 1u);
  }
}

}  // namespace
}  // namespace rtether::proto
