#pragma once

/// @file fabric.hpp
/// Multi-switch fabric simulation, partitioned for the parallel driver
/// (sim/parallel.hpp).
///
/// A fabric of S switches becomes S partitions: partition p owns switch p,
/// every end-node attached to it, and one typed event kernel (`Simulator`)
/// with its own calendar queue and `FrameArena`. The transmitters of
/// partition p are the uplinks and downlinks of its local nodes plus the
/// out-going trunks of switch p; a channel's frames ride
/// uplink → trunk* → downlink with the *global* absolute deadline from the
/// frame header as the EDF key on every switch hop (DESIGN.md, "Per-hop
/// EDF keys") and the admitted first-hop budget d_0 as the uplink key —
/// exactly the star semantics generalized to k hops.
///
/// **Cut links.** A trunk p→q is the only coupling between partitions.
/// When a trunk transmission completes at tick c, the frame arrives —
/// fully store-and-forward processed — at switch q at
/// `c + trunk_propagation_ticks + switch_processing_ticks`; that sum is
/// the conservative lookahead `L`. The frame crosses as a POD record
/// `(tick, sequence, image)` through a lock-free SPSC ring
/// (common/spsc_channel.hpp): the producer serializes the frame bytes into
/// the record and releases its arena slot immediately, the consumer
/// rebuilds the frame in its own arena. Carrying the bytes by value
/// (instead of a `FrameIndex` into the producer's arena) is what keeps the
/// consumer race-free against the producer's allocator.
///
/// **Determinism.** The driver executes fixed barrier rounds: round k runs
/// every partition over the tick window `(target_{k-1}, target_k]` with
/// `target_k − target_{k-1} ≤ L`, and a global fork/join barrier between
/// rounds. A record emitted during round k carries an arrival tick
/// strictly beyond `target_k`, so the set of records a partition drains at
/// the start of round k+1 — everything with `tick ≤ target_{k+1}` — is
/// complete (emitted at least one barrier ago) and independent of thread
/// timing. Because the round schedule itself is fixed, every partition
/// executes a bitwise-identical event sequence (same kernel sequence
/// numbers, same same-tick tie-breaks) for *any* thread count, including
/// the inline sequential driver — which is why the fabric digest is
/// bit-identical across `threads ∈ {0,1,2,4,8}` by construction rather
/// than by careful merging.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "common/spsc_channel.hpp"
#include "common/types.hpp"
#include "core/multihop.hpp"
#include "core/topology.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/transmitter.hpp"

namespace rtether::sim {

/// Knobs of one fabric run. Traffic (periodic senders, best-effort
/// sources) emits releases while `now < traffic_stop`; the drain phase
/// beyond it only flushes in-flight frames.
struct FabricOptions {
  std::uint64_t seed{1};
  /// First tick at which no new traffic is released (= run length).
  Tick traffic_stop{0};
  bool with_best_effort{false};
  double best_effort_load{0.2};
  bool bursty_best_effort{false};
  /// Windowed fault plan (kLinkDown / kFrameLoss / kFrameCorrupt on node
  /// links); structural and management kinds are skipped — they belong to
  /// the star's establishment protocol, which the fabric does not model.
  std::vector<FaultEvent> faults;
};

/// Merged (across partitions) per-channel accounting for the survival
/// contract: a channel's sends book at the source partition, deliveries
/// and CRC discards at the destination, windowed drops wherever the
/// faulted link lives.
struct FabricChannelCounts {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t misses{0};
  std::uint64_t dropped{0};
};

/// One directed cut link's traffic, for the bench's cut-share metric.
struct TrunkTraffic {
  std::uint32_t from{0};
  std::uint32_t to{0};
  std::uint64_t records{0};
};

class FabricNetwork {
 public:
  /// Builds the partitions, transmitters, routes, periodic senders,
  /// best-effort sources and fault hooks for the admitted channel set.
  /// Paths must be valid routes of `topology` (they are — the multihop
  /// admission controller produced them). All construction is
  /// deterministic in the iteration order of its inputs.
  FabricNetwork(const SimConfig& config, const core::Topology& topology,
                std::span<const core::MultihopChannel> channels,
                FabricOptions options);

  FabricNetwork(const FabricNetwork&) = delete;
  FabricNetwork& operator=(const FabricNetwork&) = delete;

  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }

  /// Conservative lookahead of every cut link:
  /// `trunk_propagation_ticks + switch_processing_ticks`.
  [[nodiscard]] Tick lookahead() const { return lookahead_; }

  /// One barrier round of partition `p`: drain due cut-link records, run
  /// the kernel to `target`, flush spilled records. The driver may invoke
  /// distinct partitions concurrently, the same partition never; `target`
  /// must advance by at most `lookahead()` per round, identically for all
  /// partitions. False when the event budget was exhausted (the whole run
  /// is then failed).
  [[nodiscard]] bool run_round(std::size_t p, Tick target,
                               std::uint64_t max_events);

  /// A partition exhausted its budget or overflowed a cut-link spill.
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  // --- Results (call after the run; not thread-safe) ---------------------

  /// Events executed across all partition kernels.
  [[nodiscard]] std::uint64_t executed_events() const;

  /// Per-partition stats, digest-stable iteration (partition index order;
  /// `SimStats::channels()` is itself sorted).
  [[nodiscard]] const SimStats& partition_stats(std::size_t p) const;
  [[nodiscard]] const Simulator& kernel(std::size_t p) const;

  /// Canonical transmitter order of partition `p` for digests: local node
  /// uplinks (node id ascending), then downlinks, then out-trunks
  /// (destination switch ascending).
  [[nodiscard]] std::vector<const Transmitter*> transmitters(
      std::size_t p) const;

  /// Merged per-channel accounting (key: channel id value).
  [[nodiscard]] std::map<std::uint16_t, FabricChannelCounts> channel_counts()
      const;

  /// Delivery allowance of a channel (ticks beyond d_i): every
  /// propagation and processing latency along its path, plus one maximal
  /// frame of non-preemption blocking per hop when best-effort traffic
  /// shares the links — the k-hop generalization of Eq 18.1's T_latency.
  [[nodiscard]] Tick allowance(std::uint16_t channel_id) const;

  /// Directed cut links and their record counts, `(from, to)` ascending.
  [[nodiscard]] std::vector<TrunkTraffic> trunk_traffic() const;
  /// Total records that crossed any cut link.
  [[nodiscard]] std::uint64_t cut_link_records() const;

  /// Per-fault-class frames affected, merged across partitions.
  [[nodiscard]] std::array<std::uint64_t, kFaultKindCount> fault_injections()
      const;

 private:
  /// Serialized POD snapshot of a frame crossing a cut link. RT data
  /// frames carry 42 header bytes on the wire; the cap leaves headroom.
  struct FrameImage {
    static constexpr std::size_t kMaxBytes = 64;
    std::uint64_t id{0};
    std::uint64_t extra_payload_bytes{0};
    Tick created_at{0};
    std::uint32_t origin{0};
    std::uint16_t byte_count{0};
    bool corrupted{false};
    std::uint8_t bytes[kMaxBytes]{};
  };

  /// The SPSC record: arrival tick at the consumer switch (already
  /// including trunk propagation + store-and-forward processing), the
  /// producer's per-edge FIFO sequence, and the frame by value.
  struct FabricRecord {
    Tick tick{0};
    std::uint64_t sequence{0};
    FrameImage image;
  };

  /// One armed fault window on a node link.
  struct FaultWindow {
    FaultKind kind{FaultKind::kFrameLoss};
    Tick from{0};
    Tick to{0};
    double probability{0.0};
    std::uint64_t salt{0};
  };

  struct Partition;

  /// Per-transmitter context: which link this is, where its frames go.
  /// Stable addresses (deque) — registered as raw sink/fault contexts.
  struct HopPort {
    enum class Role : std::uint8_t { kUplink, kTrunk, kDownlink };

    FabricNetwork* net{nullptr};
    std::uint32_t partition{0};
    Role role{Role::kUplink};
    /// kUplink: the sending node; kDownlink: the destination node.
    std::uint32_t node{0};
    /// kTrunk: index into edges_.
    std::uint32_t edge{0};
    Transmitter* tx{nullptr};
    std::vector<FaultWindow> windows;
  };

  /// One directed cut link p→q. The ring is the only producer/consumer
  /// coupling; everything else is single-sided (producer: spill + both
  /// sequence/record counters during its round; consumer: drained
  /// sequence during its round — never the same round for both roles of
  /// one side, and barrier-ordered across rounds).
  struct CutEdge {
    std::uint32_t from{0};
    std::uint32_t to{0};
    SpscChannel<FabricRecord> ring{kRingCapacity};
    /// Producer-side overflow, flushed (in order) at round end. With a
    /// 1024-record ring and at most `lookahead()` records per round per
    /// edge (the trunk wire serializes ≥ 1 tick per frame) this never
    /// engages; it exists so an overflow degrades to a failed run instead
    /// of silent loss.
    std::vector<FabricRecord> spill;
    std::size_t spill_pos{0};
    std::uint64_t next_sequence{0};
    std::uint64_t drained_sequence{0};
    std::uint64_t records{0};
  };

  /// Periodic sender of one admitted channel (source partition). Emits
  /// C_i maximal frames every P_i slots from tick 0, mirroring the star's
  /// RT layer frame construction byte for byte.
  struct Sender {
    FabricNetwork* net{nullptr};
    std::uint32_t partition{0};
    std::uint16_t channel{0};
    std::uint32_t source{0};
    std::uint32_t destination{0};
    Slot capacity{0};
    Tick period_ticks{0};
    /// ticks(d_i): release + this = the absolute deadline in the tag.
    Tick deadline_ticks{0};
    /// ticks(d_0): release + this = the uplink EDF key (first-hop budget).
    Tick uplink_key_ticks{0};
    HopPort* uplink{nullptr};
  };

  /// Fabric-local best-effort source: same interarrival process as the
  /// star's BestEffortSource, destinations uniform among same-switch
  /// peers (best-effort never crosses trunks — trunks are the fabric's
  /// reserved RT backbone, and keeping them cross-traffic-free is also
  /// what keeps the cut-link record rate bounded by the lookahead).
  struct BeSource {
    FabricNetwork* net{nullptr};
    std::uint32_t partition{0};
    std::uint32_t node{0};
    Rng rng{1};
    bool on_phase{false};
    bool bursty{false};
    double load{0.2};
  };

  struct Partition {
    FabricNetwork* net{nullptr};
    std::uint32_t index{0};
    Simulator sim;
    SimStats stats;
    std::deque<Transmitter> txs;
    std::deque<HopPort> ports;
    /// Attached global node ids, ascending.
    std::vector<std::uint32_t> nodes;
    /// Indices into edges_, destination ascending / source ascending.
    std::vector<std::uint32_t> out_edges;
    std::vector<std::uint32_t> in_edges;
    /// channel id value → the local transmitter a frame arriving (fully
    /// processed) at this switch enters next (trunk or downlink).
    std::unordered_map<std::uint16_t, HopPort*> next_hop;
    std::uint64_t next_frame_id{1};
    std::array<std::uint64_t, kFaultKindCount> injections{};
  };

  static constexpr std::size_t kRingCapacity = 1024;

  // Kernel timer / sink callbacks (raw function pointers, alloc-free).
  static void on_handoff(void* context, FrameIndex frame, Tick completion);
  static void on_fault_drop(void* context, const SimFrame& frame);
  static Transmitter::FaultDecision on_fault(void* context,
                                             const SimFrame& frame, Tick now);
  static void on_switch_arrival(void* context, std::uint64_t arg, Tick now);
  static void on_deliver(void* context, std::uint64_t arg, Tick now);
  static void on_sender_release(void* context, std::uint64_t arg, Tick now);
  static void on_best_effort_arrival(void* context, std::uint64_t arg,
                                     Tick now);

  void build_partitions(const core::Topology& topology);
  void build_channels(std::span<const core::MultihopChannel> channels);
  void build_best_effort();
  void build_faults();

  /// Frame arriving — store-and-forward complete — at partition's switch:
  /// CRC-discard corrupted frames, else enqueue at the next hop.
  void arrive_at_switch(Partition& part, FrameIndex frame);
  void emit_message(Sender& sender, Tick release);
  void emit_best_effort(BeSource& source, Tick now);
  double be_mean_interarrival_ticks(const BeSource& source) const;
  void schedule_be_arrival(BeSource& source);

  void push_record(Partition& part, CutEdge& edge, Tick arrival,
                   FrameIndex frame);
  void drain_inputs(Partition& part, Tick target);
  void inject(Partition& part, const FabricRecord& record);
  void flush_spill(Partition& part);

  SimConfig config_;
  FabricOptions options_;
  Tick lookahead_{0};
  std::deque<Partition> partitions_;
  std::deque<CutEdge> edges_;
  std::deque<Sender> senders_;
  std::deque<BeSource> be_sources_;
  /// Global node → partition / ports (delivery + best-effort routing).
  std::vector<std::uint32_t> node_partition_;
  std::vector<HopPort*> node_uplink_;
  std::vector<HopPort*> node_downlink_;
  /// channel id value → delivery allowance (ticks).
  std::unordered_map<std::uint16_t, Tick> allowance_;
  /// Set on budget exhaustion / spill overflow; sticky. The only
  /// cross-partition shared state outside the SPSC rings (atomic —
  /// -Wthread-safety needs no capability for it).
  std::atomic<bool> failed_{false};
};

}  // namespace rtether::sim
