#include "sim/best_effort.hpp"

#include "common/assert.hpp"
#include "common/units.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"

namespace rtether::sim {

BestEffortSource::BestEffortSource(SimNetwork& network, NodeId node,
                                   BestEffortProfile profile,
                                   std::uint64_t seed)
    : network_(network),
      node_(node),
      profile_(profile),
      rng_(seed ^ (0x9e37'79b9'7f4a'7c15ULL * (node.value() + 1))) {
  RTETHER_ASSERT(profile_.offered_load > 0.0);
  RTETHER_ASSERT(profile_.min_payload_bytes <= profile_.max_payload_bytes);
}

double BestEffortSource::mean_interarrival_ticks() const {
  const double mean_payload =
      (static_cast<double>(profile_.min_payload_bytes) +
       static_cast<double>(profile_.max_payload_bytes)) /
      2.0;
  const double mean_wire =
      mean_payload + net::EthernetHeader::kWireSize +
      net::Ipv4Header::kWireSize + 4 + 8 + 12;
  const double mean_tx_ticks =
      mean_wire * static_cast<double>(network_.config().ticks_per_slot) /
      static_cast<double>(kMaxFrameWireBytes);
  return mean_tx_ticks / profile_.offered_load;
}

void BestEffortSource::start() {
  running_ = true;
  schedule_next();
}

void BestEffortSource::schedule_next() {
  if (!running_) return;
  double gap_ticks = rng_.exponential(mean_interarrival_ticks());
  if (profile_.arrivals == BestEffortArrivals::kOnOff && !on_phase_) {
    // Jump over the off phase before the next arrival.
    const double off_ticks =
        rng_.exponential(profile_.mean_off_slots *
                         static_cast<double>(network_.config().ticks_per_slot));
    gap_ticks += off_ticks;
    on_phase_ = true;
  }
  network_.simulator().schedule_event(
      network_.now() + static_cast<Tick>(gap_ticks) + 1,
      EventType::kBestEffortArrival, this);
}

void BestEffortSource::on_arrival() {
  if (!running_) return;
  emit_frame();
  if (profile_.arrivals == BestEffortArrivals::kOnOff && on_phase_) {
    // End the on phase with probability 1/(arrivals per on phase).
    const double arrivals_per_on =
        profile_.mean_on_slots *
        static_cast<double>(network_.config().ticks_per_slot) /
        mean_interarrival_ticks();
    if (arrivals_per_on < 1.0 || rng_.bernoulli(1.0 / arrivals_per_on)) {
      on_phase_ = false;
    }
  }
  schedule_next();
}

void BestEffortSource::emit_frame() {
  NodeId destination = profile_.destination.value_or(node_);
  if (!profile_.destination) {
    // Uniform among other nodes (self excluded).
    const std::uint32_t count = network_.node_count();
    if (count <= 1) return;
    auto pick = static_cast<std::uint32_t>(
        rng_.index(count - 1));
    if (pick >= node_.value()) ++pick;
    destination = NodeId{pick};
  }

  const auto payload_bytes = static_cast<std::uint32_t>(rng_.uniform(
      profile_.min_payload_bytes, profile_.max_payload_bytes));

  // Ordinary IPv4 frame, ToS 0 — takes the FCFS path at every hop.
  net::Ipv4Header ip;
  ip.tos = 0;
  ip.protocol = net::IpProtocol::kTcp;
  ip.source = node_ip(node_);
  ip.destination = node_ip(destination);
  ip.total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kWireSize +
      std::min<std::uint32_t>(payload_bytes, 0xffff));

  net::EthernetHeader ethernet;
  ethernet.source = node_mac(node_);
  ethernet.destination = node_mac(destination);
  ethernet.ether_type = net::EtherType::kIpv4;

  // Serialize straight into a pooled arena slot: the recycled buffer keeps
  // its capacity, so a steady-state arrival allocates nothing.
  FrameArena& arena = network_.arena();
  const FrameIndex index = arena.acquire();
  SimFrame& frame = arena.get(index);
  ByteWriter writer(std::move(frame.bytes));
  ethernet.serialize(writer);
  ip.serialize(writer);
  frame.bytes = std::move(writer).take();
  frame.finalize(network_.next_frame_id(), payload_bytes, network_.now(),
                 node_);
  ++frames_generated_;
  network_.stats().record_best_effort_sent();
  network_.node(node_).send_best_effort(index);
}

std::vector<std::unique_ptr<BestEffortSource>> attach_best_effort_everywhere(
    SimNetwork& network, const BestEffortProfile& profile,
    std::uint64_t seed) {
  std::vector<std::unique_ptr<BestEffortSource>> sources;
  sources.reserve(network.node_count());
  for (std::uint32_t n = 0; n < network.node_count(); ++n) {
    sources.push_back(std::make_unique<BestEffortSource>(
        network, NodeId{n}, profile, seed));
    sources.back()->start();
  }
  return sources;
}

}  // namespace rtether::sim
