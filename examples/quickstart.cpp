/// Quickstart: three nodes, one switch, one RT channel.
///
/// Demonstrates the complete public API surface in ~60 lines:
///   1. build the stack (simulated network + RT layers + switch management)
///   2. establish an RT channel {P, C, d} over the wire (Fig 18.3/18.4)
///   3. send periodic real-time messages and receive them at the peer
///   4. read back the measured delays against the guarantee of Eq 18.1.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/random.hpp"
#include "core/partitioner.hpp"
#include "example_seed.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"

using namespace rtether;

int main(int argc, char** argv) {
  // 1. A 3-node star network. ADPS is the paper's recommended DPS.
  proto::Stack stack(sim::SimConfig{}, /*node_count=*/3,
                     std::make_unique<core::AsymmetricPartitioner>());

  // 2. Ask the switch for an RT channel from node 0 to node 1. Without a
  //    seed argument this is the classic contract — up to 2 maximal frames
  //    every 50 slots within a 20-slot deadline; with one, the contract is
  //    drawn from the seed so the example doubles as a replay driver.
  Slot period = 50;
  Slot capacity = 2;
  Slot deadline = 20;
  if (argc > 1) {
    Rng rng(examples::seed_from_argv(argc, argv, 0));
    period = 10 + rng.index(190);
    capacity = 1 + rng.index(std::min<Slot>(4, period));
    deadline = 2 * capacity + rng.index(period);
  }
  const auto channel =
      stack.establish(NodeId{0}, NodeId{1}, period, capacity, deadline);
  if (!channel) {
    std::printf("channel rejected: %s\n", channel.error().c_str());
    return 1;
  }
  std::printf("established RT channel %u: d_iu=%llu, d_id=%llu slots\n",
              channel->id.value(),
              static_cast<unsigned long long>(channel->uplink_deadline),
              static_cast<unsigned long long>(channel->deadline -
                                              channel->uplink_deadline));

  // 3. Receive callback at the destination.
  std::uint64_t received = 0;
  stack.layer(NodeId{1}).set_data_callback(
      [&](const proto::RxChannel& rx, const sim::SimFrame&, Tick) {
        ++received;
        (void)rx;
      });

  // Periodic sender: one message (2 frames) per period.
  proto::PeriodicRtSender sender(stack.layer(NodeId{0}), channel->id);
  sender.start();

  // 4. Run 1000 slots of simulated time and inspect the stats.
  auto& network = stack.network();
  if (!network.simulator().run_until(
          network.now() + network.config().slots_to_ticks(1'000))) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return 1;
  }
  sender.stop();
  if (!network.simulator().run_all()) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return 1;
  }

  const auto stats = network.stats().channel(channel->id);
  std::printf("messages sent: %llu, frames received: %llu\n",
              static_cast<unsigned long long>(sender.messages_sent()),
              static_cast<unsigned long long>(received));
  std::printf(
      "worst end-to-end delay: %.2f slots (guarantee: %llu slots + "
      "T_latency), misses: %llu\n",
      stats->delay_ticks.max() /
          static_cast<double>(network.config().ticks_per_slot),
      static_cast<unsigned long long>(channel->deadline),
      static_cast<unsigned long long>(stats->deadline_misses));
  return stats->deadline_misses == 0 ? 0 : 1;
}
