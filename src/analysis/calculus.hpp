#pragma once

/// @file calculus.hpp
/// An independent network-calculus oracle cross-checking the EDF admission
/// engine. The paper (§18.3) proves feasibility with processor-demand
/// analysis; network calculus reaches the same questions from the other
/// side of the literature — token-bucket arrival curves α(t) = b + r·t and
/// rate-latency service curves β(t) = R·(t − T)⁺ — and the two theories
/// bound each other:
///
///   * every pseudo-task {P, C, d}'s demand-bound function satisfies
///     dbf(t) ≥ max(C, (C/P)·(t − d)) for t ≥ d (a token-bucket *lower*
///     envelope), so EDF feasibility (∀t: Σ dbf ≤ t) implies the calculus
///     inequality Σ_{d_i ≤ t} max(C_i, r_i·(t − d_i)) ≤ t.  An accepted
///     channel set violating that inequality is a bug in the admission
///     engine — a *necessary* condition, checked on every accept.
///
///   * dually dbf(t) ≤ C + (C/P)·(t − d) for t ≥ d (an *upper* envelope),
///     so if even the inflated demand Σ (C_i + r_i·(t − d_i)) fits in t,
///     exact EDF feasibility follows and a rejection is a bug — a
///     *sufficient* condition, checked on every infeasibility rejection.
///
/// Both envelopes are piecewise-linear in t, so each check is exact when
/// evaluated at the kink instants only (deadlines, plus d+P where the lower
/// envelope's max switches arms) together with the asymptotic rate condition
/// Σ r_i ≤ 1. Comparisons carry a directional floating-point margin so the
/// oracle can only under-report, never false-fail the engine.
///
/// The classic FIFO token-bucket delay bound D = T + Σ b_i / R is exposed
/// for unit-test pins and as the per-hop bound the README documents.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "edf/task.hpp"

namespace rtether::analysis {

/// Token-bucket arrival curve α(t) = burst + rate·t (frames, frames/slot).
struct ArrivalCurve {
  double burst{0.0};
  double rate{0.0};
};

/// Rate-latency service curve β(t) = rate·max(0, t − latency).
struct ServiceCurve {
  double rate{1.0};
  double latency{0.0};
};

/// One flow as the calculus sees it: the pseudo-task contract plus its
/// token-bucket abstraction (burst = C, rate = C/P) and per-link deadline.
struct CalculusFlow {
  double period{0.0};
  double capacity{0.0};
  double deadline{0.0};

  [[nodiscard]] ArrivalCurve arrival() const {
    return ArrivalCurve{capacity, capacity / period};
  }
};

/// Verdict of one oracle consultation.
struct CalculusVerdict {
  bool consistent{true};
  /// The demand instant t (slots) where the inequality failed; 0 when
  /// consistent.
  double witness_instant{0.0};
  /// Human-readable diagnosis for replayable failure reports.
  std::string detail;
};

/// Independent cross-checker for per-link EDF admission decisions.
///
/// Stateless; all methods are pure functions of their arguments so the
/// scenario runner can consult it concurrently from shard workers.
class CalculusOracle {
 public:
  /// Necessary condition on an *accepted* task set: EDF feasibility implies
  /// the lower-envelope inequality Σ_{d_i ≤ t} max(C_i, r_i·(t − d_i)) ≤ t
  /// at every kink instant, plus Σ r_i ≤ 1. Returns inconsistent iff the
  /// accepted set provably violates it — i.e. the engine accepted an
  /// infeasible set.
  [[nodiscard]] static CalculusVerdict check_accept(
      std::span<const edf::PseudoTask> tasks);

  /// Sufficient condition on a *rejected* candidate set (live tasks plus
  /// the candidate the engine refused): if even the upper-envelope demand
  /// Σ (C_i + r_i·(t − d_i)) fits within t at every deadline instant and
  /// Σ r_i ≤ 1, exact EDF feasibility follows and the rejection was wrong.
  /// Returns inconsistent iff the rejection is provably unjustified.
  [[nodiscard]] static CalculusVerdict check_reject(
      std::span<const edf::PseudoTask> tasks, const edf::PseudoTask& candidate);

  /// Classic FIFO aggregate bound for token-bucket flows through one
  /// rate-latency server: D = T + Σ b_i / R, valid when Σ r_i ≤ R.
  /// Returns a negative value when the server is overloaded (no bound).
  [[nodiscard]] static double fifo_delay_bound(
      std::span<const CalculusFlow> flows, const ServiceCurve& service);
};

}  // namespace rtether::analysis
