#pragma once

/// @file stats.hpp
/// Measurement layer: per-channel delivery statistics (the quantities the
/// paper's guarantee Eq 18.1 bounds) plus best-effort service metrics.

#include <cstdint>
#include <map>
#include <optional>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rtether::sim {

/// Per-RT-channel delivery record.
struct ChannelDeliveryStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  /// Deliveries later than absolute deadline + T_latency allowance — must
  /// stay zero for admitted channels (the paper's central claim).
  std::uint64_t deadline_misses{0};
  /// End-to-end delay (release → delivery), ticks.
  RunningStats delay_ticks;
  /// Worst observed (delivery − absolute deadline); negative = early.
  /// Lateness beyond the allowance is a miss.
  std::int64_t worst_lateness_ticks{std::numeric_limits<std::int64_t>::min()};
};

class SimStats {
 public:
  void record_rt_sent(ChannelId channel) {
    ++channels_[channel].frames_sent;
  }

  /// Records a delivered RT frame. `allowance` is the T_latency budget of
  /// Eq 18.1 in ticks; delivery after `absolute_deadline + allowance`
  /// counts as a miss.
  void record_rt_delivered(ChannelId channel, Tick created,
                           Tick absolute_deadline, Tick delivered,
                           Tick allowance);

  void record_best_effort_sent() { ++best_effort_sent_; }
  void record_best_effort_delivered(Tick created, Tick delivered);

  [[nodiscard]] const std::map<ChannelId, ChannelDeliveryStats>& channels()
      const {
    return channels_;
  }

  /// Stats for one channel; nullopt if it never sent.
  [[nodiscard]] std::optional<ChannelDeliveryStats> channel(
      ChannelId id) const;

  [[nodiscard]] std::uint64_t total_rt_delivered() const;
  [[nodiscard]] std::uint64_t total_deadline_misses() const;

  [[nodiscard]] std::uint64_t best_effort_sent() const {
    return best_effort_sent_;
  }
  [[nodiscard]] std::uint64_t best_effort_delivered() const {
    return best_effort_delivered_;
  }
  [[nodiscard]] const RunningStats& best_effort_delay_ticks() const {
    return best_effort_delay_;
  }

 private:
  std::map<ChannelId, ChannelDeliveryStats> channels_;
  std::uint64_t best_effort_sent_{0};
  std::uint64_t best_effort_delivered_{0};
  RunningStats best_effort_delay_;
};

}  // namespace rtether::sim
