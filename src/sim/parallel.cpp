#include "sim/parallel.hpp"

#include <cstddef>

#include "common/assert.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace rtether::sim {

namespace {

/// Lockstep round barrier for one run's persistent workers. The last worker
/// to arrive decides — inside the critical section, while every other
/// worker is parked — whether the run continues, and the decision is
/// returned to all workers of that generation. Deciding anywhere else would
/// race: a worker that read the failure flag before a slower peer set it
/// would leave the loop while the peer parks at the barrier forever.
class RoundBarrier {
 public:
  RoundBarrier(const FabricNetwork& fabric, std::size_t parties)
      : fabric_(fabric), parties_(parties) {}

  /// One fork/join point. `last_round` is a pure function of the fixed
  /// round schedule, so every worker passes the same value. Returns true
  /// when the run stops after this round.
  [[nodiscard]] bool arrive(bool last_round) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++rounds_seen_;
    if (rounds_seen_ == parties_) {
      rounds_seen_ = 0;
      ++rounds_;
      // All round work happened-before this point (every worker holds the
      // mutex on arrival), so the failure flag read here is complete.
      stop_ = last_round || fabric_.failed();
      ++generation_;
      cv_.notify_all();
      return stop_;
    }
    const std::uint64_t generation = generation_;
    while (generation_ == generation) {
      cv_.wait(mutex_);
    }
    return stop_;
  }

  /// Completed rounds. Call after the workers joined (`wait_idle`).
  [[nodiscard]] std::uint64_t rounds() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return rounds_;
  }

 private:
  const FabricNetwork& fabric_;
  const std::size_t parties_;
  Mutex mutex_;
  CondVar cv_;
  std::size_t rounds_seen_ GUARDED_BY(mutex_){0};
  std::uint64_t generation_ GUARDED_BY(mutex_){0};
  std::uint64_t rounds_ GUARDED_BY(mutex_){0};
  bool stop_ GUARDED_BY(mutex_){false};
};

}  // namespace

bool ParallelSimulator::run_until(Tick until,
                                  std::uint64_t max_events_per_partition) {
  const Tick lookahead = fabric_.lookahead();
  RTETHER_ASSERT_MSG(lookahead > 0, "fabric lookahead must be positive");
  const std::size_t partitions = fabric_.partition_count();
  if (until <= now_) return !fabric_.failed();

  const auto round_budget = [this,
                             max_events_per_partition](std::size_t p) {
    // Budget is per partition-kernel and cumulative across rounds.
    const std::uint64_t executed = fabric_.kernel(p).executed_events();
    return executed < max_events_per_partition
               ? max_events_per_partition - executed
               : 0;
  };

  const std::size_t workers = pool_.size();
  if (workers == 0) {
    // Sequential baseline: the identical round schedule, inline.
    while (now_ < until) {
      const Tick target = std::min(until, now_ + lookahead);
      for (std::size_t p = 0; p < partitions; ++p) {
        (void)fabric_.run_round(p, target, round_budget(p));
      }
      ++rounds_;
      now_ = target;
      if (fabric_.failed()) break;
    }
    now_ = until;
    return !fabric_.failed();
  }

  // Parallel mode: one persistent job per worker for the whole run —
  // workers loop over rounds with a barrier between them, so the per-round
  // cost is one mutex/condvar cycle per worker, not a pool submission.
  // Partition ownership is static (p ≡ w mod workers): partition p's
  // kernel, stats and cut-edge cursors are touched by exactly one thread
  // between any two barriers.
  RoundBarrier barrier(fabric_, workers);
  const Tick start = now_;
  for (std::size_t w = 0; w < workers; ++w) {
    pool_.submit([this, &barrier, &round_budget, w, workers, partitions,
                  lookahead, until, start] {
      Tick now = start;
      for (;;) {
        const Tick target = std::min(until, now + lookahead);
        for (std::size_t p = w; p < partitions; p += workers) {
          (void)fabric_.run_round(p, target, round_budget(p));
        }
        now = target;
        if (barrier.arrive(target >= until)) break;
      }
    });
  }
  pool_.wait_idle();
  rounds_ += barrier.rounds();
  now_ = until;
  return !fabric_.failed();
}

}  // namespace rtether::sim
