/// Ablation A5 — establishment-protocol cost.
///
/// The paper specifies the Request/Response exchange (Figs 18.3/18.4) but
/// not its cost. This bench measures channel-setup round-trip time (request
/// sent → response received, in simulated slots) and switch admission work
/// as the number of active channels grows, plus the control-plane byte
/// overhead per establishment.

#include <cstdio>
#include <memory>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/partitioner.hpp"
#include "net/ethernet.hpp"
#include "net/mgmt_frames.hpp"
#include "proto/stack.hpp"
#include "traffic/master_slave.hpp"

using namespace rtether;

int main() {
  std::puts("================================================================");
  std::puts("Ablation A5 — RT-channel establishment cost (paper workload)");
  std::puts("================================================================");

  sim::SimConfig sim_config;
  traffic::MasterSlaveWorkload workload({}, 42);
  proto::Stack stack(sim_config, workload.node_count(),
                     std::make_unique<core::AsymmetricPartitioner>());

  ConsoleTable table("A5: setup RTT vs active channel count");
  table.set_header({"active channels", "setup RTT (slots)",
                    "feasibility tests so far", "demand evals so far"});

  RunningStats rtt_window;
  std::size_t next_report = 0;
  const std::vector<std::size_t> report_at{1, 20, 40, 60, 80, 100, 120};
  std::size_t established = 0;

  for (int i = 0; i < 200; ++i) {
    const auto spec = workload.next();
    const Tick before = stack.network().now();
    const auto result = stack.establish(spec.source, spec.destination,
                                        spec.period, spec.capacity,
                                        spec.deadline);
    const Tick after = stack.network().now();
    const double rtt_slots =
        static_cast<double>(after - before) /
        static_cast<double>(sim_config.ticks_per_slot);
    rtt_window.add(rtt_slots);
    if (result) {
      ++established;
      if (next_report < report_at.size() &&
          established == report_at[next_report]) {
        table.add(established, rtt_window.mean(),
                  stack.management().admission().stats().feasibility_tests,
                  stack.management().admission().stats().demand_evaluations);
        rtt_window = RunningStats{};
        ++next_report;
      }
    }
  }
  table.print();

  // Control-plane overhead per successful establishment: request (node →
  // switch, switch → destination) + response (destination → switch,
  // switch → source), each in a minimum-size Ethernet frame.
  const std::uint64_t request_wire =
      std::max<std::uint64_t>(net::EthernetHeader::kWireSize +
                                  net::RequestFrame::kWireSize + 24,
                              kMinFrameWireBytes);
  const std::uint64_t response_wire =
      std::max<std::uint64_t>(net::EthernetHeader::kWireSize +
                                  net::ResponseFrame::kWireSize + 24,
                              kMinFrameWireBytes);
  std::printf(
      "control-plane bytes per establishment: 2 x %llu (request) + 2 x %llu"
      " (response) = %llu wire bytes (~%.2f%% of one max frame each way)\n\n",
      static_cast<unsigned long long>(request_wire),
      static_cast<unsigned long long>(response_wire),
      static_cast<unsigned long long>(2 * request_wire + 2 * response_wire),
      100.0 * static_cast<double>(request_wire) /
          static_cast<double>(kMaxFrameWireBytes));
  std::puts("reading: setup RTT stays flat (a few slots) as channels grow —");
  std::puts("the checkpoint-bounded feasibility test keeps admission cheap.\n");
  return 0;
}
