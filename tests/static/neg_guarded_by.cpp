// Negative-compile case (Clang only): touching a GUARDED_BY field without
// holding its mutex must fail under -Wthread-safety -Werror.
//   * without defines      -> control twin, locks correctly, must COMPILE
//   * with -DSTATIC_NEG    -> unguarded write, must FAIL
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() EXCLUDES(mutex_) {
#if defined(STATIC_NEG)
    ++value_;  // writing guarded field without mutex_ held
#else
    rtether::MutexLock lock(mutex_);
    ++value_;
#endif
  }

 private:
  rtether::Mutex mutex_;
  int value_ GUARDED_BY(mutex_){0};
};

}  // namespace

void touch_counter() {
  Counter counter;
  counter.increment();
}
