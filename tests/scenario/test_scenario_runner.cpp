// The conformance oracle itself: generated scenarios must run green on the
// real library (any red here is a live bug, exactly what the campaign
// hunts), hand-built edge streams must agree across all four admission
// paths, and the campaign driver must be deterministic and parallel-safe.

#include <gtest/gtest.h>

#include "scenario/campaign.hpp"
#include "scenario/generator.hpp"
#include "scenario/json_io.hpp"
#include "scenario/runner.hpp"

namespace rtether::scenario {
namespace {

class RunnerSeeds : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerSeeds,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST_P(RunnerSeeds, GeneratedScenarioPassesOracle) {
  const auto spec = generate_scenario({}, GetParam());
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.passed) << spec.summary() << "\n" << result.summary();
}

TEST(ScenarioRunner, MalformedSpecIsReportedNotRun) {
  ScenarioSpec spec;
  spec.topology.nodes = 3;
  spec.ops.push_back(ScenarioOp::release_of(7));  // forward target
  spec.ops[0].target = 7;
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, ViolationKind::kMalformedSpec);
}

TEST(ScenarioRunner, UnknownSchemeIsAStrictParseError) {
  // Regression for a latent bug: the multihop factory used to map any
  // unrecognized scheme string to ADPS, so a typo'd corpus entry silently
  // tested the wrong partitioner. The parser now rejects the document.
  const std::string document =
      R"({"schema":"rtether-scenario-v1","seed":1,"name":"typo",)"
      R"("scheme":"ADSP","topology":{"kind":"star","switches":1,"nodes":3},)"
      R"("ops":[]})";
  const auto parsed = from_json(document);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().find("unknown scheme"), std::string::npos)
      << parsed.error();

  // The same document with a known scheme parses fine — the scheme check
  // is what failed, not the rest of the document.
  std::string fixed = document;
  fixed.replace(fixed.find("ADSP"), 4, "ADPS");
  EXPECT_TRUE(from_json(fixed).has_value());
}

TEST(ScenarioRunner, UnknownSchemeFailsTheRunnerToo) {
  // A spec built in code (bypassing the parser) must fail the same way:
  // a replayable kMalformedSpec violation, not a silent DPS fallback.
  ScenarioSpec spec;
  spec.topology.nodes = 3;
  spec.scheme = "TT3000";
  spec.ops.push_back(ScenarioOp::admit({NodeId{0}, NodeId{1}, 50, 2, 20}));
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].kind, ViolationKind::kMalformedSpec);
  EXPECT_NE(result.violations[0].detail.find("unknown scheme"),
            std::string::npos)
      << result.violations[0].detail;
}

TEST(ScenarioRunner, ChurnWithBogusAndDoubleReleasesAgrees) {
  // Hand-built negative-path stream: raw-ID teardowns (never assigned and
  // ID 0), a double release, and a release of a rejected admit — every
  // engine must refuse identically and the oracle must stay green.
  ScenarioSpec spec;
  spec.name = "negative-releases";
  spec.topology.nodes = 4;
  spec.scheme = "ADPS";
  spec.simulate = true;
  spec.run_slots = 120;
  spec.ops.push_back(
      ScenarioOp::admit({NodeId{0}, NodeId{1}, 50, 2, 20}));        // 0: ok
  spec.ops.push_back(ScenarioOp::release_raw(999));                 // bogus
  spec.ops.push_back(
      ScenarioOp::admit({NodeId{1}, NodeId{2}, 50, 60, 200}));      // 2: C>P
  spec.ops.push_back(ScenarioOp::release_of(2));  // of a rejected admit
  spec.ops.push_back(ScenarioOp::release_of(0));  // ok
  spec.ops.push_back(ScenarioOp::release_of(0));  // double
  spec.ops.push_back(ScenarioOp::release_raw(0)); // reserved ID
  spec.ops.push_back(
      ScenarioOp::admit({NodeId{2}, NodeId{3}, 40, 1, 10}));        // 7: ok
  ASSERT_TRUE(spec.well_formed());
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_EQ(result.admitted, 2u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.released, 1u);
}

TEST(ScenarioRunner, ReleasedIdReuseIsTrackedThroughTheWire) {
  // Release then re-admit: the freed ID is reused (smallest-free), and a
  // later release of the *original* op's channel must tear down the reuser
  // — identically in the engines and over the management protocol.
  ScenarioSpec spec;
  spec.name = "id-reuse";
  spec.topology.nodes = 4;
  spec.scheme = "SDPS";
  spec.run_slots = 100;
  spec.ops.push_back(
      ScenarioOp::admit({NodeId{0}, NodeId{1}, 40, 1, 12}));  // 0 → id 1
  spec.ops.push_back(ScenarioOp::release_of(0));              // id 1 freed
  spec.ops.push_back(
      ScenarioOp::admit({NodeId{2}, NodeId{3}, 40, 1, 12}));  // 2 → id 1
  spec.ops.push_back(ScenarioOp::release_of(0));  // tears down the reuser
  spec.ops.push_back(ScenarioOp::release_of(2));  // now gone: false
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_EQ(result.released, 2u);
}

TEST(ScenarioRunner, SimulationDeliversFramesForLiveChannels) {
  ScenarioSpec spec;
  spec.name = "delivery";
  spec.topology.nodes = 3;
  spec.scheme = "ADPS";
  spec.run_slots = 200;
  spec.ops.push_back(ScenarioOp::admit({NodeId{0}, NodeId{1}, 20, 1, 10}));
  spec.ops.push_back(ScenarioOp::admit({NodeId{1}, NodeId{2}, 25, 2, 15}));
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.passed) << result.summary();
  // ~10 messages on each channel made it through the simulated wire.
  EXPECT_GT(result.frames_delivered, 20u);
  EXPECT_GT(result.simulated_slots, spec.run_slots);
}

TEST(ScenarioRunner, MultiswitchScenarioRunsTheMultihopPath) {
  ScenarioSpec spec;
  spec.name = "line-fabric";
  spec.topology.kind = TopologyKind::kSwitchLine;
  spec.topology.switches = 3;
  spec.topology.nodes = 6;
  spec.scheme = "ADPS";
  spec.simulate = false;
  // Node 0 (switch 0) → node 5 (switch 2): a 4-hop path, d must be ≥ 4C.
  spec.ops.push_back(ScenarioOp::admit({NodeId{0}, NodeId{5}, 60, 2, 16}));
  spec.ops.push_back(
      ScenarioOp::admit({NodeId{0}, NodeId{5}, 60, 2, 7}));  // d < 4C
  spec.ops.push_back(ScenarioOp::admit({NodeId{1}, NodeId{4}, 50, 1, 20}));
  spec.ops.push_back(ScenarioOp::release_of(0));
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_EQ(result.admitted, 2u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.released, 1u);
}

TEST(ScenarioCampaign, DeterministicAcrossThreadCounts) {
  CampaignConfig config;
  config.scenario_count = 60;
  config.base_seed = 500;
  config.shrink_failures = false;

  config.threads = 1;
  const auto solo = run_campaign(config);
  config.threads = 4;
  const auto pooled = run_campaign(config);

  EXPECT_EQ(solo.scenarios_run, 60u);
  EXPECT_EQ(pooled.scenarios_run, 60u);
  EXPECT_EQ(solo.failures, 0u) << "first failing seed: "
                               << (solo.failing.empty()
                                       ? 0
                                       : solo.failing.front().seed);
  EXPECT_EQ(pooled.failures, solo.failures);
  EXPECT_EQ(pooled.ops_total, solo.ops_total);
  EXPECT_EQ(pooled.admitted_total, solo.admitted_total);
  EXPECT_EQ(pooled.frames_delivered_total, solo.frames_delivered_total);
  EXPECT_EQ(pooled.simulated_slots_total, solo.simulated_slots_total);
}

TEST(ScenarioCampaign, TimeBudgetStopsLaunchingScenarios) {
  CampaignConfig config;
  config.scenario_count = 1'000'000;  // far more than the budget allows
  config.threads = 1;
  config.time_budget_seconds = 0.2;
  config.shrink_failures = false;
  const auto result = run_campaign(config);
  EXPECT_TRUE(result.time_budget_hit);
  EXPECT_LT(result.scenarios_run, config.scenario_count);
  EXPECT_EQ(result.failures, 0u);
}

}  // namespace
}  // namespace rtether::scenario
