#pragma once

/// @file frame.hpp
/// The frame as it travels through the simulated network. Headers are real
/// serialized bytes (Ethernet, and for data frames IPv4+UDP with the
/// deadline encoding of §18.2.2) so every hop exercises the same
/// classification logic a real RT-layer switch port would run; bulk payload
/// is accounted by size only.

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/address.hpp"
#include "net/deadline_codec.hpp"
#include "net/ethernet.hpp"

namespace rtether::sim {

/// Handle into the kernel's pooled `FrameArena`. Frames travel through
/// queues and events by index — never by value — so a hop costs a 4-byte
/// copy instead of a buffer move and the event records stay fixed-size.
using FrameIndex = std::uint32_t;

/// "No frame" sentinel (empty queue pop, frame-less events).
inline constexpr FrameIndex kNoFrame = 0xffff'ffffU;

/// Traffic class, decided from the wire bytes exactly as the paper's
/// switch decides it (Fig 18.2's two output queues + management path).
enum class FrameClass : std::uint8_t {
  /// EtherType kRtManagement: channel establishment / teardown.
  kManagement,
  /// IPv4 with ToS == 255: real-time data, EDF-queued.
  kRealTime,
  /// Everything else: best-effort, FCFS-queued.
  kBestEffort,
};

[[nodiscard]] const char* to_string(FrameClass cls);

/// Classification result parsed from the leading header bytes.
struct FrameInfo {
  FrameClass cls{FrameClass::kBestEffort};
  net::MacAddress source_mac;
  net::MacAddress destination_mac;
  /// Present iff cls == kRealTime.
  std::optional<net::RtFrameTag> rt_tag;
};

/// Parses Ethernet (+IPv4) headers and classifies; nullopt when the bytes do
/// not even contain an Ethernet header.
[[nodiscard]] std::optional<FrameInfo> classify_frame(
    std::span<const std::uint8_t> bytes);

/// A frame instance in flight.
struct SimFrame {
  /// Unique per simulation run (monotonic), for stable tie-breaks & traces.
  std::uint64_t id{0};
  /// Serialized headers (and, for management frames, the full payload).
  std::vector<std::uint8_t> bytes;
  /// Bulk payload bytes accounted for wire time but not materialized.
  std::uint64_t extra_payload_bytes{0};
  /// Classification cache (== classify_frame(bytes); tests verify).
  FrameInfo info;
  /// When the sending application released the frame.
  Tick created_at{0};
  /// Sending end-node (provenance for stats; not trusted by the switch).
  NodeId origin;
  /// CRC-corruption flag set by fault injection (sim/fault.hpp); the
  /// receiving end (switch ingress, node NIC) discards a corrupted frame
  /// exactly as a real CRC check would.
  bool corrupted{false};

  /// Wire occupancy: headers + bulk payload + FCS/preamble/IFG, floored at
  /// the Ethernet minimum and capped at one maximal frame.
  [[nodiscard]] std::uint64_t wire_bytes() const;

  /// Builds a frame, classifying (and asserting on unparseable bytes).
  static SimFrame make(std::uint64_t frame_id,
                       std::vector<std::uint8_t> bytes,
                       std::uint64_t extra_payload_bytes, Tick created_at,
                       NodeId origin);

  /// In-place variant of `make` for arena slots whose `bytes` were already
  /// serialized into the pooled buffer: classifies and fills the metadata
  /// without touching the byte storage.
  void finalize(std::uint64_t frame_id, std::uint64_t extra_payload,
                Tick created, NodeId origin_node);
};

/// Pooled frame storage with a freelist. Producers acquire a slot, write
/// the wire bytes into its recycled buffer and hand the *index* to the
/// network; the final consumer (node delivery, a drop, a management
/// handler) releases the slot. After warm-up the pool stops growing and the
/// steady-state event loop performs no heap allocation: a released slot
/// keeps its byte-buffer capacity for the next frame of the same shape.
class FrameArena {
 public:
  /// Claims a slot (pooled when available). The slot's byte buffer is
  /// empty but keeps its previous capacity; all metadata is reset.
  [[nodiscard]] FrameIndex acquire();

  /// Moves an externally built frame into a slot (cold paths and tests;
  /// the moved-in buffer replaces the pooled one).
  [[nodiscard]] FrameIndex adopt(SimFrame&& frame);

  /// Claims a slot holding a copy of `source` (switch flooding).
  [[nodiscard]] FrameIndex clone(FrameIndex source);

  /// Returns the slot to the pool. The index must be live.
  void release(FrameIndex index);

  /// Pre-sizes the pool: creates `extra` pooled slots whose byte buffers
  /// already hold `byte_capacity` of storage. A later backlog peak up to
  /// `extra` frames beyond the current high-water mark then stays
  /// allocation-free (benches assert this).
  void prewarm(std::size_t extra, std::size_t byte_capacity);

  [[nodiscard]] SimFrame& get(FrameIndex index) {
    return slots_[index];
  }
  [[nodiscard]] const SimFrame& get(FrameIndex index) const {
    return slots_[index];
  }

  /// Slots currently checked out (leak detection in tests/benches).
  [[nodiscard]] std::size_t live() const { return slots_.size() - free_.size(); }
  /// Total slots ever created (growth watermark for the zero-alloc bench).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  /// Deque: stable references across growth, block-local frames.
  std::deque<SimFrame> slots_;
  std::vector<FrameIndex> free_;
};

}  // namespace rtether::sim
