#pragma once

/// @file shrinker.hpp
/// Failing-scenario minimization. A fuzz failure with 36 ops over 12 nodes
/// is a haystack; the shrinker greedily reduces it to the needle while the
/// oracle keeps failing: first the op stream (ddmin-style chunk removal,
/// then single ops), then the node set (dense remap of the nodes actually
/// referenced), then the per-channel quantities (periods toward C, deadlines
/// toward 2C, capacities toward 1) and finally the simulation knobs
/// (best-effort off, shorter runs). The result is a minimized, replayable
/// `ScenarioSpec` to check into the corpus next to the seed that found it.

#include <cstddef>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace rtether::scenario {

struct ShrinkOptions {
  RunnerOptions runner{};
  /// Upper bound on oracle re-runs (each attempt replays a candidate).
  std::size_t max_attempts{4000};
};

struct ShrinkOutcome {
  /// Smallest spec found that still fails the oracle.
  ScenarioSpec minimized;
  /// Oracle replays spent.
  std::size_t attempts{0};
  /// The minimized spec's failure (kind + detail for the report).
  ScenarioResult failure;
};

/// Minimizes `failing` (which must fail under `options.runner`; asserts
/// otherwise — shrinking a passing scenario is a harness bug). Purely
/// deterministic: same input, same minimized output.
[[nodiscard]] ShrinkOutcome shrink_scenario(const ScenarioSpec& failing,
                                            const ShrinkOptions& options = {});

}  // namespace rtether::scenario
