#include "core/admission.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace rtether::core {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kInvalidSpec:
      return "invalid spec";
    case RejectReason::kUnknownNode:
      return "unknown node";
    case RejectReason::kUplinkInfeasible:
      return "uplink infeasible";
    case RejectReason::kDownlinkInfeasible:
      return "downlink infeasible";
    case RejectReason::kChannelIdsExhausted:
      return "channel IDs exhausted";
  }
  return "?";
}

AdmissionController::AdmissionController(
    std::uint32_t node_count, std::unique_ptr<DeadlinePartitioner> partitioner,
    AdmissionConfig config)
    : state_(node_count),
      partitioner_(std::move(partitioner)),
      config_(config) {
  RTETHER_ASSERT_MSG(partitioner_ != nullptr,
                     "admission control requires a DPS (paper §18.4: the "
                     "system cannot operate without one)");
}

edf::FeasibilityReport AdmissionController::test_link(NodeId node,
                                                      LinkDirection dir) {
  ++stats_.feasibility_tests;
  auto report = edf::check_feasibility(state_.link(node, dir), config_.scan);
  stats_.demand_evaluations += report.demand_evaluations;
  return report;
}

Expected<RtChannel, Rejection> AdmissionController::request(
    const ChannelSpec& spec) {
  ++stats_.requested;
  auto reject = [&](RejectReason reason,
                    std::string detail) -> Expected<RtChannel, Rejection> {
    ++stats_.rejected;
    return Unexpected(Rejection{reason, std::move(detail)});
  };

  if (!spec.valid()) {
    std::ostringstream detail;
    detail << spec.to_string() << " is invalid";
    if (spec.period > 0 && spec.capacity > 0 && spec.deadline < 2 * spec.capacity) {
      detail << " (d < 2C cannot be EDF-feasible through a store-and-forward"
                " switch)";
    }
    return reject(RejectReason::kInvalidSpec, detail.str());
  }
  if (!state_.node_exists(spec.source) ||
      !state_.node_exists(spec.destination)) {
    return reject(RejectReason::kUnknownNode, spec.to_string());
  }

  const auto id = ids_.allocate();
  if (!id) {
    return reject(RejectReason::kChannelIdsExhausted, spec.to_string());
  }

  const auto candidates = partitioner_->candidates(spec, state_);
  RTETHER_ASSERT_MSG(!candidates.empty(), "DPS returned no candidates");

  RejectReason last_reason = RejectReason::kUplinkInfeasible;
  std::string last_detail;
  for (const auto& partition : candidates) {
    RTETHER_ASSERT_MSG(partition.satisfies(spec),
                       "DPS candidate violates Eq 18.8/18.9");
    const RtChannel channel{*id, spec, partition};

    // Tentatively install both pseudo-tasks, test, and roll back on failure
    // — rejection must leave the system state untouched.
    state_.add_channel(channel);
    const auto uplink_report =
        test_link(spec.source, LinkDirection::kUplink);
    if (!uplink_report.feasible) {
      state_.remove_channel(*id);
      last_reason = RejectReason::kUplinkInfeasible;
      last_detail = "uplink of node" +
                    std::to_string(spec.source.value()) + ": " +
                    uplink_report.summary();
      continue;
    }
    const auto downlink_report =
        test_link(spec.destination, LinkDirection::kDownlink);
    if (!downlink_report.feasible) {
      state_.remove_channel(*id);
      last_reason = RejectReason::kDownlinkInfeasible;
      last_detail = "downlink of node" +
                    std::to_string(spec.destination.value()) + ": " +
                    downlink_report.summary();
      continue;
    }

    ++stats_.accepted;
    return channel;
  }

  ids_.release(*id);
  return reject(last_reason, last_detail);
}

bool AdmissionController::release(ChannelId id) {
  if (!state_.remove_channel(id)) {
    return false;
  }
  const bool was_live = ids_.release(id);
  RTETHER_ASSERT_MSG(was_live, "channel present in state but ID not live");
  ++stats_.released;
  return true;
}

}  // namespace rtether::core
