#include "common/rational.hpp"

#include <gtest/gtest.h>

namespace rtether {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_EQ(r, Rational(0));
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NegativeDenominatorMovesSign) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ZeroNumeratorCanonical) {
  const Rational r(0, -17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
  // Utilization sum: 3/100 added 33 times = 99/100.
  Rational sum;
  for (int i = 0; i < 33; ++i) {
    sum += Rational(3, 100);
  }
  EXPECT_EQ(sum, Rational(99, 100));
  EXPECT_LT(sum, Rational(1));
  sum += Rational(3, 100);
  EXPECT_GT(sum, Rational(1));
}

TEST(Rational, SubtractionIsExactInverse) {
  Rational sum;
  for (int i = 0; i < 1000; ++i) {
    sum += Rational(7, 30);
  }
  for (int i = 0; i < 1000; ++i) {
    sum -= Rational(7, 30);
  }
  EXPECT_EQ(sum, Rational(0));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 3) * Rational(3, 2), Rational(-1));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(Rational(5, 6) / Rational(5, 6), Rational(1));
}

TEST(Rational, ComparisonIsExact) {
  // 1/3 < 0.3333333333333333… in any floating representation ambiguity;
  // exact comparison must order these correctly.
  EXPECT_LT(Rational(33333333, 100000000), Rational(1, 3));
  EXPECT_GT(Rational(33333334, 100000000), Rational(1, 3));
  EXPECT_EQ(Rational(2, 6), Rational(1, 3));
  EXPECT_LT(Rational(-1, 2), Rational(1, 2));
  EXPECT_LT(Rational(-2), Rational(-1));
}

TEST(Rational, BoundaryEqualsOne) {
  // Exactly 100% utilization: 50/100 + 25/50 = 1 — must not compare > 1.
  const Rational u = Rational(50, 100) + Rational(25, 50);
  EXPECT_EQ(u, Rational(1));
  EXPECT_FALSE(u > Rational(1));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).to_double(), -0.75);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(1, 2).to_string(), "1/2");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_EQ(Rational(0).to_string(), "0");
  EXPECT_EQ(Rational(-3, 9).to_string(), "-1/3");
}

TEST(Rational, LargeIntermediatesSurvive) {
  // num/den individually large but the result reduces.
  const Rational a(1'000'000'007, 2'000'000'014);  // = 1/2
  EXPECT_EQ(a, Rational(1, 2));
  const Rational b = a * Rational(2'000'000'014, 1'000'000'007);
  EXPECT_EQ(b, Rational(1));
}

}  // namespace
}  // namespace rtether
