#pragma once

/// @file validation.hpp
/// Guarantee validation (experiment V1 in DESIGN.md): establish an admitted
/// channel set over the real protocol, drive periodic traffic through the
/// simulated network — optionally alongside best-effort load — and verify
/// the paper's Eq 18.1 bound: every frame delivered within
/// d_i + T_latency. The paper asserts this analytically; we measure it.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "traffic/master_slave.hpp"

namespace rtether::analysis {

struct ValidationConfig {
  sim::SimConfig sim{};
  traffic::MasterSlaveConfig workload{};
  /// Channel requests to attempt (the accepted subset is simulated).
  std::size_t request_count{200};
  /// DPS scheme at the switch ("SDPS", "ADPS", ...).
  std::string scheme{"ADPS"};
  /// Simulated run length after establishment, slots.
  Slot run_slots{20'000};
  /// Release phase stagger between channels, slots (0 = synchronous worst
  /// case).
  Slot stagger_slots{0};
  /// Add best-effort cross-traffic from every node.
  bool with_best_effort{false};
  double best_effort_load{0.5};
  std::uint64_t seed{1};
};

/// Per-channel verdict.
struct ChannelValidation {
  ChannelId id;
  NodeId source;
  NodeId destination;
  Slot deadline_slots{0};
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  std::uint64_t deadline_misses{0};
  /// Worst observed end-to-end delay, slots.
  double worst_delay_slots{0.0};
  /// The Eq 18.1 bound d_i + T_latency, slots.
  double bound_slots{0.0};
};

struct ValidationResult {
  std::size_t channels_requested{0};
  std::size_t channels_established{0};
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  std::uint64_t deadline_misses{0};
  /// max over channels of worst_delay / bound (≤ 1 ⟺ guarantee held).
  double worst_delay_ratio{0.0};
  std::vector<ChannelValidation> channels;
  /// Best-effort side channel (only populated with `with_best_effort`).
  std::uint64_t best_effort_sent{0};
  std::uint64_t best_effort_delivered{0};
  double best_effort_mean_delay_slots{0.0};
  /// True when the kernel's runaway guard tripped before `run_slots`
  /// elapsed — the verdicts above are then partial and must not be trusted
  /// as a guarantee proof.
  bool sim_budget_exhausted{false};
};

/// Runs the full pipeline: establishment over the wire → periodic senders →
/// measurement. With `config.sim.edf_enabled == false` this doubles as the
/// FCFS motivational baseline (V2): same admitted traffic, no RT layer.
[[nodiscard]] ValidationResult run_guarantee_validation(
    const ValidationConfig& config);

}  // namespace rtether::analysis
