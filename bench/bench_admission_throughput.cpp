/// Scaling S1 — admission-control throughput: batched vs one-at-a-time.
///
/// A production switch admitting RT channels at plant bring-up (or
/// re-admitting everything after a fail-over) faces a long stream of
/// requests against an ever-growing system state. The reference
/// `AdmissionController` re-derives the busy period, checkpoint grid and
/// per-instant demand from scratch for every candidate of every request;
/// `AdmissionEngine::admit_batch` amortizes all three per link. This bench
/// measures admits/sec on identical 10k-request streams, verifies the two
/// paths reach identical accept/reject decisions, and reports the speedup.
///
/// Both paths are driven through the unified `core::AdmissionBackend`
/// front door ("controller" vs "batched"), the same interface the scenario
/// runner and the other bench mains use.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/table.hpp"
#include "core/admission.hpp"
#include "core/admission_backend.hpp"
#include "core/partitioner.hpp"

using namespace rtether;
using namespace rtether::core;

namespace {

/// Random constrained-deadline request stream: the worst case for the
/// feasibility test (no Liu & Layland shortcut) and the realistic one for
/// industrial RT channels (d < P).
std::vector<ChannelRequest> make_stream(std::uint64_t seed, std::size_t count,
                                        std::uint32_t nodes) {
  Rng rng(seed);
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  std::vector<ChannelRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.index(nodes));
    auto dst = static_cast<std::uint32_t>(rng.index(nodes));
    if (dst == src) {
      dst = (dst + 1) % nodes;
    }
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(4);
    const Slot deadline =
        2 * capacity + rng.index(period / 2 - 2 * capacity + 1);
    requests.push_back(ChannelRequest{
        ChannelSpec{NodeId{src}, NodeId{dst}, period, capacity, deadline}});
  }
  return requests;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  double seconds{0.0};
  std::size_t accepted{0};
  std::vector<bool> decisions;
};

/// Repetitions per path; the best (minimum) wall time is reported, the
/// benchmarking standard for shaking off scheduler noise.
constexpr int kRepetitions = 3;

/// Replays the stream through any `AdmissionBackend` kind; best-of-N wall
/// time of the backend's own `submit` path.
RunResult run_backend(const std::string& kind,
                      const std::vector<ChannelRequest>& requests,
                      std::uint32_t nodes, const std::string& scheme) {
  std::vector<ChannelOp> ops;
  ops.reserve(requests.size());
  for (const auto& request : requests) {
    ops.push_back(ChannelOp::admit(request.spec));
  }
  RunResult result;
  result.seconds = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto backend =
        make_admission_backend(kind, nodes, make_partitioner(scheme));
    if (backend == nullptr) {
      std::fprintf(stderr, "unknown backend kind: %s\n", kind.c_str());
      std::exit(64);
    }
    const auto start = std::chrono::steady_clock::now();
    const ChurnResult churn = backend->submit(ops);
    result.seconds = std::min(result.seconds, seconds_since(start));
    result.decisions.clear();
    result.decisions.reserve(churn.admissions.size());
    for (const auto& outcome : churn.admissions) {
      result.decisions.push_back(outcome.has_value());
    }
    result.accepted = churn.accepted();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t request_count = 10'000;
  if (argc > 1) {
    request_count = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  }

  std::puts("================================================================");
  std::puts("Scaling S1 — admission throughput: batched pipeline vs");
  std::puts("one-at-a-time controller, identical request streams");
  std::puts("================================================================");

  ConsoleTable table("S1: admits/sec on a " +
                     std::to_string(request_count) + "-request stream");
  table.set_header({"nodes", "scheme", "accepted", "sequential adm/s",
                    "batched adm/s", "speedup", "gated"});

  bool all_identical = true;
  double min_gated_speedup = 1e300;
  struct Scenario {
    std::uint32_t nodes;
    const char* scheme;
    /// The >= 5x target applies to the saturated-switch regime (the
    /// paper's: a small industrial cell whose links fill up). The larger
    /// topologies are informational scaling rows: with only a handful of
    /// channels per link, both paths are dominated by the same per-request
    /// fixed costs and the baseline has little work to amortize away.
    bool gated;
  };
  for (const Scenario scenario :
       {Scenario{16, "SDPS", true}, Scenario{16, "ADPS", true},
        Scenario{64, "ADPS", false}, Scenario{256, "ADPS", false}}) {
    const auto requests = make_stream(7, request_count, scenario.nodes);
    const auto sequential =
        run_backend("controller", requests, scenario.nodes, scenario.scheme);
    const auto batched =
        run_backend("batched", requests, scenario.nodes, scenario.scheme);

    const bool identical = sequential.decisions == batched.decisions &&
                           sequential.accepted == batched.accepted;
    all_identical = all_identical && identical;

    const double n = static_cast<double>(requests.size());
    const double seq_rate = n / sequential.seconds;
    const double batch_rate = n / batched.seconds;
    const double speedup = sequential.seconds / batched.seconds;
    if (scenario.gated) {
      min_gated_speedup = std::min(min_gated_speedup, speedup);
    }

    table.add(scenario.nodes, scenario.scheme, batched.accepted, seq_rate,
              batch_rate, speedup, scenario.gated ? "yes" : "no");
    if (!identical) {
      std::printf("DECISION MISMATCH at nodes=%u scheme=%s\n", scenario.nodes,
                  scenario.scheme);
    }
  }
  table.print();

  std::printf("decisions identical across all scenarios: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("saturated-switch speedup: %.1fx (target: >= 5x)\n",
              min_gated_speedup);
  std::puts("reading: the batched pipeline computes each link's checkpoint");
  std::puts("grid once and trial-tests candidates by an O(checkpoints)");
  std::puts("merge-walk, instead of re-deriving O(tasks x checkpoints)");
  std::puts("state per request - the win grows with per-link contention.\n");

  // Non-zero exit on decision divergence or a missed throughput target so
  // CI can gate on this bench directly.
  if (!all_identical) return 1;
  if (request_count >= 10'000 && min_gated_speedup < 5.0) return 2;
  return 0;
}
