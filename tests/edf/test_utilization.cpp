#include "edf/utilization.hpp"

#include <gtest/gtest.h>

#include "common/rational.hpp"
#include "common/random.hpp"

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

TEST(Utilization, EmptySetDoesNotExceed) {
  const TaskSet set;
  EXPECT_FALSE(utilization_exceeds_one(set));
}

TEST(Utilization, ExactBoundaryAccepted) {
  // 1/2 + 1/3 + 1/6 = 1 exactly — must NOT count as exceeding.
  TaskSet set;
  set.add(task(1, 2, 1, 2));
  set.add(task(2, 3, 1, 3));
  set.add(task(3, 6, 1, 6));
  EXPECT_FALSE(utilization_exceeds_one(set));
}

TEST(Utilization, OneSlotOverBoundaryRejected) {
  // 1/2 + 1/3 + 1/6 + 1/1000 > 1 by exactly 0.001.
  TaskSet set;
  set.add(task(1, 2, 1, 2));
  set.add(task(2, 3, 1, 3));
  set.add(task(3, 6, 1, 6));
  set.add(task(4, 1000, 1, 1000));
  EXPECT_TRUE(utilization_exceeds_one(set));
}

TEST(Utilization, PaperWorkloadThirtyThreeChannels) {
  // 33 × 3/100 = 99/100 ≤ 1; the 34th pushes it to 102/100.
  TaskSet set;
  for (std::uint16_t i = 1; i <= 33; ++i) {
    set.add(task(i, 100, 3, 40));
  }
  EXPECT_FALSE(utilization_exceeds_one(set));
  set.add(task(34, 100, 3, 40));
  EXPECT_TRUE(utilization_exceeds_one(set));
}

TEST(Utilization, FullSingleTask) {
  TaskSet set;
  set.add(task(1, 7, 7, 7));  // exactly 1
  EXPECT_FALSE(utilization_exceeds_one(set));
  set.add(task(2, 1000, 1, 1000));
  EXPECT_TRUE(utilization_exceeds_one(set));
}

TEST(Utilization, SummationOrderIrrelevant) {
  // The floating-point failure mode this module exists to avoid: order
  // must not matter at the boundary.
  TaskSet ascending;
  TaskSet descending;
  for (std::uint16_t i = 0; i < 10; ++i) {
    ascending.add(task(static_cast<std::uint16_t>(i + 1), 10, 1, 10));
    descending.add(task(static_cast<std::uint16_t>(10 - i), 10, 1, 10));
  }
  EXPECT_FALSE(utilization_exceeds_one(ascending));    // exactly 1
  EXPECT_FALSE(utilization_exceeds_one(descending));
}

TEST(Utilization, CoprimePeriodsTriggerFallbackSafely) {
  // Dozens of near-coprime periods make the exact denominator overflow
  // 128 bits; the fallback must still answer, and conservatively.
  TaskSet set;
  // Primes > 100: utilization sum ≈ Σ 1/p ≈ small; clearly below 1.
  static constexpr Slot kPrimes[] = {
      101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163,
      167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233,
      239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307};
  std::uint16_t id = 1;
  for (const Slot p : kPrimes) {
    set.add(task(id++, p, 1, p));
  }
  EXPECT_FALSE(utilization_exceeds_one(set));
}

TEST(Utilization, CoprimeOverloadStillDetected) {
  // Same overflow-inducing structure but with U ≈ 1.9: must be rejected
  // even via the fallback path.
  TaskSet set;
  static constexpr Slot kPrimes[] = {101, 103, 107, 109, 113, 127, 131,
                                     137, 139, 149, 151, 157, 163, 167,
                                     173, 179, 181, 191, 193, 197};
  std::uint16_t id = 1;
  for (const Slot p : kPrimes) {
    set.add(task(id++, p, (p + 1) / 2, p));  // each ≈ 0.5 → U ≈ 10
  }
  EXPECT_TRUE(utilization_exceeds_one(set));
}

TEST(Utilization, CrossValidatedAgainstExactRationalForSmallSets) {
  // For sets whose denominators stay tiny, the decision must equal the
  // exact Rational sum — randomized cross-check.
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    TaskSet set;
    Rational exact;
    const std::size_t n = 1 + rng.index(6);
    for (std::size_t i = 0; i < n; ++i) {
      static constexpr Slot kPeriods[] = {2, 4, 5, 8, 10, 20, 25, 100};
      const Slot period = kPeriods[rng.index(std::size(kPeriods))];
      const Slot capacity = 1 + rng.index(period);
      set.add(task(static_cast<std::uint16_t>(i + 1), period, capacity,
                   period));
      exact += Rational(static_cast<std::int64_t>(capacity),
                        static_cast<std::int64_t>(period));
    }
    EXPECT_EQ(utilization_exceeds_one(set), exact > Rational(1))
        << "trial " << trial;
  }
}


TEST(UtilizationWith, MatchesMutatedSetOnRandomSets) {
  Rng rng(17);
  static constexpr Slot kPeriods[] = {2, 3, 6, 40, 100, 1000};
  for (int trial = 0; trial < 300; ++trial) {
    TaskSet set;
    const auto size = rng.index(10);
    for (std::uint16_t i = 0; i < size; ++i) {
      const Slot p = kPeriods[rng.index(std::size(kPeriods))];
      const Slot c = 1 + rng.index(p);
      set.add(task(static_cast<std::uint16_t>(i + 1), p, c, p));
    }
    const Slot p = kPeriods[rng.index(std::size(kPeriods))];
    const Slot c = 1 + rng.index(p);
    const PseudoTask extra = task(999, p, c, p);

    const bool incremental = utilization_exceeds_one_with(set, extra);
    set.add(extra);
    EXPECT_EQ(incremental, utilization_exceeds_one(set)) << "trial " << trial;
  }
}

TEST(UtilizationAccumulator, TracksOneShotTestAcrossAdds) {
  // The accumulator must agree with the one-shot test after every add, and
  // its O(1) trial must agree with the _with variant.
  Rng rng(23);
  static constexpr Slot kPeriods[] = {2, 3, 6, 7, 11, 100};
  TaskSet set;
  UtilizationAccumulator acc;
  for (std::uint16_t i = 1; i <= 40; ++i) {
    const Slot p = kPeriods[rng.index(std::size(kPeriods))];
    const Slot c = 1 + rng.index(p);
    const PseudoTask next = task(i, p, c, p);

    EXPECT_EQ(acc.exceeds_one_with(next),
              utilization_exceeds_one_with(set, next))
        << "task " << i;
    set.add(next);
    acc.add(next);
    EXPECT_EQ(acc.exceeds_one(), utilization_exceeds_one(set)) << "task " << i;
  }
}

TEST(UtilizationAccumulator, ExactBoundary) {
  // 1/2 + 1/3 + 1/6 = 1 exactly: not exceeding, but any further task is.
  UtilizationAccumulator acc;
  acc.add(task(1, 2, 1, 2));
  acc.add(task(2, 3, 1, 3));
  acc.add(task(3, 6, 1, 6));
  EXPECT_FALSE(acc.exceeds_one());
  EXPECT_TRUE(acc.exceeds_one_with(task(4, 1000, 1, 1000)));
}

TEST(UtilizationAccumulator, ResetMatchesIncrementalBuild) {
  TaskSet set;
  set.add(task(1, 7, 3, 7));
  set.add(task(2, 11, 4, 11));
  UtilizationAccumulator from_reset;
  from_reset.reset(set);
  UtilizationAccumulator from_adds;
  from_adds.add(task(1, 7, 3, 7));
  from_adds.add(task(2, 11, 4, 11));
  const PseudoTask probe = task(3, 13, 6, 13);
  EXPECT_EQ(from_reset.exceeds_one(), from_adds.exceeds_one());
  EXPECT_EQ(from_reset.exceeds_one_with(probe),
            from_adds.exceeds_one_with(probe));
}

}  // namespace
}  // namespace rtether::edf
