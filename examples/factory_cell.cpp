/// A closed-loop factory cell: sensors → controller → actuators.
///
/// Models a realistic industrial control application on top of the RT
/// layer: four sensors publish measurements every 20 slots to a controller
/// (tight deadlines), the controller computes setpoints and pushes them to
/// two actuators (tighter deadlines still), and a supervisory station
/// polls slow diagnostics best-effort. Exercises: multi-hop dependence of
/// application deadlines on channel deadlines, dynamic teardown/re-admission
/// (a sensor is hot-swapped mid-run), and per-channel statistics.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/partitioner.hpp"
#include "example_seed.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"
#include "sim/best_effort.hpp"

using namespace rtether;

namespace {

// Node roles in the cell.
constexpr NodeId kController{0};
constexpr NodeId kActuatorA{1};
constexpr NodeId kActuatorB{2};
constexpr NodeId kSupervisor{3};
constexpr NodeId kSensors[] = {NodeId{4}, NodeId{5}, NodeId{6}, NodeId{7}};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = examples::seed_from_argv(argc, argv, 99);
  proto::Stack stack(sim::SimConfig{}, /*node_count=*/8,
                     std::make_unique<core::AsymmetricPartitioner>());
  auto& network = stack.network();
  const double tps = static_cast<double>(network.config().ticks_per_slot);

  // --- Wiring the control loop -------------------------------------------
  // Sensors → controller: one frame every 20 slots, 8-slot deadline.
  std::vector<proto::EstablishedChannel> sensor_channels;
  for (const auto sensor : kSensors) {
    auto channel = stack.establish(sensor, kController, 20, 1, 8);
    if (!channel) {
      std::printf("sensor %u rejected: %s\n", sensor.value(),
                  channel.error().c_str());
      return 1;
    }
    sensor_channels.push_back(*channel);
  }
  // Controller → actuators: one frame every 20 slots, 6-slot deadline.
  const auto to_a = stack.establish(kController, kActuatorA, 20, 1, 6);
  const auto to_b = stack.establish(kController, kActuatorB, 20, 1, 6);
  if (!to_a || !to_b) {
    std::puts("actuator channel rejected");
    return 1;
  }

  // The control loop: every delivered sensor message triggers (counts
  // toward) a control update; the controller pushes to both actuators on
  // its own period via periodic senders.
  std::uint64_t sensor_updates = 0;
  stack.layer(kController)
      .set_data_callback([&](const proto::RxChannel&, const sim::SimFrame&,
                             Tick) { ++sensor_updates; });
  std::uint64_t actuations = 0;
  for (const auto actuator : {kActuatorA, kActuatorB}) {
    stack.layer(actuator).set_data_callback(
        [&](const proto::RxChannel&, const sim::SimFrame&, Tick) {
          ++actuations;
        });
  }

  std::vector<std::unique_ptr<proto::PeriodicRtSender>> senders;
  for (const auto& channel : sensor_channels) {
    senders.push_back(std::make_unique<proto::PeriodicRtSender>(
        stack.layer(channel.source), channel.id));
    senders.back()->start();
  }
  for (const auto& channel : {*to_a, *to_b}) {
    senders.push_back(std::make_unique<proto::PeriodicRtSender>(
        stack.layer(kController), channel.id, /*phase_slots=*/10));
    senders.back()->start();
  }

  // Supervisory diagnostics ride best-effort.
  sim::BestEffortProfile diagnostics;
  diagnostics.offered_load = 0.3;
  diagnostics.destination = kSupervisor;
  std::vector<std::unique_ptr<sim::BestEffortSource>> diag_sources;
  for (const auto sensor : kSensors) {
    diag_sources.push_back(std::make_unique<sim::BestEffortSource>(
        network, sensor, diagnostics, seed ^ sensor.value()));
    diag_sources.back()->start();
  }

  // --- Run, hot-swap a sensor, run on ------------------------------------
  if (!network.simulator().run_until(
          network.now() + network.config().slots_to_ticks(2'000))) {
    std::puts("simulation exceeded its event budget");
    return 1;
  }

  // Sensor 4 is replaced: tear its channel down, re-admit with a faster
  // period (10 slots) — dynamic reconfiguration per §18.2.2.
  senders.front()->stop();
  stack.teardown(sensor_channels.front());
  const auto replacement = stack.establish(kSensors[0], kController, 10, 1, 8);
  if (!replacement) {
    std::puts("hot-swap re-admission failed");
    return 1;
  }
  senders.push_back(std::make_unique<proto::PeriodicRtSender>(
      stack.layer(kSensors[0]), replacement->id));
  senders.back()->start();

  if (!network.simulator().run_until(
          network.now() + network.config().slots_to_ticks(2'000))) {
    std::puts("simulation exceeded its event budget");
    return 1;
  }
  for (auto& sender : senders) sender->stop();
  for (auto& source : diag_sources) source->stop();
  if (!network.simulator().run_all()) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return 1;
  }

  // --- Report -------------------------------------------------------------
  std::puts("factory cell report (4 sensors -> controller -> 2 actuators):");
  std::uint64_t total_misses = 0;
  auto report = [&](const char* label,
                    const proto::EstablishedChannel& channel) {
    if (const auto stats = network.stats().channel(channel.id)) {
      total_misses += stats->deadline_misses;
      std::printf(
          "  %-12s n%u->n%u  %5llu frames  worst %4.2f slots (d=%llu)  "
          "misses %llu\n",
          label, channel.source.value(), channel.destination.value(),
          static_cast<unsigned long long>(stats->frames_delivered),
          stats->delay_ticks.max() / tps,
          static_cast<unsigned long long>(channel.deadline),
          static_cast<unsigned long long>(stats->deadline_misses));
    }
  };
  for (std::size_t i = 1; i < sensor_channels.size(); ++i) {
    report("sensor", sensor_channels[i]);
  }
  report("sensor(new)", *replacement);
  report("actuate-A", *to_a);
  report("actuate-B", *to_b);
  std::printf("  sensor updates at controller: %llu; actuations: %llu\n",
              static_cast<unsigned long long>(sensor_updates),
              static_cast<unsigned long long>(actuations));
  std::printf("  total deadline misses: %llu (must be 0)\n",
              static_cast<unsigned long long>(total_misses));
  return total_misses == 0 ? 0 : 1;
}
