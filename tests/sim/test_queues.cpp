#include "sim/queues.hpp"

#include <gtest/gtest.h>

namespace rtether::sim {
namespace {

SimFrame frame_with_id(std::uint64_t id) {
  // Queue tests only need identity; a minimal best-effort frame suffices.
  std::vector<std::uint8_t> bytes(14, 0);
  bytes[12] = 0x08;  // EtherType IPv4 (unparseable IP → best-effort)
  return SimFrame::make(id, std::move(bytes), 0, 0, NodeId{0});
}

TEST(EdfQueue, PopsEarliestDeadlineFirst) {
  EdfQueue q;
  q.push(300, frame_with_id(1));
  q.push(100, frame_with_id(2));
  q.push(200, frame_with_id(3));
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EdfQueue, TiesBreakFifo) {
  EdfQueue q;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    q.push(42, frame_with_id(i));
  }
  for (std::uint64_t i = 1; i <= 20; ++i) {
    EXPECT_EQ(q.pop()->id, i);
  }
}

TEST(EdfQueue, PeekDoesNotRemove) {
  EdfQueue q;
  EXPECT_FALSE(q.peek_deadline().has_value());
  q.push(7, frame_with_id(1));
  EXPECT_EQ(q.peek_deadline(), 7u);
  EXPECT_EQ(q.size(), 1u);
  q.push(3, frame_with_id(2));
  EXPECT_EQ(q.peek_deadline(), 3u);
}

TEST(EdfQueue, InterleavedPushPop) {
  EdfQueue q;
  q.push(10, frame_with_id(1));
  q.push(5, frame_with_id(2));
  EXPECT_EQ(q.pop()->id, 2u);
  q.push(1, frame_with_id(3));
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(FcfsQueue, FifoOrder) {
  FcfsQueue q;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(q.push(frame_with_id(i)));
  }
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(q.pop()->id, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(FcfsQueue, UnboundedByDefault) {
  FcfsQueue q;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(q.push(frame_with_id(i)));
  }
  EXPECT_EQ(q.size(), 10'000u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(FcfsQueue, BoundedDropsTail) {
  FcfsQueue q(3);
  EXPECT_TRUE(q.push(frame_with_id(1)));
  EXPECT_TRUE(q.push(frame_with_id(2)));
  EXPECT_TRUE(q.push(frame_with_id(3)));
  EXPECT_FALSE(q.push(frame_with_id(4)));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 3u);
  // Head unaffected; popping frees a slot.
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_TRUE(q.push(frame_with_id(5)));
}

}  // namespace
}  // namespace rtether::sim
