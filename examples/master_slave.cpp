/// The paper's industrial scenario end-to-end (Fig 18.1): a master–slave
/// network where masters poll commands to slaves over RT channels while the
/// same wire carries best-effort traffic.
///
/// Runs the Fig 18.5 configuration live — 10 masters, 50 slaves, channel
/// requests {P=100, C=3, d=40} — first under SDPS, then under ADPS, and
/// reports how many channels each scheme admitted and the delays actually
/// measured for the admitted set.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/link_report.hpp"
#include "core/partitioner.hpp"
#include "example_seed.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"
#include "traffic/master_slave.hpp"

using namespace rtether;

namespace {

[[nodiscard]] bool run_scheme(const std::string& scheme,
                              std::uint64_t seed) {
  traffic::MasterSlaveWorkload workload({}, seed);
  proto::Stack stack(sim::SimConfig{}, workload.node_count(),
                     core::make_partitioner(scheme));

  // Phase 1: all masters request their channels (120 requests).
  std::vector<proto::EstablishedChannel> channels;
  for (const auto& spec : workload.generate(120)) {
    if (auto channel = stack.establish(spec.source, spec.destination,
                                       spec.period, spec.capacity,
                                       spec.deadline)) {
      channels.push_back(*channel);
    }
  }

  // Phase 2: every admitted channel streams periodic control messages.
  std::vector<std::unique_ptr<proto::PeriodicRtSender>> senders;
  for (const auto& channel : channels) {
    senders.push_back(std::make_unique<proto::PeriodicRtSender>(
        stack.layer(channel.source), channel.id));
    senders.back()->start();
  }
  auto& network = stack.network();
  if (!network.simulator().run_until(
          network.now() + network.config().slots_to_ticks(3'000))) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return false;
  }
  for (auto& sender : senders) sender->stop();
  if (!network.simulator().run_all()) {
    std::fprintf(stderr, "simulation exceeded its event budget\n");
    return false;
  }

  // Phase 3: report.
  std::uint64_t delivered = 0;
  std::uint64_t misses = 0;
  double worst_delay_slots = 0.0;
  for (const auto& channel : channels) {
    if (const auto stats = network.stats().channel(channel.id)) {
      delivered += stats->frames_delivered;
      misses += stats->deadline_misses;
      worst_delay_slots = std::max(
          worst_delay_slots,
          stats->delay_ticks.max() /
              static_cast<double>(network.config().ticks_per_slot));
    }
  }
  std::printf(
      "%-5s admitted %3zu/120 channels | %6llu frames delivered | worst "
      "delay %5.1f slots (d=40) | misses %llu\n",
      scheme.c_str(), channels.size(),
      static_cast<unsigned long long>(delivered), worst_delay_slots,
      static_cast<unsigned long long>(misses));

  // Commissioning-tool view: which links are closest to their limits?
  if (scheme == "ADPS") {
    const std::string report = analysis::render_network_report(
        stack.management().admission().state(), /*max_rows=*/6);
    std::fwrite(report.data(), 1, report.size(), stdout);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("Master-slave industrial network (paper Fig 18.1/18.5 live):");
  std::puts("10 masters poll 50 slaves; channels {P=100, C=3, d=40}\n");
  const std::uint64_t seed = examples::seed_from_argv(argc, argv, 42);
  if (!run_scheme("SDPS", seed) || !run_scheme("ADPS", seed)) {
    return 1;
  }
  std::puts("\nADPS admits roughly twice the channels SDPS does — the");
  std::puts("paper's Figure 18.5 — while both keep every admitted frame");
  std::puts("inside its deadline.");
  return 0;
}
