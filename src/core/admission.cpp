#include "core/admission.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/admission_internal.hpp"

namespace rtether::core {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kInvalidSpec:
      return "invalid spec";
    case RejectReason::kUnknownNode:
      return "unknown node";
    case RejectReason::kUplinkInfeasible:
      return "uplink infeasible";
    case RejectReason::kDownlinkInfeasible:
      return "downlink infeasible";
    case RejectReason::kChannelIdsExhausted:
      return "channel IDs exhausted";
    case RejectReason::kUnknownChannel:
      return "unknown channel";
  }
  return "?";
}

std::optional<RejectReason> reject_reason_from_string(std::string_view text) {
  static constexpr RejectReason kAll[] = {
      RejectReason::kInvalidSpec,         RejectReason::kUnknownNode,
      RejectReason::kUplinkInfeasible,    RejectReason::kDownlinkInfeasible,
      RejectReason::kChannelIdsExhausted, RejectReason::kUnknownChannel,
  };
  for (const RejectReason reason : kAll) {
    if (text == to_string(reason)) {
      return reason;
    }
  }
  return std::nullopt;
}

AdmissionPath select_path(edf::DemandScan scan, unsigned thread_count,
                          std::size_t work_items,
                          std::size_t min_work_items) {
  // One policy point for every sharding-capable component. The cached shard
  // path exists only for the checkpoint scan (the caches *are* the shards'
  // state); below two threads nothing can run concurrently; and a workload
  // smaller than `min_work_items` cannot amortize classify/shard/merge.
  const bool sharded = scan == edf::DemandScan::kCheckpoints &&
                       thread_count >= 2 && work_items >= min_work_items;
  return sharded ? AdmissionPath::kSharded : AdmissionPath::kSequential;
}

AdmissionController::AdmissionController(
    std::uint32_t node_count, std::unique_ptr<DeadlinePartitioner> partitioner,
    AdmissionConfig config)
    : state_(node_count),
      partitioner_(std::move(partitioner)),
      config_(config) {
  RTETHER_ASSERT_MSG(partitioner_ != nullptr,
                     "admission control requires a DPS (paper §18.4: the "
                     "system cannot operate without one)");
}

namespace admission_internal {

std::string link_rejection_detail(const char* side, NodeId node,
                                  const edf::FeasibilityReport& report) {
  std::string detail = side;
  detail += std::to_string(node.value());
  detail += ": ";
  detail += report.summary();
  return detail;
}

std::string invalid_spec_detail(const ChannelSpec& spec) {
  std::ostringstream detail;
  detail << spec.to_string() << " is invalid";
  if (spec.period > 0 && spec.capacity > 0 &&
      spec.deadline < 2 * spec.capacity) {
    detail << " (d < 2C cannot be EDF-feasible through a store-and-forward"
              " switch)";
  }
  return detail.str();
}

bool cached_candidate_test(NetworkState& state,
                           edf::LinkScanCache& uplink_cache,
                           edf::LinkScanCache& downlink_cache,
                           AdmissionStats& stats, const ChannelSpec& spec,
                           ChannelId id, const DeadlinePartition& partition,
                           RejectReason& reason, std::string& detail) {
  const edf::PseudoTask uplink_task{id, spec.period, spec.capacity,
                                    partition.uplink};
  const edf::PseudoTask downlink_task{id, spec.period, spec.capacity,
                                      partition.downlink};
  const edf::TaskSet& uplink_set =
      state.link(spec.source, LinkDirection::kUplink);
  const edf::TaskSet& downlink_set =
      state.link(spec.destination, LinkDirection::kDownlink);

  // `check_with` is const — a trial whose busy period outruns the cached
  // horizon answers from stack scratch. Fold that range into the grid right
  // after, so the next trial at this bound is a pure merge-walk again. The
  // fold regenerates the scratch instants once more; that doubles a cost
  // paid only when the horizon actually grows (amortized rare — the grid
  // only ever extends), a deliberate trade for a side-effect-free trial
  // API that shard workers can share.
  auto memoize = [](edf::LinkScanCache& cache, const edf::TaskSet& set,
                    const edf::FeasibilityReport& report) {
    if (report.scanned_bound > cache.horizon()) {
      cache.reserve_horizon(set, report.scanned_bound);
    }
  };

  ++stats.feasibility_tests;
  const auto uplink_report = uplink_cache.check_with(uplink_set, uplink_task);
  stats.demand_evaluations += uplink_report.demand_evaluations;
  memoize(uplink_cache, uplink_set, uplink_report);
  if (!uplink_report.feasible) {
    reason = RejectReason::kUplinkInfeasible;
    detail = link_rejection_detail("uplink of node", spec.source,
                                   uplink_report);
    return false;
  }

  ++stats.feasibility_tests;
  const auto downlink_report =
      downlink_cache.check_with(downlink_set, downlink_task);
  stats.demand_evaluations += downlink_report.demand_evaluations;
  memoize(downlink_cache, downlink_set, downlink_report);
  if (!downlink_report.feasible) {
    reason = RejectReason::kDownlinkInfeasible;
    detail = link_rejection_detail("downlink of node", spec.destination,
                                   downlink_report);
    return false;
  }

  state.add_channel(RtChannel{id, spec, partition});
  // A scanned accept's bound *is* the link's new busy period — hand it to
  // the cache so the next trial's fixed point starts there.
  auto committed_bp = [](const edf::FeasibilityReport& report) {
    return report.used_utilization_fast_path
               ? std::nullopt
               : std::optional<Slot>(report.scanned_bound);
  };
  uplink_cache.commit(uplink_task, committed_bp(uplink_report));
  downlink_cache.commit(downlink_task, committed_bp(downlink_report));
  return true;
}

std::optional<RtChannel> release_channel(NetworkState& state,
                                         ChannelIdAllocator& ids,
                                         AdmissionStats& stats, ChannelId id) {
  const auto channel = state.find_channel(id);
  if (!channel) {
    return std::nullopt;
  }
  const bool removed = state.remove_channel(id);
  RTETHER_ASSERT_MSG(removed, "channel registry out of sync");
  const bool was_live = ids.release(id);
  RTETHER_ASSERT_MSG(was_live, "channel present in state but ID not live");
  ++stats.released;
  return channel;
}

void downdate_link_cache(edf::LinkScanCache& cache, const edf::TaskSet& set,
                         const edf::PseudoTask& removed,
                         ReleasePolicy policy) {
  if (policy == ReleasePolicy::kDowndate) {
    cache.downdate(set, removed);
  } else {
    cache.reset(set);
  }
}

std::string unknown_channel_detail(ChannelId id) {
  std::string detail = "channel ";
  detail += std::to_string(id.value());
  detail += " is not live";
  return detail;
}

ReleaseOutcome make_release_outcome(bool released, ChannelId id) {
  if (released) {
    return id;
  }
  return Unexpected(
      Rejection{RejectReason::kUnknownChannel, unknown_channel_detail(id)});
}

}  // namespace admission_internal

namespace {

/// Shared admission scaffolding: spec validation, node checks, ID
/// allocation and the DPS-candidate loop. `try_candidate(id, partition,
/// reason, detail)` either commits the channel and returns true, or records
/// its rejection and returns false. The controller and both engine paths
/// run through this one flow, so their decisions and diagnostics cannot
/// drift apart.
template <typename TryCandidate>
Expected<RtChannel, Rejection> admission_flow(
    const NetworkState& state, const DeadlinePartitioner& partitioner,
    ChannelIdAllocator& ids, AdmissionStats& stats, const ChannelSpec& spec,
    TryCandidate&& try_candidate) {
  ++stats.requested;
  auto reject = [&](RejectReason reason,
                    std::string detail) -> Expected<RtChannel, Rejection> {
    ++stats.rejected;
    return Unexpected(Rejection{reason, std::move(detail)});
  };

  if (!spec.valid()) {
    return reject(RejectReason::kInvalidSpec,
                  admission_internal::invalid_spec_detail(spec));
  }
  if (!state.node_exists(spec.source) ||
      !state.node_exists(spec.destination)) {
    return reject(RejectReason::kUnknownNode, spec.to_string());
  }

  const auto id = ids.allocate();
  if (!id) {
    return reject(RejectReason::kChannelIdsExhausted, spec.to_string());
  }

  const auto candidates = partitioner.candidates(spec, state);
  RTETHER_ASSERT_MSG(!candidates.empty(), "DPS returned no candidates");

  RejectReason last_reason = RejectReason::kUplinkInfeasible;
  std::string last_detail;
  for (const auto& partition : candidates) {
    RTETHER_ASSERT_MSG(partition.satisfies(spec),
                       "DPS candidate violates Eq 18.8/18.9");
    if (try_candidate(*id, partition, last_reason, last_detail)) {
      ++stats.accepted;
      return RtChannel{*id, spec, partition};
    }
  }

  ids.release(*id);
  return reject(last_reason, last_detail);
}

/// The reference candidate test: tentatively install both pseudo-tasks,
/// run the from-scratch feasibility check on each affected link direction,
/// and roll back on failure — rejection must leave the state untouched.
bool tentative_candidate_test(NetworkState& state, AdmissionStats& stats,
                              edf::DemandScan scan, const ChannelSpec& spec,
                              ChannelId id, const DeadlinePartition& partition,
                              RejectReason& reason, std::string& detail) {
  const RtChannel channel{id, spec, partition};
  state.add_channel(channel);
  ++stats.feasibility_tests;
  const auto uplink_report = edf::check_feasibility(
      state.link(spec.source, LinkDirection::kUplink), scan);
  stats.demand_evaluations += uplink_report.demand_evaluations;
  if (!uplink_report.feasible) {
    state.remove_channel(id);
    reason = RejectReason::kUplinkInfeasible;
    detail = admission_internal::link_rejection_detail(
        "uplink of node", spec.source, uplink_report);
    return false;
  }
  ++stats.feasibility_tests;
  const auto downlink_report = edf::check_feasibility(
      state.link(spec.destination, LinkDirection::kDownlink), scan);
  stats.demand_evaluations += downlink_report.demand_evaluations;
  if (!downlink_report.feasible) {
    state.remove_channel(id);
    reason = RejectReason::kDownlinkInfeasible;
    detail = admission_internal::link_rejection_detail(
        "downlink of node", spec.destination, downlink_report);
    return false;
  }
  return true;
}

}  // namespace

Expected<RtChannel, Rejection> AdmissionController::request(
    const ChannelSpec& spec) {
  return admission_flow(
      state_, *partitioner_, ids_, stats_, spec,
      [&](ChannelId id, const DeadlinePartition& partition,
          RejectReason& reason, std::string& detail) {
        return tentative_candidate_test(state_, stats_, config_.scan, spec,
                                        id, partition, reason, detail);
      });
}

ReleaseOutcome AdmissionController::release(ChannelId id) {
  return admission_internal::make_release_outcome(
      admission_internal::release_channel(state_, ids_, stats_, id)
          .has_value(),
      id);
}

std::size_t BatchResult::accepted() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const auto& outcome) { return outcome.has_value(); }));
}

std::size_t BatchResult::rejected() const {
  return outcomes.size() - accepted();
}

std::size_t ChurnResult::accepted() const {
  return static_cast<std::size_t>(
      std::count_if(admissions.begin(), admissions.end(),
                    [](const auto& outcome) { return outcome.has_value(); }));
}

std::size_t ChurnResult::rejected() const {
  return admissions.size() - accepted();
}

AdmissionEngine::AdmissionEngine(
    std::uint32_t node_count, std::unique_ptr<DeadlinePartitioner> partitioner,
    AdmissionConfig config)
    : state_(node_count),
      partitioner_(std::move(partitioner)),
      config_(config),
      uplink_caches_(node_count),
      downlink_caches_(node_count) {
  RTETHER_ASSERT_MSG(partitioner_ != nullptr,
                     "admission control requires a DPS (paper §18.4: the "
                     "system cannot operate without one)");
}

edf::LinkScanCache& AdmissionEngine::cache(NodeId node, LinkDirection dir) {
  RTETHER_ASSERT(state_.node_exists(node));
  return dir == LinkDirection::kUplink ? uplink_caches_[node.value()]
                                       : downlink_caches_[node.value()];
}

Expected<RtChannel, Rejection> AdmissionEngine::admit(
    const ChannelSpec& spec) {
  return admit_one(spec);
}

Expected<RtChannel, Rejection> AdmissionEngine::admit_one(
    const ChannelSpec& spec) {
  if (config_.scan != edf::DemandScan::kCheckpoints) {
    return admit_one_reference(spec);
  }
  return admission_flow(
      state_, *partitioner_, ids_, stats_, spec,
      [&](ChannelId id, const DeadlinePartition& partition,
          RejectReason& reason, std::string& why) {
        return admission_internal::cached_candidate_test(
            state_, cache(spec.source, LinkDirection::kUplink),
            cache(spec.destination, LinkDirection::kDownlink), stats_, spec,
            id, partition, reason, why);
      });
}

Expected<RtChannel, Rejection> AdmissionEngine::admit_one_reference(
    const ChannelSpec& spec) {
  return admission_flow(
      state_, *partitioner_, ids_, stats_, spec,
      [&](ChannelId id, const DeadlinePartition& partition,
          RejectReason& reason, std::string& detail) {
        return tentative_candidate_test(state_, stats_, config_.scan, spec,
                                        id, partition, reason, detail);
      });
}

namespace {

/// Conservative per-link horizon sizing for the batch pre-pass. Iterates the
/// busy-period fixed point of `set ∪ every batch request on the link` —
/// deadlines play no role in the workload, so specs suffice. Returns nullopt
/// when the iteration diverges (aggregate overload), overflows, or exceeds
/// `cap`; callers then fall back to lazy per-request extension.
std::optional<Slot> batch_horizon(const edf::TaskSet& set,
                                  const std::vector<ChannelSpec>& specs,
                                  Slot cap) {
  // Quick divergence screen: the exact test is per-request; here a double
  // with margin is enough to skip hopeless aggregates.
  double utilization = set.utilization();
  Slot backlog = set.total_capacity();
  for (const auto& spec : specs) {
    utilization += spec.utilization();
    const auto sum = checked_add(backlog, spec.capacity);
    if (!sum) return std::nullopt;
    backlog = *sum;
  }
  if (utilization > 0.999) {
    return std::nullopt;
  }

  Slot length = backlog;
  for (;;) {
    Slot next = 0;
    for (const auto& task : set.tasks()) {
      const auto contribution =
          checked_mul(ceil_div(length, task.period), task.capacity);
      if (!contribution) return std::nullopt;
      const auto sum = checked_add(next, *contribution);
      if (!sum) return std::nullopt;
      next = *sum;
    }
    for (const auto& spec : specs) {
      const auto contribution =
          checked_mul(ceil_div(length, spec.period), spec.capacity);
      if (!contribution) return std::nullopt;
      const auto sum = checked_add(next, *contribution);
      if (!sum) return std::nullopt;
      next = *sum;
    }
    if (next == length) return length;
    if (next > cap) return std::nullopt;
    length = next;
  }
}

/// Cap on up-front grid reservation; lazy extension covers anything larger.
constexpr Slot kMaxReserveHorizon = Slot{1} << 22;

}  // namespace

namespace admission_internal {

void reserve_link_horizon(const edf::TaskSet& set, edf::LinkScanCache& cache,
                          const std::vector<ChannelSpec>& batch_specs) {
  // The link's hyperperiod caps any useful horizon: with U ≤ 1 the
  // synchronous busy period never exceeds it. Computed once per link from
  // the cache's running lcm plus the batch periods.
  Slot cap = kMaxReserveHorizon;
  std::optional<Slot> hp = cache.cached_hyperperiod();
  for (const auto& spec : batch_specs) {
    if (!hp) break;
    hp = checked_lcm(*hp, spec.period);
  }
  if (hp && *hp < cap) {
    cap = *hp;
  }

  if (const auto horizon = batch_horizon(set, batch_specs, cap)) {
    cache.reserve_horizon(set, std::min(*horizon, cap));
  }
}

}  // namespace admission_internal

void AdmissionEngine::prepare_links(
    std::span<const ChannelRequest> requests) {
  // Sort the batch per link direction (egress downlinks and ingress
  // uplinks): key = node × 2 + direction. A counting-sort scatter — the key
  // space is dense and known, so O(requests + links) beats a comparator
  // sort on every batch size that matters.
  const std::size_t key_space = std::size_t{state_.node_count()} * 2;
  std::vector<std::uint32_t> offsets(key_space + 1, 0);
  auto each_key = [&](auto&& visit) {
    for (const auto& request : requests) {
      const auto& spec = request.spec;
      if (!spec.valid() || !state_.node_exists(spec.source) ||
          !state_.node_exists(spec.destination)) {
        continue;
      }
      visit(std::size_t{spec.source.value()} * 2, spec);
      visit(std::size_t{spec.destination.value()} * 2 + 1, spec);
    }
  };
  each_key([&](std::size_t key, const ChannelSpec&) { ++offsets[key + 1]; });
  for (std::size_t k = 1; k <= key_space; ++k) {
    offsets[k] += offsets[k - 1];
  }
  std::vector<const ChannelSpec*> sorted(offsets[key_space]);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    each_key([&](std::size_t key, const ChannelSpec& spec) {
      sorted[cursor[key]++] = &spec;
    });
  }

  std::vector<ChannelSpec> group;
  for (std::size_t key = 0; key < key_space; ++key) {
    if (offsets[key] == offsets[key + 1]) {
      continue;
    }
    group.clear();
    for (std::uint32_t i = offsets[key]; i < offsets[key + 1]; ++i) {
      group.push_back(*sorted[i]);
    }
    const NodeId node{static_cast<NodeId::rep_type>(key / 2)};
    const LinkDirection dir =
        key % 2 == 0 ? LinkDirection::kUplink : LinkDirection::kDownlink;
    admission_internal::reserve_link_horizon(state_.link(node, dir),
                                             cache(node, dir), group);
  }
}

BatchResult AdmissionEngine::admit_batch(
    std::span<const ChannelRequest> requests) {
  if (config_.scan == edf::DemandScan::kCheckpoints) {
    prepare_links(requests);
  }
  BatchResult result;
  result.outcomes.reserve(requests.size());
  for (const auto& request : requests) {
    result.outcomes.push_back(admit_one(request.spec));
  }
  return result;
}

ReleaseOutcome AdmissionEngine::release(ChannelId id) {
  const auto channel =
      admission_internal::release_channel(state_, ids_, stats_, id);
  if (!channel) {
    return admission_internal::make_release_outcome(false, id);
  }
  if (config_.scan != edf::DemandScan::kCheckpoints) {
    // Reference-path engines never populate the caches; nothing to shrink.
    return id;
  }
  const ChannelSpec& spec = channel->spec;
  admission_internal::downdate_link_cache(
      cache(spec.source, LinkDirection::kUplink),
      state_.link(spec.source, LinkDirection::kUplink),
      {channel->id, spec.period, spec.capacity, channel->partition.uplink},
      config_.release);
  admission_internal::downdate_link_cache(
      cache(spec.destination, LinkDirection::kDownlink),
      state_.link(spec.destination, LinkDirection::kDownlink),
      {channel->id, spec.period, spec.capacity, channel->partition.downlink},
      config_.release);
  return id;
}

}  // namespace rtether::core
