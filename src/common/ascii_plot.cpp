#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/assert.hpp"

namespace rtether {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

std::string format_tick(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

}  // namespace

AsciiPlot::AsciiPlot(std::string title, std::string x_label,
                     std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void AsciiPlot::add_series(PlotSeries series) {
  RTETHER_ASSERT(series.x.size() == series.y.size());
  series_.push_back(std::move(series));
}

std::string AsciiPlot::render(std::size_t width, std::size_t height) const {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = 0.0;  // anchor y at zero: these are count/rate plots
  double y_max = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      any = true;
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_min = std::min(y_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
    }
  }
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (!any) {
    out << "(no data)\n";
    return out.str();
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  auto to_col = [&](double x) {
    const double f = (x - x_min) / (x_max - x_min);
    return std::min(width - 1,
                    static_cast<std::size_t>(std::lround(
                        f * static_cast<double>(width - 1))));
  };
  auto to_row = [&](double y) {
    const double f = (y - y_min) / (y_max - y_min);
    const auto from_bottom = static_cast<std::size_t>(
        std::lround(f * static_cast<double>(height - 1)));
    return height - 1 - std::min(height - 1, from_bottom);
  };

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof kGlyphs)];
    const auto& s = series_[si];
    // Connect consecutive points with linear interpolation for readability.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const std::size_t c0 = to_col(s.x[i]);
      const std::size_t c1 = to_col(s.x[i + 1]);
      for (std::size_t c = std::min(c0, c1); c <= std::max(c0, c1); ++c) {
        const double t =
            c1 == c0 ? 0.0
                     : (static_cast<double>(c) - static_cast<double>(c0)) /
                           (static_cast<double>(c1) - static_cast<double>(c0));
        const double y = s.y[i] + t * (s.y[i + 1] - s.y[i]);
        grid[to_row(y)][c] = glyph;
      }
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      grid[to_row(s.y[i])][to_col(s.x[i])] = glyph;
    }
  }

  const std::string y_top = format_tick(y_max);
  const std::string y_bottom = format_tick(y_min);
  const std::size_t margin = std::max(y_top.size(), y_bottom.size());
  for (std::size_t r = 0; r < height; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = std::string(margin - y_top.size(), ' ') + y_top;
    if (r == height - 1) {
      label = std::string(margin - y_bottom.size(), ' ') + y_bottom;
    }
    out << label << " |" << grid[r] << "\n";
  }
  out << std::string(margin + 1, ' ') << '+' << std::string(width, '-')
      << "\n";
  const std::string x_lo = format_tick(x_min);
  const std::string x_hi = format_tick(x_max);
  out << std::string(margin + 2, ' ') << x_lo
      << std::string(
             width > x_lo.size() + x_hi.size()
                 ? width - x_lo.size() - x_hi.size()
                 : 1,
             ' ')
      << x_hi << "\n";
  out << std::string(margin + 2, ' ') << "x: " << x_label_
      << "   y: " << y_label_ << "\n";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << std::string(margin + 2, ' ') << kGlyphs[si % (sizeof kGlyphs)]
        << " = " << series_[si].name << "\n";
  }
  return out.str();
}

void AsciiPlot::print(std::size_t width, std::size_t height) const {
  const std::string text = render(width, height);
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace rtether
