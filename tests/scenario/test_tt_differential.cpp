// Differential EDF-vs-TT conformance over the checked-in corpus: every
// entry replays under *both* scheduling families and the accept/reject
// outcome of each is pinned as a golden expectation. The pins are the
// contract of the comparison itself — a change to either admission test
// that silently shifts which workloads it accepts shows up here as a named
// corpus entry flipping column, with a replayable spec attached.
//
// The two engineered differential directions:
//
//   * tt-jitter-critical.json — TT accepts what EDF cannot. Two 3-frame
//     producers (P=8, C=3) converge on one consumer. Every EDF deadline
//     split must grant the *whole* message one downlink budget d_id ≤ d−C,
//     and the downlink demand bound h(t) = 6 > t fails for every t ≤ 5, so
//     ADPS (and every DPS) rejects the second channel. The gate synthesis
//     couples per *frame* — each downlink slot only needs to follow its own
//     uplink slot — so the two messages interleave as windows {1,2,3} and
//     {4,5,6} and both are accepted.
//
//   * tt-full-utilization-reject.json — EDF accepts what TT cannot. A
//     saturating P == C channel leaves the gate synthesis no horizon
//     (min(d,P) < C+1 slack is structurally impossible: the last uplink
//     window would collide with its own next period), while the EDF bound
//     admits 100% utilization on an otherwise idle link.
//
// Elsewhere the corpus shows TT uniformly no more permissive than the
// spec's own EDF scheme (offsets must pack into min(d,P) and survive
// gcd-residue conflicts), which is the expected texture: the pins document
// it rather than assume it.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "scenario/json_io.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace rtether::scenario {
namespace {

struct SchemeCounts {
  std::size_t admitted;
  std::size_t rejected;
};

struct DifferentialPin {
  const char* file;
  /// False when the TT replay must be rejected as kMalformedSpec — the
  /// entry is multi-switch (no multihop gate synthesis) or its fault plan
  /// carries a structural reboot/crash (an EDF-scheme recovery protocol).
  bool tt_admissible;
  /// Outcome of the scheme="TT" replay (meaningful when tt_admissible).
  SchemeCounts tt;
  /// Outcome of the EDF replay: the file's own checked-in scheme, or ADPS
  /// for the tt-*.json entries (the paper's recommended DPS).
  SchemeCounts edf;
};

// clang-format off
const DifferentialPin kPins[] = {
    {"churn-steady-state.json",        true,  {40, 4},  {40, 4}},
    {"fabric-line-best-effort-fault.json", false, {},   {26, 5}},
    {"fabric-tree-fault.json",         false, {},       {21, 0}},
    {"fabric-tree.json",               false, {},       {22, 3}},
    {"fault-frame-corrupt.json",       true,  {2, 0},   {2, 0}},
    {"fault-frame-loss.json",          true,  {2, 0},   {2, 0}},
    {"fault-link-down.json",           true,  {2, 0},   {2, 0}},
    {"fault-mgmt-delay.json",          false, {},       {2, 0}},
    {"fault-node-crash.json",          false, {},       {2, 0}},
    {"fault-switch-reboot.json",       false, {},       {2, 0}},
    {"fuzz-11.json",                   false, {},       {10, 6}},
    {"fuzz-16.json",                   false, {},       {22, 5}},
    {"fuzz-2.json",                    true,  {5, 1},   {5, 1}},
    {"fuzz-23.json",                   true,  {24, 3},  {24, 3}},
    {"fuzz-3.json",                    true,  {11, 8},  {15, 4}},
    {"fuzz-31.json",                   true,  {12, 6},  {15, 3}},
    {"fuzz-4.json",                    true,  {14, 5},  {14, 5}},
    {"fuzz-43.json",                   true,  {3, 0},   {3, 0}},
    {"fuzz-5.json",                    true,  {4, 23},  {26, 1}},
    {"fuzz-50.json",                   true,  {11, 19}, {17, 13}},
    {"negative-releases.json",         true,  {3, 1},   {3, 1}},
    {"overflow-periods.json",          true,  {4, 3},   {7, 0}},
    {"regression-same-tick-edf.json",  true,  {1, 1},   {2, 0}},
    {"tt-best-effort.json",            true,  {3, 0},   {3, 0}},
    {"tt-churn.json",                  true,  {7, 0},   {7, 0}},
    {"tt-fault-frame-loss.json",       true,  {2, 0},   {2, 0}},
    {"tt-full-utilization-reject.json", true, {1, 1},   {2, 0}},
    {"tt-jitter-critical.json",        true,  {3, 0},   {2, 1}},
};
// clang-format on

ScenarioSpec load_corpus(const std::string& name) {
  const std::string path =
      std::string(RTETHER_SCENARIO_CORPUS_DIR) + "/" + name;
  const auto spec = load_scenario(path);
  EXPECT_TRUE(spec.has_value()) << "failed to load " << path;
  return spec.value_or(ScenarioSpec{});
}

TEST(TtDifferential, EveryCorpusEntryIsPinned) {
  // Adding a corpus entry without pinning both scheme columns would leave
  // the differential contract silently incomplete.
  std::set<std::string> pinned;
  for (const auto& pin : kPins) pinned.insert(pin.file);
  std::set<std::string> present;
  for (const auto& entry :
       std::filesystem::directory_iterator(RTETHER_SCENARIO_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") {
      present.insert(entry.path().filename().string());
    }
  }
  EXPECT_EQ(present, pinned);
}

TEST(TtDifferential, TtReplayMatchesGolden) {
  for (const auto& pin : kPins) {
    ScenarioSpec spec = load_corpus(pin.file);
    spec.scheme = "TT";
    const ScenarioResult result = run_scenario(spec);
    if (!pin.tt_admissible) {
      EXPECT_FALSE(result.passed) << pin.file;
      ASSERT_FALSE(result.violations.empty()) << pin.file;
      EXPECT_EQ(result.violations[0].kind, ViolationKind::kMalformedSpec)
          << pin.file << ": " << result.violations[0].detail;
      continue;
    }
    EXPECT_TRUE(result.passed)
        << pin.file << "\n"
        << result.summary();
    EXPECT_EQ(result.admitted, pin.tt.admitted) << pin.file;
    EXPECT_EQ(result.rejected, pin.tt.rejected) << pin.file;
  }
}

TEST(TtDifferential, EdfReplayMatchesGolden) {
  for (const auto& pin : kPins) {
    ScenarioSpec spec = load_corpus(pin.file);
    if (spec.scheme == "TT") spec.scheme = "ADPS";
    const ScenarioResult result = run_scenario(spec);
    EXPECT_TRUE(result.passed)
        << pin.file << "\n"
        << result.summary();
    EXPECT_EQ(result.admitted, pin.edf.admitted) << pin.file;
    EXPECT_EQ(result.rejected, pin.edf.rejected) << pin.file;
  }
}

TEST(TtDifferential, BothDifferentialDirectionsAreWitnessed) {
  // The comparison is only meaningful if the corpus demonstrates a strict
  // win for each family — re-assert the two engineered entries directly so
  // a future corpus edit cannot erode either direction unnoticed.
  {
    ScenarioSpec tt = load_corpus("tt-jitter-critical.json");
    ASSERT_EQ(tt.scheme, "TT");
    ScenarioSpec edf = tt;
    edf.scheme = "ADPS";
    const auto tt_result = run_scenario(tt);
    const auto edf_result = run_scenario(edf);
    EXPECT_TRUE(tt_result.passed);
    EXPECT_TRUE(edf_result.passed);
    EXPECT_GT(tt_result.admitted, edf_result.admitted)
        << "per-frame gate coupling should beat the whole-message d_id "
           "budget on the shared downlink";
  }
  {
    ScenarioSpec tt = load_corpus("tt-full-utilization-reject.json");
    ASSERT_EQ(tt.scheme, "TT");
    ScenarioSpec edf = tt;
    edf.scheme = "ADPS";
    const auto tt_result = run_scenario(tt);
    const auto edf_result = run_scenario(edf);
    EXPECT_TRUE(tt_result.passed);
    EXPECT_TRUE(edf_result.passed);
    EXPECT_LT(tt_result.admitted, edf_result.admitted)
        << "a saturating P == C channel leaves the gate synthesis no "
           "horizon but passes the EDF utilization bound";
  }
}

}  // namespace
}  // namespace rtether::scenario
