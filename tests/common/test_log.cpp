#include "common/log.hpp"

#include <gtest/gtest.h>

namespace rtether {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LogTest, DefaultIsOff) {
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
}

TEST_F(LogTest, ThresholdFiltersLowerLevels) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, LevelReadback) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LogTest, EmissionDoesNotCrash) {
  set_log_level(LogLevel::kTrace);
  log_message(LogLevel::kInfo, "test", "hello");
  log_message(LogLevel::kError, "test", "");
  RTETHER_LOG(kDebug, "test", "value=" << 42 << " and " << 3.5);
}

TEST_F(LogTest, MacroSkipsFormattingWhenDisabled) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  RTETHER_LOG(kDebug, "test", "x=" << expensive());
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kTrace);
  RTETHER_LOG(kDebug, "test", "x=" << expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace rtether
