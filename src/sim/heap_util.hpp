#pragma once

/// @file heap_util.hpp
/// Hole-based binary min-heap primitives shared by the kernel's far-event
/// heap and the EDF queues. Hole sifting moves one POD element per level
/// instead of a swap's three; keeping the index arithmetic in exactly one
/// place means a boundary fix cannot silently diverge between the heaps.

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace rtether::sim {

/// Appends `item` and sifts it up. `earlier(a, b)` is the strict priority
/// order (true when `a` must pop before `b`).
template <typename T, typename Earlier>
void heap_push(std::vector<T>& heap, const T& item, Earlier earlier) {
  heap.push_back(item);
  std::size_t hole = heap.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 2;
    if (!earlier(item, heap[parent])) break;
    heap[hole] = heap[parent];
    hole = parent;
  }
  heap[hole] = item;
}

/// Removes the minimum `heap[0]` — the caller copies it out first — by
/// sifting the displaced tail element down into the hole.
template <typename T, typename Earlier>
void heap_pop(std::vector<T>& heap, Earlier earlier) {
  RTETHER_ASSERT(!heap.empty());
  const std::size_t size = heap.size() - 1;
  if (size == 0) {
    heap.pop_back();
    return;
  }
  const T tail = heap[size];
  heap.pop_back();
  std::size_t hole = 0;
  for (;;) {
    const std::size_t left = 2 * hole + 1;
    if (left >= size) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < size && earlier(heap[right], heap[left])) best = right;
    if (!earlier(heap[best], tail)) break;
    heap[hole] = heap[best];
    hole = best;
  }
  heap[hole] = tail;
}

}  // namespace rtether::sim
