#pragma once

/// @file stats.hpp
/// Measurement layer: per-channel delivery statistics (the quantities the
/// paper's guarantee Eq 18.1 bounds) plus best-effort service metrics.
///
/// The per-channel records live in a small open-addressing hash table —
/// `record_rt_sent`/`record_rt_delivered` run once per simulated frame on
/// the kernel's allocation-free hot path, where a `std::map` lookup (cold
/// pointer chases, rebalancing inserts) was measurable. `channels()`
/// materializes a sorted map for reports and digests.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rtether::sim {

/// Per-RT-channel delivery record.
struct ChannelDeliveryStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  /// Deliveries later than absolute deadline + T_latency allowance — must
  /// stay zero for admitted channels (the paper's central claim).
  std::uint64_t deadline_misses{0};
  /// End-to-end delay (release → delivery), ticks.
  RunningStats delay_ticks;
  /// Worst observed (delivery − absolute deadline); negative = early.
  /// Lateness beyond the allowance is a miss.
  std::int64_t worst_lateness_ticks{std::numeric_limits<std::int64_t>::min()};
  /// Frames lost to fault injection (link down/loss, CRC discard, reboot
  /// table flush). The survival contract's per-channel accounting —
  /// frames_sent == frames_delivered + frames_dropped — rests on this.
  /// Always zero in fault-free runs; deliberately NOT part of the sim
  /// digest (compute_sim_digest's field order is a golden contract).
  std::uint64_t frames_dropped{0};
  /// Every delivery's end-to-end delay in arrival order, recorded only
  /// when `SimStats::set_record_delays(true)` — the time-triggered
  /// conformance check proves zero jitter from the exact sequence, which
  /// `delay_ticks`'s running moments cannot. Like `frames_dropped`,
  /// deliberately NOT part of the sim digest.
  std::vector<Tick> delivery_delays;
};

class SimStats {
 public:
  void record_rt_sent(ChannelId channel) { ++slot(channel).frames_sent; }

  /// Opt into per-delivery delay recording (`delivery_delays`). Off by
  /// default: the vector grows one entry per delivered frame, which the
  /// allocation-conscious benches must not pay.
  void set_record_delays(bool on) { record_delays_ = on; }

  /// Records a delivered RT frame. `allowance` is the T_latency budget of
  /// Eq 18.1 in ticks; delivery after `absolute_deadline + allowance`
  /// counts as a miss.
  void record_rt_delivered(ChannelId channel, Tick created,
                           Tick absolute_deadline, Tick delivered,
                           Tick allowance);

  void record_best_effort_sent() { ++best_effort_sent_; }
  void record_best_effort_delivered(Tick created, Tick delivered);

  /// An RT frame of `channel` was lost to fault injection.
  void record_rt_fault_drop(ChannelId channel) {
    ++slot(channel).frames_dropped;
    ++rt_fault_drops_;
  }

  /// A best-effort frame was lost to fault injection.
  void record_best_effort_fault_drop() { ++best_effort_fault_drops_; }

  [[nodiscard]] std::uint64_t rt_fault_drops() const {
    return rt_fault_drops_;
  }
  [[nodiscard]] std::uint64_t best_effort_fault_drops() const {
    return best_effort_fault_drops_;
  }

  /// Sorted snapshot of every channel's record (reports, digests; cold).
  [[nodiscard]] std::map<ChannelId, ChannelDeliveryStats> channels() const;

  /// Stats for one channel; nullopt if it never sent.
  [[nodiscard]] std::optional<ChannelDeliveryStats> channel(
      ChannelId id) const;

  [[nodiscard]] std::uint64_t total_rt_delivered() const;
  [[nodiscard]] std::uint64_t total_deadline_misses() const;

  [[nodiscard]] std::uint64_t best_effort_sent() const {
    return best_effort_sent_;
  }
  [[nodiscard]] std::uint64_t best_effort_delivered() const {
    return best_effort_delivered_;
  }
  [[nodiscard]] const RunningStats& best_effort_delay_ticks() const {
    return best_effort_delay_;
  }

 private:
  struct TableSlot {
    bool used{false};
    ChannelId id{};
    ChannelDeliveryStats stats;
  };

  /// Fibonacci-hashed start index for open addressing (capacity is a
  /// power of two).
  [[nodiscard]] static std::size_t start_index(ChannelId id,
                                               std::size_t capacity) {
    return (static_cast<std::size_t>(id.value()) * 0x9e3779b1U) &
           (capacity - 1);
  }

  [[nodiscard]] ChannelDeliveryStats& slot(ChannelId id);
  [[nodiscard]] const TableSlot* find(ChannelId id) const;
  void rehash(std::size_t capacity);

  /// Open-addressing table, linear probing, ≤50% load.
  std::vector<TableSlot> table_;
  std::size_t used_{0};
  std::uint64_t best_effort_sent_{0};
  std::uint64_t best_effort_delivered_{0};
  std::uint64_t rt_fault_drops_{0};
  std::uint64_t best_effort_fault_drops_{0};
  bool record_delays_{false};
  RunningStats best_effort_delay_;
};

}  // namespace rtether::sim
