#pragma once

/// @file thread_pool.hpp
/// A fixed-size worker pool with a plain FIFO work queue. The parallel
/// admission engine shards work by egress link and needs (a) a stable set of
/// workers whose count is an explicit tuning knob (pinning a switch's
/// admission service to N cores), and (b) a fork-join primitive that hands
/// out shard indices and blocks the caller until every shard completed —
/// `parallel_for_shards`. Nothing here is clever on purpose: mutex + two
/// condition variables, no lock-free structures, so the behaviour under
/// ThreadSanitizer is exactly the behaviour in production — and the mutex
/// protocol is Clang thread-safety annotated, so `-Wthread-safety` proves
/// every queue access is under `mutex_` on every path, not just the
/// interleavings the tests exercise.

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace rtether {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers. 0 is allowed and means "no workers":
  /// `submit` is forbidden and `parallel_for_shards` runs inline on the
  /// caller — useful as a deterministic degenerate mode in tests.
  explicit ThreadPool(unsigned thread_count);

  /// Drains nothing: pending jobs that never ran are dropped, running jobs
  /// are joined. Callers that care must `wait_idle` first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one job. Jobs must not throw (the library is assert-based;
  /// a throwing job would terminate). Requires size() > 0.
  void submit(std::function<void()> job) EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no worker is mid-job.
  void wait_idle() EXCLUDES(mutex_);

  /// Runs `shard(i)` for every i in [0, shard_count), distributing indices
  /// to the workers dynamically (an atomic claim counter, so unevenly sized
  /// shards balance), and returns only when all shards completed. The
  /// calling thread does not execute shards itself unless the pool is empty
  /// (size() == 0), in which case everything runs inline, in order.
  void parallel_for_shards(std::size_t shard_count,
                           const std::function<void(std::size_t)>& shard)
      EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::size_t running_ GUARDED_BY(mutex_){0};
  bool stopping_ GUARDED_BY(mutex_){false};
};

}  // namespace rtether
