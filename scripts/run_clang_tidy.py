#!/usr/bin/env python3
"""clang-tidy wrapper with a committed suppression baseline.

Runs clang-tidy (configuration from the repo's `.clang-tidy`) over every
first-party translation unit in `compile_commands.json`, fingerprints each
finding as `<relpath>::<check>`, and compares the per-fingerprint counts
against `scripts/clang_tidy_baseline.json`:

  * a fingerprint whose count exceeds the baseline is a REGRESSION -> exit 1
  * a baseline entry that no longer fires is reported as stale (fix by
    rerunning with --update-baseline, which also proves the fix stuck)

The baseline is intentionally empty when the tree is clean; it exists so a
genuinely unfixable upstream false positive can be parked with a reviewable
diff instead of a silent NOLINT.

Requires a build directory configured with CMAKE_EXPORT_COMPILE_COMMANDS
(on by default in this repo's CMakeLists). The binary is located via
$CLANG_TIDY, then `clang-tidy`, then versioned names; `--allow-missing`
turns "no binary" into a skip (exit 0) for GCC-only development boxes —
CI does not pass it, so the gate still binds where clang is installed.

Exit status: 0 clean/skip, 1 regressions, 2 environment/usage error.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

CANDIDATE_BINARIES = ["clang-tidy"] + [
    f"clang-tidy-{v}" for v in range(21, 12, -1)
]

# First-party code only; third-party sources pulled in by FetchContent land
# under the build directory and are filtered out with everything else.
SOURCE_PREFIXES = ("src/", "tests/", "bench/", "examples/")

_FINDING = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*?) \[(?P<check>[^\]]+)\]$"
)


def find_binary(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def collect_sources(build_dir: Path, root: Path) -> list[str]:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        print(f"run_clang_tidy: {db} not found; configure the build first "
              "(cmake -B build -S .)", file=sys.stderr)
        return []
    sources = set()
    for entry in json.loads(db.read_text(encoding="utf-8")):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            continue
        if rel.startswith(SOURCE_PREFIXES) and not rel.startswith(
            "tests/static/seeded/"
        ):
            sources.add(rel)
    return sorted(sources)


def tidy_one(args):
    binary, build_dir, root, rel = args
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet", rel],
        cwd=root,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    findings = []
    for line in proc.stdout.splitlines():
        m = _FINDING.match(line)
        if not m:
            continue
        try:
            fpath = Path(m.group("file")).resolve().relative_to(root)
        except ValueError:
            continue  # header outside the repo (stdlib, gtest)
        findings.append(
            {
                "fingerprint": f"{fpath.as_posix()}::{m.group('check')}",
                "file": fpath.as_posix(),
                "line": int(m.group("line")),
                "check": m.group("check"),
                "message": m.group("msg"),
            }
        )
    return rel, findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--clang-tidy", default=None,
                        help="binary to use (default: $CLANG_TIDY, PATH)")
    parser.add_argument("--baseline",
                        default="scripts/clang_tidy_baseline.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--allow-missing", action="store_true",
                        help="exit 0 when no clang-tidy binary exists")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write the raw findings as JSON")
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    build_dir = (root / args.build_dir).resolve() \
        if not Path(args.build_dir).is_absolute() else Path(args.build_dir)

    binary = find_binary(args.clang_tidy)
    if binary is None:
        msg = "run_clang_tidy: no clang-tidy binary found (set $CLANG_TIDY)"
        if args.allow_missing:
            print(msg + "; skipping (--allow-missing)")
            return 0
        print(msg, file=sys.stderr)
        return 2

    sources = collect_sources(build_dir, root)
    if not sources:
        return 2
    print(f"run_clang_tidy: {binary}, {len(sources)} translation unit(s), "
          f"{args.jobs} job(s)")

    work = [(binary, build_dir, root, rel) for rel in sources]
    findings = []
    if args.jobs > 1:
        with multiprocessing.Pool(args.jobs) as pool:
            for rel, found in pool.imap_unordered(tidy_one, work):
                findings.extend(found)
    else:
        for item in work:
            findings.extend(tidy_one(item)[1])

    # Dedup: the same header finding surfaces once per including TU.
    unique = {}
    for f in findings:
        unique[(f["fingerprint"], f["line"], f["message"])] = f
    findings = sorted(unique.values(),
                      key=lambda f: (f["file"], f["line"], f["check"]))
    counts = Counter(f["fingerprint"] for f in findings)

    baseline_path = root / args.baseline
    if args.update_baseline:
        payload = {
            "comment": "Per-fingerprint clang-tidy suppression counts; "
                       "regenerate with scripts/run_clang_tidy.py "
                       "--update-baseline and justify additions in review.",
            "suppressions": dict(sorted(counts.items())),
        }
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n",
                                 encoding="utf-8")
        print(f"run_clang_tidy: baseline rewritten "
              f"({len(counts)} fingerprint(s))")
        return 0

    baseline = {}
    if baseline_path.is_file():
        baseline = json.loads(baseline_path.read_text(encoding="utf-8")).get(
            "suppressions", {})

    if args.json:
        Path(args.json).write_text(
            json.dumps({"version": 1, "findings": findings}, indent=2) + "\n",
            encoding="utf-8")

    regressions = []
    for f in findings:
        fp = f["fingerprint"]
        if counts[fp] > baseline.get(fp, 0):
            regressions.append(f)
    stale = [fp for fp in baseline if counts.get(fp, 0) < baseline[fp]]

    for f in regressions:
        print(f"{f['file']}:{f['line']}: [{f['check']}] {f['message']}")
    for fp in stale:
        print(f"run_clang_tidy: stale baseline entry (no longer fires): {fp}")
    print(f"run_clang_tidy: {len(findings)} finding(s), "
          f"{len(regressions)} regression(s) vs baseline, "
          f"{len(stale)} stale suppression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
