// Seeded lint violation: scripts/lint_invariants.py --profile
// deprecated-release must flag the call below (rule deprecated-release).
// WILL_FAIL ctest case static.lint_seeded_deprecated.
namespace seeded {

struct FakeController {
  bool release_ok(int id);
};

bool seeded_deprecated_violation(FakeController& controller) {
  return controller.release_ok(1);
}

}  // namespace seeded
