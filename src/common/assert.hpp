#pragma once

/// @file assert.hpp
/// Contract-checking macros used across the library. Unlike <cassert> these
/// stay active in release builds: admission control is a safety property and
/// a silently violated invariant would invalidate every guarantee downstream.

namespace rtether::detail {

/// Prints a diagnostic to stderr and aborts. Never returns.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace rtether::detail

/// Checks an invariant; aborts with file/line context on violation.
#define RTETHER_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rtether::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (false)

/// Checks an invariant with an explanatory message.
#define RTETHER_ASSERT_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::rtether::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)
