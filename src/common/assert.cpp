#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace rtether::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) {
  std::fprintf(stderr, "rtether: assertion failed: %s (%s:%d)%s%s\n", expr,
               file, line, msg != nullptr ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rtether::detail
