#pragma once

/// @file log.hpp
/// Leveled diagnostic logging. Off by default (benchmarks and tests must not
/// drown in trace output); protocol and simulator modules emit at Debug/Trace
/// for interactive debugging via `set_log_level`.

#include <sstream>
#include <string>
#include <string_view>

namespace rtether {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);

/// Current global threshold.
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr: "[level] component: message".
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

/// True if a message at `level` would be emitted (guards expensive
/// formatting at call sites).
[[nodiscard]] bool log_enabled(LogLevel level);

}  // namespace rtether

/// Stream-style logging macro: RTETHER_LOG(kDebug, "sim", "t=" << now).
#define RTETHER_LOG(level, component, expr)                            \
  do {                                                                 \
    if (::rtether::log_enabled(::rtether::LogLevel::level)) {          \
      std::ostringstream rtether_log_stream_;                          \
      rtether_log_stream_ << expr;                                     \
      ::rtether::log_message(::rtether::LogLevel::level, (component),  \
                             rtether_log_stream_.str());               \
    }                                                                  \
  } while (false)
