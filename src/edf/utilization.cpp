#include "edf/utilization.hpp"

#include <numeric>

#include "common/math.hpp"

namespace rtether::edf {

namespace {

__extension__ typedef unsigned __int128 UInt128;

constexpr UInt128 kU128Max = ~UInt128{0};

/// Exact accumulation of the fractional parts in 128 bits; false when the
/// running denominator (lcm of periods) no longer fits.
bool exact_exceeds_one(const TaskSet& set, bool& exceeded) {
  std::uint64_t whole = 0;  // tasks with C == P contribute exactly 1
  UInt128 num = 0;
  UInt128 den = 1;
  for (const auto& task : set.tasks()) {
    whole += task.capacity / task.period;
    const std::uint64_t cf = task.capacity % task.period;
    if (cf == 0) continue;
    const std::uint64_t period = task.period;

    // den' = lcm(den, period); reject on 128-bit overflow.
    const std::uint64_t g = std::gcd(static_cast<std::uint64_t>(den % period),
                                     period);
    const std::uint64_t scale = period / g;
    if (scale != 0 && den > kU128Max / scale) return false;
    const UInt128 new_den = den * scale;
    const UInt128 num_scale = new_den / den;
    const UInt128 term_scale = new_den / period;
    if (num != 0 && num_scale != 0 && num > kU128Max / num_scale) {
      return false;
    }
    UInt128 scaled_num = num * num_scale;
    if (term_scale != 0 && UInt128{cf} > (kU128Max - scaled_num) / term_scale) {
      return false;
    }
    num = scaled_num + UInt128{cf} * term_scale;
    den = new_den;

    // Peel off whole units to keep num small.
    if (num >= den) {
      const UInt128 units = num / den;
      if (units > 0xffffffffULL) {
        exceeded = true;  // utilization is absurdly large; decide now
        return true;
      }
      whole += static_cast<std::uint64_t>(units);
      num %= den;
    }
    if (whole > 1 || (whole == 1 && num > 0)) {
      exceeded = true;
      return true;
    }
  }
  exceeded = whole > 1 || (whole == 1 && num > 0);
  return true;
}

/// Fixed-point upper bound: Σ ⌈C·2³²/P⌉ / 2³² ≥ U, so comparing the sum
/// against 2³² can only over-report "exceeds".
bool upper_bound_exceeds_one(const TaskSet& set) {
  UInt128 upper = 0;
  for (const auto& task : set.tasks()) {
    const UInt128 scaled = (UInt128{task.capacity} << 32) + task.period - 1;
    upper += scaled / task.period;
  }
  return upper > (UInt128{1} << 32);
}

}  // namespace

bool utilization_exceeds_one(const TaskSet& set) {
  bool exceeded = false;
  if (exact_exceeds_one(set, exceeded)) {
    return exceeded;
  }
  return upper_bound_exceeds_one(set);
}

}  // namespace rtether::edf
