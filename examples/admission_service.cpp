/// Admission backends: one front door, four implementations.
///
/// Demonstrates the `core::AdmissionBackend` surface in ~70 lines:
///   1. create any admission implementation by name ("controller",
///      "batched", "parallel", "service") — same decisions, same IDs,
///      same diagnostics from all four;
///   2. drive a mixed admit/release stream through the uniform `submit`;
///   3. use the async ticket API, native on the resident service and
///      emulated everywhere else, so callers can be written ticket-first.
///
/// Usage: example_admission_service [kind] (default "service")

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/admission_backend.hpp"
#include "core/partitioner.hpp"

using namespace rtether;
using namespace rtether::core;

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "service";

  // 1. An 8-node star switch under SDPS, fronted by the chosen backend.
  //    The service kind keeps a dispatcher and two shard workers resident.
  BackendConfig config;
  config.threads = 2;
  auto backend = make_admission_backend(
      kind, /*node_count=*/8, std::make_unique<SymmetricPartitioner>(),
      config);
  if (backend == nullptr) {
    std::fprintf(stderr, "unknown backend kind '%s'\n", kind.c_str());
    return 64;
  }
  std::printf("backend: %s (async %s)\n", backend->name().c_str(),
              backend->supports_async() ? "native" : "emulated");

  // 2. A mixed stream: admit six {P=100, C=3, d=40} channels on one uplink
  //    (the paper's saturation point admits exactly six), then release the
  //    first and retry. Every backend reports the same typed outcomes.
  std::vector<ChannelOp> ops;
  for (std::uint32_t i = 0; i < 7; ++i) {
    ops.push_back(ChannelOp::admit(
        ChannelSpec{NodeId{0}, NodeId{1 + (i % 6)}, 100, 3, 40}));
  }
  const ChurnResult churn = backend->submit(ops);
  for (std::size_t i = 0; i < churn.admissions.size(); ++i) {
    const auto& outcome = churn.admissions[i];
    if (outcome.has_value()) {
      std::printf("admit %zu: accepted as channel %u (d_iu=%llu)\n", i,
                  outcome->id.value(),
                  static_cast<unsigned long long>(
                      outcome->partition.uplink));
    } else {
      std::printf("admit %zu: rejected (%s): %s\n", i,
                  to_string(outcome.error().reason),
                  outcome.error().detail.c_str());
    }
  }

  // 3. Ticket-first teardown + re-admit: submit_async returns immediately
  //    on the service (the dispatcher linearizes in dequeue order), and
  //    pre-completed on synchronous kinds — the calling code is identical.
  const ChannelId first = churn.admissions.front()->id;
  Ticket release = backend->submit_async(ChannelOp::release(first));
  Ticket retry = backend->submit_async(
      ChannelOp::admit(ChannelSpec{NodeId{0}, NodeId{7}, 100, 3, 40}));
  release.wait();
  retry.wait();
  std::printf("released channel %u, slot reused by channel %u\n",
              release.release_outcome()->value(),
              retry.admit_outcome()->id.value());

  backend->drain();
  std::printf("live channels: %zu, accepted %llu / requested %llu\n",
              backend->state().channels().size(),
              static_cast<unsigned long long>(backend->stats().accepted),
              static_cast<unsigned long long>(backend->stats().requested));
  return 0;
}
