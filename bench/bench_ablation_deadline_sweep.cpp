/// Ablation A1 — acceptance vs relative deadline d_i.
///
/// Fig 18.5 fixes d = 40; here d sweeps 12…100 at 200 requested channels
/// (paper topology, {P=100, C=3}). Expectation: at small d both schemes
/// choke (d/2 < C bites SDPS hardest); ADPS's advantage peaks where the
/// deadline is scarce relative to the bottleneck load and fades as d grows
/// (everything becomes feasible).

#include <cstdio>

#include "analysis/acceptance.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

using namespace rtether;

int main() {
  std::puts("================================================================");
  std::puts("Ablation A1 — acceptance vs relative deadline (200 requested,");
  std::puts("10 masters / 50 slaves, {P=100, C=3}, d swept)");
  std::puts("================================================================");

  const std::vector<Slot> deadlines{12, 16, 20, 28, 40, 56, 72, 100};
  constexpr std::size_t kRequests = 200;
  constexpr std::uint32_t kSeeds = 5;

  ConsoleTable table("A1: mean accepted channels at 200 requested");
  table.set_header({"deadline d", "SDPS", "ADPS", "ADPS/SDPS"});
  AsciiPlot plot("A1: acceptance vs deadline", "relative deadline d (slots)",
                 "accepted channels");
  PlotSeries sdps_series{"SDPS", {}, {}};
  PlotSeries adps_series{"ADPS", {}, {}};

  for (const Slot d : deadlines) {
    traffic::MasterSlaveConfig workload;
    workload.deadline = traffic::SlotDistribution::fixed(d);
    analysis::AcceptanceSweepConfig sweep;
    sweep.request_counts = {kRequests};
    sweep.seeds = kSeeds;

    const auto sdps = analysis::run_master_slave_sweep("SDPS", workload,
                                                       sweep);
    const auto adps = analysis::run_master_slave_sweep("ADPS", workload,
                                                       sweep);
    const double s = sdps.points[0].accepted_mean;
    const double a = adps.points[0].accepted_mean;
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx", s > 0 ? a / s : 0.0);
    table.add(d, s, a, std::string(ratio));
    sdps_series.x.push_back(static_cast<double>(d));
    sdps_series.y.push_back(s);
    adps_series.x.push_back(static_cast<double>(d));
    adps_series.y.push_back(a);
  }
  table.print();
  plot.add_series(adps_series);
  plot.add_series(sdps_series);
  plot.print();
  std::puts("reading: ADPS's edge is largest for scarce deadlines; both");
  std::puts("schemes converge once d is generous relative to the load.\n");
  return 0;
}
