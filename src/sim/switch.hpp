#pragma once

/// @file switch.hpp
/// The store-and-forward full-duplex Ethernet switch of Fig 18.1/18.2: one
/// output port per end-node, each with the RT(EDF)+FCFS queue pair; frames
/// are classified from their wire bytes (EtherType / ToS), RT frames are
/// EDF-queued under the absolute deadline decoded from the IP header, and
/// management frames addressed to the switch are handed to the RT channel
/// management software (the `proto` layer).
///
/// `ingress` and `forward` are kernel dispatch targets: the frame's journey
/// uplink → propagation → ingress (learning) → processing → forward →
/// port queue is a chain of typed events carrying a `FrameIndex`, with no
/// callback indirection anywhere on the path.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/forwarding.hpp"
#include "sim/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/transmitter.hpp"

namespace rtether::sim {

class SimNetwork;

/// Aggregate switch counters.
struct SwitchStats {
  std::uint64_t rt_forwarded{0};
  std::uint64_t best_effort_forwarded{0};
  std::uint64_t management_received{0};
  std::uint64_t flooded{0};
  /// RT frames dropped because the destination MAC was never learned
  /// (cannot flood RT traffic without violating other ports' guarantees).
  std::uint64_t rt_dropped_unknown_destination{0};
};

class SimSwitch {
 public:
  /// Invoked when a management frame addressed to the switch arrives;
  /// `ingress` is the port it arrived on. Raw function pointer + context
  /// (the `proto::SwitchMgmt` layer registers itself once).
  using MgmtHandler = void (*)(void* context, const SimFrame& frame,
                               NodeId ingress, Tick now);

  /// `best_effort_depth` bounds each port's FCFS queue (0 = unbounded).
  SimSwitch(Simulator& simulator, const SimConfig& config,
            std::uint32_t node_count, SimNetwork& network,
            std::size_t best_effort_depth = 0);

  void set_mgmt_handler(MgmtHandler handler, void* context) {
    mgmt_handler_ = handler;
    mgmt_context_ = context;
  }

  /// Kernel dispatch target (EventType::kSwitchIngress): a frame fully
  /// received from `from`'s uplink. Learning happens immediately;
  /// classification and queueing happen after the configured
  /// store-and-forward processing delay.
  void ingress(FrameIndex frame, NodeId from);

  /// Kernel dispatch target (EventType::kSwitchForward): classification +
  /// queueing, after the processing delay.
  void forward(FrameIndex frame, NodeId from);

  /// Sends a switch-originated frame (management responses) out of the port
  /// toward `to`. Management traffic rides the best-effort queue — channel
  /// establishment happens before RT traffic flows (§18.2.2), so it must not
  /// perturb the EDF schedule.
  void send_from_switch(NodeId to, SimFrame frame);

  /// Output port transmitter toward `node` (stats/tests).
  [[nodiscard]] Transmitter& port(NodeId node);
  [[nodiscard]] const Transmitter& port(NodeId node) const;

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }
  [[nodiscard]] const ForwardingTable& forwarding() const { return table_; }

  /// Installs every node's MAC up front (tests that bypass the protocol
  /// layer; a live network learns instead).
  void prime_forwarding(std::uint32_t node_count);

  /// Drops every learned MAC entry — the forwarding half of a switch
  /// reboot (fault injection). Port queues and in-flight frames survive
  /// (switch RAM persists across the modeled warm reboot); frames that
  /// reach `forward` after the flush hit the unlearned-MAC drop path.
  void flush_forwarding() { table_.clear(); }

  [[nodiscard]] std::uint32_t port_count() const {
    return static_cast<std::uint32_t>(ports_.size());
  }

 private:
  Simulator& simulator_;
  const SimConfig& config_;
  SimNetwork& network_;
  std::vector<std::unique_ptr<Transmitter>> ports_;
  ForwardingTable table_;
  MgmtHandler mgmt_handler_{nullptr};
  void* mgmt_context_{nullptr};
  SwitchStats stats_;
};

}  // namespace rtether::sim
