#pragma once

/// @file partitioner.hpp
/// Deadline-partitioning schemes (paper §18.4). A DPS maps each channel's
/// end-to-end deadline d_i to the pair {d_iu, d_id} with d_i = d_iu + d_id
/// (Eq 18.8) and d_iu, d_id ≥ C_i (Eq 18.9). The paper frames a DPS as a
/// function of the whole system state (Eq 18.13) — hence partitioners see
/// the `NetworkState`, not just the spec.
///
/// A partitioner proposes an ordered list of candidate partitions; the
/// admission controller admits the channel under the first candidate whose
/// two pseudo-tasks keep both affected link directions feasible. SDPS and
/// ADPS propose exactly one candidate (the paper's behaviour); the search
/// partitioner (an extension exercising the paper's "more flexible
/// feasibility test" motivation) proposes several.

#include <memory>
#include <string>
#include <vector>

#include "core/channel.hpp"
#include "core/network_state.hpp"

namespace rtether::core {

class DeadlinePartitioner {
 public:
  virtual ~DeadlinePartitioner() = default;

  /// Candidate partitions in preference order. Every returned candidate
  /// satisfies Eqs 18.8/18.9 for `spec`; specs must be `valid()`.
  [[nodiscard]] virtual std::vector<DeadlinePartition> candidates(
      const ChannelSpec& spec, const NetworkState& state) const = 0;

  /// Scheme name for reports ("SDPS", "ADPS", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Single best candidate (the first); convenience for tests and docs.
  [[nodiscard]] DeadlinePartition partition(const ChannelSpec& spec,
                                            const NetworkState& state) const;

 protected:
  /// Clamps an uplink budget into [C_i, d_i − C_i] and derives the downlink
  /// share so Eq 18.8 holds exactly.
  [[nodiscard]] static DeadlinePartition clamped(Slot uplink_budget,
                                                 const ChannelSpec& spec);
};

/// SDPS — Symmetric Deadline Partitioning Scheme (paper §18.4.1, Eq 18.14):
/// d_iu = d_id = d_i / 2, independent of the system state. Odd deadlines
/// give the spare slot to the downlink (⌊d/2⌋ up, ⌈d/2⌉ down).
class SymmetricPartitioner final : public DeadlinePartitioner {
 public:
  [[nodiscard]] std::vector<DeadlinePartition> candidates(
      const ChannelSpec& spec, const NetworkState& state) const override;
  [[nodiscard]] std::string name() const override { return "SDPS"; }
};

/// Options for ADPS variants; the defaults reproduce the paper.
struct AdpsOptions {
  /// Count the requested channel itself in both link loads (so the very
  /// first channel on an idle pair splits 1:1 instead of 0/0).
  bool include_requested_channel{true};
  /// Round Upart·d_i to nearest (true) or truncate (false).
  bool round_to_nearest{true};
};

/// ADPS — Asymmetric Deadline Partitioning Scheme (paper §18.4.2,
/// Eqs 18.16/18.17): split proportionally to LinkLoad so bottleneck links
/// (e.g. master uplinks) receive the larger share of the deadline.
class AsymmetricPartitioner final : public DeadlinePartitioner {
 public:
  AsymmetricPartitioner() = default;
  explicit AsymmetricPartitioner(AdpsOptions options) : options_(options) {}

  [[nodiscard]] std::vector<DeadlinePartition> candidates(
      const ChannelSpec& spec, const NetworkState& state) const override;
  [[nodiscard]] std::string name() const override { return "ADPS"; }

  [[nodiscard]] const AdpsOptions& options() const { return options_; }

 private:
  AdpsOptions options_{};
};

/// Extension: like ADPS but weighted by exact link *utilization* (ΣC/P)
/// instead of channel count — heavier channels pull more deadline budget.
class UtilizationWeightedPartitioner final : public DeadlinePartitioner {
 public:
  [[nodiscard]] std::vector<DeadlinePartition> candidates(
      const ChannelSpec& spec, const NetworkState& state) const override;
  [[nodiscard]] std::string name() const override { return "UDPS"; }
};

/// Extension: exhaustive fallback. Proposes the ADPS split first, then every
/// other admissible split ordered by distance from it. Realizes the paper's
/// "more flexible feasibility test" ambition: a channel is rejected only if
/// *no* partition keeps the system feasible (at greater admission cost).
class SearchPartitioner final : public DeadlinePartitioner {
 public:
  [[nodiscard]] std::vector<DeadlinePartition> candidates(
      const ChannelSpec& spec, const NetworkState& state) const override;
  [[nodiscard]] std::string name() const override { return "Search"; }
};

/// Factory by scheme name ("SDPS", "ADPS", "UDPS", "Search") for harnesses;
/// asserts on unknown names.
[[nodiscard]] std::unique_ptr<DeadlinePartitioner> make_partitioner(
    const std::string& name);

}  // namespace rtether::core
