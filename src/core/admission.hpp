#pragma once

/// @file admission.hpp
/// The switch's admission control (paper §18.2.2/§18.3.2): on each channel
/// request, test whether the system state stays feasible with the new
/// channel's two pseudo-tasks added — utilization (Eq 18.2) and processor
/// demand (Eq 18.3, scanned per Eqs 18.4/18.5) on the source uplink and the
/// destination downlink. Rejected requests leave no residue.

#include <cstdint>
#include <memory>
#include <string>

#include "common/expected.hpp"
#include "core/channel.hpp"
#include "core/id_allocator.hpp"
#include "core/network_state.hpp"
#include "core/partitioner.hpp"
#include "edf/feasibility.hpp"

namespace rtether::core {

/// Why a request was refused.
enum class RejectReason : std::uint8_t {
  kInvalidSpec,         ///< malformed {P, C, d} (includes d_i < 2·C_i)
  kUnknownNode,         ///< source or destination not in the network
  kUplinkInfeasible,    ///< no candidate kept the source uplink feasible
  kDownlinkInfeasible,  ///< no candidate kept the destination downlink feasible
  kChannelIdsExhausted, ///< all 65535 16-bit IDs live
};

[[nodiscard]] const char* to_string(RejectReason reason);

/// Rejection verdict with the failing link's feasibility report.
struct Rejection {
  RejectReason reason;
  std::string detail;
};

/// Tuning knobs for the admission controller.
struct AdmissionConfig {
  /// Demand-scan strategy for constraint 2 (paper default: checkpoints).
  edf::DemandScan scan{edf::DemandScan::kCheckpoints};
};

/// Running acceptance statistics.
struct AdmissionStats {
  std::uint64_t requested{0};
  std::uint64_t accepted{0};
  std::uint64_t rejected{0};
  std::uint64_t released{0};
  /// Total feasibility tests run (≥ 2 per candidate partition tried).
  std::uint64_t feasibility_tests{0};
  /// Total demand-function evaluations across all tests (ablation metric).
  std::uint64_t demand_evaluations{0};
};

class AdmissionController {
 public:
  /// A star network with `node_count` end-nodes; `partitioner` implements
  /// the DPS in force (the paper's switch is configured with one scheme).
  AdmissionController(std::uint32_t node_count,
                      std::unique_ptr<DeadlinePartitioner> partitioner,
                      AdmissionConfig config = {});

  /// Handles a channel request end-to-end: validate, partition, test both
  /// affected link directions, and either commit the channel (assigning a
  /// network-unique ID) or reject with a reason. Never leaves tentative
  /// state behind.
  [[nodiscard]] Expected<RtChannel, Rejection> request(
      const ChannelSpec& spec);

  /// Releases an established channel (teardown); false if unknown.
  bool release(ChannelId id);

  [[nodiscard]] const NetworkState& state() const { return state_; }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const {
    return *partitioner_;
  }

 private:
  /// Tests one link direction with the candidate task tentatively added.
  [[nodiscard]] edf::FeasibilityReport test_link(NodeId node,
                                                 LinkDirection dir);

  NetworkState state_;
  std::unique_ptr<DeadlinePartitioner> partitioner_;
  AdmissionConfig config_;
  ChannelIdAllocator ids_;
  AdmissionStats stats_;
};

}  // namespace rtether::core
