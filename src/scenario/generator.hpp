#pragma once

/// @file generator.hpp
/// Seed → ScenarioSpec. One 64-bit seed deterministically expands into a
/// topology (star or multi-switch line/tree), a DPS scheme, a channel
/// workload (uniform peer-to-peer, master/slave in either or mixed
/// direction, bursty best-effort coexistence, admit/release churn) and the
/// simulation-phase parameters. The mapping is pure: the same seed and
/// config always produce the identical spec, which is what makes a failing
/// campaign seed a complete bug report.

#include <cstdint>

#include "scenario/spec.hpp"

namespace rtether::scenario {

/// Which workload family mix a campaign draws from.
enum class GeneratorProfile : std::uint8_t {
  /// Uniform draw over all styles (uniform / master-slave / bursty / churn).
  kMixed,
  /// Steady-state admit/release churn at high link load: every scenario
  /// pins the churn style, releases fire as often as admits once channels
  /// are live, and releases always target a *live* channel so the stream
  /// stays at saturation instead of draining. Exercises the release
  /// downdate path of every engine (negative paths stay enabled).
  kChurnHeavy,
  /// Every scenario carries a fault plan (1–3 events drawn across all six
  /// classes, at most one structural reboot/crash) on a simulated star with
  /// a run long enough for the windows to open and close. Exercises the
  /// survival contract and the recovery paths; the calculus oracle still
  /// audits every admission decision.
  kFaultHeavy,
  /// Every scenario pins `scheme = "TT"`: admission is offline gate-table
  /// synthesis and the simulation runs the slot-accurate time-triggered
  /// wire under the zero-miss / zero-jitter contract. Star topology only
  /// (there is no multihop gate synthesis) and windowed faults only (the
  /// reboot recovery protocol is an EDF-scheme behavior).
  kTimeTriggered,
  /// Every scenario is a simulated multi-switch fabric (line/tree with
  /// trunk links) driven through the partitioned parallel kernel: channel
  /// pairs are biased cross-switch so trunks carry real traffic, deadlines
  /// are drawn loose enough for multi-hop routes to admit, and a third of
  /// the scenarios carry a windowed fault garnish. Scales to 1k–10k-node
  /// fabrics via `min_nodes`/`max_nodes`/`max_switches`. Like the other
  /// special profiles its seed expansion diverges from kMixed; the
  /// existing profiles' streams stay byte-identical.
  kFabric,
};

/// Bounds on what the generator may produce. Defaults are sized so a
/// scenario runs in ~1 ms through all four admission paths plus the
/// simulator — small enough for 10k-scenario campaigns, large enough to
/// reach saturated links, churned IDs and multi-hop routes.
struct GeneratorConfig {
  GeneratorProfile profile{GeneratorProfile::kMixed};
  std::uint32_t min_nodes{3};
  std::uint32_t max_nodes{12};
  /// Multi-switch scenarios draw 2…max_switches switches.
  std::uint32_t max_switches{4};
  std::size_t min_ops{4};
  std::size_t max_ops{36};
  /// Probability a scenario is multi-switch (line/tree) rather than star.
  double multiswitch_probability{0.25};
  /// Generate deliberately malformed requests (invalid {P,C,d}, unknown
  /// nodes) and bogus releases (unknown IDs, double teardown) so rejection
  /// paths are fuzzed with the same weight as accept paths.
  bool allow_negative_paths{true};
  bool allow_best_effort{true};
  /// Simulation run length is drawn from [100, max_run_slots].
  Slot max_run_slots{400};
};

/// Expands `seed` into a scenario within `config`'s bounds.
[[nodiscard]] ScenarioSpec generate_scenario(const GeneratorConfig& config,
                                             std::uint64_t seed);

}  // namespace rtether::scenario
