#include "sim/addressing.hpp"

namespace rtether::sim {

namespace {

constexpr std::uint64_t kNodeMacBase = 0x0200'0000'0000ULL;
constexpr std::uint64_t kSwitchMacValue = 0x0200'00ff'fffeULL;
// Node IPs occupy 10.0.0.1 … 10.0.255.255 (up to 65535 nodes); the switch
// lives outside that range at 10.1.255.254.
constexpr std::uint32_t kNodeIpBase = 0x0a00'0000u;    // 10.0.0.0
constexpr std::uint32_t kSwitchIpValue = 0x0a01'fffeu;  // 10.1.255.254

}  // namespace

net::MacAddress node_mac(NodeId node) {
  return net::MacAddress::from_u48(kNodeMacBase +
                                   static_cast<std::uint64_t>(node.value()) +
                                   1);
}

net::Ipv4Address node_ip(NodeId node) {
  return net::Ipv4Address(kNodeIpBase + node.value() + 1);
}

net::MacAddress switch_mac() {
  return net::MacAddress::from_u48(kSwitchMacValue);
}

net::Ipv4Address switch_ip() { return net::Ipv4Address(kSwitchIpValue); }

std::optional<NodeId> mac_to_node(const net::MacAddress& mac) {
  const std::uint64_t value = mac.to_u48();
  if (value <= kNodeMacBase || value >= kSwitchMacValue ||
      value - kNodeMacBase > 0xffff) {
    return std::nullopt;
  }
  return NodeId(static_cast<std::uint32_t>(value - kNodeMacBase - 1));
}

std::optional<NodeId> ip_to_node(const net::Ipv4Address& ip) {
  const std::uint32_t value = ip.value();
  if (value <= kNodeIpBase || value - kNodeIpBase > 0xffff) {
    return std::nullopt;
  }
  return NodeId(value - kNodeIpBase - 1);
}

}  // namespace rtether::sim
