#include "core/topology.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/assert.hpp"

namespace rtether::core {

std::string LinkId::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kUplink:
      out << "up(n" << a << ")";
      break;
    case Kind::kDownlink:
      out << "down(n" << a << ")";
      break;
    case Kind::kTrunk:
      out << "trunk(s" << a << "->s" << b << ")";
      break;
  }
  return out.str();
}

Topology::Topology(std::uint32_t node_count, std::uint32_t switch_count)
    : attachment_(node_count), adjacency_(switch_count) {
  RTETHER_ASSERT_MSG(switch_count >= 1, "fabric needs at least one switch");
}

Topology Topology::single_switch(std::uint32_t node_count) {
  Topology topology(node_count, 1);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    topology.attach_node(NodeId{n}, SwitchId{0});
  }
  return topology;
}

Topology Topology::switch_line(std::uint32_t switch_count,
                               std::uint32_t nodes_per_switch) {
  Topology topology(switch_count * nodes_per_switch, switch_count);
  for (std::uint32_t s = 0; s < switch_count; ++s) {
    for (std::uint32_t k = 0; k < nodes_per_switch; ++k) {
      topology.attach_node(NodeId{s * nodes_per_switch + k}, SwitchId{s});
    }
    if (s + 1 < switch_count) {
      topology.connect_switches(SwitchId{s}, SwitchId{s + 1});
    }
  }
  return topology;
}

void Topology::attach_node(NodeId node, SwitchId sw) {
  RTETHER_ASSERT(node.value() < attachment_.size());
  RTETHER_ASSERT(sw.value() < adjacency_.size());
  attachment_[node.value()] = sw.value();
}

void Topology::connect_switches(SwitchId a, SwitchId b) {
  RTETHER_ASSERT(a.value() < adjacency_.size());
  RTETHER_ASSERT(b.value() < adjacency_.size());
  RTETHER_ASSERT_MSG(a != b, "trunk endpoints must differ");
  auto insert_sorted = [](std::vector<std::uint32_t>& list,
                          std::uint32_t value) {
    const auto it = std::lower_bound(list.begin(), list.end(), value);
    if (it == list.end() || *it != value) {
      list.insert(it, value);
    }
  };
  insert_sorted(adjacency_[a.value()], b.value());
  insert_sorted(adjacency_[b.value()], a.value());
}

std::optional<SwitchId> Topology::attachment(NodeId node) const {
  if (node.value() >= attachment_.size() ||
      !attachment_[node.value()].has_value()) {
    return std::nullopt;
  }
  return SwitchId{*attachment_[node.value()]};
}

const std::vector<std::uint32_t>& Topology::neighbours(SwitchId sw) const {
  RTETHER_ASSERT(sw.value() < adjacency_.size());
  return adjacency_[sw.value()];
}

std::optional<std::vector<LinkId>> Topology::route(NodeId src,
                                                   NodeId dst) const {
  const auto src_switch = attachment(src);
  const auto dst_switch = attachment(dst);
  if (!src_switch || !dst_switch) {
    return std::nullopt;
  }

  // BFS over the switch graph; neighbours are sorted, so the discovered
  // shortest path is deterministic (lowest-ID tie-break).
  std::vector<std::int64_t> parent(adjacency_.size(), -1);
  std::deque<std::uint32_t> frontier;
  parent[src_switch->value()] = static_cast<std::int64_t>(src_switch->value());
  frontier.push_back(src_switch->value());
  while (!frontier.empty() && parent[dst_switch->value()] < 0) {
    const std::uint32_t current = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t next : adjacency_[current]) {
      if (parent[next] < 0) {
        parent[next] = current;
        frontier.push_back(next);
      }
    }
  }
  if (parent[dst_switch->value()] < 0) {
    return std::nullopt;  // disconnected fabric
  }

  std::vector<std::uint32_t> switch_path{dst_switch->value()};
  while (switch_path.back() != src_switch->value()) {
    switch_path.push_back(
        static_cast<std::uint32_t>(parent[switch_path.back()]));
  }
  std::reverse(switch_path.begin(), switch_path.end());

  std::vector<LinkId> links;
  links.reserve(switch_path.size() + 1);
  links.push_back(LinkId::uplink(src));
  for (std::size_t i = 0; i + 1 < switch_path.size(); ++i) {
    links.push_back(
        LinkId::trunk(SwitchId{switch_path[i]}, SwitchId{switch_path[i + 1]}));
  }
  links.push_back(LinkId::downlink(dst));
  return links;
}

}  // namespace rtether::core
