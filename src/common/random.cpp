#include "common/random.hpp"

#include <cmath>

namespace rtether {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  RTETHER_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) {
    return next_u64();
  }
  const std::uint64_t range = span + 1;
  // Rejection sampling: discard draws from the biased tail.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % range + 1) % range;
  std::uint64_t draw = next_u64();
  while (draw > limit) {
    draw = next_u64();
  }
  return lo + draw % range;
}

double Rng::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Rng::exponential(double mean) {
  RTETHER_ASSERT(mean > 0.0);
  double u = uniform_real();
  // uniform_real() is in [0,1); guard the log(0) edge.
  while (u == 0.0) {
    u = uniform_real();
  }
  return -mean * std::log(u);
}

}  // namespace rtether
