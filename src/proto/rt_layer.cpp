#include "proto/rt_layer.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "net/deadline_codec.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"

namespace rtether::proto {

namespace {

/// UDP port the RT layer uses for its data datagrams (arbitrary but fixed).
constexpr std::uint16_t kRtDataPort = 5004;

}  // namespace

NodeRtLayer::NodeRtLayer(sim::SimNetwork& network, NodeId node,
                         RtLayerConfig config)
    : network_(network), node_(node), config_(config) {
  RTETHER_ASSERT(config_.request_attempts >= 1);
  network_.node(node_).set_receiver(
      [](void* context, const sim::SimFrame& frame, Tick now) {
        static_cast<NodeRtLayer*>(context)->on_receive(frame, now);
      },
      this);
}

const TxChannel* NodeRtLayer::find_tx(ChannelId id) const {
  const auto it = tx_channels_.find(id);
  return it == tx_channels_.end() ? nullptr : &it->second;
}

void NodeRtLayer::request_channel(NodeId destination, Slot period,
                                  Slot capacity, Slot deadline,
                                  SetupCallback callback) {
  const std::uint8_t request_id = next_request_id_;
  // 8-bit wrap; skip IDs that still have an outstanding request.
  next_request_id_ = static_cast<std::uint8_t>(next_request_id_ + 1);
  if (next_request_id_ == 0) next_request_id_ = 1;
  RTETHER_ASSERT_MSG(!pending_.contains(request_id),
                     "connection request IDs exhausted (256 outstanding)");

  net::RequestFrame request;
  request.connection_request = ConnectionRequestId(request_id);
  request.rt_channel = ChannelId(0);  // "not set with a valid value yet"
  request.source_mac = sim::node_mac(node_);
  request.destination_mac = sim::node_mac(destination);
  request.source_ip = sim::node_ip(node_);
  request.destination_ip = sim::node_ip(destination);
  request.period = static_cast<std::uint32_t>(period);
  request.capacity = static_cast<std::uint32_t>(capacity);
  request.deadline = static_cast<std::uint32_t>(deadline);

  pending_.emplace(request_id,
                   PendingRequest{request, destination, std::move(callback),
                                  config_.request_attempts, false});
  transmit_request(request_id);
}

void NodeRtLayer::transmit_request(std::uint8_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.done) return;
  PendingRequest& pending = it->second;
  RTETHER_ASSERT(pending.attempts_left > 0);
  --pending.attempts_left;
  send_mgmt_to_switch(pending.frame.serialize());
  arm_request_timer(request_id);
}

void NodeRtLayer::arm_request_timer(std::uint8_t request_id) {
  const Tick timeout =
      network_.config().slots_to_ticks(config_.request_timeout_slots);
  network_.simulator().schedule_timer(
      timeout,
      [](void* context, std::uint64_t arg, Tick /*now*/) {
        static_cast<NodeRtLayer*>(context)->on_request_timeout(
            static_cast<std::uint8_t>(arg));
      },
      this, request_id);
}

void NodeRtLayer::on_request_timeout(std::uint8_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end() || it->second.done) return;
  if (it->second.attempts_left > 0) {
    RTETHER_LOG(kDebug, "rt-layer",
                "node" << node_.value() << " retransmitting request "
                       << static_cast<int>(request_id));
    transmit_request(request_id);
    return;
  }
  SetupOutcome outcome;
  outcome.accepted = false;
  outcome.detail = "timeout waiting for response";
  auto callback = std::move(it->second.callback);
  pending_.erase(it);
  if (callback) callback(outcome);
}

void NodeRtLayer::send_mgmt_to_switch(std::vector<std::uint8_t> payload) {
  net::EthernetHeader ethernet;
  ethernet.destination = sim::switch_mac();
  ethernet.source = sim::node_mac(node_);
  ethernet.ether_type = net::EtherType::kRtManagement;

  ByteWriter writer(net::EthernetHeader::kWireSize + payload.size());
  ethernet.serialize(writer);
  writer.write_bytes(payload);

  sim::SimFrame frame =
      sim::SimFrame::make(network_.next_frame_id(), std::move(writer).take(),
                          0, network_.now(), node_);
  network_.node(node_).send_best_effort(std::move(frame));
}

void NodeRtLayer::send_message(ChannelId channel) {
  const auto it = tx_channels_.find(channel);
  RTETHER_ASSERT_MSG(it != tx_channels_.end(),
                     "send_message on a channel not established for TX");
  TxChannel& tx = it->second;

  const Tick release = network_.now();
  const Tick absolute_deadline =
      release + network_.config().slots_to_ticks(tx.deadline);
  const Tick uplink_key =
      release + network_.config().slots_to_ticks(tx.uplink_deadline);

  for (Slot i = 0; i < tx.capacity; ++i) {
    // Real headers with the §18.2.2 deadline encoding; payload padded to a
    // maximal frame (the analysis counts C_i maximal frames per message).
    net::Ipv4Header ip;
    ip.protocol = net::IpProtocol::kUdp;
    net::encode_rt_tag({absolute_deadline, channel}, ip);

    net::EthernetHeader ethernet;
    ethernet.source = sim::node_mac(node_);
    ethernet.destination = sim::node_mac(tx.destination);
    ethernet.ether_type = net::EtherType::kIpv4;

    net::UdpHeader udp;
    udp.source_port = kRtDataPort;
    udp.destination_port = kRtDataPort;

    // Hot path: serialize straight into a pooled arena slot (buffer
    // capacity is recycled, so a steady-state release allocates nothing)
    // and hand the uplink the frame *index*.
    sim::FrameArena& arena = network_.arena();
    const sim::FrameIndex index = arena.acquire();
    sim::SimFrame& frame = arena.get(index);
    ByteWriter writer(std::move(frame.bytes));
    ethernet.serialize(writer);
    const std::size_t header_bytes =
        net::EthernetHeader::kWireSize + net::Ipv4Header::kWireSize +
        net::UdpHeader::kWireSize;
    const std::uint64_t pad =
        kMaxFrameWireBytes - (header_bytes + 4 + 8 + 12);
    ip.total_length = static_cast<std::uint16_t>(
        net::Ipv4Header::kWireSize + net::UdpHeader::kWireSize + pad);
    ip.serialize(writer);
    udp.length =
        static_cast<std::uint16_t>(net::UdpHeader::kWireSize + pad);
    udp.serialize(writer);
    frame.bytes = std::move(writer).take();
    frame.finalize(network_.next_frame_id(), pad, release, node_);
    network_.stats().record_rt_sent(channel);
    network_.node(node_).send_rt(uplink_key, index);
  }
  ++tx.messages_sent;
}

void NodeRtLayer::teardown_channel(ChannelId channel) {
  const auto it = tx_channels_.find(channel);
  RTETHER_ASSERT_MSG(it != tx_channels_.end(),
                     "teardown on a channel not established for TX");
  net::TeardownFrame teardown;
  teardown.rt_channel = channel;
  teardown.is_ack = false;
  send_mgmt_to_switch(teardown.serialize());
  tx_channels_.erase(it);
}

void NodeRtLayer::on_receive(const sim::SimFrame& frame, Tick now) {
  switch (frame.info.cls) {
    case sim::FrameClass::kManagement:
      handle_management(frame, now);
      return;
    case sim::FrameClass::kRealTime: {
      RTETHER_ASSERT(frame.info.rt_tag.has_value());
      const auto it = rx_channels_.find(frame.info.rt_tag->channel);
      if (it == rx_channels_.end()) {
        RTETHER_LOG(kWarn, "rt-layer",
                    "node" << node_.value()
                           << " received RT frame on unknown channel "
                           << frame.info.rt_tag->channel.value());
        return;
      }
      ++it->second.frames_received;
      if (data_callback_) {
        data_callback_(it->second, frame, now);
      }
      return;
    }
    case sim::FrameClass::kBestEffort:
      return;  // ordinary TCP/IP traffic; outside the RT layer's concern
  }
}

void NodeRtLayer::handle_management(const sim::SimFrame& frame, Tick /*now*/) {
  const std::span<const std::uint8_t> payload(
      frame.bytes.data() + net::EthernetHeader::kWireSize,
      frame.bytes.size() - net::EthernetHeader::kWireSize);
  const auto type = net::peek_mgmt_type(payload);
  if (!type) return;
  switch (*type) {
    case net::MgmtFrameType::kConnectRequest:
      if (const auto request = net::RequestFrame::parse(payload)) {
        handle_forwarded_request(*request);
      }
      return;
    case net::MgmtFrameType::kConnectResponse:
      if (const auto response = net::ResponseFrame::parse(payload)) {
        handle_response(*response);
      }
      return;
    case net::MgmtFrameType::kTeardownRequest:
    case net::MgmtFrameType::kTeardownResponse:
      if (const auto teardown = net::TeardownFrame::parse(payload)) {
        handle_teardown(*teardown);
      }
      return;
  }
}

void NodeRtLayer::handle_forwarded_request(const net::RequestFrame& request) {
  // We are the destination; the switch found the channel feasible and
  // assigned a network-unique ID. Decide, record, respond (Fig 18.4).
  const bool accept = !accept_policy_ || accept_policy_(request);
  if (accept) {
    const auto source = sim::mac_to_node(request.source_mac);
    RxChannel rx;
    rx.id = request.rt_channel;
    rx.source = source.value_or(NodeId{0});
    rx.period = request.period;
    rx.capacity = request.capacity;
    rx.deadline = request.deadline;
    rx_channels_.insert_or_assign(rx.id, rx);  // idempotent on retransmit
  }
  net::ResponseFrame response;
  response.connection_request = request.connection_request;
  response.rt_channel = request.rt_channel;
  response.accepted = accept;
  send_mgmt_to_switch(response.serialize());
}

void NodeRtLayer::handle_response(const net::ResponseFrame& response) {
  const auto it = pending_.find(response.connection_request.value());
  if (it == pending_.end() || it->second.done) {
    return;  // duplicate or stale response
  }
  PendingRequest& pending = it->second;
  pending.done = true;

  SetupOutcome outcome;
  outcome.accepted = response.accepted;
  outcome.channel = response.rt_channel;
  outcome.uplink_deadline = response.uplink_deadline;
  if (response.accepted) {
    TxChannel tx;
    tx.id = response.rt_channel;
    tx.destination = pending.destination;
    tx.period = pending.frame.period;
    tx.capacity = pending.frame.capacity;
    tx.deadline = pending.frame.deadline;
    tx.uplink_deadline = response.uplink_deadline;
    tx_channels_.insert_or_assign(tx.id, tx);
  } else {
    outcome.detail = "rejected";
  }
  auto callback = std::move(pending.callback);
  pending_.erase(it);
  if (callback) callback(outcome);
}

void NodeRtLayer::handle_teardown(const net::TeardownFrame& teardown) {
  if (teardown.is_ack) {
    return;  // our own teardown confirmed; nothing more to do
  }
  // Switch relays teardown notifications to the destination.
  rx_channels_.erase(teardown.rt_channel);
}

}  // namespace rtether::proto
