/// Ablation A2 — acceptance vs master:slave ratio.
///
/// The paper's experiment fixes 10 masters / 50 slaves. Here the 60-node
/// network is re-partitioned (M masters, 60−M slaves) at the paper's
/// channel parameters. Expectation: ADPS's advantage shrinks as the
/// topology becomes symmetric (M = 30 ⇒ no bottleneck to relieve) and is
/// maximal for few masters.

#include <cstdio>

#include "analysis/acceptance.hpp"
#include "common/table.hpp"

using namespace rtether;

int main() {
  std::puts("================================================================");
  std::puts("Ablation A2 — acceptance vs master:slave split (60 nodes,");
  std::puts("{P=100, C=3, d=40}, 200 requested, master->slave)");
  std::puts("================================================================");

  ConsoleTable table("A2: mean accepted at 200 requested");
  table.set_header(
      {"masters", "slaves", "SDPS", "ADPS", "ADPS/SDPS", "Upart (typical)"});

  for (const std::uint32_t masters : {2u, 5u, 10u, 15u, 20u, 30u}) {
    traffic::MasterSlaveConfig workload;
    workload.masters = masters;
    workload.slaves = 60 - masters;
    analysis::AcceptanceSweepConfig sweep;
    sweep.request_counts = {200};
    sweep.seeds = 5;

    const auto sdps = analysis::run_master_slave_sweep("SDPS", workload,
                                                       sweep);
    const auto adps = analysis::run_master_slave_sweep("ADPS", workload,
                                                       sweep);
    const double s = sdps.points[0].accepted_mean;
    const double a = adps.points[0].accepted_mean;
    // Typical load ratio = slaves:masters → Upart = S/(S+M) for
    // master→slave traffic (uplink of a master sees S/M times the load of
    // a slave downlink).
    const double upart =
        static_cast<double>(60 - masters) / 60.0;
    char ratio[32];
    char upart_text[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx", s > 0 ? a / s : 0.0);
    std::snprintf(upart_text, sizeof upart_text, "%.2f", upart);
    table.add(masters, 60 - masters, s, a, std::string(ratio),
              std::string(upart_text));
  }
  table.print();
  std::puts("reading: the fewer the masters, the stronger the bottleneck");
  std::puts("and the larger ADPS's edge; at a symmetric split the schemes");
  std::puts("coincide (Upart -> 1/2).\n");
  return 0;
}
