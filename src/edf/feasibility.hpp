#pragma once

/// @file feasibility.hpp
/// The two-constraint EDF feasibility test of paper §18.3.2:
///
///   1. utilization ΣC_i/P_i ≤ 1                       (Eq 18.2)
///   2. h(n, t) ≤ t for all t                          (Eq 18.3)
///
/// with the paper's two refinements of constraint 2: scan only the first
/// busy period (Eq 18.4) and only the deadline checkpoints (Eq 18.5), plus
/// the Liu & Layland shortcut — when every deadline equals its period,
/// constraint 1 alone is necessary and sufficient.
///
/// Three interchangeable scan strategies are provided so the ablation bench
/// can quantify the refinements and property tests can cross-validate them.

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "edf/task_set.hpp"

namespace rtether::edf {

/// How constraint 2 (demand criterion) is scanned.
enum class DemandScan {
  /// Every integer slot t in [1, busy period]. Correct but slow; the
  /// reference for cross-validation.
  kEverySlot,
  /// Only the checkpoints of Eq 18.5 within [1, busy period] — the paper's
  /// algorithm and the library default.
  kCheckpoints,
  /// Every integer slot t in [1, hyperperiod + max deadline]. Exhaustive
  /// oracle for tests; falls back to the busy-period bound when the
  /// hyperperiod overflows 64 bits.
  kExhaustive,
};

/// Why a task set was declared infeasible.
enum class InfeasibleReason {
  kNone,                 ///< feasible
  kUtilizationExceeded,  ///< constraint 1 violated (U > 1)
  kDemandExceeded,       ///< constraint 2 violated at `violation_time`
};

/// Outcome of a feasibility check, with enough detail for diagnostics and
/// for the admission controller's reject messages.
struct FeasibilityReport {
  bool feasible{false};
  InfeasibleReason reason{InfeasibleReason::kNone};
  /// Utilization of the task set (double — reporting only; the constraint
  /// itself is decided by `utilization_exceeds_one`).
  double utilization{0.0};
  /// First instant where h(n,t) > t (only for kDemandExceeded).
  std::optional<Slot> violation_time;
  /// Demand at the violating instant (only for kDemandExceeded).
  std::optional<Slot> violation_demand;
  /// Busy-period length actually scanned (0 when the Liu & Layland fast
  /// path or the utilization test decided).
  Slot scanned_bound{0};
  /// Number of demand evaluations performed (ablation metric).
  std::uint64_t demand_evaluations{0};
  /// True when the Liu & Layland implicit-deadline shortcut decided.
  bool used_utilization_fast_path{false};

  /// Human-readable one-line summary.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full two-constraint test with the chosen demand scan.
[[nodiscard]] FeasibilityReport check_feasibility(
    const TaskSet& set, DemandScan scan = DemandScan::kCheckpoints);

/// Convenience: true iff `check_feasibility(set, scan).feasible`.
[[nodiscard]] bool is_feasible(const TaskSet& set,
                               DemandScan scan = DemandScan::kCheckpoints);

}  // namespace rtether::edf
