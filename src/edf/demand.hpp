#pragma once

/// @file demand.hpp
/// The processor-demand (workload) function h(n, t) of paper Eq 18.3:
///
///   h(n, t) = Σ_{i : d_i ≤ t} (1 + ⌊(t − d_i) / P_i⌋) · C_i
///
/// i.e. the total capacity of all jobs released from the synchronous start
/// whose absolute deadlines fall at or before t. EDF feasibility on the link
/// is equivalent to h(n, t) ≤ t for all t (second constraint, §18.3.2).

#include "common/types.hpp"
#include "edf/task_set.hpp"

namespace rtether::edf {

/// Demand of a single task at time t (0 when t < deadline).
[[nodiscard]] Slot task_demand(const PseudoTask& task, Slot t);

/// h(n, t) over the whole task set.
[[nodiscard]] Slot demand(const TaskSet& set, Slot t);

}  // namespace rtether::edf
