#include "net/ipv4.hpp"

#include <gtest/gtest.h>

namespace rtether::net {
namespace {

Ipv4Header sample_ip() {
  Ipv4Header ip;
  ip.tos = 0;
  ip.total_length = 40;
  ip.identification = 0x1234;
  ip.ttl = 64;
  ip.protocol = IpProtocol::kUdp;
  ip.source = Ipv4Address(10, 0, 0, 1);
  ip.destination = Ipv4Address(10, 0, 0, 2);
  return ip;
}

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 → checksum 0x220d.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03,
                                       0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> data{0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 → sum 0x0402 → ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(InternetChecksum, ValidHeaderVerifiesToZero) {
  ByteWriter w;
  sample_ip().serialize(w);
  EXPECT_EQ(internet_checksum(w.bytes()), 0);
}

TEST(Ipv4Header, RoundTrip) {
  ByteWriter w;
  const auto original = sample_ip();
  original.serialize(w);
  ASSERT_EQ(w.size(), Ipv4Header::kWireSize);

  ByteReader r(w.bytes());
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tos, original.tos);
  EXPECT_EQ(parsed->total_length, original.total_length);
  EXPECT_EQ(parsed->identification, original.identification);
  EXPECT_EQ(parsed->ttl, original.ttl);
  EXPECT_EQ(parsed->protocol, original.protocol);
  EXPECT_EQ(parsed->source, original.source);
  EXPECT_EQ(parsed->destination, original.destination);
}

TEST(Ipv4Header, CorruptedChecksumRejected) {
  ByteWriter w;
  sample_ip().serialize(w);
  auto bytes = w.bytes();
  bytes[16] ^= 0x01;  // flip a destination-address bit
  ByteReader r(bytes);
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

TEST(Ipv4Header, WrongVersionRejected) {
  ByteWriter w;
  sample_ip().serialize(w);
  auto bytes = w.bytes();
  bytes[0] = 0x46;  // IHL 6 (options) unsupported
  ByteReader r(bytes);
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

TEST(Ipv4Header, ShortBufferRejected) {
  const std::vector<std::uint8_t> short_buf(10, 0);
  ByteReader r(short_buf);
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader udp;
  udp.source_port = 5004;
  udp.destination_port = 5005;
  udp.length = 30;
  udp.checksum = 0;
  ByteWriter w;
  udp.serialize(w);
  ASSERT_EQ(w.size(), UdpHeader::kWireSize);
  ByteReader r(w.bytes());
  const auto parsed = UdpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->source_port, 5004);
  EXPECT_EQ(parsed->destination_port, 5005);
  EXPECT_EQ(parsed->length, 30);
}

TEST(UdpDatagram, RoundTripFixesLengths) {
  UdpDatagram datagram;
  datagram.ip = sample_ip();
  datagram.udp.source_port = 1;
  datagram.udp.destination_port = 2;
  datagram.payload = {9, 9, 9, 9};

  const auto bytes = datagram.serialize();
  ASSERT_EQ(bytes.size(),
            Ipv4Header::kWireSize + UdpHeader::kWireSize + 4);

  const auto parsed = UdpDatagram::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, datagram.payload);
  EXPECT_EQ(parsed->ip.total_length, bytes.size());
  EXPECT_EQ(parsed->udp.length, UdpHeader::kWireSize + 4);
}

TEST(UdpDatagram, NonUdpProtocolRejected) {
  UdpDatagram datagram;
  datagram.ip = sample_ip();
  datagram.ip.protocol = IpProtocol::kTcp;
  const auto bytes = datagram.serialize();
  EXPECT_FALSE(UdpDatagram::parse(bytes).has_value());
}

TEST(UdpDatagram, TruncatedPayloadRejected) {
  UdpDatagram datagram;
  datagram.ip = sample_ip();
  datagram.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  auto bytes = datagram.serialize();
  bytes.resize(bytes.size() - 4);  // cut payload short of udp.length
  EXPECT_FALSE(UdpDatagram::parse(bytes).has_value());
}

}  // namespace
}  // namespace rtether::net
