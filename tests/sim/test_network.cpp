#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "net/deadline_codec.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"

namespace rtether::sim {
namespace {

SimFrame make_rt_frame(SimNetwork& net, NodeId from, NodeId to,
                       Tick absolute_deadline, std::uint16_t channel) {
  net::Ipv4Header ip;
  ip.protocol = net::IpProtocol::kUdp;
  ip.total_length = 1500;
  net::encode_rt_tag({absolute_deadline, ChannelId(channel)}, ip);
  net::EthernetHeader ethernet;
  ethernet.source = node_mac(from);
  ethernet.destination = node_mac(to);
  ethernet.ether_type = net::EtherType::kIpv4;
  ByteWriter w;
  ethernet.serialize(w);
  ip.serialize(w);
  return SimFrame::make(net.next_frame_id(), std::move(w).take(), 1466,
                        net.now(), from);
}

SimFrame make_be_frame(SimNetwork& net, NodeId from, net::MacAddress to) {
  net::EthernetHeader ethernet;
  ethernet.source = node_mac(from);
  ethernet.destination = to;
  ethernet.ether_type = net::EtherType::kIpv4;
  ByteWriter w;
  ethernet.serialize(w);
  return SimFrame::make(net.next_frame_id(), std::move(w).take(), 100,
                        net.now(), from);
}

SimConfig test_config() {
  return SimConfig{.ticks_per_slot = 100,
                   .propagation_ticks = 1,
                   .switch_processing_ticks = 2};
}

TEST(SimNetwork, DeliversRtFrameEndToEnd) {
  SimNetwork net(test_config(), 3);
  net.prime_forwarding();

  std::vector<std::uint64_t> received;
  Tick delivered_at = 0;
  net.node(NodeId{1}).set_receiver([&](const SimFrame& f, Tick now) {
    received.push_back(f.id);
    delivered_at = now;
  });

  auto frame = make_rt_frame(net, NodeId{0}, NodeId{1}, 100'000, 5);
  const auto id = frame.id;
  net.node(NodeId{0}).send_rt(100'000, std::move(frame));
  EXPECT_TRUE(net.simulator().run_all());

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], id);
  // uplink tx (100) + prop (1) + processing (2) + downlink tx (100) + prop
  // (1) = 204 ticks.
  EXPECT_EQ(delivered_at, 204u);
  EXPECT_EQ(net.ethernet_switch().stats().rt_forwarded, 1u);
}

TEST(SimNetwork, RecordsDeliveryStats) {
  SimNetwork net(test_config(), 3);
  net.prime_forwarding();
  net.stats().record_rt_sent(ChannelId(5));
  net.node(NodeId{0}).send_rt(
      100'000, make_rt_frame(net, NodeId{0}, NodeId{1}, 100'000, 5));
  EXPECT_TRUE(net.simulator().run_all());

  const auto stats = net.stats().channel(ChannelId(5));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->frames_sent, 1u);
  EXPECT_EQ(stats->frames_delivered, 1u);
  EXPECT_EQ(stats->deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(stats->delay_ticks.max(), 204.0);
}

TEST(SimNetwork, LateFrameCountsAsMiss) {
  SimNetwork net(test_config(), 3);
  net.prime_forwarding();
  net.set_miss_allowance(0);
  // Absolute deadline 50 ticks from now, but the path takes 204.
  net.node(NodeId{0}).send_rt(
      50, make_rt_frame(net, NodeId{0}, NodeId{1}, 50, 5));
  EXPECT_TRUE(net.simulator().run_all());
  const auto stats = net.stats().channel(ChannelId(5));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->deadline_misses, 1u);
  EXPECT_EQ(stats->worst_lateness_ticks, 204 - 50);
}

TEST(SimNetwork, SwitchEdfReordersByAbsoluteDeadline) {
  // Two senders converge on one downlink; the frame with the earlier
  // absolute deadline (from the IP header) must come out first even though
  // it arrives second.
  SimNetwork net(test_config(), 4);
  net.prime_forwarding();

  std::vector<std::uint16_t> order;
  net.node(NodeId{2}).set_receiver([&](const SimFrame& f, Tick) {
    order.push_back(f.info.rt_tag->channel.value());
  });

  // Node 0 sends channel 1 (late deadline) at t=0; node 1 sends channel 2
  // (early deadline) at t=0. Both arrive at the switch at t≈101; the
  // downlink transmits one at a time.
  net.node(NodeId{0}).send_rt(
      900'000, make_rt_frame(net, NodeId{0}, NodeId{2}, 900'000, 1));
  net.node(NodeId{0}).send_rt(
      900'000, make_rt_frame(net, NodeId{0}, NodeId{2}, 900'000, 1));
  net.node(NodeId{1}).send_rt(
      500, make_rt_frame(net, NodeId{1}, NodeId{2}, 500, 2));
  EXPECT_TRUE(net.simulator().run_all());

  ASSERT_EQ(order.size(), 3u);
  // The first channel-1 frame and the channel-2 frame reach the egress port
  // at the same tick; the port's same-tick arbitration must grant the wire
  // by EDF key, so channel 2 (deadline 500) beats both channel-1 frames
  // (deadline 900000) regardless of event execution order within the tick.
  // FCFS would give 1,1,2; the pre-arbitration transmitter gave 1,2,1.
  EXPECT_EQ(order, (std::vector<std::uint16_t>{2, 1, 1}));
}

TEST(SimNetwork, UnknownRtDestinationDropped) {
  SimNetwork net(test_config(), 3);  // forwarding NOT primed
  std::vector<std::uint64_t> received;
  net.node(NodeId{1}).set_receiver(
      [&](const SimFrame& f, Tick) { received.push_back(f.id); });
  net.node(NodeId{0}).send_rt(
      100'000, make_rt_frame(net, NodeId{0}, NodeId{1}, 100'000, 5));
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(net.ethernet_switch().stats().rt_dropped_unknown_destination,
            1u);
}

TEST(SimNetwork, UnknownBestEffortFloods) {
  SimNetwork net(test_config(), 4);
  int deliveries = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    net.node(NodeId{n}).set_receiver(
        [&](const SimFrame&, Tick) { ++deliveries; });
  }
  // Destination MAC never learned → flood to all ports except ingress.
  net.node(NodeId{0}).send_best_effort(
      make_be_frame(net, NodeId{0}, node_mac(NodeId{2})));
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_EQ(deliveries, 3);
  EXPECT_EQ(net.ethernet_switch().stats().flooded, 1u);
}

TEST(SimNetwork, LearnedUnicastGoesToOnePort) {
  SimNetwork net(test_config(), 4);
  int deliveries = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    net.node(NodeId{n}).set_receiver(
        [&](const SimFrame&, Tick) { ++deliveries; });
  }
  // Node 2 says something first so the switch learns its port.
  net.node(NodeId{2}).send_best_effort(
      make_be_frame(net, NodeId{2}, node_mac(NodeId{0})));
  EXPECT_TRUE(net.simulator().run_all());
  deliveries = 0;
  net.node(NodeId{0}).send_best_effort(
      make_be_frame(net, NodeId{0}, node_mac(NodeId{2})));
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_EQ(deliveries, 1);
}

TEST(SimNetwork, BroadcastFloods) {
  SimNetwork net(test_config(), 5);
  net.prime_forwarding();
  int deliveries = 0;
  for (std::uint32_t n = 0; n < 5; ++n) {
    net.node(NodeId{n}).set_receiver(
        [&](const SimFrame&, Tick) { ++deliveries; });
  }
  net.node(NodeId{0}).send_best_effort(
      make_be_frame(net, NodeId{0}, net::broadcast_mac()));
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_EQ(deliveries, 4);  // everyone but the sender
}

TEST(SimNetwork, FcfsBaselineModeBypassesEdf) {
  auto config = test_config();
  config.edf_enabled = false;
  SimNetwork net(config, 3);
  net.prime_forwarding();

  std::vector<std::uint16_t> order;
  net.node(NodeId{2}).set_receiver([&](const SimFrame& f, Tick) {
    order.push_back(f.info.rt_tag->channel.value());
  });
  // Same-uplink frames: EDF would send channel 2 (deadline 500) first;
  // FCFS keeps arrival order 1, 1, 2.
  net.node(NodeId{0}).send_rt(
      900'000, make_rt_frame(net, NodeId{0}, NodeId{2}, 900'000, 1));
  net.node(NodeId{0}).send_rt(
      900'000, make_rt_frame(net, NodeId{0}, NodeId{2}, 900'000, 1));
  net.node(NodeId{0}).send_rt(
      500, make_rt_frame(net, NodeId{0}, NodeId{2}, 500, 2));
  EXPECT_TRUE(net.simulator().run_all());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(SimNetwork, UtilizationAccounting) {
  SimNetwork net(test_config(), 2);
  net.prime_forwarding();
  for (int i = 0; i < 5; ++i) {
    net.node(NodeId{0}).send_rt(
        1'000'000, make_rt_frame(net, NodeId{0}, NodeId{1}, 1'000'000, 1));
  }
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_GT(net.uplink_utilization(NodeId{0}), 0.5);
  EXPECT_GT(net.downlink_utilization(NodeId{1}), 0.5);
  EXPECT_EQ(net.uplink_utilization(NodeId{1}), 0.0);
}

}  // namespace
}  // namespace rtether::sim
