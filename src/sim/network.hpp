#pragma once

/// @file network.hpp
/// The composed star network of Fig 18.1: N end-nodes, one full-duplex
/// switched-Ethernet switch, and the wiring between them (uplink →
/// propagation → switch ingress; switch port → propagation → node receive).
/// Owns the simulation kernel and the measurement layer. The wiring is the
/// kernel's typed event chain — transmitters schedule ingress/delivery
/// events directly; there are no per-hop callbacks to allocate or invoke.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/switch.hpp"

namespace rtether::sim {

class SimNetwork {
 public:
  /// Builds a star network with `node_count` end-nodes. `best_effort_depth`
  /// bounds every FCFS queue in the network (0 = unbounded).
  SimNetwork(SimConfig config, std::uint32_t node_count,
             std::size_t best_effort_depth = 0);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  [[nodiscard]] Simulator& simulator() { return simulator_; }
  [[nodiscard]] const Simulator& simulator() const { return simulator_; }
  [[nodiscard]] FrameArena& arena() { return simulator_.arena(); }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] Tick now() const { return simulator_.now(); }

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] SimNode& node(NodeId id);
  [[nodiscard]] const SimNode& node(NodeId id) const;
  [[nodiscard]] SimSwitch& ethernet_switch() { return *switch_; }
  [[nodiscard]] const SimSwitch& ethernet_switch() const { return *switch_; }

  [[nodiscard]] SimStats& stats() { return stats_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }

  /// Fresh network-unique frame ID.
  [[nodiscard]] std::uint64_t next_frame_id() { return next_frame_id_++; }

  /// Sets the T_latency allowance (ticks) used for miss accounting
  /// (default: `config.t_latency_ticks(true)`, the with-best-effort bound).
  void set_miss_allowance(Tick allowance) { miss_allowance_ = allowance; }
  [[nodiscard]] Tick miss_allowance() const { return miss_allowance_; }

  /// Convenience for tests that bypass channel establishment.
  void prime_forwarding() { switch_->prime_forwarding(node_count()); }

  /// Kernel dispatch target (EventType::kNodeDeliver): a frame arrives at
  /// `port`'s node — the measurement point for end-to-end statistics. The
  /// frame slot is released after the node's receive hook returns.
  /// Corrupted frames (fault injection) are discarded here, CRC-style,
  /// before any delivery record or receive hook.
  void deliver_to_node(FrameIndex frame, NodeId port);

  /// Books a fault-injected loss of `frame` against the right counter
  /// (per-channel for RT data, aggregate for best-effort). Callers release
  /// the frame slot themselves.
  void record_fault_drop(const SimFrame& frame);

  /// Fraction of elapsed time node `id`'s uplink transmitter was busy.
  [[nodiscard]] double uplink_utilization(NodeId id) const;

  /// Fraction of elapsed time the switch port toward `id` was busy.
  [[nodiscard]] double downlink_utilization(NodeId id) const;

 private:
  SimConfig config_;
  Simulator simulator_;
  SimStats stats_;
  std::unique_ptr<SimSwitch> switch_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::uint64_t next_frame_id_{1};
  Tick miss_allowance_{0};
};

}  // namespace rtether::sim
