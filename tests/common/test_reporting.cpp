#include <gtest/gtest.h>

#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace rtether {
namespace {

TEST(ConsoleTable, RendersAlignedCells) {
  ConsoleTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add("beta-long", 12345);
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Every data line must have equal width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '=') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(ConsoleTable, FormatsDoubles) {
  ConsoleTable t("doubles");
  t.set_header({"x"});
  t.add(3.14159);
  EXPECT_NE(t.render().find("3.142"), std::string::npos);
}

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write("a", 1, 2.5);
  EXPECT_EQ(out.str(), "a,1,2.500000\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  AsciiPlot plot("curve", "x", "y");
  PlotSeries s;
  s.name = "linear";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(2.0 * i);
  }
  plot.add_series(std::move(s));
  const std::string out = plot.render(40, 10);
  EXPECT_NE(out.find("== curve =="), std::string::npos);
  EXPECT_NE(out.find("* = linear"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("x: x"), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotSaysNoData) {
  AsciiPlot plot("empty", "x", "y");
  EXPECT_NE(plot.render().find("(no data)"), std::string::npos);
}

TEST(Units, SlotDurations) {
  // One maximal frame at 100 Mbit/s: 1538 B · 8 / 100 Mb/s = 123.04 µs.
  EXPECT_EQ(slot_duration_ns(LinkRate::kFast100M), 123'040u);
  EXPECT_EQ(slot_duration_ns(LinkRate::kGigabit), 12'304u);
  EXPECT_EQ(slots_to_us(100, LinkRate::kFast100M), 12'304u);
}

}  // namespace
}  // namespace rtether
