#include "sim/transmitter.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sim/network.hpp"
#include "sim/switch.hpp"

namespace rtether::sim {

Transmitter::Sink Transmitter::Sink::uplink(SimNetwork& network, NodeId node) {
  Sink sink;
  sink.kind = Kind::kUplinkToSwitch;
  sink.peer = node;
  sink.network = &network;
  return sink;
}

Transmitter::Sink Transmitter::Sink::port(SimNetwork& network, NodeId node) {
  Sink sink;
  sink.kind = Kind::kPortToNode;
  sink.peer = node;
  sink.network = &network;
  return sink;
}

Transmitter::Sink Transmitter::Sink::custom(CustomFn fn, void* context) {
  Sink sink;
  sink.kind = Kind::kCustom;
  sink.fn = fn;
  sink.context = context;
  return sink;
}

Transmitter::Transmitter(Simulator& simulator, const SimConfig& config,
                         std::string name, Sink sink,
                         std::size_t best_effort_depth)
    : simulator_(simulator),
      config_(config),
      name_(std::move(name)),
      sink_(sink),
      best_effort_queue_(best_effort_depth) {
  RTETHER_ASSERT(sink_.kind != Sink::Kind::kCustom || sink_.fn != nullptr);
  RTETHER_ASSERT(sink_.kind == Sink::Kind::kCustom || sink_.network != nullptr);
}

void Transmitter::enqueue_rt(Tick deadline_key, FrameIndex frame) {
  rt_queue_.push(deadline_key, frame);
  stats_.max_rt_queue_depth =
      std::max(stats_.max_rt_queue_depth, rt_queue_.size());
  schedule_start();
}

void Transmitter::enqueue_best_effort(FrameIndex frame) {
  if (best_effort_queue_.push(frame)) {
    stats_.max_best_effort_queue_depth = std::max(
        stats_.max_best_effort_queue_depth, best_effort_queue_.size());
  } else {
    // Bounded queue overflow: the frame is dropped here and its slot goes
    // back to the pool.
    simulator_.arena().release(frame);
  }
  schedule_start();
}

void Transmitter::schedule_start() {
  // Defer the start-of-transmission decision to a same-tick arbitration
  // event instead of grabbing the wire inline. Two frames released at the
  // same tick used to be served in *event execution* order: the first
  // enqueue found the link idle and started transmitting even when the
  // second had the earlier EDF deadline — a full slot of priority-inversion
  // blocking the per-link analysis (Eqs 18.2–18.5) does not account for,
  // found by the scenario fuzzer as a real deadline miss (seed 37 of the
  // default campaign, minimized to two zero-slack channels sharing an
  // uplink). With the deferral, every release scheduled at tick T runs
  // before the arbitration event created at T, so service starts — still at
  // tick T — with the true EDF minimum of everything available.
  if (busy_ || start_pending_) {
    return;
  }
  // Nothing queued (a completion with both queues drained — the common
  // case in sparse periodic traffic): don't burn an event; the next
  // enqueue schedules its own arbitration.
  if (rt_queue_.empty() && best_effort_queue_.empty()) {
    return;
  }
  start_pending_ = true;
  simulator_.schedule_event(simulator_.now(), EventType::kArbitrate, this);
}

void Transmitter::arbitrate() {
  start_pending_ = false;
  try_start();
}

void Transmitter::try_start() {
  if (busy_) {
    return;  // non-preemptive: the in-flight frame finishes first
  }
  // Strict priority: RT (EDF order) before best-effort (FCFS order). Each
  // queue is consulted with a single move-out pop.
  FrameIndex frame = rt_queue_.pop();
  const bool is_rt = frame != kNoFrame;
  if (!is_rt) {
    frame = best_effort_queue_.pop();
  }
  if (frame == kNoFrame) {
    return;
  }

  busy_ = true;
  const Tick tx_ticks =
      config_.transmission_ticks(simulator_.arena().get(frame).wire_bytes());
  stats_.busy_ticks += tx_ticks;
  if (is_rt) {
    ++stats_.rt_frames_sent;
  } else {
    ++stats_.best_effort_frames_sent;
  }

  // The frame rides the completion event by index; no copy, no closure.
  simulator_.schedule_event(simulator_.now() + tx_ticks,
                            EventType::kTxComplete, this, frame);
}

void Transmitter::complete(FrameIndex frame) {
  busy_ = false;
  const Tick completion = simulator_.now();
  Tick propagation = config_.propagation_ticks;
  if (fault_fn_ != nullptr) {
    const FaultDecision fault =
        fault_fn_(fault_context_, simulator_.arena().get(frame), completion);
    if (fault.drop) {
      // The frame consumed its wire time above; losing it here removes
      // load downstream but never adds blocking — the survival contract's
      // zero-miss guarantee rests on this.
      if (sink_.kind != Sink::Kind::kCustom) {
        sink_.network->record_fault_drop(simulator_.arena().get(frame));
      }
      simulator_.arena().release(frame);
      schedule_start();
      return;
    }
    if (fault.corrupt) {
      simulator_.arena().get(frame).corrupted = true;
    }
    propagation += fault.extra_delay;
  }
  switch (sink_.kind) {
    case Sink::Kind::kUplinkToSwitch:
      // Store-and-forward hand-off: the frame reaches the switch after one
      // propagation delay.
      simulator_.schedule_event(completion + propagation,
                                EventType::kSwitchIngress,
                                &sink_.network->ethernet_switch(), frame,
                                sink_.peer.value());
      break;
    case Sink::Kind::kPortToNode:
      // The frame reaches the destination node (and the measurement layer)
      // after one propagation delay.
      simulator_.schedule_event(completion + propagation,
                                EventType::kNodeDeliver, sink_.network, frame,
                                sink_.peer.value());
      break;
    case Sink::Kind::kCustom:
      sink_.fn(sink_.context, simulator_.arena().get(frame), completion);
      simulator_.arena().release(frame);
      break;
  }
  schedule_start();
}

}  // namespace rtether::sim
