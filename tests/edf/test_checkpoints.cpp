#include "edf/checkpoints.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "edf/demand.hpp"

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

// Paper Eq 18.5: t ∈ ∪_i {m·P_i + d_i : m = 0,1,…} within [1, bound].

TEST(Checkpoints, SingleTaskSeries) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  const auto points = checkpoints(set, 400);
  EXPECT_EQ(points, (std::vector<Slot>{40, 140, 240, 340}));
}

TEST(Checkpoints, MergesAndDeduplicates) {
  TaskSet set;
  set.add(task(1, 10, 1, 10));
  set.add(task(2, 5, 1, 5));
  // Task1: 10,20,30; task2: 5,10,15,20,25,30 — union without duplicates.
  const auto points = checkpoints(set, 30);
  EXPECT_EQ(points, (std::vector<Slot>{5, 10, 15, 20, 25, 30}));
}

TEST(Checkpoints, RespectsBound) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  EXPECT_TRUE(checkpoints(set, 39).empty());
  EXPECT_EQ(checkpoints(set, 40).size(), 1u);
  EXPECT_EQ(checkpoints(set, 139).size(), 1u);
  EXPECT_EQ(checkpoints(set, 140).size(), 2u);
}

TEST(Checkpoints, SortedAscending) {
  TaskSet set;
  set.add(task(1, 7, 1, 3));
  set.add(task(2, 11, 2, 9));
  set.add(task(3, 13, 3, 5));
  const auto points = checkpoints(set, 200);
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  EXPECT_TRUE(std::adjacent_find(points.begin(), points.end()) ==
              points.end());
}

TEST(Checkpoints, EmptySet) {
  const TaskSet set;
  EXPECT_TRUE(checkpoints(set, 1000).empty());
}

TEST(Checkpoints, DemandOnlyStepsAtCheckpoints) {
  // The justification for Eq 18.5: h(n,·) is constant between consecutive
  // checkpoints, so testing only checkpoints loses nothing.
  TaskSet set;
  set.add(task(1, 7, 2, 5));
  set.add(task(2, 11, 3, 9));
  const Slot bound = 154;  // two hyperperiods
  const auto points = checkpoints(set, bound);
  std::size_t next = 0;
  Slot current = demand(set, 0);
  for (Slot t = 1; t <= bound; ++t) {
    const Slot h = demand(set, t);
    if (h != current) {
      // A step happened at t — t must be a checkpoint.
      ASSERT_LT(next, points.size());
      EXPECT_EQ(points[next], t) << "demand stepped off-checkpoint at t=" << t;
      ++next;
      current = h;
    } else if (next < points.size() && points[next] == t) {
      // Checkpoint without a step is allowed only if another task's
      // checkpoint coincides — here it means duplicate sources; accept.
      ++next;
    }
  }
}

TEST(Checkpoints, UpperBoundCountsPerTask) {
  TaskSet set;
  set.add(task(1, 10, 1, 10));
  set.add(task(2, 5, 1, 5));
  // Task1: 3 points ≤ 30; task2: 6 points ≤ 30 → upper bound 9 (dups
  // counted per task).
  EXPECT_EQ(checkpoint_count_upper_bound(set, 30), 9u);
  EXPECT_EQ(checkpoints(set, 30).size(), 6u);
}

TEST(Checkpoints, DeadlineBeyondBoundContributesNothing) {
  TaskSet set;
  set.add(task(1, 10, 1, 50));
  EXPECT_EQ(checkpoint_count_upper_bound(set, 30), 0u);
  EXPECT_TRUE(checkpoints(set, 30).empty());
}

}  // namespace
}  // namespace rtether::edf
