#pragma once

/// @file ipv4.hpp
/// IPv4 and UDP headers. The RT layer transmits real-time data as ordinary
/// UDP/IP datagrams (paper §18.2.1) whose IP header fields it repurposes to
/// carry the absolute deadline and RT channel ID (§18.2.2, see
/// deadline_codec.hpp). Serialization is byte-exact, checksums included, so
/// the simulated frames are valid IPv4 on the wire.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "net/address.hpp"

namespace rtether::net {

/// IP protocol numbers used by the stack.
enum class IpProtocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// IPv4 header without options (IHL = 5).
struct Ipv4Header {
  /// Type-of-service octet; 255 marks an RT frame (paper §18.2.2).
  std::uint8_t tos{0};
  /// Total length: header + payload, bytes.
  std::uint16_t total_length{0};
  std::uint16_t identification{0};
  std::uint8_t ttl{64};
  IpProtocol protocol{IpProtocol::kUdp};
  Ipv4Address source;
  Ipv4Address destination;

  static constexpr std::size_t kWireSize = 20;

  /// Appends the 20 header bytes with a correct header checksum.
  void serialize(ByteWriter& out) const;

  /// Parses and consumes 20 bytes; verifies version/IHL and the header
  /// checksum; nullopt on any mismatch.
  static std::optional<Ipv4Header> parse(ByteReader& in);
};

/// UDP header.
struct UdpHeader {
  std::uint16_t source_port{0};
  std::uint16_t destination_port{0};
  /// Header + payload, bytes.
  std::uint16_t length{8};
  /// Checksum is optional in IPv4 UDP; the RT layer leaves it zero
  /// (disabled) exactly because the IP pseudo-header it would cover is
  /// repurposed for deadline bits that change hop by hop.
  std::uint16_t checksum{0};

  static constexpr std::size_t kWireSize = 8;

  void serialize(ByteWriter& out) const;
  static std::optional<UdpHeader> parse(ByteReader& in);
};

/// RFC 1071 ones'-complement checksum over a byte span (odd length padded
/// with a zero byte).
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> bytes);

/// A UDP/IPv4 datagram as carried in an Ethernet payload.
struct UdpDatagram {
  Ipv4Header ip;
  UdpHeader udp;
  std::vector<std::uint8_t> payload;

  /// Serializes with consistent length fields and IP checksum.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses an IPv4+UDP datagram; nullopt on malformed input.
  static std::optional<UdpDatagram> parse(std::span<const std::uint8_t> bytes);
};

}  // namespace rtether::net
