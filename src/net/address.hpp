#pragma once

/// @file address.hpp
/// MAC and IPv4 address value types with parsing/formatting, as used by the
/// establishment frames (Fig 18.3) and the RT deadline encoding (§18.2.2).

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/assert.hpp"

namespace rtether::net {

/// 48-bit IEEE MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;

  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// From the low 48 bits of an integer (high 16 bits must be zero).
  /// Inline: runs per simulated frame on the classification hot path.
  static constexpr MacAddress from_u48(std::uint64_t value) {
    RTETHER_ASSERT_MSG((value >> 48) == 0, "MAC value exceeds 48 bits");
    std::array<std::uint8_t, 6> octets{};
    for (std::size_t i = 0; i < 6; ++i) {
      octets[i] = static_cast<std::uint8_t>(value >> (40 - 8 * i));
    }
    return MacAddress(octets);
  }

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive); nullopt on syntax error.
  static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }

  /// The address as the low 48 bits of a u64.
  [[nodiscard]] constexpr std::uint64_t to_u48() const {
    std::uint64_t value = 0;
    for (const auto octet : octets_) {
      value = value << 8 | octet;
    }
    return value;
  }

  /// "aa:bb:cc:dd:ee:ff" (lowercase).
  [[nodiscard]] std::string to_string() const;

  /// True for ff:ff:ff:ff:ff:ff.
  [[nodiscard]] constexpr bool is_broadcast() const {
    return to_u48() == 0xffff'ffff'ffffULL;
  }

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// Broadcast MAC constant.
[[nodiscard]] MacAddress broadcast_mac();

/// 32-bit IPv4 address.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;

  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 |
               static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 |
               static_cast<std::uint32_t>(d)) {}

  /// Parses dotted-quad "a.b.c.d"; nullopt on syntax error.
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// "a.b.c.d".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&,
                                    const Ipv4Address&) = default;

 private:
  std::uint32_t value_{0};
};

}  // namespace rtether::net

namespace std {

template <>
struct hash<rtether::net::MacAddress> {
  size_t operator()(const rtether::net::MacAddress& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.to_u48());
  }
};

template <>
struct hash<rtether::net::Ipv4Address> {
  size_t operator()(const rtether::net::Ipv4Address& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};

}  // namespace std
