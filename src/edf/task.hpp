#pragma once

/// @file task.hpp
/// The pseudo-task abstraction of paper §18.3.2/§18.4: each RT channel is
/// split into an uplink task and a downlink task; each full-duplex link
/// direction acts as an independent single "processor" scheduling its tasks
/// with EDF. Capacity C plays the role of worst-case execution time.

#include "common/assert.hpp"
#include "common/types.hpp"

namespace rtether::edf {

/// One periodic pseudo-task on one link direction. All quantities are in
/// slots (maximum-sized-frame transmission times), exactly as in the paper.
struct PseudoTask {
  /// RT channel this task was derived from (Fig 18.3's 16-bit channel ID).
  ChannelId channel;
  /// Period P_i: one message of C_i frames is released every `period` slots.
  Slot period{0};
  /// Capacity C_i: frames per period; the task's WCET on the link.
  Slot capacity{0};
  /// Relative deadline on this link: d_iu or d_id depending on direction.
  Slot deadline{0};

  /// Structural sanity: period and capacity positive, capacity within the
  /// period (a link cannot carry more than one frame per slot).
  [[nodiscard]] bool valid() const {
    return period > 0 && capacity > 0 && capacity <= period && deadline > 0;
  }

  /// True when EDF's constrained-deadline assumption d ≤ P holds.
  [[nodiscard]] bool constrained() const { return deadline <= period; }

  friend bool operator==(const PseudoTask&, const PseudoTask&) = default;
};

}  // namespace rtether::edf
