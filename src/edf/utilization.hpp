#pragma once

/// @file utilization.hpp
/// Constraint 1 of the feasibility test (paper Eq 18.2): ΣC_i/P_i ≤ 1.
///
/// Evaluating the sum in floating point would make boundary admissions
/// (U exactly 1) depend on summation order; evaluating it as one exact
/// fraction can overflow any fixed width (the common denominator is the lcm
/// of the periods, which explodes for coprime period sets). The test here
/// is exact whenever the running denominator fits in 128 bits — which
/// covers every realistic industrial period set — and otherwise falls back
/// to a fixed-point *upper bound* on U, i.e. it degrades by rejecting a
/// borderline-feasible set (by < n·2⁻³², never the other way). Admission
/// control must never accept an infeasible set; conservatively rejecting a
/// pathological one is the safe failure mode.

#include "edf/task_set.hpp"

namespace rtether::edf {

/// True iff ΣC_i/P_i > 1 (with the conservative fallback described above,
/// which can only turn "≤ 1 by a hair" into "exceeds").
[[nodiscard]] bool utilization_exceeds_one(const TaskSet& set);

}  // namespace rtether::edf
