#include "proto/stack.hpp"

#include "common/assert.hpp"

namespace rtether::proto {

Stack::Stack(sim::SimConfig config, std::uint32_t node_count,
             std::unique_ptr<core::DeadlinePartitioner> partitioner,
             core::AdmissionConfig admission, std::size_t best_effort_depth,
             RtLayerConfig layer_config)
    : Stack(config, node_count,
            core::make_admission_backend("controller", node_count,
                                         std::move(partitioner),
                                         core::BackendConfig{admission}),
            best_effort_depth, layer_config) {}

Stack::Stack(sim::SimConfig config, std::uint32_t node_count,
             std::unique_ptr<core::AdmissionBackend> backend,
             std::size_t best_effort_depth, RtLayerConfig layer_config) {
  network_ = std::make_unique<sim::SimNetwork>(config, node_count,
                                               best_effort_depth);
  layers_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    layers_.push_back(std::make_unique<NodeRtLayer>(*network_, NodeId{n},
                                                    layer_config));
  }
  mgmt_ = std::make_unique<SwitchMgmt>(*network_, std::move(backend));
}

NodeRtLayer& Stack::layer(NodeId node) {
  RTETHER_ASSERT(node.value() < layers_.size());
  return *layers_[node.value()];
}

Expected<EstablishedChannel, std::string> Stack::establish(
    NodeId source, NodeId destination, Slot period, Slot capacity,
    Slot deadline) {
  bool done = false;
  SetupOutcome outcome;
  layer(source).request_channel(destination, period, capacity, deadline,
                                [&](const SetupOutcome& result) {
                                  done = true;
                                  outcome = result;
                                });
  // Drive the simulation until the protocol completes; the RT layer's
  // timeout guarantees termination even if frames are dropped.
  while (!done && network_->simulator().step()) {
  }
  if (!done) {
    return Unexpected(std::string("simulation drained without a response"));
  }
  if (!outcome.accepted) {
    return Unexpected(outcome.detail.empty() ? std::string("rejected")
                                             : outcome.detail);
  }
  EstablishedChannel channel;
  channel.id = outcome.channel;
  channel.source = source;
  channel.destination = destination;
  channel.period = period;
  channel.capacity = capacity;
  channel.deadline = deadline;
  channel.uplink_deadline = outcome.uplink_deadline;
  return channel;
}

void Stack::teardown(const EstablishedChannel& channel) {
  layer(channel.source).teardown_channel(channel.id);
  // Run until the switch has processed the teardown.
  while (network_->simulator().step()) {
    if (!mgmt_->admission().state().find_channel(channel.id).has_value()) {
      break;
    }
  }
}

}  // namespace rtether::proto
