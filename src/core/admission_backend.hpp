#pragma once

/// @file admission_backend.hpp
/// One front door for every admission implementation. The repo grew four
/// entry points with four shapes — `AdmissionController::request`,
/// `AdmissionEngine::admit_batch`, `ParallelAdmissionEngine::process` and
/// the resident `AdmissionService` — all contractually bit-identical.
/// `AdmissionBackend` fronts them with a single vocabulary (`ChannelOp` in,
/// typed `Expected` outcomes out), so the scenario runner, the benches and
/// the examples drive any implementation through the same code path, and
/// conformance campaigns can diff backends pairwise without bespoke glue.
///
/// Synchronous `submit`/`admit`/`release` work on every backend; the async
/// `submit_async → Ticket` surface is native on the service and emulated
/// (execute-then-complete) elsewhere, so callers can be written
/// ticket-first and stay backend-agnostic.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/admission.hpp"
#include "core/admission_service.hpp"
#include "core/network_state.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {

class GateScheduleAdmission;

/// Tuning knobs shared by every backend; each kind reads the subset that
/// applies to it.
struct BackendConfig {
  AdmissionConfig admission{};
  /// Worker threads for the parallel engine / shard workers for the
  /// service. Ignored by the sequential kinds.
  unsigned threads{2};
  /// Minimum admit-run length before the parallel engine shards a batch.
  std::size_t min_parallel_batch{64};
  /// Ingest/reorder-buffer depth for the service kind.
  std::size_t service_queue_capacity{4096};
};

class AdmissionBackend {
 public:
  virtual ~AdmissionBackend() = default;

  /// Factory kind this backend was created as ("controller", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Drives a mixed admit/release stream to completion; outcomes are in
  /// per-kind submission order and bit-identical across backends.
  [[nodiscard]] virtual ChurnResult submit(std::span<const ChannelOp> ops) = 0;

  [[nodiscard]] virtual AdmitOutcome admit(const ChannelSpec& spec) = 0;
  [[nodiscard]] virtual ReleaseOutcome release(ChannelId id) = 0;

  /// True when `submit_async` completes tickets concurrently rather than
  /// inline.
  [[nodiscard]] virtual bool supports_async() const { return false; }

  /// Async submission. The default emulation executes the op synchronously
  /// and returns a pre-completed ticket, so ticket-first callers run
  /// unchanged on synchronous backends.
  [[nodiscard]] virtual Ticket submit_async(const ChannelOp& op);

  /// Blocks until all previously submitted ops have completed. No-op on
  /// synchronous backends.
  virtual void drain() {}

  /// Admitted-state snapshot / running stats; async backends drain first.
  [[nodiscard]] virtual const NetworkState& state() = 0;
  [[nodiscard]] virtual const AdmissionStats& stats() = 0;
  [[nodiscard]] virtual const DeadlinePartitioner& partitioner() const = 0;

  /// Forgets every live channel and returns the ID allocator to its
  /// initial state — the admission half of a switch reboot (volatile
  /// channel table lost; scheme and config survive in firmware).
  /// Post-reset decisions are bit-identical to a freshly constructed
  /// backend of the same kind. Running stats keep counting, except on the
  /// resident service, which resets by releasing every live channel (its
  /// `released` counter advances accordingly).
  virtual void reset() = 0;

  /// The gate-schedule synthesizer when this backend is the "tt" kind —
  /// lets the simulator install the admitted gate tables. nullptr on the
  /// EDF kinds.
  [[nodiscard]] virtual const GateScheduleAdmission* gate_schedule() const {
    return nullptr;
  }
};

/// The EDF factory kinds, in the order conformance campaigns run them. All
/// four are contractually bit-identical to the reference controller; the
/// rival "tt" scheme is a factory kind too, but deliberately not listed
/// here — its decisions differ by design.
[[nodiscard]] std::span<const std::string_view> backend_kinds();

/// Creates a backend:
///   "controller" — the reference `AdmissionController`, one op at a time;
///   "batched"    — `AdmissionEngine`, runs of admits via `admit_batch`;
///   "parallel"   — `ParallelAdmissionEngine::process`;
///   "service"    — resident `AdmissionService` (native async);
///   "tt"         — `GateScheduleAdmission`, the time-triggered rival
///                  scheme (gate-window synthesis instead of EDF demand
///                  bounds; decisions intentionally differ from the four
///                  EDF kinds).
/// Returns nullptr for an unknown kind.
[[nodiscard]] std::unique_ptr<AdmissionBackend> make_admission_backend(
    std::string_view kind, std::uint32_t node_count,
    std::unique_ptr<DeadlinePartitioner> partitioner,
    const BackendConfig& config = {});

}  // namespace rtether::core
