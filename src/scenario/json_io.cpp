#include "scenario/json_io.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json_writer.hpp"

namespace rtether::scenario {

std::string to_json(const ScenarioSpec& spec) {
  JsonWriter json;
  json.begin_object();
  json.member("schema", kScenarioSchema);
  json.member("seed", spec.seed);
  json.member("name", spec.name);
  json.member("scheme", spec.scheme);

  json.key("topology").begin_object();
  json.member("kind", to_string(spec.topology.kind));
  json.member("switches", static_cast<std::uint64_t>(spec.topology.switches));
  json.member("nodes", static_cast<std::uint64_t>(spec.topology.nodes));
  json.end_object();

  json.key("sim").begin_object();
  json.member("simulate", spec.simulate);
  json.member("run_slots", spec.run_slots);
  json.member("ticks_per_slot", spec.ticks_per_slot);
  json.member("with_best_effort", spec.with_best_effort);
  json.member("best_effort_load", spec.best_effort_load);
  json.member("bursty_best_effort", spec.bursty_best_effort);
  json.end_object();

  // Emitted only when present so every pre-fault corpus entry stays
  // byte-identical under a save/load round-trip.
  if (!spec.faults.empty()) {
    json.key("faults").begin_array();
    for (const auto& fault : spec.faults) {
      json.begin_object();
      json.member("kind", sim::to_string(fault.kind));
      json.member("node", static_cast<std::uint64_t>(fault.node.value()));
      switch (fault.kind) {
        case sim::FaultKind::kLinkDown:
          json.member("at_slot", fault.at_slot);
          json.member("duration_slots", fault.duration_slots);
          json.member("downlink", fault.downlink);
          break;
        case sim::FaultKind::kFrameLoss:
        case sim::FaultKind::kFrameCorrupt:
          json.member("at_slot", fault.at_slot);
          json.member("duration_slots", fault.duration_slots);
          json.member("downlink", fault.downlink);
          json.member("probability", fault.probability);
          break;
        case sim::FaultKind::kSwitchReboot:
        case sim::FaultKind::kNodeCrash:
          json.member("at_slot", fault.at_slot);
          break;
        case sim::FaultKind::kMgmtDelay:
          json.member("delay_ticks", fault.delay_ticks);
          break;
      }
      json.end_object();
    }
    json.end_array();
  }

  json.key("ops").begin_array();
  for (const auto& op : spec.ops) {
    json.begin_object();
    if (op.kind == ScenarioOp::Kind::kAdmit) {
      json.member("op", "admit");
      json.member("source", static_cast<std::uint64_t>(op.spec.source.value()));
      json.member("destination",
                  static_cast<std::uint64_t>(op.spec.destination.value()));
      json.member("period", op.spec.period);
      json.member("capacity", op.spec.capacity);
      json.member("deadline", op.spec.deadline);
    } else {
      json.member("op", "release");
      if (op.target != ScenarioOp::kNoTarget) {
        json.member("target", static_cast<std::uint64_t>(op.target));
      } else {
        json.member("raw_id", static_cast<std::uint64_t>(op.raw_id));
      }
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

namespace {

/// Schema-scoped recursive-descent JSON reader. Tracks the cursor so errors
/// name an offset; every parse_* either advances past a valid construct or
/// fails the whole document.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  bool fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      error_ = "offset " + std::to_string(pos_) + ": " + why;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  /// True (and consumes) when the next non-space char is `c`.
  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Strings in this schema are plain (scheme names, kinds, file tags); the
  /// mandatory escapes are decoded, anything exotic is rejected.
  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            return fail("unsupported escape in scenario string");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_u64(std::uint64_t& out) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec == std::errc::result_out_of_range) {
      // A corpus value past 2⁶⁴−1 must fail loudly, never wrap into a
      // different (silently passing) scenario.
      return fail("unsigned integer out of 64-bit range");
    }
    if (ec != std::errc{} || ptr == begin) {
      return fail("expected unsigned integer");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  /// parse_u64 with an inclusive range check: value drift in a corpus
  /// entry must fail as loudly as key drift (a truncated raw_id or node
  /// count would silently test a different scenario).
  bool parse_bounded(std::uint64_t max, std::uint64_t& out) {
    if (!parse_u64(out)) return false;
    if (out > max) {
      return fail("integer " + std::to_string(out) + " exceeds field max " +
                  std::to_string(max));
    }
    return true;
  }

  bool parse_double(double& out) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec == std::errc::result_out_of_range) {
      return fail("number out of double range");
    }
    if (ec != std::errc{} || ptr == begin) {
      return fail("expected number");
    }
    // from_chars accepts the strtod spellings "inf"/"nan"; JSON has no
    // non-finite numbers and no downstream consumer can do arithmetic on
    // them — reject instead of propagating a poison value.
    if (!std::isfinite(out)) {
      return fail("non-finite number");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  bool parse_bool(bool& out) {
    skip_ws();
    if (text_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      out = true;
      return true;
    }
    if (text_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      out = false;
      return true;
    }
    return fail("expected true/false");
  }

  /// Drives `member(key)` over an object's entries; `member` must consume
  /// exactly the value and return false (after `fail`) on unknown keys.
  template <typename Member>
  bool parse_object(Member&& member) {
    if (!expect('{')) return false;
    if (accept('}')) return true;
    do {
      std::string key;
      if (!parse_string(key)) return false;
      if (!expect(':')) return false;
      if (!member(key)) return false;
    } while (accept(','));
    return expect('}');
  }

  template <typename Element>
  bool parse_array(Element&& element) {
    if (!expect('[')) return false;
    if (accept(']')) return true;
    do {
      if (!element()) return false;
    } while (accept(','));
    return expect(']');
  }

 private:
  std::string_view text_;
  std::size_t pos_{0};
  bool failed_{false};
  std::string error_;
};

bool parse_topology(Reader& reader, TopologySpec& topology) {
  return reader.parse_object([&](const std::string& key) {
    if (key == "kind") {
      std::string kind;
      if (!reader.parse_string(kind)) return false;
      if (kind == "star") {
        topology.kind = TopologyKind::kStar;
      } else if (kind == "line") {
        topology.kind = TopologyKind::kSwitchLine;
      } else if (kind == "tree") {
        topology.kind = TopologyKind::kSwitchTree;
      } else {
        return reader.fail("unknown topology kind '" + kind + "'");
      }
      return true;
    }
    std::uint64_t value = 0;
    constexpr std::uint64_t kMax32 = 0xffffffffULL;
    if (key == "switches") {
      if (!reader.parse_bounded(kMax32, value)) return false;
      topology.switches = static_cast<std::uint32_t>(value);
      return true;
    }
    if (key == "nodes") {
      if (!reader.parse_bounded(kMax32, value)) return false;
      topology.nodes = static_cast<std::uint32_t>(value);
      return true;
    }
    return reader.fail("unknown topology key '" + key + "'");
  });
}

bool parse_sim(Reader& reader, ScenarioSpec& spec) {
  return reader.parse_object([&](const std::string& key) {
    if (key == "simulate") return reader.parse_bool(spec.simulate);
    if (key == "run_slots") return reader.parse_u64(spec.run_slots);
    if (key == "ticks_per_slot") return reader.parse_u64(spec.ticks_per_slot);
    if (key == "with_best_effort") {
      return reader.parse_bool(spec.with_best_effort);
    }
    if (key == "best_effort_load") {
      if (!reader.parse_double(spec.best_effort_load)) return false;
      if (spec.best_effort_load < 0.0 || spec.best_effort_load > 1.0e6) {
        return reader.fail("best_effort_load out of range [0, 1e6]");
      }
      return true;
    }
    if (key == "bursty_best_effort") {
      return reader.parse_bool(spec.bursty_best_effort);
    }
    return reader.fail("unknown sim key '" + key + "'");
  });
}

bool parse_op(Reader& reader, ScenarioOp& op) {
  bool saw_kind = false;
  const bool ok = reader.parse_object([&](const std::string& key) {
    std::uint64_t value = 0;
    constexpr std::uint64_t kMax32 = 0xffffffffULL;
    if (key == "op") {
      std::string kind;
      if (!reader.parse_string(kind)) return false;
      if (kind == "admit") {
        op.kind = ScenarioOp::Kind::kAdmit;
      } else if (kind == "release") {
        op.kind = ScenarioOp::Kind::kRelease;
      } else {
        return reader.fail("unknown op '" + kind + "'");
      }
      saw_kind = true;
      return true;
    }
    if (key == "source") {
      if (!reader.parse_bounded(kMax32, value)) return false;
      op.spec.source = NodeId{static_cast<std::uint32_t>(value)};
      return true;
    }
    if (key == "destination") {
      if (!reader.parse_bounded(kMax32, value)) return false;
      op.spec.destination = NodeId{static_cast<std::uint32_t>(value)};
      return true;
    }
    if (key == "period") return reader.parse_u64(op.spec.period);
    if (key == "capacity") return reader.parse_u64(op.spec.capacity);
    if (key == "deadline") return reader.parse_u64(op.spec.deadline);
    if (key == "target") {
      if (!reader.parse_bounded(kMax32, value)) return false;
      op.target = static_cast<std::uint32_t>(value);
      return true;
    }
    if (key == "raw_id") {
      if (!reader.parse_bounded(0xffffULL, value)) return false;
      op.raw_id = static_cast<std::uint16_t>(value);
      return true;
    }
    return reader.fail("unknown op key '" + key + "'");
  });
  if (!ok) return false;
  if (!saw_kind) return reader.fail("op without an \"op\" kind");
  return true;
}

bool parse_fault(Reader& reader, sim::FaultEvent& fault) {
  bool saw_kind = false;
  const bool ok = reader.parse_object([&](const std::string& key) {
    std::uint64_t value = 0;
    if (key == "kind") {
      std::string kind;
      if (!reader.parse_string(kind)) return false;
      const auto parsed = sim::fault_kind_from_string(kind);
      if (!parsed.has_value()) {
        return reader.fail("unknown fault kind '" + kind + "'");
      }
      fault.kind = *parsed;
      saw_kind = true;
      return true;
    }
    if (key == "node") {
      if (!reader.parse_bounded(0xffffffffULL, value)) return false;
      fault.node = NodeId{static_cast<std::uint32_t>(value)};
      return true;
    }
    if (key == "at_slot") return reader.parse_u64(fault.at_slot);
    if (key == "duration_slots") return reader.parse_u64(fault.duration_slots);
    if (key == "downlink") return reader.parse_bool(fault.downlink);
    if (key == "probability") {
      if (!reader.parse_double(fault.probability)) return false;
      if (fault.probability < 0.0 || fault.probability > 1.0) {
        return reader.fail("fault probability out of range [0, 1]");
      }
      return true;
    }
    if (key == "delay_ticks") return reader.parse_u64(fault.delay_ticks);
    return reader.fail("unknown fault key '" + key + "'");
  });
  if (!ok) return false;
  if (!saw_kind) return reader.fail("fault without a \"kind\"");
  return true;
}

}  // namespace

Expected<ScenarioSpec, std::string> from_json(std::string_view json) {
  Reader reader(json);
  ScenarioSpec spec;
  std::string schema;
  const bool ok = reader.parse_object([&](const std::string& key) {
    if (key == "schema") return reader.parse_string(schema);
    if (key == "seed") return reader.parse_u64(spec.seed);
    if (key == "name") return reader.parse_string(spec.name);
    if (key == "scheme") return reader.parse_string(spec.scheme);
    if (key == "topology") return parse_topology(reader, spec.topology);
    if (key == "sim") return parse_sim(reader, spec);
    if (key == "faults") {
      return reader.parse_array([&] {
        sim::FaultEvent fault;
        if (!parse_fault(reader, fault)) return false;
        spec.faults.push_back(fault);
        return true;
      });
    }
    if (key == "ops") {
      return reader.parse_array([&] {
        ScenarioOp op;
        if (!parse_op(reader, op)) return false;
        spec.ops.push_back(op);
        return true;
      });
    }
    return reader.fail("unknown scenario key '" + key + "'");
  });
  if (!ok || reader.failed()) {
    return Unexpected(reader.error());
  }
  if (!reader.at_end()) {
    return Unexpected(std::string("trailing content after document"));
  }
  if (schema != kScenarioSchema) {
    return Unexpected("unsupported schema '" + schema + "' (want '" +
                      std::string(kScenarioSchema) + "')");
  }
  if (!known_scheme(spec.scheme)) {
    // Strict: an unknown scheme used to parse fine and then silently run
    // as ADPS in the multihop path — a corpus typo would test the wrong
    // scheme forever. Make it a parse error instead.
    return Unexpected("unknown scheme '" + spec.scheme +
                      "' (want SDPS, ADPS, UDPS, Search or TT)");
  }
  if (!spec.well_formed()) {
    return Unexpected(std::string(
        "scenario is not well-formed (release targets must point back at "
        "admit ops; fault plans need a simulated star and sane windows)"));
  }
  return spec;
}

bool save_scenario(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string document = to_json(spec);
  out.write(document.data(),
            static_cast<std::streamsize>(document.size()));
  out.put('\n');
  return static_cast<bool>(out);
}

std::string to_json(const core::ReleaseOutcome& outcome) {
  JsonWriter json;
  json.begin_object();
  if (outcome.has_value()) {
    json.member("released", static_cast<std::uint64_t>(outcome->value()));
  } else {
    json.key("rejected").begin_object();
    json.member("reason", core::to_string(outcome.error().reason));
    json.member("detail", outcome.error().detail);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

Expected<core::ReleaseOutcome, std::string> release_outcome_from_json(
    std::string_view json) {
  Reader reader(json);
  bool saw_released = false;
  std::uint64_t released_id = 0;
  bool saw_rejected = false;
  core::Rejection rejection;
  const bool ok = reader.parse_object([&](const std::string& key) {
    if (key == "released") {
      saw_released = true;
      return reader.parse_bounded(0xffffULL, released_id);
    }
    if (key == "rejected") {
      saw_rejected = true;
      bool saw_reason = false;
      const bool inner = reader.parse_object([&](const std::string& inner_key) {
        if (inner_key == "reason") {
          std::string reason;
          if (!reader.parse_string(reason)) return false;
          const auto parsed = core::reject_reason_from_string(reason);
          if (!parsed.has_value()) {
            return reader.fail("unknown reject reason '" + reason + "'");
          }
          rejection.reason = *parsed;
          saw_reason = true;
          return true;
        }
        if (inner_key == "detail") {
          return reader.parse_string(rejection.detail);
        }
        return reader.fail("unknown rejected key '" + inner_key + "'");
      });
      if (!inner) return false;
      if (!saw_reason) return reader.fail("rejected without a reason");
      return true;
    }
    return reader.fail("unknown release-outcome key '" + key + "'");
  });
  if (!ok || reader.failed()) {
    return Unexpected(reader.error());
  }
  if (!reader.at_end()) {
    return Unexpected(std::string("trailing content after document"));
  }
  if (saw_released == saw_rejected) {
    return Unexpected(std::string(
        "release outcome needs exactly one of \"released\"/\"rejected\""));
  }
  if (saw_released) {
    return core::ReleaseOutcome(
        ChannelId{static_cast<std::uint16_t>(released_id)});
  }
  return core::ReleaseOutcome(Unexpected(std::move(rejection)));
}

Expected<ScenarioSpec, std::string> load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Unexpected("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = from_json(buffer.str());
  if (!parsed) {
    return Unexpected(path + ": " + parsed.error());
  }
  return parsed;
}

}  // namespace rtether::scenario
