#include "sim/transmitter.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtether::sim {

Transmitter::Transmitter(Simulator& simulator, const SimConfig& config,
                         std::string name, DeliverFn deliver,
                         std::size_t best_effort_depth)
    : simulator_(simulator),
      config_(config),
      name_(std::move(name)),
      deliver_(std::move(deliver)),
      best_effort_queue_(best_effort_depth) {
  RTETHER_ASSERT(deliver_ != nullptr);
}

void Transmitter::enqueue_rt(Tick deadline_key, SimFrame frame) {
  rt_queue_.push(deadline_key, std::move(frame));
  stats_.max_rt_queue_depth =
      std::max(stats_.max_rt_queue_depth, rt_queue_.size());
  try_start();
}

void Transmitter::enqueue_best_effort(SimFrame frame) {
  if (best_effort_queue_.push(std::move(frame))) {
    stats_.max_best_effort_queue_depth = std::max(
        stats_.max_best_effort_queue_depth, best_effort_queue_.size());
  }
  try_start();
}

void Transmitter::try_start() {
  if (busy_) {
    return;  // non-preemptive: the in-flight frame finishes first
  }
  // Strict priority: RT (EDF order) before best-effort (FCFS order).
  std::optional<SimFrame> frame = rt_queue_.pop();
  const bool is_rt = frame.has_value();
  if (!frame) {
    frame = best_effort_queue_.pop();
  }
  if (!frame) {
    return;
  }

  busy_ = true;
  const Tick tx_ticks = config_.transmission_ticks(frame->wire_bytes());
  stats_.busy_ticks += tx_ticks;
  if (is_rt) {
    ++stats_.rt_frames_sent;
  } else {
    ++stats_.best_effort_frames_sent;
  }

  // Move the frame into the completion event.
  simulator_.schedule_in(
      tx_ticks,
      [this, frame = std::move(*frame)]() mutable {
        busy_ = false;
        const Tick completion = simulator_.now();
        deliver_(std::move(frame), completion);
        try_start();
      });
}

}  // namespace rtether::sim
