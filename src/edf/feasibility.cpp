#include "edf/feasibility.hpp"

#include <algorithm>
#include <cstdio>

#include "common/math.hpp"
#include "edf/busy_period.hpp"
#include "edf/checkpoints.hpp"
#include "edf/demand.hpp"
#include "edf/hyperperiod.hpp"
#include "edf/utilization.hpp"

namespace rtether::edf {

namespace {

/// Scans h(n,t) ≤ t at the given instants; records the first violation.
bool scan_demand(const TaskSet& set, const std::vector<Slot>& instants,
                 FeasibilityReport& report) {
  for (const Slot t : instants) {
    ++report.demand_evaluations;
    const Slot h = demand(set, t);
    if (h > t) {
      report.feasible = false;
      report.reason = InfeasibleReason::kDemandExceeded;
      report.violation_time = t;
      report.violation_demand = h;
      return false;
    }
  }
  return true;
}

std::vector<Slot> every_slot(Slot bound) {
  std::vector<Slot> instants;
  instants.reserve(static_cast<std::size_t>(bound));
  for (Slot t = 1; t <= bound; ++t) {
    instants.push_back(t);
  }
  return instants;
}

}  // namespace

FeasibilityReport check_feasibility(const TaskSet& set, DemandScan scan) {
  FeasibilityReport report;
  report.utilization = set.utilization();

  // Constraint 1 (Eq 18.2): utilization must not exceed 100 % — decided
  // exactly (see utilization.hpp).
  if (utilization_exceeds_one(set)) {
    report.feasible = false;
    report.reason = InfeasibleReason::kUtilizationExceeded;
    return report;
  }

  // Liu & Layland fast path: with d_i == P_i for every task, U ≤ 1 is
  // necessary and sufficient — no demand scan required.
  if (set.all_implicit_deadline()) {
    report.feasible = true;
    report.used_utilization_fast_path = true;
    return report;
  }

  const auto bp = busy_period(set);
  // U ≤ 1 guarantees convergence; overflow would need astronomically large
  // capacities, which `PseudoTask::valid()` rules out in practice.
  RTETHER_ASSERT_MSG(bp.has_value(), "busy period diverged despite U <= 1");

  Slot bound = *bp;
  if (scan == DemandScan::kExhaustive) {
    // Oracle bound: one full hyperperiod past the largest deadline covers
    // every distinct demand pattern. A hyperperiod that overflows 64 bits
    // — or fits but is too large to ever scan (near-64-bit lcm of coprime
    // periods) — falls back to the busy-period bound, which is already a
    // complete test (Eq 18.4); the extension is redundant belt-and-braces,
    // so the fallback cannot change decisions, only the scanned range.
    if (const auto h = hyperperiod(set)) {
      if (const auto sum = checked_add(*h, set.max_deadline());
          sum && *sum <= kExhaustiveOracleCap) {
        bound = std::max(bound, *sum);
      }
    }
  }
  report.scanned_bound = bound;

  const std::vector<Slot> instants = scan == DemandScan::kCheckpoints
                                         ? checkpoints(set, bound)
                                         : every_slot(bound);
  report.feasible = scan_demand(set, instants, report);
  if (report.feasible) {
    report.reason = InfeasibleReason::kNone;
  }
  return report;
}

bool is_feasible(const TaskSet& set, DemandScan scan) {
  return check_feasibility(set, scan).feasible;
}

namespace {

/// Walks a task's checkpoint sequence d, d+P, d+2P, … restricted to
/// [1, bound], mirroring the generation (and wrap-around guard) of
/// `checkpoints()`.
class TaskCheckpointWalker {
 public:
  TaskCheckpointWalker(const PseudoTask& task, Slot bound)
      : period_(task.period), bound_(bound), next_(task.deadline) {
    live_ = next_ <= bound_;
    while (live_ && next_ < 1) {
      advance();
    }
  }

  [[nodiscard]] bool live() const { return live_; }
  [[nodiscard]] Slot value() const { return next_; }

  void advance() {
    if (bound_ - next_ < period_) {  // same guard as checkpoints()
      live_ = false;
      return;
    }
    next_ += period_;
  }

 private:
  Slot period_;
  Slot bound_;
  Slot next_;
  bool live_;
};

Slot checked_demand_sum(Slot base, const PseudoTask& task, Slot t) {
  const auto sum = checked_add(base, task_demand(task, t));
  RTETHER_ASSERT_MSG(sum.has_value(), "demand overflow");
  return *sum;
}

}  // namespace

namespace {

/// Adds `capacity` to the bucket for `period`, keeping buckets sorted.
void bucket_add(std::vector<std::pair<Slot, Slot>>& buckets, Slot period,
                Slot capacity) {
  const auto it = std::lower_bound(
      buckets.begin(), buckets.end(), period,
      [](const auto& bucket, Slot p) { return bucket.first < p; });
  if (it != buckets.end() && it->first == period) {
    it->second += capacity;
  } else {
    buckets.insert(it, {period, capacity});
  }
}

}  // namespace

void LinkScanCache::reset(const TaskSet& set) {
  task_count_ = set.size();
  non_implicit_ = 0;
  hyperperiod_ = Slot{1};
  period_buckets_.clear();
  for (const auto& task : set.tasks()) {
    if (task.deadline != task.period) {
      ++non_implicit_;
    }
    if (hyperperiod_) {
      hyperperiod_ = checked_lcm(*hyperperiod_, task.period);
    }
    bucket_add(period_buckets_, task.period, task.capacity);
  }
  utilization_.reset(set);
  busy_period_ = busy_period(set);
  // Clamp the horizon to the set's busy period: rebuilding demand at
  // instants past it is O(tasks × points) wasted — future trials re-extend
  // lazily if they need more.
  horizon_ = std::min(horizon_, busy_period_.value_or(0));
  points_ = checkpoints(set, horizon_);
  demands_.clear();
  demands_.reserve(points_.size());
  for (const Slot t : points_) {
    demands_.push_back(demand(set, t));
  }
  // Owner counts: how many tasks contribute a checkpoint at each instant.
  owners_.assign(points_.size(), 0);
  for (const auto& task : set.tasks()) {
    for (TaskCheckpointWalker walker(task, horizon_); walker.live();
         walker.advance()) {
      const auto it =
          std::lower_bound(points_.begin(), points_.end(), walker.value());
      RTETHER_ASSERT(it != points_.end() && *it == walker.value());
      ++owners_[static_cast<std::size_t>(it - points_.begin())];
    }
  }
}

std::optional<Slot> LinkScanCache::trial_busy_period(
    const TaskSet& set, const PseudoTask& extra) const {
  const auto backlog = checked_add(set.total_capacity(), extra.capacity);
  if (!backlog) return std::nullopt;
  // Warm start: the least fixed point only grows when a task is added, and
  // the workload of the grown set at the old fixed point is ≥ the old fixed
  // point, so iterating from max(old bp, new backlog) converges to exactly
  // the fixed point the cold iteration from the backlog finds.
  Slot length = std::max(busy_period_.value_or(0), *backlog);
  for (;;) {
    Slot next = 0;
    for (const auto& [period, capacity] : period_buckets_) {
      const auto contribution =
          checked_mul(ceil_div(length, period), capacity);
      if (!contribution) return std::nullopt;
      const auto sum = checked_add(next, *contribution);
      if (!sum) return std::nullopt;
      next = *sum;
    }
    const auto contribution =
        checked_mul(ceil_div(length, extra.period), extra.capacity);
    if (!contribution) return std::nullopt;
    const auto sum = checked_add(next, *contribution);
    if (!sum) return std::nullopt;
    next = *sum;
    if (next == length) return length;
    length = next;
  }
}

void LinkScanCache::grid_beyond(const TaskSet& set, Slot limit,
                                std::vector<Slot>& points,
                                std::vector<Slot>& demands,
                                std::vector<std::uint32_t>* owners) const {
  RTETHER_ASSERT(limit > horizon_);
  std::vector<Slot> fresh;
  for (const auto& task : set.tasks()) {
    // First checkpoint of this task strictly beyond the cached horizon.
    Slot t = task.deadline;
    if (t <= horizon_) {
      const Slot jumps = ceil_div(horizon_ + 1 - t, task.period);
      const auto offset = checked_mul(jumps, task.period);
      if (!offset || *offset > limit - t) {
        continue;
      }
      t += *offset;
    }
    for (; t <= limit; t += task.period) {
      if (t >= 1) {
        fresh.push_back(t);
      }
      if (limit - t < task.period) {
        break;
      }
    }
  }
  std::sort(fresh.begin(), fresh.end());
  // The pre-dedup multiplicity of an instant is its owner count.
  for (std::size_t i = 0; i < fresh.size();) {
    std::size_t j = i;
    while (j < fresh.size() && fresh[j] == fresh[i]) {
      ++j;
    }
    points.push_back(fresh[i]);
    demands.push_back(demand(set, fresh[i]));
    if (owners != nullptr) {
      owners->push_back(static_cast<std::uint32_t>(j - i));
    }
    i = j;
  }
}

void LinkScanCache::extend(const TaskSet& set, Slot new_horizon) {
  grid_beyond(set, new_horizon, points_, demands_, &owners_);
  horizon_ = new_horizon;
}

void LinkScanCache::reserve_horizon(const TaskSet& set, Slot horizon) {
  RTETHER_ASSERT_MSG(set.size() == task_count_, "LinkScanCache out of sync");
  if (horizon > horizon_) {
    extend(set, horizon);
  }
}

FeasibilityReport LinkScanCache::check_with(const TaskSet& set,
                                            const PseudoTask& extra) const {
  RTETHER_ASSERT_MSG(set.size() == task_count_, "LinkScanCache out of sync");
  RTETHER_ASSERT_MSG(extra.valid(), "invalid pseudo-task");

  FeasibilityReport report;
  // Same accumulation as a tentative TaskSet::add would have produced.
  report.utilization = set.utilization() +
                       static_cast<double>(extra.capacity) /
                           static_cast<double>(extra.period);

  if (utilization_.exceeds_one_with(extra)) {
    report.feasible = false;
    report.reason = InfeasibleReason::kUtilizationExceeded;
    return report;
  }

  if (non_implicit_ == 0 && extra.deadline == extra.period) {
    report.feasible = true;
    report.used_utilization_fast_path = true;
    return report;
  }

  const auto bp = trial_busy_period(set, extra);
  RTETHER_ASSERT_MSG(bp.has_value(), "busy period diverged despite U <= 1");
  const Slot bound = *bp;
  report.scanned_bound = bound;

  // A trial whose bound outruns the cached horizon is answered from stack
  // scratch space: the shadowed set's checkpoints in (horizon_, bound] plus
  // their demands, exactly what `extend` would have folded in — but the
  // cache stays untouched (const trials are shareable; callers that expect
  // more trials at this bound call `reserve_horizon` to memoize it).
  std::vector<Slot> beyond_points;
  std::vector<Slot> beyond_demands;
  if (bound > horizon_) {
    grid_beyond(set, bound, beyond_points, beyond_demands, nullptr);
  }

  // Merge-walk the (possibly scratch-augmented) grid with the candidate's
  // own checkpoints. Visits exactly the deduplicated union
  // `checkpoints(set ∪ {extra}, bound)` in ascending order; `base` tracks
  // the cached set's demand, which between its own checkpoints is the value
  // at the last one passed. Every scratch instant is > horizon_ ≥ every
  // cached instant, so "cached first, then scratch" preserves the order.
  TaskCheckpointWalker walker(extra, bound);
  std::size_t i = 0;  // cursor over points_ (≤ min(horizon_, bound))
  std::size_t j = 0;  // cursor over beyond_points (> horizon_)
  Slot base = 0;
  report.feasible = true;
  for (;;) {
    const bool cached_live = i < points_.size() && points_[i] <= bound;
    const bool beyond_live = !cached_live && j < beyond_points.size();
    if (!cached_live && !beyond_live && !walker.live()) {
      break;
    }
    Slot t;
    if (cached_live && (!walker.live() || points_[i] <= walker.value())) {
      t = points_[i];
      base = demands_[i];
      if (walker.live() && walker.value() == t) {
        walker.advance();
      }
      ++i;
    } else if (beyond_live &&
               (!walker.live() || beyond_points[j] <= walker.value())) {
      t = beyond_points[j];
      base = beyond_demands[j];
      if (walker.live() && walker.value() == t) {
        walker.advance();
      }
      ++j;
    } else {
      t = walker.value();
      walker.advance();
    }
    ++report.demand_evaluations;
    const Slot h = checked_demand_sum(base, extra, t);
    if (h > t) {
      report.feasible = false;
      report.reason = InfeasibleReason::kDemandExceeded;
      report.violation_time = t;
      report.violation_demand = h;
      return report;
    }
  }
  report.reason = InfeasibleReason::kNone;
  return report;
}

void LinkScanCache::commit(const PseudoTask& task,
                           std::optional<Slot> busy_period_after) {
  RTETHER_ASSERT_MSG(task.valid(), "invalid pseudo-task");
  // One merge pass: fold the task's demand into existing instants and splice
  // in the task's own checkpoints with their full demand value.
  std::vector<Slot> new_points;
  std::vector<Slot> new_demands;
  std::vector<std::uint32_t> new_owners;
  new_points.reserve(points_.size() + 8);
  new_demands.reserve(points_.size() + 8);
  new_owners.reserve(points_.size() + 8);
  TaskCheckpointWalker walker(task, horizon_);
  std::size_t i = 0;
  Slot base = 0;  // demand of the *old* set at the last old instant passed
  while (i < points_.size() || walker.live()) {
    Slot t;
    std::uint32_t owners = 1;  // the new task alone, unless merged below
    if (i < points_.size() &&
        (!walker.live() || points_[i] <= walker.value())) {
      t = points_[i];
      base = demands_[i];
      owners = owners_[i];
      if (walker.live() && walker.value() == t) {
        walker.advance();
        ++owners;
      }
      ++i;
    } else {
      t = walker.value();
      walker.advance();
    }
    new_points.push_back(t);
    new_demands.push_back(checked_demand_sum(base, task, t));
    new_owners.push_back(owners);
  }
  points_ = std::move(new_points);
  demands_ = std::move(new_demands);
  owners_ = std::move(new_owners);

  ++task_count_;
  if (task.deadline != task.period) {
    ++non_implicit_;
  }
  if (hyperperiod_) {
    hyperperiod_ = checked_lcm(*hyperperiod_, task.period);
  }
  utilization_.add(task);
  bucket_add(period_buckets_, task.period, task.capacity);
  busy_period_ = busy_period_after;
}

std::optional<Slot> LinkScanCache::bucket_busy_period(Slot backlog) const {
  if (task_count_ == 0) {
    return Slot{0};
  }
  // U > 1 diverges; refuse up front exactly like `busy_period`.
  if (utilization_.exceeds_one()) {
    return std::nullopt;
  }
  // Same least fixed point as `busy_period(set)`: the workload sum merely
  // distributes over tasks sharing a period.
  Slot length = backlog;
  for (;;) {
    Slot next = 0;
    for (const auto& [period, capacity] : period_buckets_) {
      const auto contribution =
          checked_mul(ceil_div(length, period), capacity);
      if (!contribution) return std::nullopt;
      const auto sum = checked_add(next, *contribution);
      if (!sum) return std::nullopt;
      next = *sum;
    }
    if (next == length) return length;
    length = next;
  }
}

void LinkScanCache::downdate(const TaskSet& set, const PseudoTask& task) {
  RTETHER_ASSERT_MSG(task.valid(), "invalid pseudo-task");
  RTETHER_ASSERT_MSG(task_count_ > 0 && set.size() == task_count_ - 1,
                     "LinkScanCache out of sync");

  // One sweep: subtract the task's demand everywhere, decrement its owner
  // counts along its own checkpoint sequence and compact away the instants
  // only it owned. The surviving grid is exactly `checkpoints(set,
  // horizon_)` with demands of the post-removal set — the horizon (and the
  // memoization it carries) survives the release, so an identical re-admit
  // is a pure merge-walk again.
  TaskCheckpointWalker walker(task, horizon_);
  std::size_t out = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Slot t = points_[i];
    std::uint32_t owners = owners_[i];
    if (walker.live() && walker.value() == t) {
      walker.advance();
      RTETHER_ASSERT_MSG(owners > 0, "owner underflow");
      --owners;
      if (owners == 0) {
        continue;  // the released task's private instant
      }
    }
    const Slot contribution = task_demand(task, t);
    RTETHER_ASSERT_MSG(demands_[i] >= contribution, "demand underflow");
    points_[out] = t;
    demands_[out] = demands_[i] - contribution;
    owners_[out] = owners;
    ++out;
  }
  points_.resize(out);
  demands_.resize(out);
  owners_.resize(out);

  --task_count_;
  if (task.deadline != task.period) {
    RTETHER_ASSERT_MSG(non_implicit_ > 0, "non-implicit underflow");
    --non_implicit_;
  }
  const auto bucket = std::lower_bound(
      period_buckets_.begin(), period_buckets_.end(), task.period,
      [](const auto& b, Slot p) { return b.first < p; });
  RTETHER_ASSERT_MSG(bucket != period_buckets_.end() &&
                         bucket->first == task.period &&
                         bucket->second >= task.capacity,
                     "period bucket out of sync");
  bucket->second -= task.capacity;
  if (bucket->second == 0) {
    period_buckets_.erase(bucket);
  }

  // Hyperperiod: a running lcm cannot be divided back down, but lcm is
  // order-independent — re-deriving it over the distinct periods gives the
  // identical value (and the identical overflow→nullopt verdict) a fresh
  // running lcm over the post-removal set would, in O(distinct periods).
  hyperperiod_ = Slot{1};
  for (const auto& remaining : period_buckets_) {
    if (!hyperperiod_) break;
    hyperperiod_ = checked_lcm(*hyperperiod_, remaining.first);
  }

  // Exact utilization state is accumulation-order sensitive in its overflow
  // fallback; rebuild it over the post-removal set (O(tasks)) so verdicts
  // stay bit-identical to the reference accumulation.
  utilization_.reset(set);
  busy_period_ = bucket_busy_period(set.total_capacity());
}

std::string FeasibilityReport::summary() const {
  // snprintf, not ostringstream: admission rejections build this string on
  // the hot path, and stream construction is ~5× the cost of the formatting
  // itself. "%.6g" matches operator<<'s default double formatting exactly.
  char buffer[160];
  if (feasible) {
    if (used_utilization_fast_path) {
      std::snprintf(buffer, sizeof buffer,
                    "feasible (U=%.6g, Liu&Layland fast path)", utilization);
    } else {
      std::snprintf(
          buffer, sizeof buffer,
          "feasible (U=%.6g, scanned %llu instants up to t=%llu)",
          utilization, static_cast<unsigned long long>(demand_evaluations),
          static_cast<unsigned long long>(scanned_bound));
    }
    return buffer;
  }
  switch (reason) {
    case InfeasibleReason::kUtilizationExceeded:
      std::snprintf(buffer, sizeof buffer,
                    "infeasible: utilization %.6g > 1", utilization);
      break;
    case InfeasibleReason::kDemandExceeded:
      std::snprintf(
          buffer, sizeof buffer, "infeasible: demand %llu > t=%llu",
          static_cast<unsigned long long>(violation_demand.value_or(0)),
          static_cast<unsigned long long>(violation_time.value_or(0)));
      break;
    case InfeasibleReason::kNone:
      std::snprintf(buffer, sizeof buffer, "infeasible: (unspecified)");
      break;
  }
  return buffer;
}

}  // namespace rtether::edf
