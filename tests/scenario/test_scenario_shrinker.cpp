// The failing-scenario shrinker, demonstrated end to end on a planted bug:
// a DPS with an off-by-one on Eq 18.9 (it hands the downlink C−1 slots once
// the source uplink is loaded) must be *caught* by the runner's candidate
// audit and *shrunk* to a ≤3-channel repro — the acceptance demo for the
// whole fuzz→oracle→shrink pipeline.

#include <gtest/gtest.h>

#include <memory>

#include "core/partitioner.hpp"
#include "scenario/campaign.hpp"
#include "scenario/shrinker.hpp"

namespace rtether::scenario {
namespace {

/// ADPS with a planted load-dependent fault: once the requested channel's
/// source uplink already carries ≥ 2 channels, the proposed partition gives
/// the downlink C−1 slots — violating Eq 18.9 by exactly one. Needs three
/// same-uplink channels to fire, so a minimal repro has exactly three.
class OffByOnePartitioner final : public core::DeadlinePartitioner {
 public:
  [[nodiscard]] std::vector<core::DeadlinePartition> candidates(
      const core::ChannelSpec& spec,
      const core::NetworkState& state) const override {
    if (state.link_load(spec.source, core::LinkDirection::kUplink) >= 2) {
      return {{spec.deadline - (spec.capacity - 1), spec.capacity - 1}};
    }
    return correct_.candidates(spec, state);
  }
  [[nodiscard]] std::string name() const override { return "ADPS-broken"; }

 private:
  core::AsymmetricPartitioner correct_;
};

RunnerOptions broken_runner() {
  RunnerOptions options;
  options.partitioner_factory = [](const std::string&) {
    return std::make_unique<OffByOnePartitioner>();
  };
  return options;
}

/// A noisy haystack: twelve channels from several sources (node 0's uplink
/// crosses the load-2 threshold midway), plus churn.
ScenarioSpec haystack() {
  ScenarioSpec spec;
  spec.name = "off-by-one-demo";
  spec.topology.nodes = 8;
  spec.scheme = "ADPS";
  spec.run_slots = 200;
  auto admit = [&](std::uint32_t src, std::uint32_t dst) {
    spec.ops.push_back(
        ScenarioOp::admit({NodeId{src}, NodeId{dst}, 100, 2, 40}));
  };
  admit(1, 2);
  admit(3, 4);
  admit(0, 1);  // uplink 0: load 1
  admit(5, 6);
  spec.ops.push_back(ScenarioOp::release_of(1));
  admit(0, 2);  // uplink 0: load 2
  admit(4, 7);
  admit(0, 3);  // load ≥ 2 → the broken candidate fires here
  admit(2, 5);
  admit(0, 4);
  admit(6, 1);
  admit(0, 5);
  return spec;
}

TEST(ScenarioShrinker, CatchesAndMinimizesOffByOnePartitioner) {
  const ScenarioSpec spec = haystack();

  // Sanity: the scenario is green on the real ADPS…
  EXPECT_TRUE(run_scenario(spec).passed);

  // …and red on the planted off-by-one, caught as a partition-invariant
  // violation *before* any engine would assert on it.
  const RunnerOptions options = broken_runner();
  const auto failure = run_scenario(spec, options);
  ASSERT_FALSE(failure.passed);
  ASSERT_EQ(failure.violations.size(), 1u);
  EXPECT_EQ(failure.violations[0].kind, ViolationKind::kPartitionInvariant);

  // The shrinker must reduce the twelve-channel haystack to the minimal
  // trigger: two channels loading the uplink plus the one that trips.
  ShrinkOptions shrink_options;
  shrink_options.runner = options;
  const auto shrunk = shrink_scenario(spec, shrink_options);
  EXPECT_FALSE(shrunk.failure.passed);
  EXPECT_EQ(shrunk.failure.violations[0].kind,
            ViolationKind::kPartitionInvariant);
  EXPECT_LE(shrunk.minimized.admit_count(), 3u);
  EXPECT_EQ(shrunk.minimized.ops.size(), shrunk.minimized.admit_count())
      << "releases are noise here and must be gone";
  EXPECT_TRUE(shrunk.minimized.well_formed());

  // Quantities were minimized too (periods toward C, deadlines toward 2C).
  for (const auto& op : shrunk.minimized.ops) {
    EXPECT_LE(op.spec.period, 100u);
    EXPECT_LE(op.spec.deadline, 40u);
  }

  // The minimized spec still reproduces under the planted bug and is green
  // on the real partitioner — it isolates the fault, not the harness.
  EXPECT_FALSE(run_scenario(shrunk.minimized, options).passed);
  EXPECT_TRUE(run_scenario(shrunk.minimized).passed);
}

TEST(ScenarioShrinker, DeterministicMinimization) {
  const ScenarioSpec spec = haystack();
  ShrinkOptions shrink_options;
  shrink_options.runner = broken_runner();
  const auto first = shrink_scenario(spec, shrink_options);
  const auto second = shrink_scenario(spec, shrink_options);
  EXPECT_EQ(first.minimized, second.minimized);
  EXPECT_EQ(first.attempts, second.attempts);
}

TEST(ScenarioCampaign, SurfacesAndShrinksPlantedFailures) {
  // End-to-end: a campaign over generated scenarios with the planted bug
  // must flag failing seeds deterministically and ship minimized repros.
  CampaignConfig config;
  config.scenario_count = 40;
  config.base_seed = 900;
  config.threads = 2;
  config.runner = broken_runner();
  config.max_failures = 4;

  const auto result = run_campaign(config);
  ASSERT_GT(result.failures, 0u)
      << "40 generated scenarios never load one uplink with 3 channels?";
  ASSERT_FALSE(result.failing.empty());
  for (const auto& failure : result.failing) {
    EXPECT_FALSE(run_scenario(failure.minimized, config.runner).passed)
        << "minimized spec for seed " << failure.seed << " does not replay";
    EXPECT_LE(failure.minimized.admit_count(), 3u);
  }

  const auto again = run_campaign(config);
  ASSERT_EQ(again.failing.size(), result.failing.size());
  for (std::size_t i = 0; i < again.failing.size(); ++i) {
    EXPECT_EQ(again.failing[i].seed, result.failing[i].seed);
    EXPECT_EQ(again.failing[i].minimized, result.failing[i].minimized);
  }
}

}  // namespace
}  // namespace rtether::scenario
