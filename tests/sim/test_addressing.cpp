#include "sim/addressing.hpp"

#include <gtest/gtest.h>

namespace rtether::sim {
namespace {

TEST(Addressing, NodeMacsAreDistinct) {
  EXPECT_NE(node_mac(NodeId{0}), node_mac(NodeId{1}));
  EXPECT_NE(node_mac(NodeId{0}), switch_mac());
  EXPECT_NE(node_mac(NodeId{65000}), switch_mac());
}

TEST(Addressing, MacRoundTrip) {
  for (const std::uint32_t n : {0u, 1u, 59u, 1000u, 65534u}) {
    EXPECT_EQ(mac_to_node(node_mac(NodeId{n})), NodeId{n});
  }
}

TEST(Addressing, IpRoundTrip) {
  for (const std::uint32_t n : {0u, 1u, 59u, 1000u, 65534u}) {
    EXPECT_EQ(ip_to_node(node_ip(NodeId{n})), NodeId{n});
  }
}

TEST(Addressing, SwitchAddressesDoNotMapToNodes) {
  EXPECT_FALSE(mac_to_node(switch_mac()).has_value());
  EXPECT_FALSE(ip_to_node(switch_ip()).has_value());
}

TEST(Addressing, ForeignAddressesDoNotMap) {
  EXPECT_FALSE(mac_to_node(net::MacAddress::from_u48(0)).has_value());
  EXPECT_FALSE(
      mac_to_node(net::MacAddress::from_u48(0xffff'ffff'ffffULL)).has_value());
  EXPECT_FALSE(ip_to_node(net::Ipv4Address(192, 168, 0, 1)).has_value());
}

TEST(Addressing, LocallyAdministeredMacs) {
  // Bit 1 of the first octet set: locally administered, not vendor space.
  EXPECT_EQ(node_mac(NodeId{0}).octets()[0], 0x02);
  EXPECT_EQ(switch_mac().octets()[0], 0x02);
}

TEST(Addressing, IpsInPrivateRange) {
  EXPECT_EQ(node_ip(NodeId{0}).to_string(), "10.0.0.1");
  EXPECT_EQ(node_ip(NodeId{255}).to_string(), "10.0.1.0");
  EXPECT_EQ(switch_ip().to_string(), "10.1.255.254");
}

}  // namespace
}  // namespace rtether::sim
