#include "traffic/uniform.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rtether::traffic {
namespace {

TEST(Uniform, EndpointsDistinctAndInRange) {
  UniformWorkload w(UniformConfig{}, 3);
  for (int i = 0; i < 1000; ++i) {
    const auto spec = w.next();
    EXPECT_NE(spec.source, spec.destination);
    EXPECT_LT(spec.source.value(), 60u);
    EXPECT_LT(spec.destination.value(), 60u);
    EXPECT_TRUE(spec.valid());
  }
}

TEST(Uniform, CoversAllNodesAsSources) {
  UniformConfig config;
  config.nodes = 10;
  UniformWorkload w(config, 5);
  std::set<std::uint32_t> sources;
  for (int i = 0; i < 1000; ++i) {
    sources.insert(w.next().source.value());
  }
  EXPECT_EQ(sources.size(), 10u);
}

TEST(Uniform, TwoNodeNetworkAlternatesEndpoints) {
  UniformConfig config;
  config.nodes = 2;
  UniformWorkload w(config, 9);
  for (int i = 0; i < 100; ++i) {
    const auto spec = w.next();
    EXPECT_NE(spec.source, spec.destination);
  }
}

TEST(Uniform, GenerateProducesRequestedCount) {
  UniformWorkload w(UniformConfig{}, 1);
  EXPECT_EQ(w.generate(123).size(), 123u);
}

TEST(Uniform, DeterministicPerSeed) {
  UniformWorkload a(UniformConfig{}, 77);
  UniformWorkload b(UniformConfig{}, 77);
  EXPECT_EQ(a.generate(40), b.generate(40));
}

}  // namespace
}  // namespace rtether::traffic
