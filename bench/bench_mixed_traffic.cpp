/// Ablation A6 — RT/non-RT coexistence.
///
/// The paper's design goal is that ordinary TCP/IP traffic shares the wire
/// without weakening RT guarantees (Fig 18.2's dual queues). This bench
/// holds the admitted RT set fixed and sweeps best-effort load 0…95%,
/// reporting RT worst-case delay (must stay within bound) and the
/// best-effort service quality (throughput, mean delay) that survives.

#include <cstdio>

#include "analysis/validation.hpp"
#include "common/table.hpp"

using namespace rtether;

int main() {
  std::puts("================================================================");
  std::puts("Ablation A6 — RT guarantees vs best-effort background load");
  std::puts("(4 masters / 12 slaves, 100 requested RT channels)");
  std::puts("================================================================");

  ConsoleTable table("A6: RT integrity and BE service vs BE offered load");
  table.set_header({"BE load", "RT misses", "RT worst/bound", "BE delivered",
                    "BE mean delay (slots)"});

  for (const double load : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    analysis::ValidationConfig config;
    config.scheme = "ADPS";
    config.workload.masters = 4;
    config.workload.slaves = 12;
    config.request_count = 100;
    config.run_slots = 5'000;
    config.seed = 21;
    config.with_best_effort = load > 0.0;
    config.best_effort_load = load > 0.0 ? load : 0.01;

    // Rebuild the pipeline per point (fresh stats).
    const auto result = analysis::run_guarantee_validation(config);

    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", load * 100.0);
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.3f", result.worst_delay_ratio);
    table.add(std::string(label), result.deadline_misses,
              std::string(ratio), result.best_effort_delivered,
              result.best_effort_mean_delay_slots);
  }
  table.print();
  std::puts("reading: RT misses stay zero and worst/bound < 1 at every");
  std::puts("background load — the dual-queue design isolates RT traffic;");
  std::puts("best-effort absorbs whatever capacity admission left over.\n");
  return 0;
}
