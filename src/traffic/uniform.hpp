#pragma once

/// @file uniform.hpp
/// Uniform-random peer-to-peer channel requests over a flat set of nodes —
/// the symmetric workload where SDPS and ADPS should behave alike (no
/// bottleneck for ADPS to exploit), used as a control in the ablations.

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "core/channel.hpp"
#include "traffic/distribution.hpp"

namespace rtether::traffic {

struct UniformConfig {
  std::uint32_t nodes{60};
  SlotDistribution period = SlotDistribution::fixed(100);
  SlotDistribution capacity = SlotDistribution::fixed(3);
  SlotDistribution deadline = SlotDistribution::fixed(40);
};

/// Seeded stream of requests with uniform-random distinct endpoints.
class UniformWorkload {
 public:
  UniformWorkload(UniformConfig config, std::uint64_t seed);

  [[nodiscard]] std::uint32_t node_count() const { return config_.nodes; }

  [[nodiscard]] core::ChannelSpec next();
  [[nodiscard]] std::vector<core::ChannelSpec> generate(std::size_t count);

 private:
  UniformConfig config_;
  Rng rng_;
};

}  // namespace rtether::traffic
