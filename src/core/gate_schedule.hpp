#pragma once

/// @file gate_schedule.hpp
/// Time-triggered (TAS-style) admission: instead of testing EDF demand
/// bounds (Eqs 18.2–18.5), admission *synthesizes the schedule* — each
/// channel's C_i frames are placed into exclusive cyclic gate windows on
/// its source uplink and destination downlink, repeating with the
/// channel's own period. A channel is admissible iff a conflict-free
/// placement exists; delivery then happens at the same offsets in every
/// period, so admitted channels have zero delivery jitter by construction
/// (the invariant the slot-accurate sim checks).
///
/// Two reservations {o + kP} and {o' + mP'} collide iff
/// o ≡ o' (mod gcd(P, P')), so the conflict test is a residue comparison
/// per existing offset — no hyperperiod table is ever materialized, which
/// keeps admission exact for coprime and near-2^64 periods alike.
///
/// Placement is greedy earliest-fit and deterministic: the uplink offsets
/// u_0 < … < u_{C-1} are the elementwise-smallest conflict-free chain, the
/// downlink offsets satisfy v_i ≥ u_i + 1 (store-and-forward: frame i can
/// only leave the switch after it fully arrived) and v_{C-1} ≤
/// min(d, P) − 1 (delivered within the deadline and within the repeating
/// period). Greedy earliest-fit makes acceptance monotone under channel
/// removal and makes release-then-identical-re-admit always re-accepted —
/// the TT property-test contract.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/channel.hpp"
#include "core/id_allocator.hpp"
#include "core/network_state.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {

/// One channel's reserved transmit offsets on a single egress link: slot
/// `offset + k·period` (k ≥ 0, offsets strictly increasing, all < period)
/// belongs exclusively to the channel.
struct GateReservation {
  ChannelId id{};
  Slot period{0};
  std::vector<Slot> offsets;

  friend bool operator==(const GateReservation&,
                         const GateReservation&) = default;
};

/// The full gate table of one egress link direction, in admission order.
using GateTable = std::vector<GateReservation>;

/// A channel's placement across its two hops (gate-table export for the
/// simulator and for the conformance runner's conflict audit).
struct GatePlacement {
  std::vector<Slot> uplink;
  std::vector<Slot> downlink;
};

class GateScheduleAdmission {
 public:
  /// Largest offset the greedy scan will consider. Bounds the search for
  /// huge periods (the offset space is [0, P) and P may be near 2^64);
  /// placements needing a later offset are rejected — deterministically,
  /// and still monotone under removal, since removing channels only moves
  /// greedy choices earlier.
  static constexpr Slot kOffsetCap = Slot{1} << 16;

  /// A star network with `node_count` end-nodes. The partitioner is not
  /// consulted for placement (TT has no deadline split to choose); it is
  /// kept for the `AdmissionBackend` accessor and reports.
  GateScheduleAdmission(std::uint32_t node_count,
                        std::unique_ptr<DeadlinePartitioner> partitioner,
                        AdmissionConfig config = {});

  /// Admits one channel by synthesizing its gate windows, or rejects with
  /// `kUplinkInfeasible`/`kDownlinkInfeasible` when no conflict-free
  /// placement exists on the respective link. Rejections leave no residue.
  /// The reported `DeadlinePartition` is derived from the placement
  /// (uplink share = last uplink offset + 1, clamped to Eq 18.9).
  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec);

  /// Frees the channel's windows on both links incrementally (O(affected
  /// reservations)); typed `kUnknownChannel` when the ID is not live.
  [[nodiscard]] ReleaseOutcome release(ChannelId id);

  [[nodiscard]] const NetworkState& state() const { return state_; }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const {
    return *partitioner_;
  }

  /// Gate table of one egress link direction (uplink tables are indexed by
  /// source node, downlink tables by destination node).
  [[nodiscard]] const GateTable& gate_table(NodeId node,
                                            LinkDirection dir) const;

  /// The admitted placement of a live channel; nullopt when not live.
  [[nodiscard]] std::optional<GatePlacement> placement(ChannelId id) const;

  /// Forgets every live channel and returns the ID allocator to its
  /// initial state (the admission half of a switch reboot); running stats
  /// keep counting, mirroring `AdmissionController::reset`.
  void reset();

 private:
  /// Greedy earliest-fit: appends `count` strictly increasing offsets to
  /// `out`, the i-th being the smallest conflict-free slot ≥
  /// max(floors[i], previous + 1) and ≤ bound(i). Returns false (leaving
  /// `out` in an unspecified state) when some frame has no slot.
  [[nodiscard]] bool place_frames(const GateTable& table, Slot period,
                                  Slot count,
                                  const std::vector<Slot>* floors,
                                  Slot last_bound, std::vector<Slot>& out);

  [[nodiscard]] bool collides(const GateTable& table, Slot period,
                              Slot offset);

  NetworkState state_;
  std::unique_ptr<DeadlinePartitioner> partitioner_;
  AdmissionConfig config_;
  ChannelIdAllocator ids_;
  AdmissionStats stats_;
  std::vector<GateTable> uplink_tables_;
  std::vector<GateTable> downlink_tables_;
  std::unordered_map<ChannelId, GatePlacement> placements_;
};

}  // namespace rtether::core
