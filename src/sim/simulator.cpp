#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/assert.hpp"
#include "sim/best_effort.hpp"
#include "sim/fault.hpp"
#include "sim/heap_util.hpp"
#include "sim/network.hpp"
#include "sim/switch.hpp"
#include "sim/transmitter.hpp"

namespace rtether::sim {

void Simulator::push(const Event& event) {
  RTETHER_ASSERT_MSG(event.time >= now_, "cannot schedule into the past");
  // find_next only jumps the window to an event that is popped in the
  // same breath, so user-visible states always satisfy this.
  RTETHER_ASSERT(event.time >= window_start_);
  if (event.time - window_start_ < kWindowTicks) {
    const std::size_t index = event.time & kWindowMask;
    std::vector<Event>& bucket = buckets_[index];
    if (bucket.empty()) {
      mark_occupied(index);
    }
    bucket.push_back(event);
    ++near_count_;
    if (event.time < cursor_) {
      // The scan cursor had peeked past this (then-empty) tick — pull it
      // back so the new event is found. Only possible for inserts from
      // outside event execution; the peeked bucket was never partially
      // consumed (bucket_pos_ is only non-zero at the executing tick).
      cursor_ = event.time;
      bucket_pos_ = 0;
    }
    return;
  }
  far_push(event);
}

void Simulator::far_push(const Event& event) {
  heap_push(far_heap_, event, &Simulator::earlier);
}

void Simulator::far_pop_into(Event& out) {
  out = far_heap_.front();
  heap_pop(far_heap_, &Simulator::earlier);
}

void Simulator::advance_window(Tick start) {
  window_start_ = start;
  // Migrate far events now inside the window. The heap pops in
  // (time, sequence) order, so bucket appends stay sequence-sorted; any
  // later near insert carries a higher sequence number still.
  Event event;
  while (!far_heap_.empty() &&
         far_heap_.front().time - window_start_ < kWindowTicks) {
    far_pop_into(event);
    const std::size_t index = event.time & kWindowMask;
    if (buckets_[index].empty()) {
      mark_occupied(index);
    }
    buckets_[index].push_back(event);
    ++near_count_;
  }
}

std::size_t Simulator::next_occupied(std::size_t from) const {
  // The single-u64 summary covers at most 64 words of 64 buckets; a
  // bigger window needs a deeper bitmap, not a silent search miss.
  constexpr std::size_t kWords = kWindowTicks / 64;
  static_assert(kWords <= 64,
                "occupied_summary_ is one u64: kWindowBits must stay <= 12");
  const std::size_t word_index = from >> 6;
  // Bits at or after `from` within its word.
  const std::uint64_t first =
      occupied_[word_index] & (~std::uint64_t{0} << (from & 63));
  if (first != 0) {
    return (word_index << 6) + static_cast<std::size_t>(
                                   std::countr_zero(first));
  }
  // Later words, then wrap around (cyclic ring).
  const std::uint64_t later =
      word_index + 1 < kWords
          ? occupied_summary_ & (~std::uint64_t{0} << (word_index + 1))
          : 0;
  const std::uint64_t summary = later != 0 ? later : occupied_summary_;
  if (summary == 0) {
    return kWindowTicks;
  }
  const auto w =
      static_cast<std::size_t>(std::countr_zero(summary));
  return (w << 6) +
         static_cast<std::size_t>(std::countr_zero(occupied_[w]));
}

bool Simulator::find_next() {
  for (;;) {
    const std::size_t index = cursor_ & kWindowMask;
    std::vector<Event>& bucket = buckets_[index];
    if (bucket_pos_ < bucket.size()) {
      return true;
    }
    if (bucket_pos_ != 0) {
      // Tick fully drained; recycle the bucket (capacity kept).
      bucket.clear();
      bucket_pos_ = 0;
      mark_empty(index);
    }
    if (near_count_ == 0) {
      if (far_heap_.empty()) {
        return false;
      }
      // Jump the window to the next far event; the caller pops it
      // immediately, so the window never outruns `now_` observably.
      const Tick next = far_heap_.front().time;
      cursor_ = next;
      advance_window(next);
      continue;
    }
    // Skip empty ticks via the occupancy bitmap.
    const std::size_t found = next_occupied((index + 1) & kWindowMask);
    RTETHER_ASSERT_MSG(found < kWindowTicks,
                       "near events pending but no occupied bucket");
    cursor_ += ((found + kWindowTicks - index) & kWindowMask);
  }
}

void Simulator::schedule_at(Tick when, Action action) {
  std::uint32_t slot;
  if (!free_closure_slots_.empty()) {
    slot = free_closure_slots_.back();
    free_closure_slots_.pop_back();
    closure_slots_[slot] = std::move(action);
  } else {
    slot = static_cast<std::uint32_t>(closure_slots_.size());
    closure_slots_.push_back(std::move(action));
  }
  Event event;
  event.time = when;
  event.sequence = next_sequence_++;
  event.target = nullptr;
  event.u.sim = {kNoFrame, 0};
  event.arg = slot;
  event.type = EventType::kClosure;
  push(event);
}

void Simulator::reserve_events(std::size_t expected_pending) {
  far_heap_.reserve(expected_pending);
  // Guarantee headroom of 4× each bucket's observed high-water mark (the
  // caller runs this after a representative warm-up) plus a uniform
  // floor. The capacity-multiplying headroom applies once — a repeat call
  // only honors the explicit request, so reservations cannot compound.
  const std::size_t per_bucket =
      std::max<std::size_t>(4, 2 * expected_pending / kWindowTicks);
  const std::size_t headroom = bucket_headroom_applied_ ? 1 : 4;
  bucket_headroom_applied_ = true;
  for (auto& bucket : buckets_) {
    bucket.reserve(std::max(per_bucket, headroom * bucket.capacity()));
  }
}

void Simulator::dispatch(const Event& event) {
  switch (event.type) {
    case EventType::kArbitrate:
      static_cast<Transmitter*>(event.target)->arbitrate();
      return;
    case EventType::kTxComplete:
      static_cast<Transmitter*>(event.target)->complete(event.u.sim.frame);
      return;
    case EventType::kSwitchIngress:
      static_cast<SimSwitch*>(event.target)
          ->ingress(event.u.sim.frame, NodeId{event.u.sim.aux});
      return;
    case EventType::kSwitchForward:
      static_cast<SimSwitch*>(event.target)
          ->forward(event.u.sim.frame, NodeId{event.u.sim.aux});
      return;
    case EventType::kNodeDeliver:
      static_cast<SimNetwork*>(event.target)
          ->deliver_to_node(event.u.sim.frame, NodeId{event.u.sim.aux});
      return;
    case EventType::kBestEffortArrival:
      static_cast<BestEffortSource*>(event.target)->on_arrival();
      return;
    case EventType::kFaultArm:
      static_cast<FaultInjector*>(event.target)->arm(event.u.sim.aux);
      return;
    case EventType::kFaultDisarm:
      static_cast<FaultInjector*>(event.target)->disarm(event.u.sim.aux);
      return;
    case EventType::kGateOpen:
      static_cast<Transmitter*>(event.target)->gate_open(event.u.sim.aux);
      return;
    case EventType::kGateClose:
      static_cast<Transmitter*>(event.target)->gate_close(event.u.sim.aux);
      return;
    case EventType::kTimer:
      event.u.timer(event.target, event.arg, now_);
      return;
    case EventType::kClosure: {
      const auto slot = static_cast<std::uint32_t>(event.arg);
      // Move out and free the slot before running: the action may
      // schedule further closures and reuse it.
      Action action = std::move(closure_slots_[slot]);
      closure_slots_[slot] = nullptr;
      free_closure_slots_.push_back(slot);
      action();
      return;
    }
  }
}

void Simulator::pop_and_dispatch() {
  // Copy out: dispatch may append to this very bucket (same-tick
  // arbitration) and reallocate it.
  const Event event = buckets_[cursor_ & kWindowMask][bucket_pos_++];
  --near_count_;
  now_ = event.time;
  ++executed_;
  dispatch(event);
}

bool Simulator::step() {
  if (!find_next()) {
    return false;
  }
  pop_and_dispatch();
  return true;
}

bool Simulator::run_until(Tick until, std::uint64_t max_events) {
  std::uint64_t executed = 0;
  for (;;) {
    const bool have_near = near_count_ > 0;
    if (!have_near &&
        (far_heap_.empty() || far_heap_.front().time > until)) {
      // Nothing due by the horizon; decided without moving the window, so
      // later external schedule_at calls land inside it.
      break;
    }
    if (have_near) {
      // Scan only — find_next cannot jump the window while near events
      // exist, so breaking or reporting below leaves the queue
      // schedulable (window_start_ ≤ now_).
      if (!find_next()) break;
      if (cursor_ > until) {
        break;  // next event past the horizon (cursor_ == its tick)
      }
    }
    if (executed == max_events) {
      // Runaway guard: report instead of spinning forever on a same-tick
      // self-rescheduling loop — callers decide how to fail. Checked
      // before any window jump so the simulation stays resumable.
      return false;
    }
    // A far-event window jump (the !have_near case) happens here, with
    // the jumped-to event popped in the same breath.
    if (!have_near && !find_next()) break;
    pop_and_dispatch();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return true;
}

bool Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  for (;;) {
    if (empty()) {
      return true;
    }
    if (executed == max_events) {
      // Runaway guard: report instead of aborting, in every build type —
      // callers (and CI Release runs) decide how to fail. Checked before
      // find_next so a far-event window jump cannot strand the clock
      // behind the window on the false return.
      return false;
    }
    if (!find_next()) {
      return true;
    }
    pop_and_dispatch();
    ++executed;
  }
}

}  // namespace rtether::sim
