#pragma once

/// @file stack.hpp
/// The assembled system: a simulated star network with an RT layer in every
/// end-node and the RT channel management (admission control + DPS) in the
/// switch — everything Fig 18.1/18.2 shows, ready to drive from examples,
/// tests and benches.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"
#include "proto/rt_layer.hpp"
#include "proto/switch_mgmt.hpp"
#include "sim/network.hpp"

namespace rtether::proto {

/// A channel as seen by the application after a successful establishment.
struct EstablishedChannel {
  ChannelId id;
  NodeId source;
  NodeId destination;
  Slot period{0};
  Slot capacity{0};
  Slot deadline{0};
  /// d_iu the switch assigned (the source schedules with it).
  Slot uplink_deadline{0};
};

class Stack {
 public:
  /// Builds the network, one RT layer per node, and the switch management
  /// configured with `partitioner` (reference controller admission).
  Stack(sim::SimConfig config, std::uint32_t node_count,
        std::unique_ptr<core::DeadlinePartitioner> partitioner,
        core::AdmissionConfig admission = {},
        std::size_t best_effort_depth = 0, RtLayerConfig layer_config = {});

  /// Same, with the switch's admission implementation chosen by the caller
  /// — any `AdmissionBackend` kind, including the time-triggered "tt"
  /// scheme (whose gate tables the caller can then install into the
  /// network's transmitters).
  Stack(sim::SimConfig config, std::uint32_t node_count,
        std::unique_ptr<core::AdmissionBackend> backend,
        std::size_t best_effort_depth = 0, RtLayerConfig layer_config = {});

  [[nodiscard]] sim::SimNetwork& network() { return *network_; }
  [[nodiscard]] NodeRtLayer& layer(NodeId node);
  [[nodiscard]] SwitchMgmt& management() { return *mgmt_; }

  /// Synchronous-style channel establishment: sends the request and runs
  /// the simulation until the response arrives (other scheduled traffic
  /// keeps flowing meanwhile). Returns the established channel or the
  /// rejection/timeout detail.
  [[nodiscard]] Expected<EstablishedChannel, std::string> establish(
      NodeId source, NodeId destination, Slot period, Slot capacity,
      Slot deadline);

  /// Tears a channel down and runs the simulation until the switch has
  /// released it.
  void teardown(const EstablishedChannel& channel);

 private:
  std::unique_ptr<sim::SimNetwork> network_;
  std::vector<std::unique_ptr<NodeRtLayer>> layers_;
  std::unique_ptr<SwitchMgmt> mgmt_;
};

}  // namespace rtether::proto
