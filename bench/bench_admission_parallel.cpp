/// Scaling S2 — multi-core admission throughput: the link-sharded
/// `ParallelAdmissionEngine` vs the single-threaded batched engine vs the
/// reference one-at-a-time controller, on identical request streams.
///
/// The workload is the industrial one that makes sharding real: machine
/// cells whose traffic stays inside the cell, saturating each cell's links
/// — a plant bring-up where thousands of RT channels are requested across
/// many cells at once. The link-conflict graph then has one component per
/// cell, so the 64-node switch (4-node cells) yields 16 independent shards
/// and the 256-node switch (8-node cells) 32.
///
/// Gate: ≥ 3× speedup over the single-threaded batched path at 8 worker
/// threads on both saturated scenarios, enforced whenever the host actually
/// has 8 hardware threads (a smaller box cannot exhibit 8-way scaling and
/// only reports). Decisions must be identical across all three paths — any
/// divergence is an immediate failure.
///
/// Every run also writes `BENCH_admission.json` (path overridable) so CI
/// can archive the perf trajectory as a machine-readable artifact.
///
/// All three paths are driven through the unified `core::AdmissionBackend`
/// front door ("controller" / "batched" / "parallel"), the same interface
/// the scenario runner uses.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/admission.hpp"
#include "core/admission_backend.hpp"
#include "core/partitioner.hpp"

using namespace rtether;
using namespace rtether::core;

namespace {

/// Cell-local constrained-deadline request stream (d < P keeps the demand
/// scan off the Liu & Layland shortcut; cell-locality keeps the conflict
/// graph sharded, one component per cell).
std::vector<ChannelRequest> make_celled_stream(std::uint64_t seed,
                                               std::size_t count,
                                               std::uint32_t nodes,
                                               std::uint32_t cell_size) {
  Rng rng(seed);
  const std::uint32_t cells = nodes / cell_size;
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  std::vector<ChannelRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cell = static_cast<std::uint32_t>(rng.index(cells));
    const std::uint32_t base = cell * cell_size;
    const auto src = base + static_cast<std::uint32_t>(rng.index(cell_size));
    auto dst = base + static_cast<std::uint32_t>(rng.index(cell_size));
    if (dst == src) {
      dst = base + (dst - base + 1) % cell_size;
    }
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(4);
    const Slot deadline =
        2 * capacity + rng.index(period / 2 - 2 * capacity + 1);
    requests.push_back(ChannelRequest{
        ChannelSpec{NodeId{src}, NodeId{dst}, period, capacity, deadline}});
  }
  return requests;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  double seconds{0.0};
  std::size_t accepted{0};
  std::vector<bool> decisions;
};

/// Best-of-N wall time, the benchmarking standard for scheduler noise.
constexpr int kRepetitions = 3;

/// Replays the stream through any `AdmissionBackend` kind; best-of-N wall
/// time of the backend's own `submit` path.
RunResult run_backend(const std::string& kind,
                      const std::vector<ChannelRequest>& requests,
                      std::uint32_t nodes, const std::string& scheme,
                      unsigned threads) {
  std::vector<ChannelOp> ops;
  ops.reserve(requests.size());
  for (const auto& request : requests) {
    ops.push_back(ChannelOp::admit(request.spec));
  }
  RunResult result;
  result.seconds = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    BackendConfig config;
    config.threads = threads;
    auto backend =
        make_admission_backend(kind, nodes, make_partitioner(scheme), config);
    if (backend == nullptr) {
      std::fprintf(stderr, "unknown backend kind: %s\n", kind.c_str());
      std::exit(64);
    }
    const auto start = std::chrono::steady_clock::now();
    const ChurnResult churn = backend->submit(ops);
    result.seconds = std::min(result.seconds, seconds_since(start));
    result.decisions.clear();
    result.decisions.reserve(churn.admissions.size());
    for (const auto& outcome : churn.admissions) {
      result.decisions.push_back(outcome.has_value());
    }
    result.accepted = churn.accepted();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t request_count = 16'000;
  unsigned threads = 8;
  std::string json_path = "BENCH_admission.json";
  if (argc > 1) {
    request_count =
        static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    threads = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) {
    json_path = argv[3];
  }
  const unsigned hardware = std::thread::hardware_concurrency();

  std::puts("================================================================");
  std::puts("Scaling S2 — multi-core admission: link-sharded engine vs");
  std::puts("single-threaded batched engine vs sequential controller");
  std::puts("================================================================");
  std::printf("threads: %u (hardware: %u)\n\n", threads, hardware);

  ConsoleTable table("S2: admits/sec on a " + std::to_string(request_count) +
                     "-request cell-local stream");
  table.set_header({"nodes", "shards", "accepted", "sequential adm/s",
                    "batched adm/s", "parallel adm/s", "par/batch", "gated"});

  struct Scenario {
    std::uint32_t nodes;
    std::uint32_t cell_size;
    const char* scheme;
    bool gated;
  };
  // The ≥ 3× target applies to the saturated multi-cell regimes the paper's
  // switch grows into: enough cells to feed 8 workers, links running full.
  const Scenario scenarios[] = {
      // 16 cells / 16 shards and 32 cells / 32 shards: enough shards above
      // the 8 workers that dynamic claiming evens out per-cell load noise.
      Scenario{64, 4, "ADPS", true},
      Scenario{256, 8, "ADPS", true},
  };

  bool all_identical = true;
  double min_gated_speedup = 1e300;

  JsonWriter json;
  json.begin_object();
  json.member("bench", "admission_throughput");
  json.member("request_count", static_cast<std::uint64_t>(request_count));
  json.member("threads", static_cast<std::uint64_t>(threads));
  json.member("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  json.member("repetitions", kRepetitions);
  json.key("scenarios").begin_array();

  for (const Scenario& scenario : scenarios) {
    const auto requests =
        make_celled_stream(7, request_count, scenario.nodes,
                           scenario.cell_size);
    const auto sequential = run_backend("controller", requests,
                                        scenario.nodes, scenario.scheme,
                                        threads);
    const auto batched = run_backend("batched", requests, scenario.nodes,
                                     scenario.scheme, threads);
    const auto parallel = run_backend("parallel", requests, scenario.nodes,
                                      scenario.scheme, threads);
    // Cell-local traffic puts one conflict component in every cell, so the
    // shard count is the cell count by construction.
    const std::size_t shards = scenario.nodes / scenario.cell_size;

    const bool identical = sequential.decisions == batched.decisions &&
                           sequential.decisions == parallel.decisions &&
                           sequential.accepted == parallel.accepted;
    all_identical = all_identical && identical;

    const double n = static_cast<double>(requests.size());
    const double seq_rate = n / sequential.seconds;
    const double batch_rate = n / batched.seconds;
    const double par_rate = n / parallel.seconds;
    const double batched_speedup = sequential.seconds / batched.seconds;
    const double parallel_speedup = batched.seconds / parallel.seconds;
    if (scenario.gated) {
      min_gated_speedup = std::min(min_gated_speedup, parallel_speedup);
    }

    table.add(scenario.nodes, shards, parallel.accepted, seq_rate,
              batch_rate, par_rate, parallel_speedup,
              scenario.gated ? "yes" : "no");
    if (!identical) {
      std::printf("DECISION MISMATCH at nodes=%u scheme=%s\n",
                  scenario.nodes, scenario.scheme);
    }

    json.begin_object();
    json.member("nodes", static_cast<std::uint64_t>(scenario.nodes));
    json.member("cell_size", static_cast<std::uint64_t>(scenario.cell_size));
    json.member("scheme", scenario.scheme);
    json.member("shards", static_cast<std::uint64_t>(shards));
    json.member("accepted", static_cast<std::uint64_t>(parallel.accepted));
    json.member("sequential_admits_per_sec", seq_rate);
    json.member("batched_admits_per_sec", batch_rate);
    json.member("parallel_admits_per_sec", par_rate);
    json.member("batched_speedup_vs_sequential", batched_speedup);
    json.member("parallel_speedup_vs_batched", parallel_speedup);
    json.member("parallel_speedup_vs_sequential",
                sequential.seconds / parallel.seconds);
    json.member("decisions_identical", identical);
    json.member("gated", scenario.gated);
    json.end_object();
  }
  json.end_array();

  table.print();

  const bool full_run = request_count >= 16'000;
  const bool gate_enforced = full_run && hardware >= 8 && threads >= 8;
  json.member("min_gated_parallel_speedup", min_gated_speedup);
  json.member("gate_threshold", 3.0);
  json.member("gate_enforced", gate_enforced);
  json.member("all_decisions_identical", all_identical);
  json.end_object();

  std::printf("decisions identical across all paths and scenarios: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("min gated parallel speedup vs batched: %.2fx (target >= 3x,"
              " %s)\n",
              min_gated_speedup,
              gate_enforced ? "enforced"
                            : "reported only: needs a full-size run and >= 8"
                              " hardware threads");
  std::puts("reading: decisions on disjoint egress links are independent");
  std::puts("(the paper's test is per-link, Eqs 18.2-18.5), so cell-local");
  std::puts("traffic shards across cores; the merge phase re-serializes");
  std::puts("channel-ID assignment, keeping decisions bit-identical to the");
  std::puts("sequential controller.\n");

  if (!json.write_file(json_path)) {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // Non-zero exit on decision divergence or a missed throughput target so
  // CI can gate on this bench directly.
  if (!all_identical) return 1;
  if (gate_enforced && min_gated_speedup < 3.0) return 2;
  return 0;
}
