/// Scaling S3 — steady-state admit/release churn throughput.
///
/// A long-lived switch is not an admit-only appliance: channels are torn
/// down and re-established continuously (tool changes, fail-over
/// re-admission, tenant migration). Until this bench's tentpole change,
/// `AdmissionEngine::release` treated teardown as "any other mutation" and
/// cold-rebuilt the two affected link caches (O(tasks × checkpoints) per
/// release); the downdate path subtracts the released task's memoized
/// contribution in O(checkpoints) and keeps the grid warm for the re-admit.
///
/// The bench saturates a cell-structured network, then drives a steady
/// release-one/admit-one stream through:
///
///   * the reference `AdmissionController` (informational rate),
///   * `AdmissionEngine` under `ReleasePolicy::kRebuild` (the
///     release-as-invalidate baseline),
///   * `AdmissionEngine` under `ReleasePolicy::kDowndate` (the default),
///   * the sharded parallel engine and the resident admission service on
///     the identical mixed op stream,
///
/// verifies bit-exact decision/ID agreement everywhere, and gates the
/// downdate-vs-rebuild speedup at ≥ 3× on the saturated 64-node scenario.
/// Every path is driven through the unified `core::AdmissionBackend` front
/// door, the same interface the scenario runner uses.
///
/// Usage: bench_admission_churn [steady_ops] [json_path]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/admission.hpp"
#include "core/admission_backend.hpp"
#include "core/partitioner.hpp"

using namespace rtether;
using namespace rtether::core;

namespace {

constexpr std::uint32_t kCellSize = 4;

/// Random constrained-deadline cell-local spec (source and destination in
/// the same cell): per-link contention stays high and the conflict graph
/// shards, exactly the industrial regime the parallel engine targets.
ChannelSpec cell_spec(Rng& rng, std::uint32_t nodes) {
  // Long periods and unit capacities: each channel contributes little
  // utilization, so saturated links carry *many* channels — the deep
  // per-link task sets a long-lived plant accumulates, and the regime
  // where a cold O(tasks × checkpoints) rebuild per release hurts most.
  static constexpr Slot kPeriods[] = {100, 150, 200, 300, 400, 600};
  const std::uint32_t cells = nodes / kCellSize;
  const auto cell = static_cast<std::uint32_t>(rng.index(cells));
  const std::uint32_t base = cell * kCellSize;
  const auto src = base + static_cast<std::uint32_t>(rng.index(kCellSize));
  auto dst = base + static_cast<std::uint32_t>(rng.index(kCellSize));
  if (dst == src) {
    dst = base + (dst - base + 1) % kCellSize;
  }
  const Slot period = kPeriods[rng.index(std::size(kPeriods))];
  const Slot capacity = 1 + rng.index(2);
  const Slot deadline =
      2 * capacity + rng.index(period / 2 - 2 * capacity + 1);
  return ChannelSpec{NodeId{src}, NodeId{dst}, period, capacity, deadline};
}

/// One steady-state step: tear down a live channel (chosen by `victim_draw`
/// mod the current live count — identical across engines because decisions
/// are identical), then admit a fresh contract in its place.
struct SteadyOp {
  std::uint64_t victim_draw;
  ChannelSpec spec;
};

struct Workload {
  std::vector<ChannelSpec> warmup;
  std::vector<SteadyOp> steady;
};

Workload make_workload(std::uint64_t seed, std::uint32_t nodes,
                       std::size_t warmup_count, std::size_t steady_ops) {
  Rng rng(seed);
  Workload load;
  load.warmup.reserve(warmup_count);
  for (std::size_t i = 0; i < warmup_count; ++i) {
    load.warmup.push_back(cell_spec(rng, nodes));
  }
  load.steady.reserve(steady_ops);
  for (std::size_t i = 0; i < steady_ops; ++i) {
    load.steady.push_back(SteadyOp{rng.next_u64(), cell_spec(rng, nodes)});
  }
  return load;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Decision trace of one run: accept/reject per admit (warmup + steady) and
/// the assigned IDs, for cross-path identity checks.
struct RunResult {
  double steady_seconds{1e300};
  std::size_t live_after_warmup{0};
  std::size_t steady_accepted{0};
  std::vector<bool> decisions;
  std::vector<std::uint16_t> ids;
};

constexpr int kRepetitions = 3;

/// Replays the workload through any engine exposing request/release.
template <typename AdmitFn, typename ReleaseFn>
RunResult run_steady(const Workload& load, AdmitFn&& admit,
                     ReleaseFn&& release) {
  RunResult result;
  std::vector<ChannelId> live;
  for (const auto& spec : load.warmup) {
    const auto outcome = admit(spec);
    result.decisions.push_back(outcome.has_value());
    if (outcome.has_value()) {
      live.push_back(outcome->id);
      result.ids.push_back(outcome->id.value());
    }
  }
  result.live_after_warmup = live.size();

  const auto start = std::chrono::steady_clock::now();
  for (const auto& op : load.steady) {
    const std::size_t victim =
        static_cast<std::size_t>(op.victim_draw % live.size());
    const ChannelId id = live[victim];
    live[victim] = live.back();
    live.pop_back();
    const bool released = release(id).has_value();
    if (!released) {
      std::fprintf(stderr, "BUG: live channel failed to release\n");
      std::exit(4);
    }
    const auto outcome = admit(op.spec);
    result.decisions.push_back(outcome.has_value());
    if (outcome.has_value()) {
      live.push_back(outcome->id);
      result.ids.push_back(outcome->id.value());
      ++result.steady_accepted;
    }
  }
  result.steady_seconds = seconds_since(start);
  return result;
}

RunResult best_of(const Workload& load, ReleasePolicy policy,
                  std::uint32_t nodes, const std::string& scheme) {
  RunResult best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    BackendConfig config;
    config.admission.release = policy;
    auto backend = make_admission_backend("batched", nodes,
                                          make_partitioner(scheme), config);
    auto result = run_steady(
        load, [&](const ChannelSpec& spec) { return backend->admit(spec); },
        [&](ChannelId id) { return backend->release(id); });
    if (result.steady_seconds < best.steady_seconds) {
      best = std::move(result);
    }
  }
  return best;
}

bool same_trace(const RunResult& a, const RunResult& b) {
  return a.decisions == b.decisions && a.ids == b.ids &&
         a.live_after_warmup == b.live_after_warmup;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t steady_ops = 20'000;
  std::string json_path;
  if (argc > 1) {
    steady_ops =
        static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
    if (steady_ops == 0) {
      std::fprintf(stderr, "bad steady_ops: %s\n", argv[1]);
      return 64;
    }
  }
  if (argc > 2) {
    json_path = argv[2];
  }

  std::puts("================================================================");
  std::puts("Scaling S3 - steady-state churn: release downdating vs the");
  std::puts("release-as-invalidate baseline, identical mixed op streams");
  std::puts("================================================================");

  ConsoleTable table("S3: mixed ops/sec over " + std::to_string(steady_ops) +
                     " release+admit pairs (steady state)");
  table.set_header({"nodes", "scheme", "live", "rebuild ops/s",
                    "downdate ops/s", "speedup", "gated"});

  struct Scenario {
    std::uint32_t nodes;
    const char* scheme;
    std::size_t warmup;
    /// The >= 3x gate applies to the saturated 64-node scenario named by
    /// the issue; the smaller cell is an informational scaling row.
    bool gated;
  };
  bool all_identical = true;
  double gated_speedup = 1e300;
  double gated_downdate_rate = 0.0;
  double gated_rebuild_rate = 0.0;
  double parallel_rate = 0.0;
  double service_rate = 0.0;
  std::size_t gated_live = 0;

  for (const Scenario scenario :
       {Scenario{16, "ADPS", 2'000, false},
        Scenario{64, "ADPS", 6'000, true}}) {
    const Workload load =
        make_workload(7, scenario.nodes, scenario.warmup, steady_ops);

    const RunResult rebuild =
        best_of(load, ReleasePolicy::kRebuild, scenario.nodes,
                scenario.scheme);
    const RunResult downdate =
        best_of(load, ReleasePolicy::kDowndate, scenario.nodes,
                scenario.scheme);

    // Reference controller: decisions/IDs must match both engine policies.
    auto controller = make_admission_backend(
        "controller", scenario.nodes, make_partitioner(scenario.scheme));
    const RunResult reference = run_steady(
        load,
        [&](const ChannelSpec& spec) { return controller->admit(spec); },
        [&](ChannelId id) { return controller->release(id); });

    const bool identical =
        same_trace(reference, rebuild) && same_trace(reference, downdate);
    all_identical = all_identical && identical;
    if (!identical) {
      std::printf("DECISION MISMATCH at nodes=%u\n", scenario.nodes);
    }

    // Mixed throughput counts both halves of every steady step.
    const double ops = 2.0 * static_cast<double>(steady_ops);
    const double rebuild_rate = ops / rebuild.steady_seconds;
    const double downdate_rate = ops / downdate.steady_seconds;
    const double speedup = rebuild.steady_seconds / downdate.steady_seconds;
    if (scenario.gated) {
      gated_speedup = speedup;
      gated_downdate_rate = downdate_rate;
      gated_rebuild_rate = rebuild_rate;
      gated_live = downdate.live_after_warmup;

      // The sharded engine and the resident service digest the same stream
      // as one mixed op sequence; decisions must agree too.
      // reference.ids holds the assigned IDs in accept order across
      // warmup + steady, which is all that's needed to resolve each
      // steady release's victim up front.
      std::vector<ChannelOp> ops_stream;
      std::vector<ChannelId> live;
      std::size_t cursor = 0;
      std::size_t accepted_total = 0;
      for (const auto& spec : load.warmup) {
        ops_stream.push_back(ChannelOp::admit(spec));
        if (reference.decisions[cursor]) {
          live.push_back(ChannelId{reference.ids[accepted_total++]});
        }
        ++cursor;
      }
      for (const auto& op : load.steady) {
        const std::size_t victim =
            static_cast<std::size_t>(op.victim_draw % live.size());
        ops_stream.push_back(ChannelOp::release(live[victim]));
        live[victim] = live.back();
        live.pop_back();
        ops_stream.push_back(ChannelOp::admit(op.spec));
        if (reference.decisions[cursor]) {
          live.push_back(ChannelId{reference.ids[accepted_total++]});
        }
        ++cursor;
      }
      for (const char* kind : {"parallel", "service"}) {
        BackendConfig concurrent_config;
        concurrent_config.threads = 2;
        concurrent_config.min_parallel_batch = 2;
        auto backend = make_admission_backend(
            kind, scenario.nodes, make_partitioner(scenario.scheme),
            concurrent_config);
        const auto concurrent_start = std::chrono::steady_clock::now();
        const ChurnResult churn = backend->submit(ops_stream);
        const double concurrent_seconds = seconds_since(concurrent_start);
        std::vector<bool> backend_decisions;
        std::vector<std::uint16_t> backend_ids;
        for (const auto& outcome : churn.admissions) {
          backend_decisions.push_back(outcome.has_value());
          if (outcome.has_value()) {
            backend_ids.push_back(outcome->id.value());
          }
        }
        const bool backend_identical =
            backend_decisions == reference.decisions &&
            backend_ids == reference.ids;
        all_identical = all_identical && backend_identical;
        if (!backend_identical) {
          std::printf("%s DECISION MISMATCH at nodes=%u\n", kind,
                      scenario.nodes);
        }
        if (std::string_view(kind) == "parallel") {
          parallel_rate = ops / concurrent_seconds;
        } else {
          service_rate = ops / concurrent_seconds;
        }
      }
    }

    table.add(scenario.nodes, scenario.scheme, downdate.live_after_warmup,
              rebuild_rate, downdate_rate, speedup,
              scenario.gated ? "yes" : "no");
  }
  table.print();

  std::printf("decisions identical across all paths and policies: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("saturated-64-node churn speedup: %.1fx (target: >= 3x)\n",
              gated_speedup);
  std::puts("reading: a release now *downdates* the two affected link");
  std::puts("caches (subtract memoized demand, drop the released task's");
  std::puts("private checkpoints, re-derive lcm/busy period from the");
  std::puts("period buckets) instead of cold-rebuilding the grid - the");
  std::puts("next admit on that link stays a pure merge-walk.\n");

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.member("bench", "admission_churn");
    json.member("nodes", std::uint64_t{64});
    json.member("scheme", "ADPS");
    json.member("steady_ops", static_cast<std::uint64_t>(steady_ops));
    json.member("live_channels", static_cast<std::uint64_t>(gated_live));
    json.member("rebuild_ops_per_sec", gated_rebuild_rate);
    json.member("downdate_ops_per_sec", gated_downdate_rate);
    json.member("parallel_ops_per_sec", parallel_rate);
    json.member("service_ops_per_sec", service_rate);
    json.member("speedup_downdate_vs_rebuild", gated_speedup);
    json.member("decisions_identical", all_identical);
    json.member("gate_threshold", 3.0);
    json.member("gate_enforced", steady_ops >= 10'000);
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
      return 3;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_identical) return 1;
  if (steady_ops >= 10'000 && gated_speedup < 3.0) return 2;
  return 0;
}
