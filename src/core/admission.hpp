#pragma once

/// @file admission.hpp
/// The switch's admission control (paper §18.2.2/§18.3.2): on each channel
/// request, test whether the system state stays feasible with the new
/// channel's two pseudo-tasks added — utilization (Eq 18.2) and processor
/// demand (Eq 18.3, scanned per Eqs 18.4/18.5) on the source uplink and the
/// destination downlink. Rejected requests leave no residue.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "core/channel.hpp"
#include "core/id_allocator.hpp"
#include "core/network_state.hpp"
#include "core/partitioner.hpp"
#include "edf/feasibility.hpp"

namespace rtether::core {

/// Why a request was refused.
enum class RejectReason : std::uint8_t {
  kInvalidSpec,         ///< malformed {P, C, d} (includes d_i < 2·C_i)
  kUnknownNode,         ///< source or destination not in the network
  kUplinkInfeasible,    ///< no candidate kept the source uplink feasible
  kDownlinkInfeasible,  ///< no candidate kept the destination downlink feasible
  kChannelIdsExhausted, ///< all 65535 16-bit IDs live
  kUnknownChannel,      ///< teardown of an ID that is not live
};

[[nodiscard]] const char* to_string(RejectReason reason);

/// Inverse of `to_string` (corpus/bench artifact round-trips); nullopt for
/// strings that name no reason.
[[nodiscard]] std::optional<RejectReason> reject_reason_from_string(
    std::string_view text);

/// Rejection verdict with the failing link's feasibility report.
struct Rejection {
  RejectReason reason;
  std::string detail;

  friend bool operator==(const Rejection&, const Rejection&) = default;
};

/// Outcome of one admission request: the committed channel, or a typed
/// rejection with the failing constraint's diagnostic.
using AdmitOutcome = Expected<RtChannel, Rejection>;

/// Outcome of one teardown: the released ID, or a typed rejection
/// (`kUnknownChannel` — the ID was not live). Replaces the bool returns the
/// release paths used to share; `explicit operator bool` keeps
/// boolean-context call sites (`if (x.release(id))`) compiling unchanged.
using ReleaseOutcome = Expected<ChannelId, Rejection>;

/// How the cached admission paths maintain their per-link scan caches when
/// a channel is released.
enum class ReleasePolicy : std::uint8_t {
  /// Subtract the released task's memoized contribution in O(points):
  /// release is a first-class fast path and an identical re-admit stays a
  /// pure merge-walk (the default).
  kDowndate,
  /// Release-as-invalidate baseline: cold `LinkScanCache::reset` per
  /// affected link direction, O(tasks × points). Kept for the churn bench's
  /// speedup gate and for A/B decision-identity tests.
  kRebuild,
};

/// Tuning knobs for the admission controller.
struct AdmissionConfig {
  /// Demand-scan strategy for constraint 2 (paper default: checkpoints).
  edf::DemandScan scan{edf::DemandScan::kCheckpoints};
  /// Cache maintenance on channel release (cached paths only).
  ReleasePolicy release{ReleasePolicy::kDowndate};
};

/// Running acceptance statistics.
struct AdmissionStats {
  std::uint64_t requested{0};
  std::uint64_t accepted{0};
  std::uint64_t rejected{0};
  std::uint64_t released{0};
  /// Total feasibility tests run (≥ 2 per candidate partition tried).
  std::uint64_t feasibility_tests{0};
  /// Total demand-function evaluations across all tests (ablation metric).
  std::uint64_t demand_evaluations{0};
};

class AdmissionController {
 public:
  /// A star network with `node_count` end-nodes; `partitioner` implements
  /// the DPS in force (the paper's switch is configured with one scheme).
  AdmissionController(std::uint32_t node_count,
                      std::unique_ptr<DeadlinePartitioner> partitioner,
                      AdmissionConfig config = {});

  /// Handles a channel request end-to-end: validate, partition, test both
  /// affected link directions, and either commit the channel (assigning a
  /// network-unique ID) or reject with a reason. Never leaves tentative
  /// state behind.
  [[nodiscard]] AdmitOutcome request(const ChannelSpec& spec);

  /// Releases an established channel (teardown). Fails typed
  /// (`kUnknownChannel`) when the ID is not live.
  [[nodiscard]] ReleaseOutcome release(ChannelId id);

  /// Pre-typed-outcome release shape; kept one release for callers still
  /// migrating to `ReleaseOutcome` / the `AdmissionBackend` surface.
  [[deprecated("use release(); it reports a typed ReleaseOutcome")]]
  bool release_ok(ChannelId id) {
    return release(id).has_value();
  }

  [[nodiscard]] const NetworkState& state() const { return state_; }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const {
    return *partitioner_;
  }

  /// Forgets every live channel and returns the ID allocator to its
  /// initial state — the admission half of a switch reboot (volatile
  /// channel table lost; scheme and config survive in firmware). Running
  /// stats keep counting across the reboot. A post-reboot re-admission
  /// sequence is therefore bit-identical to the same sequence on a fresh
  /// controller — the survival contract the scenario runner enforces.
  void reset() {
    state_ = NetworkState(state_.node_count());
    ids_ = ChannelIdAllocator{};
  }

 private:
  NetworkState state_;
  std::unique_ptr<DeadlinePartitioner> partitioner_;
  AdmissionConfig config_;
  ChannelIdAllocator ids_;
  AdmissionStats stats_;
};

/// One request in a batch submitted to `AdmissionEngine::admit_batch`.
struct ChannelRequest {
  ChannelSpec spec;
};

/// Outcome of a batch: one result per request, in submission order.
struct BatchResult {
  std::vector<AdmitOutcome> outcomes;

  [[nodiscard]] std::size_t accepted() const;
  [[nodiscard]] std::size_t rejected() const;
};

/// One step of a mixed admit/release stream — the op vocabulary shared by
/// `AdmissionBackend::submit`, `ParallelAdmissionEngine::process` and the
/// `AdmissionService` ingest ring.
struct ChannelOp {
  enum class Kind : std::uint8_t { kAdmit, kRelease };

  Kind kind{Kind::kAdmit};
  /// kAdmit: the requested contract.
  ChannelSpec spec{};
  /// kRelease: the channel to tear down.
  ChannelId id{};

  [[nodiscard]] static ChannelOp admit(const ChannelSpec& spec) {
    ChannelOp op;
    op.kind = Kind::kAdmit;
    op.spec = spec;
    return op;
  }
  [[nodiscard]] static ChannelOp release(ChannelId id) {
    ChannelOp op;
    op.kind = Kind::kRelease;
    op.id = id;
    return op;
  }
};

/// Outcome of a mixed op stream: admissions and releases in their
/// respective submission orders.
struct ChurnResult {
  /// One entry per kAdmit op, in stream order.
  std::vector<AdmitOutcome> admissions;
  /// One entry per kRelease op, in stream order.
  std::vector<ReleaseOutcome> releases;

  [[nodiscard]] std::size_t accepted() const;
  [[nodiscard]] std::size_t rejected() const;
};

/// Which execution structure an admission component should use for a given
/// workload shape. One policy point shared by `ParallelAdmissionEngine`
/// (per `admit_batch` call) and `AdmissionService` (at construction), so
/// the fallback heuristics cannot drift between the two.
enum class AdmissionPath : std::uint8_t {
  kSequential,  ///< in-order single-threaded engine path
  kSharded,     ///< conflict-component sharding across workers
};

/// `kSharded` iff the scan strategy supports the cached shard path
/// (checkpoints), at least two threads can make progress, and the workload
/// amortizes the sharding overhead (`work_items >= min_work_items`).
[[nodiscard]] AdmissionPath select_path(edf::DemandScan scan,
                                        unsigned thread_count,
                                        std::size_t work_items,
                                        std::size_t min_work_items);

/// High-throughput admission pipeline.
///
/// `AdmissionController` re-derives the full feasibility state — busy
/// period, checkpoint grid, per-instant demand sums — from scratch for every
/// candidate of every request. That is faithful to the paper but quadratic
/// in the number of admitted channels, and it is exactly the bottleneck when
/// a switch must establish thousands of RT channels (bring-up of a large
/// plant, fail-over re-admission, tenant migration).
///
/// The engine processes requests *in submission order* — decisions, assigned
/// channel IDs and rejection diagnostics are identical to feeding the same
/// stream through `AdmissionController::request` one call at a time — but
/// amortizes the per-link analysis state across the batch:
///
///   * a `edf::LinkScanCache` per link direction memoizes the checkpoint
///     grid and per-instant demand, so each trial test is a merge-walk in
///     O(checkpoints) instead of O(tasks · checkpoints);
///   * `admit_batch` pre-sorts the batch per egress link and sizes each
///     touched link's grid (busy-period horizon, running-lcm hyperperiod)
///     once per link instead of once per request;
///   * rejected candidates never touch the system state, so there is no
///     tentative add/remove churn on the hot path.
///
/// Caveat: parity holds for partitioners whose candidates depend on the
/// *exact* system state (SDPS, ADPS, Search — link loads are integers). A
/// partitioner reading floating-point link utilization (UDPS) can observe
/// harmless accumulation-order differences versus a controller that has
/// churned through tentative add/remove cycles.
///
/// Scan strategies other than the default `kCheckpoints` bypass the caches
/// and run the reference `check_feasibility` path (still in order, still
/// identical decisions).
class AdmissionEngine {
 public:
  AdmissionEngine(std::uint32_t node_count,
                  std::unique_ptr<DeadlinePartitioner> partitioner,
                  AdmissionConfig config = {});

  /// Admits one request, reusing the incremental per-link state built up by
  /// previous admits and batches.
  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec);

  /// Admits a batch. Results are 1:1 with `requests` in submission order.
  [[nodiscard]] BatchResult admit_batch(std::span<const ChannelRequest> requests);

  /// Releases an established channel (teardown); typed `kUnknownChannel`
  /// rejection if the ID is not live. O(affected links): the two link
  /// caches are downdated in place (or cold-rebuilt under
  /// `ReleasePolicy::kRebuild`).
  [[nodiscard]] ReleaseOutcome release(ChannelId id);

  /// Pre-typed-outcome release shape; kept one release for callers still
  /// migrating to `ReleaseOutcome` / the `AdmissionBackend` surface.
  [[deprecated("use release(); it reports a typed ReleaseOutcome")]]
  bool release_ok(ChannelId id) {
    return release(id).has_value();
  }

  [[nodiscard]] const NetworkState& state() const { return state_; }
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const {
    return *partitioner_;
  }

  /// Forgets every live channel, returns the ID allocator to its initial
  /// state and cold-resets the per-link scan caches — the engine-shaped
  /// mirror of `AdmissionController::reset` (same reboot semantics: stats
  /// keep counting, post-reset decisions match a fresh engine).
  void reset() {
    state_ = NetworkState(state_.node_count());
    ids_ = ChannelIdAllocator{};
    for (auto& cache : uplink_caches_) {
      cache = edf::LinkScanCache{};
    }
    for (auto& cache : downlink_caches_) {
      cache = edf::LinkScanCache{};
    }
  }

 private:
  [[nodiscard]] Expected<RtChannel, Rejection> admit_one(
      const ChannelSpec& spec);

  /// Reference-path admit for non-checkpoint scan strategies: tentative
  /// add / test / roll back, exactly like `AdmissionController::request`.
  [[nodiscard]] Expected<RtChannel, Rejection> admit_one_reference(
      const ChannelSpec& spec);

  [[nodiscard]] edf::LinkScanCache& cache(NodeId node, LinkDirection dir);

  /// Batch pre-pass: sort the batch per egress/ingress link and pre-size
  /// each touched link's scan cache once.
  void prepare_links(std::span<const ChannelRequest> requests);

  /// The parallel engine wraps this one: it borrows the per-link caches for
  /// its shard workers and replays accepted decisions through `state_` and
  /// `ids_` so the sequential and sharded paths share one source of truth.
  friend class ParallelAdmissionEngine;

  NetworkState state_;
  std::unique_ptr<DeadlinePartitioner> partitioner_;
  AdmissionConfig config_;
  ChannelIdAllocator ids_;
  AdmissionStats stats_;
  std::vector<edf::LinkScanCache> uplink_caches_;
  std::vector<edf::LinkScanCache> downlink_caches_;
};

}  // namespace rtether::core
