#include "proto/switch_mgmt.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "net/ethernet.hpp"
#include "sim/addressing.hpp"

namespace rtether::proto {

SwitchMgmt::SwitchMgmt(sim::SimNetwork& network,
                       std::unique_ptr<core::DeadlinePartitioner> partitioner,
                       core::AdmissionConfig config)
    : SwitchMgmt(network,
                 core::make_admission_backend(
                     "controller", network.node_count(), std::move(partitioner),
                     core::BackendConfig{config})) {}

SwitchMgmt::SwitchMgmt(sim::SimNetwork& network,
                       std::unique_ptr<core::AdmissionBackend> backend)
    : network_(network), backend_(std::move(backend)) {
  RTETHER_ASSERT_MSG(backend_ != nullptr,
                     "switch management needs an admission backend");
  network_.ethernet_switch().set_mgmt_handler(
      [](void* context, const sim::SimFrame& frame, NodeId ingress, Tick now) {
        static_cast<SwitchMgmt*>(context)->on_management(frame, ingress, now);
      },
      this);
}

void SwitchMgmt::send_to_node(NodeId to, std::vector<std::uint8_t> payload) {
  net::EthernetHeader ethernet;
  ethernet.destination = sim::node_mac(to);
  ethernet.source = sim::switch_mac();
  ethernet.ether_type = net::EtherType::kRtManagement;

  ByteWriter writer(net::EthernetHeader::kWireSize + payload.size());
  ethernet.serialize(writer);
  writer.write_bytes(payload);

  sim::SimFrame frame =
      sim::SimFrame::make(network_.next_frame_id(), std::move(writer).take(),
                          0, network_.now(), to);
  network_.ethernet_switch().send_from_switch(to, std::move(frame));
}

void SwitchMgmt::on_management(const sim::SimFrame& frame, NodeId ingress,
                               Tick /*now*/) {
  const std::span<const std::uint8_t> payload(
      frame.bytes.data() + net::EthernetHeader::kWireSize,
      frame.bytes.size() - net::EthernetHeader::kWireSize);
  const auto type = net::peek_mgmt_type(payload);
  if (!type) return;
  switch (*type) {
    case net::MgmtFrameType::kConnectRequest:
      if (const auto request = net::RequestFrame::parse(payload)) {
        handle_request(*request, ingress);
      }
      return;
    case net::MgmtFrameType::kConnectResponse:
      if (const auto response = net::ResponseFrame::parse(payload)) {
        handle_response(*response);
      }
      return;
    case net::MgmtFrameType::kTeardownRequest:
      if (const auto teardown = net::TeardownFrame::parse(payload)) {
        handle_teardown(*teardown, ingress);
      }
      return;
    case net::MgmtFrameType::kTeardownResponse:
      return;  // switch never receives teardown acks
  }
}

void SwitchMgmt::handle_request(const net::RequestFrame& request,
                                NodeId ingress) {
  ++stats_.requests_received;

  // Retransmitted request while the original is still in flight (or already
  // decided): do not run admission twice.
  const auto dedup_key = std::make_pair(ingress.value(),
                                        request.connection_request.value());
  if (const auto seen = seen_requests_.find(dedup_key);
      seen != seen_requests_.end()) {
    ++stats_.duplicate_requests_ignored;
    // If the channel is still awaiting the destination, the original flow
    // will answer; if it was already decided the source's response was
    // lost — re-forwarding to the destination re-triggers a response.
    if (const auto pending = awaiting_destination_.find(seen->second);
        pending != awaiting_destination_.end()) {
      return;
    }
    return;
  }

  const auto source = sim::mac_to_node(request.source_mac);
  const auto destination = sim::mac_to_node(request.destination_mac);
  if (!source || !destination) {
    net::ResponseFrame response;
    response.connection_request = request.connection_request;
    response.rt_channel = ChannelId(0);
    response.accepted = false;
    send_to_node(ingress, response.serialize());
    return;
  }

  core::ChannelSpec spec;
  spec.source = *source;
  spec.destination = *destination;
  spec.period = request.period;
  spec.capacity = request.capacity;
  spec.deadline = request.deadline;

  const auto verdict = backend_->admit(spec);
  if (!verdict) {
    // Infeasible: respond to the source directly; the request is NOT
    // forwarded to the destination (paper §18.2.2).
    ++stats_.requests_rejected_infeasible;
    RTETHER_LOG(kDebug, "switch-mgmt",
                "rejected " << spec.to_string() << ": "
                            << verdict.error().detail);
    net::ResponseFrame response;
    response.connection_request = request.connection_request;
    response.rt_channel = ChannelId(0);
    response.accepted = false;
    send_to_node(*source, response.serialize());
    return;
  }

  // Feasible: remember the verdict, stamp the network-unique channel ID
  // into the request, and forward it to the destination node.
  ++stats_.requests_admitted;
  const core::RtChannel& channel = verdict.value();
  awaiting_destination_.insert_or_assign(
      channel.id, PendingApproval{*source, request.connection_request});
  seen_requests_.insert_or_assign(dedup_key, channel.id);

  net::RequestFrame forwarded = request;
  forwarded.rt_channel = channel.id;
  send_to_node(*destination, forwarded.serialize());
}

void SwitchMgmt::handle_response(const net::ResponseFrame& response) {
  const auto it = awaiting_destination_.find(response.rt_channel);
  if (it == awaiting_destination_.end()) {
    return;  // duplicate verdict; already relayed
  }
  const PendingApproval pending = it->second;
  awaiting_destination_.erase(it);

  net::ResponseFrame relayed = response;
  relayed.connection_request = pending.request;
  if (response.accepted) {
    const auto channel = backend_->state().find_channel(response.rt_channel);
    RTETHER_ASSERT_MSG(channel.has_value(),
                       "approved channel missing from admission state");
    relayed.uplink_deadline =
        static_cast<std::uint32_t>(channel->partition.uplink);
  } else {
    // Destination declined: roll the admission back (no residue) and drop
    // the request-dedup entry — same as teardown, a stale entry would make
    // the switch silently ignore a new request that recycles the 8-bit
    // connection-request ID.
    ++stats_.requests_rejected_by_destination;
    const bool released = backend_->release(response.rt_channel).has_value();
    RTETHER_ASSERT_MSG(released, "pending channel missing on rollback");
    prune_seen_requests(response.rt_channel);
    relayed.uplink_deadline = 0;
  }
  send_to_node(pending.source, relayed.serialize());
}

void SwitchMgmt::prune_seen_requests(ChannelId channel) {
  // Drop the request-dedup entries that produced `channel`: under heavy
  // setup/teardown churn the 8-bit connection-request space recycles
  // quickly, and a stale entry would both leak without bound and make the
  // switch silently ignore a genuinely new request that reuses the ID.
  for (auto it = seen_requests_.begin(); it != seen_requests_.end();) {
    it = it->second == channel ? seen_requests_.erase(it) : std::next(it);
  }
}

void SwitchMgmt::handle_teardown(const net::TeardownFrame& teardown,
                                 NodeId ingress) {
  const auto channel = backend_->state().find_channel(teardown.rt_channel);
  if (!channel) {
    // Already gone: a re-delivered teardown whose first ack may have been
    // lost. Idempotent — controller state is untouched, the destination is
    // not re-notified — but the initiator is re-acked so it can converge.
    ++stats_.duplicate_teardowns_ignored;
    net::TeardownFrame ack = teardown;
    ack.is_ack = true;
    send_to_node(ingress, ack.serialize());
    return;
  }
  if (ingress != channel->spec.source) {
    // Stray teardown: only the channel's source initiates teardown
    // (NodeRtLayer tears down TX channels). A corrupted ID — or a late
    // duplicate arriving after the ID was recycled to a different pair's
    // channel — must not release someone else's live channel and desync
    // the switch from the admission controller.
    ++stats_.stray_teardowns_ignored;
    return;
  }
  ++stats_.teardowns;
  const NodeId destination = channel->spec.destination;
  const bool released = backend_->release(teardown.rt_channel).has_value();
  RTETHER_ASSERT_MSG(released, "live channel failed to release");

  // The channel may still be awaiting the destination's setup verdict; drop
  // the pending entry so a late ResponseFrame cannot trip the "approved
  // channel missing from admission state" invariant or double-release.
  awaiting_destination_.erase(teardown.rt_channel);
  prune_seen_requests(teardown.rt_channel);

  // Notify the destination, acknowledge the initiator.
  net::TeardownFrame notify = teardown;
  notify.is_ack = false;
  send_to_node(destination, notify.serialize());
  net::TeardownFrame ack = teardown;
  ack.is_ack = true;
  send_to_node(ingress, ack.serialize());
}

}  // namespace rtether::proto
