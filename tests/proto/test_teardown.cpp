#include <gtest/gtest.h>

#include <memory>

#include "core/partitioner.hpp"
#include "proto/stack.hpp"

namespace rtether::proto {
namespace {

sim::SimConfig test_config() {
  return sim::SimConfig{.ticks_per_slot = 100,
                        .propagation_ticks = 1,
                        .switch_processing_ticks = 1};
}

TEST(Teardown, ReleasesSwitchState) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  ASSERT_EQ(stack.management().controller().state().channel_count(), 1u);

  stack.teardown(*channel);
  EXPECT_EQ(stack.management().controller().state().channel_count(), 0u);
  EXPECT_EQ(stack.management().stats().teardowns, 1u);
  EXPECT_TRUE(stack.layer(NodeId{0}).tx_channels().empty());
}

TEST(Teardown, DestinationIsNotified) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  ASSERT_EQ(stack.layer(NodeId{1}).rx_channels().size(), 1u);
  stack.teardown(*channel);
  EXPECT_TRUE(stack.network().simulator().run_all());
  EXPECT_TRUE(stack.layer(NodeId{1}).rx_channels().empty());
}

TEST(Teardown, FreedCapacityIsReusable) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  // Saturate the uplink (SDPS limit 6 at the paper's operating point).
  std::vector<EstablishedChannel> channels;
  for (int i = 0; i < 6; ++i) {
    channels.push_back(*stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40));
  }
  ASSERT_FALSE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40).has_value());

  stack.teardown(channels.front());
  EXPECT_TRUE(stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40).has_value());
}

TEST(Teardown, DuplicateTeardownIsHarmless) {
  Stack stack(test_config(), 4, std::make_unique<core::SymmetricPartitioner>());
  const auto channel = stack.establish(NodeId{0}, NodeId{1}, 100, 3, 40);
  ASSERT_TRUE(channel.has_value());
  stack.teardown(*channel);
  // Second teardown frame for a dead channel: ignored by the switch.
  net::TeardownFrame dup;
  dup.rt_channel = channel->id;
  // Re-establishing works and may legitimately reuse the freed ID.
  const auto fresh = stack.establish(NodeId{2}, NodeId{3}, 100, 3, 40);
  EXPECT_TRUE(fresh.has_value());
  EXPECT_EQ(stack.management().stats().teardowns, 1u);
}

}  // namespace
}  // namespace rtether::proto
