#include "traffic/master_slave.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rtether::traffic {
namespace {

MasterSlaveConfig paper_config() {
  // Fig 18.5: 10 masters, 50 slaves, C=3, P=100, d=40, master→slave.
  return MasterSlaveConfig{};
}

TEST(MasterSlave, NodeSplit) {
  MasterSlaveWorkload w(paper_config(), 1);
  EXPECT_EQ(w.node_count(), 60u);
  EXPECT_TRUE(w.is_master(NodeId{0}));
  EXPECT_TRUE(w.is_master(NodeId{9}));
  EXPECT_FALSE(w.is_master(NodeId{10}));
  EXPECT_FALSE(w.is_master(NodeId{59}));
}

TEST(MasterSlave, MasterToSlaveEndpoints) {
  MasterSlaveWorkload w(paper_config(), 7);
  for (int i = 0; i < 500; ++i) {
    const auto spec = w.next();
    EXPECT_LT(spec.source.value(), 10u);
    EXPECT_GE(spec.destination.value(), 10u);
    EXPECT_LT(spec.destination.value(), 60u);
    EXPECT_EQ(spec.period, 100u);
    EXPECT_EQ(spec.capacity, 3u);
    EXPECT_EQ(spec.deadline, 40u);
    EXPECT_TRUE(spec.valid());
  }
}

TEST(MasterSlave, SlaveToMasterEndpoints) {
  auto config = paper_config();
  config.direction = FlowDirection::kSlaveToMaster;
  MasterSlaveWorkload w(config, 7);
  for (int i = 0; i < 500; ++i) {
    const auto spec = w.next();
    EXPECT_GE(spec.source.value(), 10u);
    EXPECT_LT(spec.destination.value(), 10u);
  }
}

TEST(MasterSlave, MixedHasBothDirections) {
  auto config = paper_config();
  config.direction = FlowDirection::kMixed;
  MasterSlaveWorkload w(config, 7);
  int master_sends = 0;
  const int total = 1000;
  for (int i = 0; i < total; ++i) {
    if (w.next().source.value() < 10) ++master_sends;
  }
  EXPECT_GT(master_sends, total / 3);
  EXPECT_LT(master_sends, 2 * total / 3);
}

TEST(MasterSlave, CoversAllMastersAndSlaves) {
  MasterSlaveWorkload w(paper_config(), 11);
  std::set<std::uint32_t> masters;
  std::set<std::uint32_t> slaves;
  for (int i = 0; i < 3000; ++i) {
    const auto spec = w.next();
    masters.insert(spec.source.value());
    slaves.insert(spec.destination.value());
  }
  EXPECT_EQ(masters.size(), 10u);
  EXPECT_EQ(slaves.size(), 50u);
}

TEST(MasterSlave, DeterministicPerSeed) {
  MasterSlaveWorkload a(paper_config(), 42);
  MasterSlaveWorkload b(paper_config(), 42);
  const auto specs_a = a.generate(50);
  const auto specs_b = b.generate(50);
  EXPECT_EQ(specs_a, specs_b);
  MasterSlaveWorkload c(paper_config(), 43);
  EXPECT_NE(c.generate(50), specs_a);
}

TEST(MasterSlave, SampledParameters) {
  auto config = paper_config();
  config.period = SlotDistribution::choice({50, 100, 200});
  config.deadline = SlotDistribution::uniform(20, 60);
  MasterSlaveWorkload w(config, 5);
  for (int i = 0; i < 200; ++i) {
    const auto spec = w.next();
    EXPECT_TRUE(spec.period == 50 || spec.period == 100 ||
                spec.period == 200);
    EXPECT_GE(spec.deadline, 20u);
    EXPECT_LE(spec.deadline, 60u);
  }
}

TEST(MasterSlave, DirectionNames) {
  EXPECT_STREQ(to_string(FlowDirection::kMasterToSlave), "master->slave");
  EXPECT_STREQ(to_string(FlowDirection::kSlaveToMaster), "slave->master");
  EXPECT_STREQ(to_string(FlowDirection::kMixed), "mixed");
}

}  // namespace
}  // namespace rtether::traffic
