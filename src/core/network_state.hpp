#pragma once

/// @file network_state.hpp
/// The "system state" SS = {N, K} of paper §18.3.2: the set of end-nodes
/// plus the set of active RT channels, projected onto per-link-direction
/// EDF task sets. Each full-duplex link contributes two independent
/// "processors": the uplink (node → switch) and the downlink
/// (switch → node).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/channel.hpp"
#include "edf/task_set.hpp"

namespace rtether::core {

/// Which direction of a node's full-duplex link to the switch.
enum class LinkDirection : std::uint8_t {
  kUplink,    ///< node → switch; scheduled by the node's RT layer
  kDownlink,  ///< switch → node; scheduled by the switch's output port
};

[[nodiscard]] const char* to_string(LinkDirection dir);

class NetworkState {
 public:
  /// A star network with `node_count` end-nodes (IDs 0 … node_count−1),
  /// all connected to the single switch.
  explicit NetworkState(std::uint32_t node_count);

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(uplinks_.size());
  }

  [[nodiscard]] bool node_exists(NodeId node) const {
    return node.value() < node_count();
  }

  /// Task set scheduled on one link direction.
  [[nodiscard]] const edf::TaskSet& link(NodeId node,
                                         LinkDirection dir) const;

  /// LinkLoad LL — the number of channels traversing the link direction
  /// (paper §18.4.2).
  [[nodiscard]] std::size_t link_load(NodeId node, LinkDirection dir) const {
    return link(node, dir).size();
  }

  /// Inserts the channel's two pseudo-tasks (uplink at the source, downlink
  /// at the destination) and registers the channel. Asserts the ID is new
  /// and both nodes exist.
  void add_channel(const RtChannel& channel);

  /// Removes a channel and its pseudo-tasks; false if unknown.
  bool remove_channel(ChannelId id);

  /// Installs a wholesale copy of one link direction's task set — the shard
  /// projection used by the parallel admission engine. A worker's private
  /// state mirrors only the links its shard owns, byte-for-byte: task order
  /// and the accumulated floating-point utilization are preserved exactly,
  /// so load-weighted partitioners (ADPS/UDPS) see the same numbers they
  /// would on the full state. The channel registry is NOT updated; a
  /// projected state answers link-level queries only (`link`, `link_load`,
  /// `link_utilization`), which is all a `DeadlinePartitioner` reads.
  void adopt_link(NodeId node, LinkDirection dir, edf::TaskSet tasks);

  /// Moves one link direction's task set out, leaving the link empty — the
  /// donor half of a shard-migration hand-off (`adopt_link` is the
  /// recipient half). The move preserves task order and the accumulated
  /// floating-point utilization bit-for-bit. The channel registry is NOT
  /// updated; pair with `forget_channel`/`adopt_channel` when the registry
  /// entries travel too.
  [[nodiscard]] edf::TaskSet take_link(NodeId node, LinkDirection dir);

  /// Registry-only erase: drops the channel record without touching any
  /// link's task set (the pseudo-tasks travel wholesale via `take_link`).
  /// False if unknown.
  bool forget_channel(ChannelId id);

  /// Registry-only insert: registers a channel record whose pseudo-tasks
  /// are already present in (or travelling with) adopted links. Asserts the
  /// ID is new.
  void adopt_channel(const RtChannel& channel);

  [[nodiscard]] std::optional<RtChannel> find_channel(ChannelId id) const;

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

  /// All active channels (unordered).
  [[nodiscard]] std::vector<RtChannel> channels() const;

  /// Sum of C_i/P_i over channels on the given link direction, as a double
  /// (reporting only; admission decisions use the exact Rational).
  [[nodiscard]] double link_utilization(NodeId node, LinkDirection dir) const;

 private:
  [[nodiscard]] edf::TaskSet& link_mutable(NodeId node, LinkDirection dir);

  std::vector<edf::TaskSet> uplinks_;
  std::vector<edf::TaskSet> downlinks_;
  std::unordered_map<ChannelId, RtChannel> channels_;

  friend class AdmissionController;  // tentative add/remove during the test
};

}  // namespace rtether::core
