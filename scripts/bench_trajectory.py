#!/usr/bin/env python3
"""Merge BENCH_*.json artifacts into one machine-readable perf trajectory.

Every bench binary writes a flat JSON object (BENCH_admission.json,
BENCH_churn.json, BENCH_scenario_fuzz.json, BENCH_sim.json, ...). Until now
those were fire-and-forget artifacts: each CI run uploaded them and nothing
ever read them together, so the repo had no single place to see how the
perf story composes. This script collects them, prints a compact summary in
the job log, and writes BENCH_trajectory.json — one object keyed by bench
name with the headline metrics plus the full per-bench payloads — which the
CI bench job uploads as the canonical perf artifact of the commit.

Usage:
    bench_trajectory.py [--out BENCH_trajectory.json] [file-or-dir ...]

With no positional arguments, BENCH_*.json files in the current directory
are used. Exit code 1 when no bench files were found (a wired-up CI job
producing nothing is a bug), 0 otherwise.
"""

import argparse
import glob
import json
import os
import sys

# Headline metrics per bench kind: (json key, short label, unit). Keys are
# top-level members of each bench's JSON (see the json.member calls in the
# bench mains).
HEADLINES = {
    "admission_throughput": [
        ("min_gated_parallel_speedup", "par/batch (worst gated)", "x"),
        ("all_decisions_identical", "decisions identical", ""),
        ("gate_enforced", "gate enforced", ""),
    ],
    "admission_service": [
        ("min_gated_service_speedup", "service/batch (worst gated)", "x"),
        ("min_inline_ratio", "inline/batch (worst)", "x"),
        ("all_outcomes_identical", "outcomes identical", ""),
        ("gate_enforced", "gate enforced", ""),
    ],
    "admission_churn": [
        ("downdate_ops_per_sec", "downdate", " ops/s"),
        ("rebuild_ops_per_sec", "rebuild", " ops/s"),
        ("speedup_downdate_vs_rebuild", "downdate/rebuild", "x"),
    ],
    "scenario_fuzz": [
        ("scenarios_per_sec", "scenarios", "/s"),
        ("sim_slots_per_sec", "sim slots", "/s"),
        ("failures", "failures", ""),
    ],
    "fault_campaign": [
        ("scenarios_per_sec", "scenarios", "/s"),
        ("oracle_checks", "oracle checks", ""),
        ("failures", "failures", ""),
        ("min_injections_per_class", "min injections/class", ""),
    ],
    "ablation_tt": [
        ("tt_acceptance_ratio", "TT acceptance", ""),
        ("edf_acceptance_ratio", "EDF acceptance", ""),
        ("tt_worst_jitter_ticks", "TT worst jitter", " ticks"),
        ("edf_worst_jitter_ticks", "EDF worst jitter", " ticks"),
        ("tt_be_delivered_per_kslot", "TT BE", "/kslot"),
        ("failures", "failures", ""),
    ],
    "sim_kernel": [
        ("typed_kernel_slots_per_sec", "typed kernel", " slots/s"),
        ("seed_kernel_slots_per_sec", "seed kernel", " slots/s"),
        ("speedup", "typed/seed", "x"),
        ("steady_state_allocations", "steady-state allocs", ""),
    ],
    "sim_parallel": [
        ("sequential_slots_per_sec", "sequential", " slots/s"),
        ("threads1_slots_per_sec", "1 thread", " slots/s"),
        ("threads2_slots_per_sec", "2 threads", " slots/s"),
        ("threads4_slots_per_sec", "4 threads", " slots/s"),
        ("partition_count", "partitions", ""),
        ("cut_link_share", "cut-link share", ""),
        ("paired_1thread_ratio", "paired 1-thread", "x"),
        ("speedup_4threads", "4-thread speedup", "x"),
        ("digests_identical", "digests identical", ""),
    ],
}


def collect(paths):
    """Yields (filename, parsed object) for every readable bench JSON."""
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"WARN: skipping {path}: {error}", file=sys.stderr)
            continue
        if not isinstance(data, dict):
            print(f"WARN: skipping {path}: not a JSON object", file=sys.stderr)
            continue
        yield path, data


def format_value(value):
    if isinstance(value, float):
        return f"{value:,.2f}" if abs(value) < 100 else f"{value:,.0f}"
    return f"{value:,}" if isinstance(value, int) else str(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_trajectory.json")
    parser.add_argument("inputs", nargs="*",
                        help="bench JSON files or directories to scan")
    args = parser.parse_args()

    paths = []
    for item in args.inputs or ["."]:
        if os.path.isdir(item):
            paths.extend(sorted(glob.glob(os.path.join(item, "BENCH_*.json"))))
        else:
            paths.append(item)
    # The merged output must never feed itself on a re-run.
    paths = [p for p in paths if os.path.basename(p) != os.path.basename(args.out)]

    trajectory = {}
    print("== perf trajectory ==")
    for path, data in collect(paths):
        name = data.get("bench", os.path.basename(path))
        trajectory[name] = {
            "source": os.path.basename(path),
            "headlines": {},
            "raw": data,
        }
        lines = []
        for key, label, unit in HEADLINES.get(name, []):
            if key in data:
                trajectory[name]["headlines"][key] = data[key]
                lines.append(f"{label} {format_value(data[key])}{unit}")
        # Benches without a registered headline set still appear (raw only).
        summary = ", ".join(lines) if lines else "(no headline metrics)"
        print(f"  {name:<16} {summary}")

    if not trajectory:
        print("ERROR: no BENCH_*.json inputs found", file=sys.stderr)
        return 1

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(trajectory)} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
