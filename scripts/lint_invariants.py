#!/usr/bin/env python3
"""Hot-path invariant linter for the rtether tree.

Token-level static checks for invariants the compiler cannot express:

  hot-path-alloc         no heap allocation in the typed sim kernel hot path
                         (`new`, `make_unique`, `make_shared`, `malloc`, ...)
  hot-path-type-erasure  no `std::function` in the hot path
  hot-path-virtual       no virtual dispatch in the hot path
  lock-free-path         no mutex/condvar types in lock-free files
                         (`MpscQueue`, the SPSC cut-link channel, the
                         admission-service dispatcher, the shard-worker
                         feasibility path)
  deprecated-release     no new call sites of the `[[deprecated]]`
                         bool-returning `release_ok` wrappers
  nodiscard-expected     every `Expected`-returning public API declaration in
                         a header is `[[nodiscard]]`

The scanner strips comments and string/char literals first (so prose such as
"the new event" never trips a rule), then matches whole tokens. It is a
deliberately dependency-free, conservative implementation; if `clang.cindex`
(libclang) is ever available it would be the natural upgrade path, but the
rules below are precise enough at token level for this codebase's style.

Waivers (each must carry a reason):

  // LINT-WAIVE(rule-id): reason         -- same line or the line above
  // LINT-WAIVE-FILE(rule-id): reason    -- anywhere; waives the whole file

Exit status: 0 clean, 1 findings, 2 usage/config error.

Usage:
  lint_invariants.py [--root DIR] [--json OUT]
  lint_invariants.py --file PATH --profile {hot-path,lock-free,deprecated-release,nodiscard} [--json OUT]

The `--file/--profile` form checks one file against one rule family as if it
were in that family's configured file set; the negative lint tests under
`tests/static/seeded/` use it to prove each rule still fires.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Configuration: which invariant applies to which files (repo-relative).
# --------------------------------------------------------------------------

# The typed simulator kernel: event loop, transmitter, per-port queues and
# the FrameArena-backed frame type, plus the partitioned fabric and its
# parallel round driver (per-round code runs once per event/frame, so the
# same no-alloc/no-type-erasure rules apply). Amortized std::vector growth
# (reserve/push_back in setup) is allowed; explicit allocation is not.
HOT_PATH_FILES = [
    "src/sim/fabric.hpp",
    "src/sim/fabric.cpp",
    "src/sim/parallel.hpp",
    "src/sim/parallel.cpp",
    "src/sim/simulator.hpp",
    "src/sim/simulator.cpp",
    "src/sim/transmitter.hpp",
    "src/sim/transmitter.cpp",
    "src/sim/queues.hpp",
    "src/sim/frame.hpp",
    "src/sim/frame.cpp",
]

# Files whose lock-freedom is a documented hard invariant: the Vyukov MPSC
# ring + eventcount transport, the admission-service dispatcher/reorder
# buffer, and the shard-worker feasibility path.
LOCK_FREE_FILES = [
    "src/common/mpsc_queue.hpp",
    "src/common/spsc_channel.hpp",
    "src/core/admission_service.cpp",
    "src/core/parallel_admission.cpp",
]

# Headers that *declare* the deprecated wrappers are exempt from the
# call-site rule; everywhere else `release_ok` needs a waiver.
DEPRECATED_DECL_FILES = [
    "src/core/admission.hpp",
    "src/core/multihop.hpp",
    "src/core/parallel_admission.hpp",
]

# Directories scanned for deprecated-release call sites.
DEPRECATED_SCAN_DIRS = ["src", "tests", "bench", "examples"]

# Headers scanned for the nodiscard rule (public API surface).
NODISCARD_SCAN_DIRS = ["src"]

# Return types that are `Expected` or a direct alias of it.
EXPECTED_TYPES = ["Expected", "Status", "AdmitOutcome", "ReleaseOutcome"]

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

PROFILES = {
    "hot-path": ["hot-path-alloc", "hot-path-type-erasure", "hot-path-virtual"],
    "lock-free": ["lock-free-path"],
    "deprecated-release": ["deprecated-release"],
    "nodiscard": ["nodiscard-expected"],
}

# --------------------------------------------------------------------------
# Source scanning helpers
# --------------------------------------------------------------------------

_WAIVE_LINE = re.compile(r"LINT-WAIVE\(([a-z0-9-]+)\)\s*:\s*\S")
_WAIVE_FILE = re.compile(r"LINT-WAIVE-FILE\(([a-z0-9-]+)\)\s*:\s*\S")


def strip_code(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers match the original file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == 'R' and nxt == '"':
                # Raw string literal: R"delim( ... )delim"
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'" and not (out and (out[-1].isalnum() or out[-1] == "_")):
                # char literal ('a', '\n'); digit separators (1'000) excluded
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                state = "code"
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.code = strip_code(self.text)
        self.lines = self.text.splitlines()
        self.code_lines = self.code.splitlines()
        self.file_waivers = set(_WAIVE_FILE.findall(self.text))
        self.line_waivers = {}  # line number (1-based) -> set of rule ids
        for lineno, line in enumerate(self.lines, start=1):
            for rule in _WAIVE_LINE.findall(line):
                self.line_waivers.setdefault(lineno, set()).add(rule)

    def waived(self, rule: str, lineno: int) -> bool:
        if rule in self.file_waivers:
            return True
        for candidate in (lineno, lineno - 1):
            if rule in self.line_waivers.get(candidate, set()):
                return True
        return False


class Report:
    def __init__(self):
        self.findings = []
        self.waivers_used = 0
        self.files_checked = 0

    def add(self, src: SourceFile, rule: str, lineno: int, message: str):
        if src.waived(rule, lineno):
            self.waivers_used += 1
            return
        snippet = (
            src.lines[lineno - 1].strip() if 0 < lineno <= len(src.lines) else ""
        )
        self.findings.append(
            {
                "rule": rule,
                "file": src.rel,
                "line": lineno,
                "message": message,
                "snippet": snippet[:160],
            }
        )


def token_matches(pattern: str, code_lines, flags=0):
    """Yields (lineno, match) for a whole-token regex over stripped code."""
    rx = re.compile(pattern, flags)
    for lineno, line in enumerate(code_lines, start=1):
        for m in rx.finditer(line):
            yield lineno, m


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

_ALLOC_TOKENS = re.compile(
    r"(?<![\w:])(new\b(?!\s*\()|new\s*\(|new\s*\[|"
    r"(?:std\s*::\s*)?make_unique\s*<|(?:std\s*::\s*)?make_shared\s*<|"
    r"malloc\s*\(|calloc\s*\(|realloc\s*\(|free\s*\(|"
    r"delete\b)"
)


def rule_hot_path_alloc(src: SourceFile, report: Report):
    for lineno, line in enumerate(src.code_lines, start=1):
        for m in _ALLOC_TOKENS.finditer(line):
            tok = m.group(1)
            # `= delete` declares a deleted special member, not deallocation.
            if tok.startswith("delete") and re.search(
                r"=\s*delete\s*$", line[: m.end()].rstrip(";").rstrip()
            ):
                continue
            report.add(
                src,
                "hot-path-alloc",
                lineno,
                f"heap allocation token `{tok.strip()}` in sim hot path; "
                "use FrameArena / preallocated storage",
            )


def rule_hot_path_type_erasure(src: SourceFile, report: Report):
    for lineno, _ in token_matches(
        r"(?<![\w])std\s*::\s*function\s*<", src.code_lines
    ):
        report.add(
            src,
            "hot-path-type-erasure",
            lineno,
            "`std::function` in sim hot path; use a concrete callable or "
            "the typed event variant",
        )


def rule_hot_path_virtual(src: SourceFile, report: Report):
    for lineno, _ in token_matches(r"(?<![\w:])virtual\b", src.code_lines):
        report.add(
            src,
            "hot-path-virtual",
            lineno,
            "virtual dispatch in sim hot path; the kernel is monomorphized "
            "by design (typed event variant, CRTP if needed)",
        )


_MUTEX_TOKENS = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?"
    r"(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?|MutexLock|CondVar)\b"
    r"|(?<![\w:])rtether\s*::\s*Mutex\b"
    r"|(?<![\w:])Mutex\s+\w+\s*;"
)


def rule_lock_free_path(src: SourceFile, report: Report):
    for lineno, line in enumerate(src.code_lines, start=1):
        for m in _MUTEX_TOKENS.finditer(line):
            report.add(
                src,
                "lock-free-path",
                lineno,
                f"mutex/condvar token `{m.group(0).strip()}` in a lock-free "
                "file; these paths must use atomics and Eventcount only",
            )


def rule_deprecated_release(src: SourceFile, report: Report):
    for lineno, _ in token_matches(r"(?<![\w])release_ok\s*\(", src.code_lines):
        report.add(
            src,
            "deprecated-release",
            lineno,
            "call to [[deprecated]] bool-returning `release_ok`; use "
            "`release()` and inspect the typed ReleaseOutcome",
        )


_EXPECTED_RET = re.compile(
    r"^(\s*)((?:\[\[[^\]]*\]\]\s*)*)"
    r"((?:(?:virtual|static|constexpr|inline|friend|explicit)\s+)*)"
    r"(?:rtether\s*::\s*)?(?:core\s*::\s*)?"
    r"(" + "|".join(EXPECTED_TYPES) + r")\s*(<[^;=]*>)?\s*"
    r"(&|\*)?\s*"
    r"([A-Za-z_]\w*)\s*\("
)


def rule_nodiscard_expected(src: SourceFile, report: Report):
    if not src.rel.endswith((".hpp", ".h")):
        return
    for lineno, line in enumerate(src.code_lines, start=1):
        m = _EXPECTED_RET.match(line)
        if not m:
            continue
        attrs, ref, name = m.group(2), m.group(6), m.group(7)
        if ref:
            continue  # returns a reference/pointer: accessor, not a result
        if name in ("operator",):
            continue
        # Template parameter lists such as `Expected<T, E> make(` inside a
        # `using` or comparison are already excluded by ^-anchoring.
        if "[[nodiscard]]" in attrs:
            continue
        prev = src.code_lines[lineno - 2].strip() if lineno >= 2 else ""
        if "[[nodiscard]]" in prev:
            continue
        report.add(
            src,
            "nodiscard-expected",
            lineno,
            f"`{name}` returns an Expected-family result by value but is "
            "not [[nodiscard]]; silently dropping a typed rejection hides "
            "admission-control failures",
        )


RULES = {
    "hot-path-alloc": rule_hot_path_alloc,
    "hot-path-type-erasure": rule_hot_path_type_erasure,
    "hot-path-virtual": rule_hot_path_virtual,
    "lock-free-path": rule_lock_free_path,
    "deprecated-release": rule_deprecated_release,
    "nodiscard-expected": rule_nodiscard_expected,
}

# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def load(root: Path, rel: str):
    path = root / rel
    if not path.is_file():
        return None
    return SourceFile(path, rel)


def iter_tree(root: Path, subdirs):
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                rel = path.relative_to(root).as_posix()
                if rel.startswith("tests/static/seeded/"):
                    continue  # intentionally-violating lint fixtures
                yield rel


def run_tree(root: Path, report: Report):
    for rel in HOT_PATH_FILES:
        src = load(root, rel)
        if src is None:
            print(f"lint_invariants: configured hot-path file missing: {rel}",
                  file=sys.stderr)
            return 2
        report.files_checked += 1
        rule_hot_path_alloc(src, report)
        rule_hot_path_type_erasure(src, report)
        rule_hot_path_virtual(src, report)

    for rel in LOCK_FREE_FILES:
        src = load(root, rel)
        if src is None:
            print(f"lint_invariants: configured lock-free file missing: {rel}",
                  file=sys.stderr)
            return 2
        report.files_checked += 1
        rule_lock_free_path(src, report)

    exempt = set(DEPRECATED_DECL_FILES)
    for rel in iter_tree(root, DEPRECATED_SCAN_DIRS):
        if rel in exempt:
            continue
        src = load(root, rel)
        report.files_checked += 1
        rule_deprecated_release(src, report)

    for rel in iter_tree(root, NODISCARD_SCAN_DIRS):
        if not rel.endswith((".hpp", ".h")):
            continue
        src = load(root, rel)
        report.files_checked += 1
        rule_nodiscard_expected(src, report)
    return 0


def run_single(root: Path, file_arg: str, profile: str, report: Report):
    path = Path(file_arg)
    if not path.is_file():
        print(f"lint_invariants: no such file: {file_arg}", file=sys.stderr)
        return 2
    rel = (
        path.relative_to(root).as_posix()
        if path.is_absolute() and path.is_relative_to(root)
        else file_arg
    )
    src = SourceFile(path, rel)
    report.files_checked += 1
    for rule in PROFILES[profile]:
        RULES[rule](src, report)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write a machine-readable findings report")
    parser.add_argument("--file", default=None,
                        help="check a single file instead of the tree")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        help="rule family to apply with --file")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"lint_invariants: bad --root {root}", file=sys.stderr)
        return 2
    if (args.file is None) != (args.profile is None):
        print("lint_invariants: --file and --profile go together",
              file=sys.stderr)
        return 2

    report = Report()
    status = (
        run_single(root, args.file, args.profile, report)
        if args.file
        else run_tree(root, report)
    )
    if status:
        return status

    if args.json:
        payload = {
            "version": 1,
            "files_checked": report.files_checked,
            "waivers_used": report.waivers_used,
            "findings": report.findings,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n",
                                   encoding="utf-8")

    for f in report.findings:
        print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
        if f["snippet"]:
            print(f"    {f['snippet']}")
    summary = (
        f"lint_invariants: {len(report.findings)} finding(s), "
        f"{report.files_checked} file(s) checked, "
        f"{report.waivers_used} waiver(s) honoured"
    )
    print(summary)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
