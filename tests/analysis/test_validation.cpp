#include "analysis/validation.hpp"

#include <gtest/gtest.h>

namespace rtether::analysis {
namespace {

ValidationConfig small_config() {
  ValidationConfig config;
  config.sim.ticks_per_slot = 64;
  config.workload.masters = 3;
  config.workload.slaves = 9;
  config.request_count = 30;
  config.run_slots = 2'000;
  config.seed = 5;
  return config;
}

TEST(Validation, AdmittedChannelsNeverMissUnderEdf) {
  const auto result = run_guarantee_validation(small_config());
  EXPECT_GT(result.channels_established, 0u);
  EXPECT_GT(result.frames_delivered, 0u);
  EXPECT_EQ(result.deadline_misses, 0u);
  EXPECT_LE(result.worst_delay_ratio, 1.0);
}

TEST(Validation, EveryEstablishedChannelDelivers) {
  const auto result = run_guarantee_validation(small_config());
  for (const auto& channel : result.channels) {
    EXPECT_GT(channel.frames_sent, 0u)
        << "ch" << channel.id.value() << " never sent";
    EXPECT_EQ(channel.frames_sent, channel.frames_delivered)
        << "ch" << channel.id.value() << " lost frames";
  }
}

TEST(Validation, BoundsUseDeadlinePlusLatency) {
  const auto config = small_config();
  const auto result = run_guarantee_validation(config);
  const double allowance_slots =
      static_cast<double>(
          config.sim.t_latency_ticks(config.with_best_effort)) /
      static_cast<double>(config.sim.ticks_per_slot);
  for (const auto& channel : result.channels) {
    EXPECT_DOUBLE_EQ(
        channel.bound_slots,
        static_cast<double>(channel.deadline_slots) + allowance_slots);
  }
}

TEST(Validation, StaggeredReleasesAlsoHold) {
  auto config = small_config();
  config.stagger_slots = 7;
  const auto result = run_guarantee_validation(config);
  EXPECT_EQ(result.deadline_misses, 0u);
}

TEST(Validation, HoldsUnderBestEffortCrossTraffic) {
  auto config = small_config();
  config.with_best_effort = true;
  config.best_effort_load = 0.6;
  config.run_slots = 1'000;
  const auto result = run_guarantee_validation(config);
  EXPECT_GT(result.frames_delivered, 0u);
  // The paper's guarantee covers coexistence with non-RT traffic: the
  // allowance includes one max frame of blocking per hop.
  EXPECT_EQ(result.deadline_misses, 0u);
}

TEST(Validation, FcfsBaselineMissesUnderPressure) {
  // Same admitted channels, RT layer disabled (plain switched Ethernet)
  // plus heavy best-effort load: deadlines are missed — the motivation for
  // the paper's RT layer.
  auto config = small_config();
  config.workload.masters = 2;
  config.workload.slaves = 6;
  config.workload.deadline = traffic::SlotDistribution::fixed(12);
  config.request_count = 60;
  config.sim.edf_enabled = false;
  config.with_best_effort = true;
  config.best_effort_load = 0.9;
  config.run_slots = 1'500;
  const auto result = run_guarantee_validation(config);
  EXPECT_GT(result.frames_delivered, 0u);
  EXPECT_GT(result.deadline_misses, 0u);
}

TEST(Validation, SdpsAndAdpsBothHoldWhenAdmitted) {
  for (const char* scheme : {"SDPS", "ADPS", "UDPS", "Search"}) {
    auto config = small_config();
    config.scheme = scheme;
    config.run_slots = 800;
    const auto result = run_guarantee_validation(config);
    EXPECT_EQ(result.deadline_misses, 0u) << scheme;
    EXPECT_GT(result.channels_established, 0u) << scheme;
  }
}

}  // namespace
}  // namespace rtether::analysis
