#include "sim/fabric.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/units.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"

namespace rtether::sim {

namespace {

/// UDP port of RT data frames (same value the star's RT layer uses).
constexpr std::uint16_t kRtDataPort = 5004;

/// Best-effort payload range / on-off phase means, mirroring the star's
/// BestEffortProfile defaults — the fabric keeps one fixed shape.
constexpr std::uint32_t kBeMinPayload = 46;
constexpr std::uint32_t kBeMaxPayload = 1460;
constexpr double kBeMeanOnSlots = 50.0;
constexpr double kBeMeanOffSlots = 200.0;

/// Salt separating the fabric fault stream from every other consumer of
/// the scenario seed.
constexpr std::uint64_t kFaultSalt = 0xfab0'5eed'fa01'7711ULL;

/// Stateless per-frame Bernoulli draw: hash of (frame id, window salt) to
/// a unit double. Replay-stable by construction — no stream to keep in
/// sync across partitions or thread counts.
[[nodiscard]] double fault_chance(std::uint64_t frame_id, std::uint64_t salt) {
  SplitMix64 mix(frame_id ^ salt);
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

[[nodiscard]] std::size_t kind_index(FaultKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

FabricNetwork::FabricNetwork(const SimConfig& config,
                             const core::Topology& topology,
                             std::span<const core::MultihopChannel> channels,
                             FabricOptions options)
    : config_(config),
      options_(std::move(options)),
      lookahead_(config.trunk_propagation_ticks +
                 config.switch_processing_ticks) {
  RTETHER_ASSERT_MSG(topology.switch_count() >= 1, "empty fabric");
  build_partitions(topology);
  build_channels(channels);
  build_best_effort();
  build_faults();
}

void FabricNetwork::build_partitions(const core::Topology& topology) {
  const std::uint32_t switch_count = topology.switch_count();
  const std::uint32_t node_count = topology.node_count();
  for (std::uint32_t p = 0; p < switch_count; ++p) {
    partitions_.emplace_back();
    partitions_.back().net = this;
    partitions_.back().index = p;
  }
  node_partition_.resize(node_count, 0);
  node_uplink_.resize(node_count, nullptr);
  node_downlink_.resize(node_count, nullptr);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const auto attachment = topology.attachment(NodeId{n});
    RTETHER_ASSERT_MSG(attachment.has_value(), "unattached fabric node");
    node_partition_[n] = attachment->value();
    partitions_[attachment->value()].nodes.push_back(n);
  }
  // Directed cut links, (from, to) ascending: neighbours() is sorted.
  for (std::uint32_t p = 0; p < switch_count; ++p) {
    for (const std::uint32_t q : topology.neighbours(core::SwitchId{p})) {
      const auto edge = static_cast<std::uint32_t>(edges_.size());
      edges_.emplace_back();
      edges_.back().from = p;
      edges_.back().to = q;
      partitions_[p].out_edges.push_back(edge);
    }
  }
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    partitions_[edges_[e].to].in_edges.push_back(e);
  }
  // Transmitters in the canonical (digest) order: node uplinks, node
  // downlinks, out-trunks.
  for (std::uint32_t p = 0; p < switch_count; ++p) {
    Partition& part = partitions_[p];
    for (const std::uint32_t n : part.nodes) {
      part.ports.push_back(
          {this, p, HopPort::Role::kUplink, n, 0, nullptr, {}});
      HopPort& up = part.ports.back();
      part.txs.emplace_back(
          part.sim, config_, "up" + std::to_string(n),
          Transmitter::Sink::fabric(&FabricNetwork::on_handoff,
                                    &FabricNetwork::on_fault_drop, &up));
      up.tx = &part.txs.back();
      node_uplink_[n] = &up;
    }
    for (const std::uint32_t n : part.nodes) {
      part.ports.push_back(
          {this, p, HopPort::Role::kDownlink, n, 0, nullptr, {}});
      HopPort& down = part.ports.back();
      part.txs.emplace_back(
          part.sim, config_, "down" + std::to_string(n),
          Transmitter::Sink::fabric(&FabricNetwork::on_handoff,
                                    &FabricNetwork::on_fault_drop, &down));
      down.tx = &part.txs.back();
      node_downlink_[n] = &down;
    }
    for (const std::uint32_t e : part.out_edges) {
      part.ports.push_back({this, p, HopPort::Role::kTrunk, 0, e, nullptr, {}});
      HopPort& trunk = part.ports.back();
      part.txs.emplace_back(
          part.sim, config_,
          "trunk" + std::to_string(p) + "->" + std::to_string(edges_[e].to),
          Transmitter::Sink::fabric(&FabricNetwork::on_handoff,
                                    &FabricNetwork::on_fault_drop, &trunk));
      trunk.tx = &part.txs.back();
    }
  }
}

void FabricNetwork::build_channels(
    std::span<const core::MultihopChannel> channels) {
  // Trunk-port lookup for route installation: (from << 32 | to) → port.
  std::unordered_map<std::uint64_t, HopPort*> trunk_port;
  for (Partition& part : partitions_) {
    for (HopPort& port : part.ports) {
      if (port.role == HopPort::Role::kTrunk) {
        const CutEdge& edge = edges_[port.edge];
        trunk_port[(std::uint64_t{edge.from} << 32) | edge.to] = &port;
      }
    }
  }
  for (const core::MultihopChannel& channel : channels) {
    RTETHER_ASSERT_MSG(channel.path.size() >= 2, "fabric path too short");
    RTETHER_ASSERT_MSG(channel.path.size() == channel.deadlines.size(),
                       "path/deadline arity mismatch");
    const std::uint16_t id = channel.id.value();
    const auto hops = static_cast<Tick>(channel.path.size());
    const Tick trunks = hops - 2;
    const Tick blocking =
        options_.with_best_effort ? hops * config_.ticks_per_slot : 0;
    // Eq 18.1's T_latency generalized to the path: every propagation and
    // store-and-forward latency the per-link EDF analysis does not count.
    allowance_[id] = 2 * config_.propagation_ticks +
                     trunks * config_.trunk_propagation_ticks +
                     (trunks + 1) * config_.switch_processing_ticks + blocking;
    // Install the per-switch next-hop route: after the frame is processed
    // at the switch upstream of path[j], it enters path[j]'s transmitter.
    for (std::size_t j = 1; j < channel.path.size(); ++j) {
      const core::LinkId& link = channel.path[j];
      if (link.kind == core::LinkId::Kind::kTrunk) {
        HopPort* port = trunk_port.at((std::uint64_t{link.a} << 32) | link.b);
        partitions_[link.a].next_hop[id] = port;
      } else {
        RTETHER_ASSERT(link.kind == core::LinkId::Kind::kDownlink);
        partitions_[node_partition_[link.a]].next_hop[id] =
            node_downlink_[link.a];
      }
    }
    const std::uint32_t source = channel.spec.source.value();
    senders_.emplace_back();
    Sender& sender = senders_.back();
    sender.net = this;
    sender.partition = node_partition_[source];
    sender.channel = id;
    sender.source = source;
    sender.destination = channel.spec.destination.value();
    sender.capacity = channel.spec.capacity;
    sender.period_ticks = config_.slots_to_ticks(channel.spec.period);
    sender.deadline_ticks = config_.slots_to_ticks(channel.spec.deadline);
    sender.uplink_key_ticks = config_.slots_to_ticks(channel.deadlines[0]);
    sender.uplink = node_uplink_[source];
    // Every channel releases from tick 0 (worst-case aligned phases).
    partitions_[sender.partition].sim.schedule_timer(
        0, &FabricNetwork::on_sender_release, &sender);
  }
}

void FabricNetwork::build_best_effort() {
  if (!options_.with_best_effort || options_.best_effort_load <= 0.0) return;
  const std::uint64_t base_seed = options_.seed ^ 0xbeefULL;
  for (std::uint32_t n = 0; n < node_partition_.size(); ++n) {
    Partition& part = partitions_[node_partition_[n]];
    if (part.nodes.size() <= 1) continue;  // no same-switch peer to address
    be_sources_.emplace_back();
    BeSource& source = be_sources_.back();
    source.net = this;
    source.partition = part.index;
    source.node = n;
    // Same per-node stream split as the star's BestEffortSource.
    source.rng = Rng(base_seed ^ (0x9e37'79b9'7f4a'7c15ULL * (n + 1)));
    source.bursty = options_.bursty_best_effort;
    source.load = options_.best_effort_load;
    schedule_be_arrival(source);
  }
}

void FabricNetwork::build_faults() {
  std::uint64_t index = 0;
  for (const FaultEvent& event : options_.faults) {
    ++index;
    if (event.kind != FaultKind::kLinkDown &&
        event.kind != FaultKind::kFrameLoss &&
        event.kind != FaultKind::kFrameCorrupt) {
      continue;  // structural / management kinds: star-only semantics
    }
    if (event.node.value() >= node_partition_.size()) continue;
    HopPort* port = event.downlink ? node_downlink_[event.node.value()]
                                   : node_uplink_[event.node.value()];
    FaultWindow window;
    window.kind = event.kind;
    window.from = config_.slots_to_ticks(event.at_slot);
    window.to = window.from + config_.slots_to_ticks(event.duration_slots);
    window.probability = event.probability;
    window.salt =
        options_.seed ^ kFaultSalt ^ (index * 0x9e37'79b9'7f4a'7c15ULL);
    port->windows.push_back(window);
  }
  // The fault-free path stays hook-free (one null check, nothing else).
  for (Partition& part : partitions_) {
    for (HopPort& port : part.ports) {
      if (!port.windows.empty()) {
        port.tx->set_fault_hook(&FabricNetwork::on_fault, &port);
      }
    }
  }
}

Transmitter::FaultDecision FabricNetwork::on_fault(void* context,
                                                   const SimFrame& frame,
                                                   Tick now) {
  auto* port = static_cast<HopPort*>(context);
  Partition& part = port->net->partitions_[port->partition];
  Transmitter::FaultDecision decision;
  for (const FaultWindow& window : port->windows) {
    if (now < window.from || now >= window.to) continue;
    switch (window.kind) {
      case FaultKind::kLinkDown:
        decision.drop = true;
        ++part.injections[kind_index(window.kind)];
        break;
      case FaultKind::kFrameLoss:
        if (fault_chance(frame.id, window.salt) < window.probability) {
          decision.drop = true;
          ++part.injections[kind_index(window.kind)];
        }
        break;
      case FaultKind::kFrameCorrupt:
        if (fault_chance(frame.id, window.salt) < window.probability) {
          decision.corrupt = true;
          ++part.injections[kind_index(window.kind)];
        }
        break;
      default:
        break;
    }
  }
  return decision;
}

void FabricNetwork::on_fault_drop(void* context, const SimFrame& frame) {
  auto* port = static_cast<HopPort*>(context);
  Partition& part = port->net->partitions_[port->partition];
  if (frame.info.rt_tag.has_value()) {
    part.stats.record_rt_fault_drop(frame.info.rt_tag->channel);
  } else {
    part.stats.record_best_effort_fault_drop();
  }
}

void FabricNetwork::on_handoff(void* context, FrameIndex frame,
                               Tick completion) {
  auto* port = static_cast<HopPort*>(context);
  FabricNetwork& net = *port->net;
  Partition& part = net.partitions_[port->partition];
  switch (port->role) {
    case HopPort::Role::kUplink:
      // Arrives — store-and-forward processed — at the local switch.
      part.sim.schedule_timer(
          net.config_.propagation_ticks + net.config_.switch_processing_ticks,
          &FabricNetwork::on_switch_arrival, &part, frame);
      break;
    case HopPort::Role::kTrunk:
      // Crosses the cut: the record's tick already includes the full
      // lookahead, so it is only executable in a later round.
      net.push_record(part, net.edges_[port->edge], completion + net.lookahead_,
                      frame);
      break;
    case HopPort::Role::kDownlink:
      part.sim.schedule_timer(net.config_.propagation_ticks,
                              &FabricNetwork::on_deliver, port, frame);
      break;
  }
}

void FabricNetwork::on_switch_arrival(void* context, std::uint64_t arg,
                                      Tick now) {
  (void)now;
  auto* part = static_cast<Partition*>(context);
  part->net->arrive_at_switch(*part, static_cast<FrameIndex>(arg));
}

void FabricNetwork::arrive_at_switch(Partition& part, FrameIndex frame) {
  SimFrame& held = part.sim.arena().get(frame);
  if (held.corrupted) {
    // CRC check at switch ingress: discard, book the loss.
    if (held.info.rt_tag.has_value()) {
      part.stats.record_rt_fault_drop(held.info.rt_tag->channel);
    } else {
      part.stats.record_best_effort_fault_drop();
    }
    part.sim.arena().release(frame);
    return;
  }
  if (held.info.rt_tag.has_value()) {
    const auto it = part.next_hop.find(held.info.rt_tag->channel.value());
    RTETHER_ASSERT_MSG(it != part.next_hop.end(),
                       "RT frame arrived at a switch off its route");
    it->second->tx->enqueue_rt(held.info.rt_tag->absolute_deadline, frame);
    return;
  }
  // Best-effort: same-switch delivery by destination MAC.
  const auto destination = mac_to_node(held.info.destination_mac);
  RTETHER_ASSERT_MSG(destination.has_value(),
                     "fabric best-effort frame with a foreign MAC");
  HopPort* down = node_downlink_[destination->value()];
  RTETHER_ASSERT_MSG(down->partition == part.index,
                     "fabric best-effort frame crossed a trunk");
  down->tx->enqueue_best_effort(frame);
}

void FabricNetwork::on_deliver(void* context, std::uint64_t arg, Tick now) {
  auto* port = static_cast<HopPort*>(context);
  Partition& part = port->net->partitions_[port->partition];
  const auto frame = static_cast<FrameIndex>(arg);
  SimFrame& held = part.sim.arena().get(frame);
  if (held.corrupted) {
    // CRC check at the node NIC: discard, book the loss.
    if (held.info.rt_tag.has_value()) {
      part.stats.record_rt_fault_drop(held.info.rt_tag->channel);
    } else {
      part.stats.record_best_effort_fault_drop();
    }
  } else if (held.info.rt_tag.has_value()) {
    const net::RtFrameTag& tag = *held.info.rt_tag;
    part.stats.record_rt_delivered(tag.channel, held.created_at,
                                   tag.absolute_deadline, now,
                                   port->net->allowance(tag.channel.value()));
  } else {
    part.stats.record_best_effort_delivered(held.created_at, now);
  }
  part.sim.arena().release(frame);
}

void FabricNetwork::on_sender_release(void* context, std::uint64_t arg,
                                      Tick now) {
  (void)arg;
  auto* sender = static_cast<Sender*>(context);
  FabricNetwork& net = *sender->net;
  if (now >= net.options_.traffic_stop) return;  // run over: stop releasing
  net.emit_message(*sender, now);
  net.partitions_[sender->partition].sim.schedule_timer(
      sender->period_ticks, &FabricNetwork::on_sender_release, sender);
}

void FabricNetwork::emit_message(Sender& sender, Tick release) {
  Partition& part = partitions_[sender.partition];
  for (Slot i = 0; i < sender.capacity; ++i) {
    // Identical wire bytes to the star RT layer's send_message: real
    // headers, §18.2.2 deadline tag, payload padded to a maximal frame.
    net::Ipv4Header ip;
    ip.protocol = net::IpProtocol::kUdp;
    net::encode_rt_tag(
        {release + sender.deadline_ticks, ChannelId{sender.channel}}, ip);

    net::EthernetHeader ethernet;
    ethernet.source = node_mac(NodeId{sender.source});
    ethernet.destination = node_mac(NodeId{sender.destination});
    ethernet.ether_type = net::EtherType::kIpv4;

    net::UdpHeader udp;
    udp.source_port = kRtDataPort;
    udp.destination_port = kRtDataPort;

    FrameArena& arena = part.sim.arena();
    const FrameIndex index = arena.acquire();
    SimFrame& frame = arena.get(index);
    ByteWriter writer(std::move(frame.bytes));
    ethernet.serialize(writer);
    const std::size_t header_bytes = net::EthernetHeader::kWireSize +
                                     net::Ipv4Header::kWireSize +
                                     net::UdpHeader::kWireSize;
    const std::uint64_t pad = kMaxFrameWireBytes - (header_bytes + 4 + 8 + 12);
    ip.total_length = static_cast<std::uint16_t>(net::Ipv4Header::kWireSize +
                                                 net::UdpHeader::kWireSize +
                                                 pad);
    ip.serialize(writer);
    udp.length = static_cast<std::uint16_t>(net::UdpHeader::kWireSize + pad);
    udp.serialize(writer);
    frame.bytes = std::move(writer).take();
    frame.finalize((std::uint64_t{sender.partition + 1} << 40) |
                       part.next_frame_id++,
                   pad, release, NodeId{sender.source});
    part.stats.record_rt_sent(ChannelId{sender.channel});
    sender.uplink->tx->enqueue_rt(release + sender.uplink_key_ticks, index);
  }
}

double FabricNetwork::be_mean_interarrival_ticks(const BeSource& source) const {
  const double mean_payload = (static_cast<double>(kBeMinPayload) +
                               static_cast<double>(kBeMaxPayload)) /
                              2.0;
  const double mean_wire = mean_payload + net::EthernetHeader::kWireSize +
                           net::Ipv4Header::kWireSize + 4 + 8 + 12;
  const double mean_tx_ticks =
      mean_wire * static_cast<double>(config_.ticks_per_slot) /
      static_cast<double>(kMaxFrameWireBytes);
  return mean_tx_ticks / source.load;
}

void FabricNetwork::schedule_be_arrival(BeSource& source) {
  double gap_ticks = source.rng.exponential(be_mean_interarrival_ticks(source));
  if (source.bursty && !source.on_phase) {
    gap_ticks += source.rng.exponential(
        kBeMeanOffSlots * static_cast<double>(config_.ticks_per_slot));
    source.on_phase = true;
  }
  partitions_[source.partition].sim.schedule_timer(
      static_cast<Tick>(gap_ticks) + 1,
      &FabricNetwork::on_best_effort_arrival, &source);
}

void FabricNetwork::on_best_effort_arrival(void* context, std::uint64_t arg,
                                           Tick now) {
  (void)arg;
  auto* source = static_cast<BeSource*>(context);
  FabricNetwork& net = *source->net;
  if (now >= net.options_.traffic_stop) return;  // run over: go quiet
  net.emit_best_effort(*source, now);
  if (source->bursty && source->on_phase) {
    const double arrivals_per_on =
        kBeMeanOnSlots * static_cast<double>(net.config_.ticks_per_slot) /
        net.be_mean_interarrival_ticks(*source);
    if (arrivals_per_on < 1.0 || source->rng.bernoulli(1.0 / arrivals_per_on)) {
      source->on_phase = false;
    }
  }
  net.schedule_be_arrival(*source);
}

void FabricNetwork::emit_best_effort(BeSource& source, Tick now) {
  Partition& part = partitions_[source.partition];
  // Uniform among same-switch peers (self excluded). `nodes` is sorted, so
  // the skip-self mapping is by local rank.
  std::size_t rank = 0;
  while (part.nodes[rank] != source.node) ++rank;
  auto pick = static_cast<std::size_t>(source.rng.index(part.nodes.size() - 1));
  if (pick >= rank) ++pick;
  const std::uint32_t destination = part.nodes[pick];

  const auto payload_bytes = static_cast<std::uint32_t>(
      source.rng.uniform(kBeMinPayload, kBeMaxPayload));

  net::Ipv4Header ip;
  ip.tos = 0;
  ip.protocol = net::IpProtocol::kTcp;
  ip.source = node_ip(NodeId{source.node});
  ip.destination = node_ip(NodeId{destination});
  ip.total_length = static_cast<std::uint16_t>(net::Ipv4Header::kWireSize +
                                               payload_bytes);

  net::EthernetHeader ethernet;
  ethernet.source = node_mac(NodeId{source.node});
  ethernet.destination = node_mac(NodeId{destination});
  ethernet.ether_type = net::EtherType::kIpv4;

  FrameArena& arena = part.sim.arena();
  const FrameIndex index = arena.acquire();
  SimFrame& frame = arena.get(index);
  ByteWriter writer(std::move(frame.bytes));
  ethernet.serialize(writer);
  ip.serialize(writer);
  frame.bytes = std::move(writer).take();
  frame.finalize((std::uint64_t{source.partition + 1} << 40) |
                     part.next_frame_id++,
                 payload_bytes, now, NodeId{source.node});
  part.stats.record_best_effort_sent();
  node_uplink_[source.node]->tx->enqueue_best_effort(index);
}

void FabricNetwork::push_record(Partition& part, CutEdge& edge, Tick arrival,
                                FrameIndex frame) {
  const SimFrame& held = part.sim.arena().get(frame);
  FabricRecord record;
  record.tick = arrival;
  record.sequence = edge.next_sequence++;
  record.image.id = held.id;
  record.image.extra_payload_bytes = held.extra_payload_bytes;
  record.image.created_at = held.created_at;
  record.image.origin = held.origin.value();
  RTETHER_ASSERT_MSG(held.bytes.size() <= FrameImage::kMaxBytes,
                     "oversized frame on a trunk (only RT headers cross)");
  record.image.byte_count = static_cast<std::uint16_t>(held.bytes.size());
  record.image.corrupted = held.corrupted;
  std::memcpy(record.image.bytes, held.bytes.data(), held.bytes.size());
  part.sim.arena().release(frame);
  ++edge.records;
  if (edge.spill_pos < edge.spill.size() || !edge.ring.try_push(record)) {
    // Ring full (or already spilling — order must be preserved): overflow
    // to the producer-side spill, flushed at round end.
    edge.spill.push_back(record);
  }
}

void FabricNetwork::drain_inputs(Partition& part, Tick target) {
  for (const std::uint32_t e : part.in_edges) {
    CutEdge& edge = edges_[e];
    FabricRecord record;
    while (edge.ring.try_peek(record) && record.tick <= target) {
      edge.ring.pop();
      RTETHER_ASSERT_MSG(record.sequence == edge.drained_sequence,
                         "cut-link records out of order");
      ++edge.drained_sequence;
      inject(part, record);
    }
  }
}

void FabricNetwork::inject(Partition& part, const FabricRecord& record) {
  const FrameIndex index = part.sim.arena().acquire();
  SimFrame& frame = part.sim.arena().get(index);
  frame.bytes.assign(record.image.bytes,
                     record.image.bytes + record.image.byte_count);
  frame.finalize(record.image.id, record.image.extra_payload_bytes,
                 record.image.created_at, NodeId{record.image.origin});
  frame.corrupted = record.image.corrupted;
  RTETHER_ASSERT(record.tick > part.sim.now());
  part.sim.schedule_timer(record.tick - part.sim.now(),
                          &FabricNetwork::on_switch_arrival, &part, index);
}

void FabricNetwork::flush_spill(Partition& part) {
  for (const std::uint32_t e : part.out_edges) {
    CutEdge& edge = edges_[e];
    while (edge.spill_pos < edge.spill.size() &&
           edge.ring.try_push(edge.spill[edge.spill_pos])) {
      ++edge.spill_pos;
    }
    if (edge.spill_pos == edge.spill.size()) {
      edge.spill.clear();
      edge.spill_pos = 0;
    } else {
      // A record not visible before the next barrier would break the
      // conservative completeness guarantee — fail the run instead.
      failed_.store(true, std::memory_order_release);
    }
  }
}

bool FabricNetwork::run_round(std::size_t p, Tick target,
                              std::uint64_t max_events) {
  Partition& part = partitions_[p];
  drain_inputs(part, target);
  const bool ok = part.sim.run_until(target, max_events);
  flush_spill(part);
  if (!ok) failed_.store(true, std::memory_order_release);
  return ok;
}

std::uint64_t FabricNetwork::executed_events() const {
  std::uint64_t total = 0;
  for (const Partition& part : partitions_) total += part.sim.executed_events();
  return total;
}

const SimStats& FabricNetwork::partition_stats(std::size_t p) const {
  return partitions_[p].stats;
}

const Simulator& FabricNetwork::kernel(std::size_t p) const {
  return partitions_[p].sim;
}

std::vector<const Transmitter*> FabricNetwork::transmitters(
    std::size_t p) const {
  std::vector<const Transmitter*> result;
  result.reserve(partitions_[p].ports.size());
  for (const HopPort& port : partitions_[p].ports) result.push_back(port.tx);
  return result;
}

std::map<std::uint16_t, FabricChannelCounts> FabricNetwork::channel_counts()
    const {
  std::map<std::uint16_t, FabricChannelCounts> merged;
  for (const Partition& part : partitions_) {
    for (const auto& [id, stats] : part.stats.channels()) {
      FabricChannelCounts& counts = merged[id.value()];
      counts.sent += stats.frames_sent;
      counts.delivered += stats.frames_delivered;
      counts.misses += stats.deadline_misses;
      counts.dropped += stats.frames_dropped;
    }
  }
  return merged;
}

Tick FabricNetwork::allowance(std::uint16_t channel_id) const {
  const auto it = allowance_.find(channel_id);
  RTETHER_ASSERT_MSG(it != allowance_.end(), "allowance of unknown channel");
  return it->second;
}

std::vector<TrunkTraffic> FabricNetwork::trunk_traffic() const {
  std::vector<TrunkTraffic> result;
  result.reserve(edges_.size());
  for (const CutEdge& edge : edges_) {
    result.push_back({edge.from, edge.to, edge.records});
  }
  return result;
}

std::uint64_t FabricNetwork::cut_link_records() const {
  std::uint64_t total = 0;
  for (const CutEdge& edge : edges_) total += edge.records;
  return total;
}

std::array<std::uint64_t, kFaultKindCount> FabricNetwork::fault_injections()
    const {
  std::array<std::uint64_t, kFaultKindCount> merged{};
  for (const Partition& part : partitions_) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      merged[i] += part.injections[i];
    }
  }
  return merged;
}

}  // namespace rtether::sim
