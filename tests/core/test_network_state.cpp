#include "core/network_state.hpp"

#include <gtest/gtest.h>

namespace rtether::core {
namespace {

RtChannel channel(std::uint16_t id, std::uint32_t src, std::uint32_t dst,
                  Slot p, Slot c, Slot du, Slot dd) {
  return RtChannel{ChannelId(id),
                   ChannelSpec{NodeId{src}, NodeId{dst}, p, c, du + dd},
                   DeadlinePartition{du, dd}};
}

TEST(NetworkState, StartsEmpty) {
  const NetworkState state(5);
  EXPECT_EQ(state.node_count(), 5u);
  EXPECT_EQ(state.channel_count(), 0u);
  for (std::uint32_t n = 0; n < 5; ++n) {
    EXPECT_EQ(state.link_load(NodeId{n}, LinkDirection::kUplink), 0u);
    EXPECT_EQ(state.link_load(NodeId{n}, LinkDirection::kDownlink), 0u);
  }
}

TEST(NetworkState, NodeExistence) {
  const NetworkState state(3);
  EXPECT_TRUE(state.node_exists(NodeId{0}));
  EXPECT_TRUE(state.node_exists(NodeId{2}));
  EXPECT_FALSE(state.node_exists(NodeId{3}));
}

TEST(NetworkState, AddChannelPopulatesBothLinkDirections) {
  NetworkState state(4);
  state.add_channel(channel(1, 0, 2, 100, 3, 20, 20));

  // Source uplink gets the d_iu task…
  const auto& up = state.link(NodeId{0}, LinkDirection::kUplink);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up.tasks()[0].deadline, 20u);
  EXPECT_EQ(up.tasks()[0].capacity, 3u);

  // …the destination downlink gets the d_id task…
  const auto& down = state.link(NodeId{2}, LinkDirection::kDownlink);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down.tasks()[0].deadline, 20u);

  // …and nothing else is touched.
  EXPECT_EQ(state.link_load(NodeId{0}, LinkDirection::kDownlink), 0u);
  EXPECT_EQ(state.link_load(NodeId{2}, LinkDirection::kUplink), 0u);
  EXPECT_EQ(state.link_load(NodeId{1}, LinkDirection::kUplink), 0u);
}

TEST(NetworkState, AsymmetricPartitionLandsOnCorrectLinks) {
  NetworkState state(2);
  state.add_channel(channel(1, 0, 1, 100, 3, 33, 7));
  EXPECT_EQ(state.link(NodeId{0}, LinkDirection::kUplink).tasks()[0].deadline,
            33u);
  EXPECT_EQ(
      state.link(NodeId{1}, LinkDirection::kDownlink).tasks()[0].deadline,
      7u);
}

TEST(NetworkState, RemoveChannelCleansBothSides) {
  NetworkState state(3);
  state.add_channel(channel(1, 0, 1, 100, 3, 20, 20));
  state.add_channel(channel(2, 0, 2, 100, 3, 20, 20));
  EXPECT_EQ(state.link_load(NodeId{0}, LinkDirection::kUplink), 2u);

  EXPECT_TRUE(state.remove_channel(ChannelId(1)));
  EXPECT_EQ(state.channel_count(), 1u);
  EXPECT_EQ(state.link_load(NodeId{0}, LinkDirection::kUplink), 1u);
  EXPECT_EQ(state.link_load(NodeId{1}, LinkDirection::kDownlink), 0u);
  EXPECT_EQ(state.link_load(NodeId{2}, LinkDirection::kDownlink), 1u);
}

TEST(NetworkState, RemoveUnknownChannelFails) {
  NetworkState state(2);
  EXPECT_FALSE(state.remove_channel(ChannelId(9)));
}

TEST(NetworkState, FindChannel) {
  NetworkState state(2);
  const auto ch = channel(7, 0, 1, 100, 3, 25, 15);
  state.add_channel(ch);
  const auto found = state.find_channel(ChannelId(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, ch);
  EXPECT_FALSE(state.find_channel(ChannelId(8)).has_value());
}

TEST(NetworkState, ChannelsListsAll) {
  NetworkState state(3);
  state.add_channel(channel(1, 0, 1, 100, 3, 20, 20));
  state.add_channel(channel(2, 1, 2, 100, 3, 20, 20));
  EXPECT_EQ(state.channels().size(), 2u);
}

TEST(NetworkState, SelfChannelUsesBothOwnLinks) {
  // A node sending to itself still traverses uplink + downlink through the
  // switch — legal, if unusual.
  NetworkState state(1);
  state.add_channel(channel(1, 0, 0, 100, 3, 20, 20));
  EXPECT_EQ(state.link_load(NodeId{0}, LinkDirection::kUplink), 1u);
  EXPECT_EQ(state.link_load(NodeId{0}, LinkDirection::kDownlink), 1u);
}

TEST(NetworkState, LinkUtilizationReporting) {
  NetworkState state(2);
  state.add_channel(channel(1, 0, 1, 100, 3, 20, 20));
  state.add_channel(channel(2, 0, 1, 50, 5, 20, 20));
  EXPECT_DOUBLE_EQ(state.link_utilization(NodeId{0}, LinkDirection::kUplink),
                   0.03 + 0.1);
  EXPECT_DOUBLE_EQ(
      state.link_utilization(NodeId{1}, LinkDirection::kDownlink),
      0.03 + 0.1);
  EXPECT_DOUBLE_EQ(state.link_utilization(NodeId{1}, LinkDirection::kUplink),
                   0.0);
}

TEST(NetworkState, DuplicateIdAsserts) {
  NetworkState state(2);
  state.add_channel(channel(1, 0, 1, 100, 3, 20, 20));
  EXPECT_DEATH(state.add_channel(channel(1, 1, 0, 100, 3, 20, 20)),
               "duplicate RT channel ID");
}

TEST(NetworkState, BadPartitionAsserts) {
  NetworkState state(2);
  RtChannel bad{ChannelId(1), ChannelSpec{NodeId{0}, NodeId{1}, 100, 3, 40},
                DeadlinePartition{30, 30}};  // sum ≠ d
  EXPECT_DEATH(state.add_channel(bad), "Eq 18.8");
}

TEST(LinkDirection, Names) {
  EXPECT_STREQ(to_string(LinkDirection::kUplink), "uplink");
  EXPECT_STREQ(to_string(LinkDirection::kDownlink), "downlink");
}

}  // namespace
}  // namespace rtether::core
