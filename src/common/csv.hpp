#pragma once

/// @file csv.hpp
/// Minimal RFC-4180-style CSV emission for experiment results, so figures
/// can be re-plotted outside the harness.

#include <ostream>
#include <string>
#include <vector>

namespace rtether {

/// Streams rows to an `std::ostream`; fields containing separators, quotes
/// or newlines are quoted and escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic cells with to_string.
  template <typename... Fields>
  void write(const Fields&... fields) {
    write_row({format(fields)...});
  }

 private:
  static std::string format(const std::string& s) { return s; }
  static std::string format(const char* s) { return s; }
  template <typename T>
  static std::string format(const T& v) {
    return std::to_string(v);
  }

  static std::string escape(const std::string& field);

  std::ostream& out_;
};

}  // namespace rtether
