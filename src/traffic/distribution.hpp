#pragma once

/// @file distribution.hpp
/// Samplers for channel parameters (periods, capacities, deadlines) used by
/// the workload generators. Fig 18.5 uses fixed values; the ablation benches
/// sweep ranges and harmonic sets.

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"

namespace rtether::traffic {

/// A distribution over slot counts: fixed, uniform-integer, or a uniform
/// choice among an explicit set (e.g. harmonic periods {50, 100, 200}).
class SlotDistribution {
 public:
  /// Always `value`.
  static SlotDistribution fixed(Slot value);

  /// Uniform integer in [lo, hi].
  static SlotDistribution uniform(Slot lo, Slot hi);

  /// Uniform choice among `values` (non-empty).
  static SlotDistribution choice(std::vector<Slot> values);

  [[nodiscard]] Slot sample(Rng& rng) const;

  /// Smallest value the distribution can produce.
  [[nodiscard]] Slot min_value() const;

  /// Largest value the distribution can produce.
  [[nodiscard]] Slot max_value() const;

 private:
  enum class Kind : std::uint8_t { kFixed, kUniform, kChoice };

  SlotDistribution(Kind kind, Slot lo, Slot hi, std::vector<Slot> values)
      : kind_(kind), lo_(lo), hi_(hi), values_(std::move(values)) {}

  Kind kind_{Kind::kFixed};
  Slot lo_{0};
  Slot hi_{0};
  std::vector<Slot> values_;
};

}  // namespace rtether::traffic
