#include "core/channel.hpp"

#include <sstream>

namespace rtether::core {

std::string ChannelSpec::to_string() const {
  std::ostringstream out;
  out << "node" << source.value() << "->node" << destination.value() << " {P="
      << period << ", C=" << capacity << ", d=" << deadline << "}";
  return out.str();
}

std::string RtChannel::to_string() const {
  std::ostringstream out;
  out << "ch" << id.value() << " " << spec.to_string() << " split {d_iu="
      << partition.uplink << ", d_id=" << partition.downlink << "}";
  return out.str();
}

}  // namespace rtether::core
