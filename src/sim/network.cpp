#include "sim/network.hpp"

#include "common/assert.hpp"

namespace rtether::sim {

SimNetwork::SimNetwork(SimConfig config, std::uint32_t node_count,
                       std::size_t best_effort_depth)
    : config_(config) {
  RTETHER_ASSERT_MSG(node_count >= 1, "network needs at least one node");
  miss_allowance_ = config_.t_latency_ticks(/*with_best_effort=*/true);

  // Switch ports deliver to nodes through kNodeDeliver events (one
  // propagation delay; delivery is also the measurement point); node
  // uplinks deliver to the switch ingress through kSwitchIngress events.
  // Both sinks dispatch directly off the transmitters — see
  // Transmitter::complete.
  switch_ = std::make_unique<SimSwitch>(simulator_, config_, node_count,
                                        *this, best_effort_depth);
  nodes_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    nodes_.push_back(std::make_unique<SimNode>(simulator_, config_, NodeId{n},
                                               *this, best_effort_depth));
  }
}

void SimNetwork::record_fault_drop(const SimFrame& frame) {
  if (frame.info.cls == FrameClass::kRealTime && frame.info.rt_tag) {
    stats_.record_rt_fault_drop(frame.info.rt_tag->channel);
  } else if (frame.info.cls == FrameClass::kBestEffort) {
    stats_.record_best_effort_fault_drop();
  }
}

void SimNetwork::deliver_to_node(FrameIndex frame, NodeId port) {
  const Tick now = simulator_.now();
  const SimFrame& delivered = simulator_.arena().get(frame);
  if (delivered.corrupted) {
    // CRC check at the receiving NIC: the frame is discarded before any
    // delivery record or receive hook.
    record_fault_drop(delivered);
    simulator_.arena().release(frame);
    return;
  }
  if (delivered.info.cls == FrameClass::kRealTime && delivered.info.rt_tag) {
    stats_.record_rt_delivered(delivered.info.rt_tag->channel,
                               delivered.created_at,
                               delivered.info.rt_tag->absolute_deadline, now,
                               miss_allowance_);
  } else if (delivered.info.cls == FrameClass::kBestEffort) {
    stats_.record_best_effort_delivered(delivered.created_at, now);
  }
  node(port).receive(delivered, now);
  simulator_.arena().release(frame);
}

SimNode& SimNetwork::node(NodeId id) {
  RTETHER_ASSERT(id.value() < nodes_.size());
  return *nodes_[id.value()];
}

const SimNode& SimNetwork::node(NodeId id) const {
  RTETHER_ASSERT(id.value() < nodes_.size());
  return *nodes_[id.value()];
}

double SimNetwork::uplink_utilization(NodeId id) const {
  const Tick elapsed = simulator_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(
             nodes_[id.value()]->uplink().stats().busy_ticks) /
         static_cast<double>(elapsed);
}

double SimNetwork::downlink_utilization(NodeId id) const {
  const Tick elapsed = simulator_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(switch_->port(id).stats().busy_ticks) /
         static_cast<double>(elapsed);
}

}  // namespace rtether::sim
