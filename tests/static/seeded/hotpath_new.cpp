// Seeded lint violation: scripts/lint_invariants.py --profile hot-path must
// report the explicit allocation below. Registered as a WILL_FAIL ctest
// case (static.lint_seeded_hotpath); excluded from whole-tree lint runs via
// the tests/static/seeded/ carve-out in the linter itself.
#include <cstdint>

std::uint64_t* seeded_hotpath_violation() {
  return new std::uint64_t{42};
}

void seeded_hotpath_cleanup(std::uint64_t* p) {
  delete p;
}
