#pragma once

/// @file admission_backend.hpp
/// One front door for every admission implementation. The repo grew four
/// entry points with four shapes — `AdmissionController::request`,
/// `AdmissionEngine::admit_batch`, `ParallelAdmissionEngine::process` and
/// the resident `AdmissionService` — all contractually bit-identical.
/// `AdmissionBackend` fronts them with a single vocabulary (`ChannelOp` in,
/// typed `Expected` outcomes out), so the scenario runner, the benches and
/// the examples drive any implementation through the same code path, and
/// conformance campaigns can diff backends pairwise without bespoke glue.
///
/// Synchronous `submit`/`admit`/`release` work on every backend; the async
/// `submit_async → Ticket` surface is native on the service and emulated
/// (execute-then-complete) elsewhere, so callers can be written
/// ticket-first and stay backend-agnostic.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/admission.hpp"
#include "core/admission_service.hpp"
#include "core/network_state.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {

/// Tuning knobs shared by every backend; each kind reads the subset that
/// applies to it.
struct BackendConfig {
  AdmissionConfig admission{};
  /// Worker threads for the parallel engine / shard workers for the
  /// service. Ignored by the sequential kinds.
  unsigned threads{2};
  /// Minimum admit-run length before the parallel engine shards a batch.
  std::size_t min_parallel_batch{64};
  /// Ingest/reorder-buffer depth for the service kind.
  std::size_t service_queue_capacity{4096};
};

class AdmissionBackend {
 public:
  virtual ~AdmissionBackend() = default;

  /// Factory kind this backend was created as ("controller", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Drives a mixed admit/release stream to completion; outcomes are in
  /// per-kind submission order and bit-identical across backends.
  virtual ChurnResult submit(std::span<const ChannelOp> ops) = 0;

  [[nodiscard]] virtual AdmitOutcome admit(const ChannelSpec& spec) = 0;
  virtual ReleaseOutcome release(ChannelId id) = 0;

  /// True when `submit_async` completes tickets concurrently rather than
  /// inline.
  [[nodiscard]] virtual bool supports_async() const { return false; }

  /// Async submission. The default emulation executes the op synchronously
  /// and returns a pre-completed ticket, so ticket-first callers run
  /// unchanged on synchronous backends.
  virtual Ticket submit_async(const ChannelOp& op);

  /// Blocks until all previously submitted ops have completed. No-op on
  /// synchronous backends.
  virtual void drain() {}

  /// Admitted-state snapshot / running stats; async backends drain first.
  [[nodiscard]] virtual const NetworkState& state() = 0;
  [[nodiscard]] virtual const AdmissionStats& stats() = 0;
  [[nodiscard]] virtual const DeadlinePartitioner& partitioner() const = 0;
};

/// The factory kinds, in the order conformance campaigns run them.
[[nodiscard]] std::span<const std::string_view> backend_kinds();

/// Creates a backend:
///   "controller" — the reference `AdmissionController`, one op at a time;
///   "batched"    — `AdmissionEngine`, runs of admits via `admit_batch`;
///   "parallel"   — `ParallelAdmissionEngine::process`;
///   "service"    — resident `AdmissionService` (native async).
/// Returns nullptr for an unknown kind.
[[nodiscard]] std::unique_ptr<AdmissionBackend> make_admission_backend(
    std::string_view kind, std::uint32_t node_count,
    std::unique_ptr<DeadlinePartitioner> partitioner,
    const BackendConfig& config = {});

}  // namespace rtether::core
