// Negative-compile case: a discarded [[nodiscard]] Expected result must
// fail the build. Compiled twice by tests/static/CMakeLists.txt:
//   * without defines      -> control twin, must COMPILE (proves the file
//                             has no unrelated errors masking the test)
//   * with -DSTATIC_NEG    -> must FAIL (-Werror=unused-result)
#include "core/admission.hpp"

// Declaration only (external linkage, so no -Wunused-function):
// -fsyntax-only never links, so no definition is needed and the case
// exercises the real public API's attribute.
rtether::core::AdmissionController& controller();

int discard_case() {
  using rtether::ChannelId;
#if defined(STATIC_NEG)
  controller().release(ChannelId{1});  // dropped typed ReleaseOutcome
  return 0;
#else
  const auto outcome = controller().release(ChannelId{1});
  return outcome.has_value() ? 0 : 1;
#endif
}
