/// Validation V2 — the motivational baseline: plain switched Ethernet.
///
/// The same admitted RT traffic is replayed with the RT layer disabled
/// (every queue FCFS, as in an unmodified switch) while best-effort load
/// rises. The paper's premise — unmodified switched Ethernet cannot give
/// deadline guarantees — shows up as a rising miss rate; the RT layer run
/// alongside stays at zero.

#include <cstdio>

#include "analysis/validation.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

using namespace rtether;

int main() {
  std::puts("================================================================");
  std::puts("Baseline V2 — deadline misses: RT layer (EDF) vs plain FCFS");
  std::puts("switched Ethernet, as best-effort load rises");
  std::puts("================================================================");

  ConsoleTable table("V2: deadline-miss rate (%) vs best-effort load");
  table.set_header({"BE load", "FCFS misses %", "FCFS worst delay (slots)",
                    "EDF misses %", "EDF worst delay (slots)"});
  AsciiPlot plot("V2: miss rate vs background load", "best-effort load",
                 "deadline miss %");
  PlotSeries fcfs_series{"plain FCFS Ethernet", {}, {}};
  PlotSeries edf_series{"RT layer (EDF)", {}, {}};

  for (const double load : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    analysis::ValidationConfig config;
    config.workload.masters = 2;
    config.workload.slaves = 6;
    config.workload.deadline = traffic::SlotDistribution::fixed(16);
    config.request_count = 60;
    config.run_slots = 4'000;
    config.seed = 3;
    config.with_best_effort = load > 0.0;
    config.best_effort_load = load > 0.0 ? load : 0.1;

    auto fcfs_config = config;
    fcfs_config.sim.edf_enabled = false;
    const auto fcfs = analysis::run_guarantee_validation(fcfs_config);
    const auto edf = analysis::run_guarantee_validation(config);

    auto miss_rate = [](const analysis::ValidationResult& r) {
      return r.frames_delivered == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(r.deadline_misses) /
                       static_cast<double>(r.frames_delivered);
    };
    auto worst = [](const analysis::ValidationResult& r) {
      double w = 0.0;
      for (const auto& c : r.channels) {
        w = std::max(w, c.worst_delay_slots);
      }
      return w;
    };

    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", load * 100.0);
    table.add(std::string(label), miss_rate(fcfs), worst(fcfs),
              miss_rate(edf), worst(edf));
    fcfs_series.x.push_back(load);
    fcfs_series.y.push_back(miss_rate(fcfs));
    edf_series.x.push_back(load);
    edf_series.y.push_back(miss_rate(edf));
  }
  table.print();
  plot.add_series(fcfs_series);
  plot.add_series(edf_series);
  plot.print();
  std::puts("reading: without the RT layer, background traffic pushes RT");
  std::puts("frames past their deadlines; with it, misses stay at zero —");
  std::puts("the paper's raison d'être.\n");
  return 0;
}
