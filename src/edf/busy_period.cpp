#include "edf/busy_period.hpp"

#include "common/math.hpp"
#include "edf/utilization.hpp"

namespace rtether::edf {

namespace {

/// W(L) = Σ ⌈L / P_i⌉ · C_i, or nullopt on overflow.
std::optional<Slot> workload(const TaskSet& set, Slot length) {
  Slot total = 0;
  for (const auto& task : set.tasks()) {
    const auto jobs = ceil_div(length, task.period);
    const auto contribution = checked_mul(jobs, task.capacity);
    if (!contribution) return std::nullopt;
    const auto sum = checked_add(total, *contribution);
    if (!sum) return std::nullopt;
    total = *sum;
  }
  return total;
}

}  // namespace

std::optional<Slot> busy_period(const TaskSet& set) {
  if (set.empty()) {
    return Slot{0};
  }
  // With U > 1 the iteration diverges; refuse up front.
  if (utilization_exceeds_one(set)) {
    return std::nullopt;
  }
  Slot length = set.total_capacity();
  for (;;) {
    const auto next = workload(set, length);
    if (!next) return std::nullopt;
    if (*next == length) return length;
    length = *next;  // strictly increasing while not at the fixed point
  }
}

}  // namespace rtether::edf
