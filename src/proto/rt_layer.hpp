#pragma once

/// @file rt_layer.hpp
/// The end-node RT layer of Fig 18.2: the thin shim between the application
/// (step 1), the switch's RT channel management (step 2), and the dual
/// output queues (steps 3/4). It owns the node-side channel tables, runs the
/// establishment protocol, stamps outgoing RT datagrams with the deadline
/// encoding of §18.2.2, and assigns uplink EDF keys (release + d_iu).

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "core/channel.hpp"
#include "net/mgmt_frames.hpp"
#include "sim/network.hpp"

namespace rtether::proto {

/// What the source node knows about a channel it transmits on.
struct TxChannel {
  ChannelId id;
  NodeId destination;
  Slot period{0};
  Slot capacity{0};
  Slot deadline{0};
  /// d_iu assigned by the switch's DPS, slots.
  Slot uplink_deadline{0};
  std::uint64_t messages_sent{0};
};

/// What the destination node knows about a channel it receives on.
struct RxChannel {
  ChannelId id;
  NodeId source;
  Slot period{0};
  Slot capacity{0};
  Slot deadline{0};
  std::uint64_t frames_received{0};
};

/// Outcome of a channel setup attempt, delivered via callback.
struct SetupOutcome {
  bool accepted{false};
  /// Valid when accepted.
  ChannelId channel;
  Slot uplink_deadline{0};
  /// "rejected by switch/destination" or "timeout".
  std::string detail;
};

/// Configuration of the node-side protocol engine.
struct RtLayerConfig {
  /// Retransmission timeout for connection requests, slots. A request
  /// unanswered for this long is retried (management frames ride the
  /// best-effort queues and can be dropped when buffers overflow).
  Slot request_timeout_slots{2000};
  /// Total attempts per request (1 = no retransmission).
  std::uint32_t request_attempts{3};
};

class NodeRtLayer {
 public:
  using SetupCallback = std::function<void(const SetupOutcome&)>;
  /// Called for every RT data frame delivered to this node.
  using DataCallback =
      std::function<void(const RxChannel& channel, const sim::SimFrame& frame,
                        Tick now)>;
  /// Destination-side admission hook (paper: the destination "responds …
  /// telling whether the establishment is accepted or not").
  using AcceptPolicy = std::function<bool(const net::RequestFrame&)>;

  NodeRtLayer(sim::SimNetwork& network, NodeId node, RtLayerConfig config = {});

  NodeRtLayer(const NodeRtLayer&) = delete;
  NodeRtLayer& operator=(const NodeRtLayer&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }

  /// The network this layer is attached to (used by senders/harnesses).
  [[nodiscard]] sim::SimNetwork& network() { return network_; }

  /// Starts RT-channel establishment (Fig 18.3 flow). The callback fires
  /// when the relayed ResponseFrame arrives or every attempt times out.
  void request_channel(NodeId destination, Slot period, Slot capacity,
                       Slot deadline, SetupCallback callback);

  /// Sends one message (C_i max-sized frames) on an established channel;
  /// the release time is "now". Asserts the channel is established for TX.
  void send_message(ChannelId channel);

  /// Initiates teardown of a TX channel (extension; see mgmt_frames.hpp).
  void teardown_channel(ChannelId channel);

  void set_data_callback(DataCallback callback) {
    data_callback_ = std::move(callback);
  }
  void set_accept_policy(AcceptPolicy policy) {
    accept_policy_ = std::move(policy);
  }

  [[nodiscard]] const std::map<ChannelId, TxChannel>& tx_channels() const {
    return tx_channels_;
  }
  [[nodiscard]] const std::map<ChannelId, RxChannel>& rx_channels() const {
    return rx_channels_;
  }
  [[nodiscard]] const TxChannel* find_tx(ChannelId id) const;

  /// Drops every TX/RX channel table entry without any teardown exchange —
  /// the node-side half of a switch reboot (fault injection): the switch
  /// lost its channel table, so the node's contracts are void and must be
  /// re-established through the normal request path. In-flight requests
  /// are untouched (the scenario runner quiesces before a reboot).
  void reset_channels() {
    tx_channels_.clear();
    rx_channels_.clear();
  }

 private:
  struct PendingRequest {
    net::RequestFrame frame;
    NodeId destination;
    SetupCallback callback;
    std::uint32_t attempts_left{0};
    bool done{false};
  };

  /// Receive hook installed on the SimNode.
  void on_receive(const sim::SimFrame& frame, Tick now);
  void handle_management(const sim::SimFrame& frame, Tick now);
  void handle_forwarded_request(const net::RequestFrame& request);
  void handle_response(const net::ResponseFrame& response);
  void handle_teardown(const net::TeardownFrame& teardown);

  /// Sends a management payload to the switch (best-effort path).
  void send_mgmt_to_switch(std::vector<std::uint8_t> payload);
  void transmit_request(std::uint8_t request_id);
  void arm_request_timer(std::uint8_t request_id);
  /// Fired by the kernel timer armed in `arm_request_timer`.
  void on_request_timeout(std::uint8_t request_id);

  sim::SimNetwork& network_;
  NodeId node_;
  RtLayerConfig config_;
  std::uint8_t next_request_id_{1};
  std::map<std::uint8_t, PendingRequest> pending_;
  std::map<ChannelId, TxChannel> tx_channels_;
  std::map<ChannelId, RxChannel> rx_channels_;
  DataCallback data_callback_;
  AcceptPolicy accept_policy_;
};

}  // namespace rtether::proto
