#include "edf/feasibility.hpp"

#include <sstream>

#include "common/math.hpp"
#include "edf/busy_period.hpp"
#include "edf/checkpoints.hpp"
#include "edf/demand.hpp"
#include "edf/hyperperiod.hpp"
#include "edf/utilization.hpp"

namespace rtether::edf {

namespace {

/// Scans h(n,t) ≤ t at the given instants; records the first violation.
bool scan_demand(const TaskSet& set, const std::vector<Slot>& instants,
                 FeasibilityReport& report) {
  for (const Slot t : instants) {
    ++report.demand_evaluations;
    const Slot h = demand(set, t);
    if (h > t) {
      report.feasible = false;
      report.reason = InfeasibleReason::kDemandExceeded;
      report.violation_time = t;
      report.violation_demand = h;
      return false;
    }
  }
  return true;
}

std::vector<Slot> every_slot(Slot bound) {
  std::vector<Slot> instants;
  instants.reserve(static_cast<std::size_t>(bound));
  for (Slot t = 1; t <= bound; ++t) {
    instants.push_back(t);
  }
  return instants;
}

}  // namespace

FeasibilityReport check_feasibility(const TaskSet& set, DemandScan scan) {
  FeasibilityReport report;
  report.utilization = set.utilization();

  // Constraint 1 (Eq 18.2): utilization must not exceed 100 % — decided
  // exactly (see utilization.hpp).
  if (utilization_exceeds_one(set)) {
    report.feasible = false;
    report.reason = InfeasibleReason::kUtilizationExceeded;
    return report;
  }

  // Liu & Layland fast path: with d_i == P_i for every task, U ≤ 1 is
  // necessary and sufficient — no demand scan required.
  if (set.all_implicit_deadline()) {
    report.feasible = true;
    report.used_utilization_fast_path = true;
    return report;
  }

  const auto bp = busy_period(set);
  // U ≤ 1 guarantees convergence; overflow would need astronomically large
  // capacities, which `PseudoTask::valid()` rules out in practice.
  RTETHER_ASSERT_MSG(bp.has_value(), "busy period diverged despite U <= 1");

  Slot bound = *bp;
  if (scan == DemandScan::kExhaustive) {
    // Oracle bound: one full hyperperiod past the largest deadline covers
    // every distinct demand pattern.
    if (const auto h = hyperperiod(set)) {
      if (const auto sum = checked_add(*h, set.max_deadline())) {
        bound = std::max(bound, *sum);
      }
    }
  }
  report.scanned_bound = bound;

  const std::vector<Slot> instants = scan == DemandScan::kCheckpoints
                                         ? checkpoints(set, bound)
                                         : every_slot(bound);
  report.feasible = scan_demand(set, instants, report);
  if (report.feasible) {
    report.reason = InfeasibleReason::kNone;
  }
  return report;
}

bool is_feasible(const TaskSet& set, DemandScan scan) {
  return check_feasibility(set, scan).feasible;
}

std::string FeasibilityReport::summary() const {
  std::ostringstream out;
  if (feasible) {
    out << "feasible (U=" << utilization;
    if (used_utilization_fast_path) {
      out << ", Liu&Layland fast path";
    } else {
      out << ", scanned " << demand_evaluations << " instants up to t="
          << scanned_bound;
    }
    out << ")";
    return out.str();
  }
  switch (reason) {
    case InfeasibleReason::kUtilizationExceeded:
      out << "infeasible: utilization " << utilization << " > 1";
      break;
    case InfeasibleReason::kDemandExceeded:
      out << "infeasible: demand " << violation_demand.value_or(0) << " > t="
          << violation_time.value_or(0);
      break;
    case InfeasibleReason::kNone:
      out << "infeasible: (unspecified)";
      break;
  }
  return out.str();
}

}  // namespace rtether::edf
