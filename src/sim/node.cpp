#include "sim/node.hpp"

namespace rtether::sim {

SimNode::SimNode(Simulator& simulator, const SimConfig& config, NodeId id,
                 Transmitter::DeliverFn uplink_deliver,
                 std::size_t best_effort_depth)
    : id_(id),
      config_(config),
      uplink_(simulator, config, "node-" + std::to_string(id.value()) + "-up",
              std::move(uplink_deliver), best_effort_depth) {}

void SimNode::send_rt(Tick deadline_key, SimFrame frame) {
  if (!config_.edf_enabled) {
    // Baseline mode: no RT layer — everything is first-come-first-serve.
    uplink_.enqueue_best_effort(std::move(frame));
    return;
  }
  uplink_.enqueue_rt(deadline_key, std::move(frame));
}

void SimNode::send_best_effort(SimFrame frame) {
  uplink_.enqueue_best_effort(std::move(frame));
}

void SimNode::receive(const SimFrame& frame, Tick now) {
  if (receiver_) {
    receiver_(frame, now);
  }
}

}  // namespace rtether::sim
