#pragma once

/// @file task_set.hpp
/// The set of pseudo-tasks scheduled on one link direction, with the exact
/// utilization sum maintained incrementally so admission control can add and
/// remove channels in O(1) utilization updates.

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "edf/task.hpp"

namespace rtether::edf {

class TaskSet {
 public:
  TaskSet() = default;

  /// Builds from a task list (tests, benches). Reads the span only; the
  /// tasks are re-sorted into the set's own storage via `add`.
  explicit TaskSet(std::span<const PseudoTask> tasks);

  /// Adds a task. Asserts the task is `valid()` and its channel is not
  /// already present (one channel contributes at most one task per link
  /// direction).
  void add(const PseudoTask& task);

  /// Removes the task belonging to `channel`; false if absent.
  bool remove(ChannelId channel);

  /// True if a task for `channel` is present.
  [[nodiscard]] bool contains(ChannelId channel) const;

  [[nodiscard]] std::span<const PseudoTask> tasks() const { return tasks_; }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }

  /// ΣC_i/P_i as a double — for reporting and load-weighting only. The
  /// admission *constraint* (Eq 18.2) is evaluated exactly by
  /// `edf::utilization_exceeds_one` (see utilization.hpp for why).
  [[nodiscard]] double utilization() const { return utilization_; }

  /// ΣC_i — the length of the initial backlog when all tasks release
  /// together; the busy-period iteration starts here.
  [[nodiscard]] Slot total_capacity() const { return total_capacity_; }

  /// True when every task has deadline == period, in which case Liu &
  /// Layland's utilization bound alone decides feasibility (paper §18.3.2).
  [[nodiscard]] bool all_implicit_deadline() const;

  /// Largest relative deadline in the set (0 if empty).
  [[nodiscard]] Slot max_deadline() const;

  /// Smallest relative deadline in the set (0 if empty).
  [[nodiscard]] Slot min_deadline() const;

 private:
  std::vector<PseudoTask> tasks_;
  double utilization_{0.0};
  Slot total_capacity_{0};
};

}  // namespace rtether::edf
