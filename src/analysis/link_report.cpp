#include "analysis/link_report.hpp"

#include <algorithm>

#include "common/math.hpp"
#include "common/table.hpp"
#include "edf/busy_period.hpp"
#include "edf/checkpoints.hpp"
#include "edf/demand.hpp"
#include "edf/feasibility.hpp"

namespace rtether::analysis {

namespace {

LinkReport report_for(NodeId node, core::LinkDirection direction,
                      const edf::TaskSet& link) {
  LinkReport report;
  report.node = node;
  report.direction = direction;
  report.channels = link.size();
  report.utilization = link.utilization();
  report.min_deadline = link.min_deadline();
  const auto bp = edf::busy_period(link);
  report.busy_period = bp.value_or(0);
  // Slack t − h(t) at every checkpoint in the busy period *and* at every
  // task's first deadline (the busy period can end before the earliest
  // deadline, in which case the first-job slacks are the informative ones).
  report.min_slack = report.min_deadline;
  if (bp) {
    for (const Slot t : edf::checkpoints(link, *bp)) {
      report.min_slack =
          std::min(report.min_slack, sat_sub(t, edf::demand(link, t)));
    }
  }
  for (const auto& task : link.tasks()) {
    report.min_slack = std::min(
        report.min_slack,
        sat_sub(task.deadline, edf::demand(link, task.deadline)));
  }
  return report;
}

}  // namespace

std::vector<LinkReport> network_report(const core::NetworkState& state) {
  std::vector<LinkReport> reports;
  for (std::uint32_t n = 0; n < state.node_count(); ++n) {
    for (const auto direction : {core::LinkDirection::kUplink,
                                 core::LinkDirection::kDownlink}) {
      const auto& link = state.link(NodeId{n}, direction);
      if (!link.empty()) {
        reports.push_back(report_for(NodeId{n}, direction, link));
      }
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const LinkReport& a, const LinkReport& b) {
              if (a.min_slack != b.min_slack) {
                return a.min_slack < b.min_slack;
              }
              if (a.node != b.node) return a.node < b.node;
              return a.direction < b.direction;
            });
  return reports;
}

std::string render_network_report(const core::NetworkState& state,
                                  std::size_t max_rows) {
  ConsoleTable table("link schedulability report (bottlenecks first)");
  table.set_header({"link", "channels", "utilization", "busy period",
                    "min deadline", "min slack"});
  const auto reports = network_report(state);
  for (std::size_t i = 0; i < std::min(max_rows, reports.size()); ++i) {
    const auto& r = reports[i];
    table.add(std::string(core::to_string(r.direction)) + "(n" +
                  std::to_string(r.node.value()) + ")",
              r.channels, r.utilization, r.busy_period, r.min_deadline,
              r.min_slack);
  }
  return table.render();
}

std::size_t link_headroom(const edf::TaskSet& link, Slot period,
                          Slot capacity, Slot deadline, std::size_t limit) {
  edf::TaskSet probe = link;
  std::size_t added = 0;
  // Probe IDs start past any real 16-bit channel ID in use on this link;
  // TaskSet only requires uniqueness within itself, and the copy is ours.
  std::uint16_t next_id = 0;
  auto unused_id = [&]() {
    while (probe.contains(ChannelId(next_id))) {
      ++next_id;
    }
    return ChannelId(next_id);
  };
  while (added < limit) {
    probe.add({unused_id(), period, capacity, deadline});
    if (!edf::is_feasible(probe)) {
      return added;
    }
    ++added;
  }
  return added;
}

}  // namespace rtether::analysis
