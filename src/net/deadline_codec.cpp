#include "net/deadline_codec.hpp"

#include "common/assert.hpp"

namespace rtether::net {

void encode_rt_tag(const RtFrameTag& tag, Ipv4Header& header) {
  RTETHER_ASSERT_MSG(tag.absolute_deadline <= kMaxEncodableDeadline,
                     "absolute deadline exceeds 48 bits");
  // Deadline bits 47..16 → IP source; bits 15..0 → destination's high half.
  header.source =
      Ipv4Address(static_cast<std::uint32_t>(tag.absolute_deadline >> 16));
  const auto deadline_low =
      static_cast<std::uint32_t>(tag.absolute_deadline & 0xffff);
  header.destination =
      Ipv4Address(deadline_low << 16 | tag.channel.value());
  header.tos = kRtTos;
}

std::optional<RtFrameTag> decode_rt_tag(const Ipv4Header& header) {
  if (!is_rt_frame(header)) {
    return std::nullopt;
  }
  RtFrameTag tag;
  tag.absolute_deadline =
      static_cast<std::uint64_t>(header.source.value()) << 16 |
      header.destination.value() >> 16;
  tag.channel =
      ChannelId(static_cast<std::uint16_t>(header.destination.value()));
  return tag;
}

bool is_rt_frame(const Ipv4Header& header) { return header.tos == kRtTos; }

}  // namespace rtether::net
