#pragma once

/// @file sync.hpp
/// Capability-annotated synchronization primitives. `std::mutex` carries no
/// thread-safety attributes, so Clang's `-Wthread-safety` analysis cannot
/// see it being locked; these zero-cost wrappers make every lock acquisition
/// and every `GUARDED_BY` field statically checkable. All mutex-based code
/// in the tree uses them (the invariant linter rejects raw `std::mutex` in
/// the lock-free files, and the negative-compile suite in `tests/static/`
/// proves violations fail the build under Clang).
///
/// `ThreadRole` extends the same machinery to single-owner state in
/// multi-threaded components: a role is a capability with no runtime lock at
/// all. The thread that owns the state holds the role for its lifetime
/// (`ThreadRoleGuard`), functions touching the state are `REQUIRES(role)`,
/// and the analysis proves no other code path can reach it — e.g. the
/// admission service's dispatcher-private retire state.

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace rtether {

/// `std::mutex` as a Clang capability. Same cost, same semantics; the
/// annotations are compile-time only.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { impl_.lock(); }
  void unlock() RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex impl_;
};

/// RAII lock over `Mutex`; the annotated replacement for std::lock_guard /
/// std::unique_lock (which the analysis cannot see through).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with `Mutex`. No predicate overload on
/// purpose: a lambda predicate would be analyzed as a separate function and
/// would need its own annotations, so waiters write the standard
///
///   MutexLock lock(mutex_);
///   while (!condition_over_guarded_fields()) { cv_.wait(mutex_); }
///
/// loop, which keeps every guarded-field access inside the annotated
/// function body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, sleeps, and re-acquires it before
  /// returning (spurious wakeups possible — always wait in a loop).
  void wait(Mutex& mutex) REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock wrapper so ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mutex.impl_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no runtime lock: ownership of a set of fields by one
/// logical thread. Acquire/release are no-ops at runtime; the value is that
/// `GUARDED_BY(role)` fields become unreachable — at compile time — from
/// any function not marked `REQUIRES(role)`.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  // The analysis must not see a role being "locked" recursively when the
  // owning loop calls helpers, hence the analysis opt-out on the no-ops.
  void acquire() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {}
  void release() RELEASE() NO_THREAD_SAFETY_ANALYSIS {}
};

/// Scoped role ownership for a thread's main loop.
class SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) ACQUIRE(role) : role_(role) {
    role_.acquire();
  }
  ~ThreadRoleGuard() RELEASE() { role_.release(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace rtether
