#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rtether {
namespace {

Expected<int, std::string> parse_positive(int v) {
  if (v > 0) return v;
  return Unexpected(std::string("not positive"));
}

TEST(Expected, ValueState) {
  const auto r = parse_positive(5);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(Expected, ErrorState) {
  const auto r = parse_positive(-1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "not positive");
}

TEST(Expected, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(99), 3);
  EXPECT_EQ(parse_positive(-3).value_or(99), 99);
}

TEST(Expected, SameTypeForValueAndError) {
  // Unexpected disambiguates when T == E.
  const Expected<int, int> ok = 1;
  const Expected<int, int> err = Unexpected(2);
  EXPECT_TRUE(ok.has_value());
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(err.error(), 2);
}

TEST(Expected, ArrowOperator) {
  const Expected<std::string, int> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string, int> r = std::string("payload");
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Status, OkAndError) {
  const Status<std::string> ok = kOk;
  EXPECT_TRUE(ok.has_value());
  const Status<std::string> bad = Unexpected(std::string("boom"));
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "boom");
}

}  // namespace
}  // namespace rtether
