#include "core/channel.hpp"

#include <gtest/gtest.h>

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

TEST(ChannelSpec, PaperParametersAreValid) {
  EXPECT_TRUE(spec(0, 1, 100, 3, 40).valid());
}

TEST(ChannelSpec, RejectsZeroFields) {
  EXPECT_FALSE(spec(0, 1, 0, 3, 40).valid());
  EXPECT_FALSE(spec(0, 1, 100, 0, 40).valid());
  EXPECT_FALSE(spec(0, 1, 100, 3, 0).valid());
}

TEST(ChannelSpec, RejectsCapacityAbovePeriod) {
  EXPECT_FALSE(spec(0, 1, 2, 3, 40).valid());
  EXPECT_TRUE(spec(0, 1, 3, 3, 40).valid());
}

TEST(ChannelSpec, EnforcesStoreAndForwardLowerBound) {
  // §18.4: d_i < 2·C_i cannot be EDF-feasible through a store-and-forward
  // switch — each hop needs at least C_i slots.
  EXPECT_FALSE(spec(0, 1, 100, 3, 5).valid());
  EXPECT_TRUE(spec(0, 1, 100, 3, 6).valid());
}

TEST(ChannelSpec, UtilizationIsCapacityOverPeriod) {
  EXPECT_DOUBLE_EQ(spec(0, 1, 100, 3, 40).utilization(), 0.03);
}

TEST(ChannelSpec, ToStringMentionsEndpointsAndParams) {
  const auto text = spec(2, 9, 100, 3, 40).to_string();
  EXPECT_NE(text.find("node2"), std::string::npos);
  EXPECT_NE(text.find("node9"), std::string::npos);
  EXPECT_NE(text.find("P=100"), std::string::npos);
  EXPECT_NE(text.find("C=3"), std::string::npos);
  EXPECT_NE(text.find("d=40"), std::string::npos);
}

TEST(DeadlinePartition, SatisfiesChecksBothEquations) {
  const auto s = spec(0, 1, 100, 3, 40);
  // Eq 18.8: sum must equal d; Eq 18.9: both halves ≥ C.
  EXPECT_TRUE((DeadlinePartition{20, 20}.satisfies(s)));
  EXPECT_TRUE((DeadlinePartition{3, 37}.satisfies(s)));
  EXPECT_TRUE((DeadlinePartition{37, 3}.satisfies(s)));
  EXPECT_FALSE((DeadlinePartition{19, 20}.satisfies(s)));  // sum ≠ d
  EXPECT_FALSE((DeadlinePartition{2, 38}.satisfies(s)));   // uplink < C
  EXPECT_FALSE((DeadlinePartition{38, 2}.satisfies(s)));   // downlink < C
}

TEST(DeadlinePartition, UplinkFraction) {
  EXPECT_DOUBLE_EQ((DeadlinePartition{20, 20}.uplink_fraction()), 0.5);
  EXPECT_DOUBLE_EQ((DeadlinePartition{30, 10}.uplink_fraction()), 0.75);
  EXPECT_DOUBLE_EQ((DeadlinePartition{0, 0}.uplink_fraction()), 0.0);
}

TEST(RtChannel, ToStringIncludesPartition) {
  const RtChannel channel{ChannelId(5), spec(0, 1, 100, 3, 40), {33, 7}};
  const auto text = channel.to_string();
  EXPECT_NE(text.find("ch5"), std::string::npos);
  EXPECT_NE(text.find("d_iu=33"), std::string::npos);
  EXPECT_NE(text.find("d_id=7"), std::string::npos);
}

}  // namespace
}  // namespace rtether::core
