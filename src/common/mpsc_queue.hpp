#pragma once

/// @file mpsc_queue.hpp
/// Lock-free bounded op queue + eventcount parking, the transport layer of
/// `core::AdmissionService`. Two pieces:
///
///   * `Eventcount` — a futex-backed condition without a mutex. Waiters
///     follow the prepare/recheck/wait protocol; notifiers pay two relaxed
///     atomic ops when nobody is parked (the common case on a hot queue),
///     and only touch the futex when a waiter is registered.
///   * `MpscQueue<T>` — a bounded Vyukov-style ring (per-cell sequence
///     numbers) with multi-producer `try_push`/`push` and single-consumer
///     `try_pop`/`pop`. Positions are claimed with one CAS, so each
///     producer's elements appear in its own program order (FIFO per
///     producer) and the single consumer observes a total order that is the
///     queue's linearization order. A full ring back-pressures: `try_push`
///     fails, `push` parks until the consumer drains a slot.
///
/// Memory ordering: element construction happens-before the cell's
/// sequence release-store; the consumer's acquire-load of the sequence
/// therefore happens-before its read of the element, and symmetrically for
/// slot reuse. TSan-clean by construction, not by suppression.
///
/// Lock-freedom is a hard invariant, statically enforced: this header must
/// never name a mutex type (`scripts/lint_invariants.py`, rule
/// `lock-free-path`, gates CI on it). The fields below follow atomic
/// publish protocols rather than `GUARDED_BY` capabilities — `sequence` is
/// the per-cell publication flag, `enqueue_pos_` is the multi-producer
/// claim counter, and `dequeue_pos_` is plain because exactly one consumer
/// thread may touch the pop side (the API contract above).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "common/assert.hpp"

namespace rtether {

/// Mutex-free condition variable for "park until something might have
/// changed". Usage, waiter side:
///
///   while (!condition()) {
///     const auto ticket = event.prepare_wait();
///     if (condition()) { event.cancel_wait(); break; }
///     event.wait(ticket);
///   }
///
/// Notifier side: make `condition()` true, then `notify()`. The seq_cst
/// version bump in `notify()` orders against the waiter's registration in
/// `prepare_wait()`, so either the notifier sees the waiter (and kicks the
/// futex) or the waiter's recheck sees the new state — never a lost wakeup.
class Eventcount {
 public:
  using Ticket = std::uint64_t;

  /// Registers the caller as a potential waiter and snapshots the version.
  /// Must be followed by a condition recheck, then `wait` or `cancel_wait`.
  [[nodiscard]] Ticket prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return version_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_relaxed); }

  /// Blocks until the version moves past `ticket` (or a spurious wake; the
  /// caller's loop rechecks the condition either way).
  void wait(Ticket ticket) {
    version_.wait(ticket, std::memory_order_seq_cst);
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Publishes "state may have changed". Cheap when nobody waits.
  void notify() {
    version_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) != 0) {
      version_.notify_all();
    }
  }

 private:
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint32_t> waiters_{0};
};

/// Bounded multi-producer queue; exactly one consumer thread may call the
/// pop/empty side. Capacity is rounded up to a power of two (minimum 2).
template <typename T>
class MpscQueue {
 public:
  /// `consumer_wake` (optional) is notified after every successful push —
  /// the hook that lets one consumer park on a single eventcount covering
  /// several wake sources (e.g. the service dispatcher watching both its
  /// ingest ring and the reorder buffer). The internal eventcount is
  /// notified as well and backs the plain blocking `pop`.
  explicit MpscQueue(std::size_t capacity, Eventcount* consumer_wake = nullptr)
      : consumer_wake_(consumer_wake) {
    std::size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscQueue() {
    T scratch;
    while (try_pop(scratch)) {
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer. Moves from `value` only on success; on a full ring the
  /// argument is untouched and false is returned (the back-pressure signal).
  [[nodiscard]] bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed element
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    ::new (static_cast<void*>(cell->storage)) T(std::move(value));
    cell->sequence.store(pos + 1, std::memory_order_release);
    not_empty_.notify();
    if (consumer_wake_ != nullptr) {
      consumer_wake_->notify();
    }
    return true;
  }

  /// Multi-producer; parks on a full ring until the consumer frees a slot.
  void push(T value) {
    for (;;) {
      if (try_push(std::move(value))) {
        return;
      }
      const auto ticket = not_full_.prepare_wait();
      if (try_push(std::move(value))) {
        not_full_.cancel_wait();
        return;
      }
      not_full_.wait(ticket);
    }
  }

  /// Single consumer. False when the queue is (momentarily) empty.
  [[nodiscard]] bool try_pop(T& out) {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) !=
        static_cast<std::intptr_t>(dequeue_pos_ + 1)) {
      return false;  // next cell not yet published
    }
    T* element = std::launder(reinterpret_cast<T*>(cell.storage));
    out = std::move(*element);
    element->~T();
    cell.sequence.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    not_full_.notify();
    return true;
  }

  /// Single consumer; parks until an element arrives.
  void pop(T& out) {
    while (!try_pop(out)) {
      const auto ticket = not_empty_.prepare_wait();
      if (try_pop(out)) {
        not_empty_.cancel_wait();
        return;
      }
      not_empty_.wait(ticket);
    }
  }

  /// Single consumer: true when no published element is ready. A cell
  /// mid-construction counts as empty — the producer's post-publish notify
  /// re-wakes any parked consumer, so the race is benign.
  [[nodiscard]] bool empty() const {
    const Cell& cell = cells_[dequeue_pos_ & mask_];
    return cell.sequence.load(std::memory_order_acquire) != dequeue_pos_ + 1;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_{0};
  Eventcount* consumer_wake_{nullptr};
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::size_t dequeue_pos_{0};
  Eventcount not_full_;
  Eventcount not_empty_;
};

}  // namespace rtether
