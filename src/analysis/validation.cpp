#include "analysis/validation.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "core/partitioner.hpp"
#include "proto/periodic_sender.hpp"
#include "proto/stack.hpp"
#include "sim/best_effort.hpp"

namespace rtether::analysis {

ValidationResult run_guarantee_validation(const ValidationConfig& config) {
  traffic::MasterSlaveWorkload workload(config.workload, config.seed);
  const auto specs = workload.generate(config.request_count);

  proto::Stack stack(config.sim, workload.node_count(),
                     core::make_partitioner(config.scheme));
  auto& network = stack.network();
  network.set_miss_allowance(
      config.sim.t_latency_ticks(config.with_best_effort));

  // Phase 1: establish every accepted channel over the real protocol.
  std::vector<proto::EstablishedChannel> established;
  for (const auto& spec : specs) {
    auto result =
        stack.establish(spec.source, spec.destination, spec.period,
                        spec.capacity, spec.deadline);
    if (result) {
      established.push_back(*result);
    }
  }

  // Phase 2: periodic senders on every node that owns channels; optional
  // best-effort cross-traffic everywhere.
  std::vector<std::unique_ptr<proto::PeriodicRtSender>> senders;
  Slot phase = 0;
  for (const auto& channel : established) {
    senders.push_back(std::make_unique<proto::PeriodicRtSender>(
        stack.layer(channel.source), channel.id, phase));
    senders.back()->start();
    phase += config.stagger_slots;
  }

  std::vector<std::unique_ptr<sim::BestEffortSource>> background;
  if (config.with_best_effort) {
    sim::BestEffortProfile profile;
    profile.offered_load = config.best_effort_load;
    background = sim::attach_best_effort_everywhere(network, profile,
                                                    config.seed ^ 0xbeefULL);
  }

  const Tick stop_at =
      network.now() + config.sim.slots_to_ticks(config.run_slots);
  // Runaway budget scaled with the horizon: the guard exists to catch
  // same-tick spin loops, not to cap long legitimate runs (the saturated
  // 64-node workload executes <1k events/slot; 20k/slot is far beyond any
  // real schedule while still bounding a stuck loop).
  const std::uint64_t event_budget =
      sim::Simulator::kDefaultMaxEvents +
      20'000 * static_cast<std::uint64_t>(config.run_slots);
  bool sim_completed = network.simulator().run_until(stop_at, event_budget);
  for (auto& sender : senders) sender->stop();
  for (auto& source : background) source->stop();
  // Drain in-flight frames so the last releases are measured too — unless
  // the measured run already tripped the runaway guard: the stuck loop
  // would just burn a second full event budget before we report failure.
  if (sim_completed) {
    sim_completed = network.simulator().run_until(
        stop_at + config.sim.slots_to_ticks(1'000), event_budget);
  }

  // Phase 3: collect verdicts.
  ValidationResult result;
  result.sim_budget_exhausted = !sim_completed;
  result.channels_requested = specs.size();
  result.channels_established = established.size();
  const double ticks_per_slot =
      static_cast<double>(config.sim.ticks_per_slot);
  const double allowance_slots =
      static_cast<double>(network.miss_allowance()) / ticks_per_slot;

  for (const auto& channel : established) {
    ChannelValidation verdict;
    verdict.id = channel.id;
    verdict.source = channel.source;
    verdict.destination = channel.destination;
    verdict.deadline_slots = channel.deadline;
    verdict.bound_slots =
        static_cast<double>(channel.deadline) + allowance_slots;
    if (const auto stats = network.stats().channel(channel.id)) {
      verdict.frames_sent = stats->frames_sent;
      verdict.frames_delivered = stats->frames_delivered;
      verdict.deadline_misses = stats->deadline_misses;
      verdict.worst_delay_slots = stats->delay_ticks.max() / ticks_per_slot;
    }
    result.frames_sent += verdict.frames_sent;
    result.frames_delivered += verdict.frames_delivered;
    result.deadline_misses += verdict.deadline_misses;
    if (verdict.bound_slots > 0.0) {
      result.worst_delay_ratio =
          std::max(result.worst_delay_ratio,
                   verdict.worst_delay_slots / verdict.bound_slots);
    }
    result.channels.push_back(verdict);
  }
  result.best_effort_sent = network.stats().best_effort_sent();
  result.best_effort_delivered = network.stats().best_effort_delivered();
  result.best_effort_mean_delay_slots =
      network.stats().best_effort_delay_ticks().mean() / ticks_per_slot;
  return result;
}

}  // namespace rtether::analysis
