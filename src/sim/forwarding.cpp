#include "sim/forwarding.hpp"

namespace rtether::sim {

void ForwardingTable::learn(const net::MacAddress& mac, NodeId node) {
  if (2 * (used_ + 1) > table_.size()) {
    rehash(table_.empty() ? 16 : 2 * table_.size());
  }
  const std::uint64_t key = mac.to_u48();
  std::size_t index = start_index(key, table_.size());
  while (table_[index].key != kEmptyKey && table_[index].key != key) {
    index = (index + 1) & (table_.size() - 1);
  }
  if (table_[index].key == kEmptyKey) {
    ++used_;
  }
  table_[index] = Slot{key, node};
}

std::optional<NodeId> ForwardingTable::lookup(
    const net::MacAddress& mac) const {
  if (table_.empty()) return std::nullopt;
  const std::uint64_t key = mac.to_u48();
  std::size_t index = start_index(key, table_.size());
  while (table_[index].key != kEmptyKey) {
    if (table_[index].key == key) return table_[index].node;
    index = (index + 1) & (table_.size() - 1);
  }
  return std::nullopt;
}

void ForwardingTable::rehash(std::size_t capacity) {
  std::vector<Slot> bigger(capacity);
  for (const Slot& old : table_) {
    if (old.key == kEmptyKey) continue;
    std::size_t index = start_index(old.key, capacity);
    while (bigger[index].key != kEmptyKey) {
      index = (index + 1) & (capacity - 1);
    }
    bigger[index] = old;
  }
  table_ = std::move(bigger);
}

}  // namespace rtether::sim
